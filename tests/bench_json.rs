//! The committed `BENCH.json` must stay machine-readable: it is the repo's
//! tracked simulator-throughput record (written by `testkit::bench` via
//! `TESTKIT_BENCH_JSON`, shape-checked again by `scripts/verify.sh`). This
//! test fails if the file goes missing, stops parsing, or loses the two
//! tracked scenarios.

use testkit::json::{self, Value};

const TRACKED: &[&str] = &[
    "sim_throughput/streaming_0.3_8.6",
    "sim_throughput/streaming_0.3_8.6_scenario",
    "sim_throughput/browse_6conn",
    "sim_throughput/browse_1k",
    "sharded/browse_10k",
];

#[test]
fn committed_bench_json_parses_and_has_tracked_scenarios() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("BENCH.json must be committed at the repo root: {e}"));
    let doc = json::parse(&text).expect("BENCH.json parses as JSON");

    assert_eq!(doc.get("schema").and_then(Value::as_f64), Some(1.0), "schema version");
    assert_eq!(
        doc.get("smoke"),
        Some(&Value::Bool(false)),
        "committed numbers must come from a real measurement run, not smoke mode"
    );

    let results = doc.get("results").and_then(Value::as_array).expect("results array");
    for want in TRACKED {
        let r = results
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some(want))
            .unwrap_or_else(|| panic!("missing tracked benchmark {want}"));
        for field in ["median_ns", "p95_ns", "samples", "iters_per_sample", "elements_per_sec"] {
            let v = r
                .get(field)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{want} lacks numeric field {field}"));
            assert!(v > 0.0 && v.is_finite(), "{want}.{field} = {v} must be positive");
        }
    }
}
