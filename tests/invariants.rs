//! Whole-stack invariants, including property-based sweeps over random
//! configurations: whatever the bandwidths, scheduler and workload, data is
//! conserved, delivery is in order, and runs are reproducible.
//!
//! Run under `testkit::prop`; replay a failure with `TESTKIT_SEED=<n>`.

use mptcp_ecf::prelude::*;
use testkit::prop::{check, vec_of};

/// Fixed list of downloads over one connection.
struct Fetch {
    sizes: Vec<u64>,
    next: usize,
    done: usize,
}

impl Fetch {
    fn new(sizes: Vec<u64>) -> Self {
        Fetch { sizes, next: 0, done: 0 }
    }
}

impl Application for Fetch {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        api.request(0, self.sizes[0]);
        self.next = 1;
    }
    fn on_response_complete(&mut self, _n: Time, _c: usize, _r: u64, api: &mut Api<'_>) {
        self.done += 1;
        if self.next < self.sizes.len() {
            api.request(0, self.sizes[self.next]);
            self.next += 1;
        }
    }
}

fn run(
    wifi: f64,
    lte: f64,
    kind: SchedulerKind,
    sizes: Vec<u64>,
    seed: u64,
) -> Testbed<Fetch> {
    let cfg = TestbedConfig::wifi_lte(wifi, lte, kind, seed);
    let n = sizes.len();
    let mut tb = Testbed::new(cfg, Fetch::new(sizes));
    tb.run_until(Time::from_secs(600));
    assert_eq!(tb.app().done, n, "all downloads must finish");
    tb
}

#[test]
fn conservation_and_order_hold_for_any_config() {
    check(
        12,
        (
            0usize..6,
            0usize..6,
            0usize..4,
            vec_of(1024u64..1_500_000, 1..4),
            0u64..1000,
        ),
        |(wifi_idx, lte_idx, kind_idx, sizes, seed)| {
            let bw = [0.3, 0.7, 1.1, 1.7, 4.2, 8.6];
            let kind = SchedulerKind::paper_set()[kind_idx];
            let tb = run(bw[wifi_idx], bw[lte_idx], kind, sizes.clone(), seed);
            let world = tb.world();

            // Conservation: the receiver delivered exactly what was written.
            assert_eq!(world.receiver(0).meta_next(), world.sender(0).next_dsn());
            assert!(world.all_drained());

            // Every request completed after it was issued, in issue order.
            let recs: Vec<_> = world.recorder.requests.iter().collect();
            assert_eq!(recs.len(), sizes.len());
            let mut last_completed = Time::ZERO;
            for r in &recs {
                let completed = r.completed.expect("completed");
                assert!(completed > r.issued);
                assert!(completed >= last_completed);
                last_completed = completed;
            }

            // OOO delays are finite and the recorder saw every delivered segment.
            let delivered: u64 = world.receiver(0).stats().delivered_segs;
            assert_eq!(world.recorder.ooo_delays_us.len() as u64, delivered);
        },
    );
}

#[test]
fn runs_are_reproducible() {
    check(12, (0usize..4, 0u64..50), |(kind_idx, seed)| {
        let kind = SchedulerKind::paper_set()[kind_idx];
        let a = run(0.7, 4.2, kind, vec![300_000, 700_000], seed);
        let b = run(0.7, 4.2, kind, vec![300_000, 700_000], seed);
        assert_eq!(
            &a.world().recorder.ooo_delays_us,
            &b.world().recorder.ooo_delays_us
        );
        let t = |tb: &Testbed<Fetch>| {
            tb.world().recorder.requests.last().unwrap().completed.unwrap()
        };
        assert_eq!(t(&a), t(&b));
    });
}

#[test]
fn segment_accounting_balances_per_subflow() {
    let tb = run(1.1, 4.2, SchedulerKind::Ecf, vec![2_000_000], 9);
    let world = tb.world();
    let sent: u64 = (0..2).map(|s| world.sender(0).subflows[s].stats().segs_sent).sum();
    let delivered = world.receiver(0).stats().delivered_segs;
    let dups = world.receiver(0).stats().duplicate_segs;
    // Every sent segment was either delivered as new data, discarded as a
    // duplicate, or dropped on a link.
    let dropped: u64 = (0..2).map(|p| world.paths[p].fwd.stats().dropped_queue
        + world.paths[p].fwd.stats().dropped_random).sum();
    assert_eq!(sent, delivered + dups + dropped, "segment ledger must balance");
}

#[test]
fn stats_snapshot_is_self_consistent() {
    let tb = run(0.3, 8.6, SchedulerKind::Default, vec![1_000_000], 2);
    let world = tb.world();
    for s in 0..2 {
        let sf = &world.sender(0).subflows[s];
        assert!(sf.stats().retransmits <= sf.stats().segs_sent);
        assert_eq!(sf.inflight_count(), 0, "drained run leaves nothing in flight");
    }
    // Receiver window fully restored once everything is consumed.
    assert_eq!(world.receiver(0).rwnd_free(), 2896);
}
