//! Smoke tests over the experiment harness: every registry entry resolves,
//! and the cheap reports generate with their expected structure.

use experiments::{find, registry, Effort};

#[test]
fn registry_is_complete_and_unique() {
    let reg = registry();
    assert!(reg.len() >= 25, "expected ≥25 experiments, got {}", reg.len());
    let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(before, ids.len(), "duplicate experiment ids");
}

#[test]
fn tab1_report_matches_the_ladder() {
    let report = (find("tab1").expect("registered").run)(Effort::Quick);
    for needle in ["144p", "1080p", "0.26", "8.47"] {
        assert!(report.contains(needle), "tab1 missing {needle}:\n{report}");
    }
}

#[test]
fn fig1_report_shows_progress_series() {
    let report = (find("fig1").expect("registered").run)(Effort::Quick);
    assert!(report.contains("cumulative_MB"));
    assert!(report.lines().count() > 8, "fig1 too short:\n{report}");
}

#[test]
fn fig5_report_has_all_pairs() {
    let report = (find("fig5").expect("registered").run)(Effort::Quick);
    for pair in ["0.3-8.6", "0.7-8.6", "1.1-8.6", "4.2-8.6"] {
        assert!(report.contains(pair), "fig5 missing {pair}");
    }
}

#[test]
fn tab3_reports_all_schedulers() {
    let report = (find("tab3").expect("registered").run)(Effort::Quick);
    for sched in ["default", "ecf", "daps", "blest"] {
        assert!(report.contains(sched), "tab3 missing {sched}");
    }
}

#[test]
fn ablation_components_orders_variants() {
    let report = (find("ablation_components").expect("registered").run)(Effort::Quick);
    assert!(report.contains("full ECF"));
    assert!(report.contains("no delta margin"));
    assert!(report.contains("no second inequality"));
    assert!(report.contains("default (reference)"));
}
