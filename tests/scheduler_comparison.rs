//! Cross-crate integration tests asserting the paper's headline *shapes*:
//! who wins, where, and by direction — the properties EXPERIMENTS.md reports
//! quantitatively.

use mptcp_ecf::prelude::*;

fn stream(wifi: f64, lte: f64, kind: SchedulerKind, seed: u64) -> Testbed<DashApp> {
    let cfg = TestbedConfig::wifi_lte(wifi, lte, kind, seed);
    let player = PlayerConfig { video_secs: 120.0, ..PlayerConfig::default() };
    let mut tb = Testbed::new(cfg, DashApp::new(player, 0));
    tb.run_until(Time::from_secs(4000));
    assert!(tb.app().finished_at().is_some(), "video must finish");
    tb
}

#[test]
fn ecf_beats_default_under_heterogeneity() {
    // The paper's central claim (Fig 9): at 0.3/8.6 the default scheduler
    // falls far below the ideal bit rate while ECF stays close.
    let ecf = stream(0.3, 8.6, SchedulerKind::Ecf, 4).app().player.avg_bitrate_mbps();
    let def = stream(0.3, 8.6, SchedulerKind::Default, 4).app().player.avg_bitrate_mbps();
    assert!(
        ecf > def * 1.3,
        "ECF ({ecf:.2} Mbps) must clearly beat default ({def:.2} Mbps)"
    );
    // And ECF lands in the ideal's neighbourhood.
    assert!(ecf > 0.6 * 8.47, "ECF only reached {ecf:.2} of 8.47 Mbps ideal");
}

#[test]
fn schedulers_converge_on_symmetric_paths() {
    // Fig 9 diagonal: with homogeneous paths every scheduler performs alike.
    let ecf = stream(8.6, 8.6, SchedulerKind::Ecf, 4).app().player.avg_bitrate_mbps();
    let def = stream(8.6, 8.6, SchedulerKind::Default, 4).app().player.avg_bitrate_mbps();
    let ratio = ecf / def;
    assert!(
        (0.85..=1.18).contains(&ratio),
        "expected parity on symmetric paths, got ecf={ecf:.2} default={def:.2}"
    );
}

#[test]
fn daps_is_weakest_under_heterogeneity() {
    // Fig 9(c): DAPS trails even the default scheduler when paths diverge.
    let daps = stream(0.3, 8.6, SchedulerKind::Daps, 4).app().player.avg_bitrate_mbps();
    let ecf = stream(0.3, 8.6, SchedulerKind::Ecf, 4).app().player.avg_bitrate_mbps();
    assert!(daps < ecf, "DAPS ({daps:.2}) must trail ECF ({ecf:.2})");
}

#[test]
fn ecf_preserves_the_fast_subflow_window() {
    // Table 3: ECF incurs an order of magnitude fewer IW resets on the fast
    // (LTE) subflow than the default scheduler.
    let ecf_tb = stream(0.3, 8.6, SchedulerKind::Ecf, 4);
    let def_tb = stream(0.3, 8.6, SchedulerKind::Default, 4);
    let ecf_resets = ecf_tb.world().sender(0).subflows[1].cc.stats().iw_resets();
    let def_resets = def_tb.world().sender(0).subflows[1].cc.stats().iw_resets();
    assert!(
        ecf_resets * 3 <= def_resets,
        "ECF resets ({ecf_resets}) should be far below default's ({def_resets})"
    );
}

#[test]
fn ecf_reduces_out_of_order_delay() {
    // Figs 13/14: the reordering tail shrinks under ECF at 0.3/8.6.
    let ecf_tb = stream(0.3, 8.6, SchedulerKind::Ecf, 4);
    let def_tb = stream(0.3, 8.6, SchedulerKind::Default, 4);
    let mean = |tb: &Testbed<DashApp>| {
        let xs = tb.world().recorder.ooo_delays_secs();
        metrics::mean(&xs)
    };
    let (e, d) = (mean(&ecf_tb), mean(&def_tb));
    assert!(e < d, "mean OOO delay: ecf {e:.4}s vs default {d:.4}s");
}

#[test]
fn ecf_never_loses_badly_on_simple_downloads() {
    // Fig 19's "never worse": across sizes and pairs ECF's completion time
    // stays within noise of the default's or beats it.
    for (wifi, lte) in [(1.0, 1.0), (1.0, 5.0), (1.0, 10.0), (5.0, 5.0)] {
        for bytes in [128 * 1024u64, 512 * 1024, 1024 * 1024] {
            let run = |kind| {
                let cfg = TestbedConfig::wifi_lte(wifi, lte, kind, 3);
                let mut tb = Testbed::new(cfg, WgetApp::new(bytes));
                tb.run_until(Time::from_secs(300));
                tb.app().completed_at.expect("download completes").as_secs_f64()
            };
            let d = run(SchedulerKind::Default);
            let e = run(SchedulerKind::Ecf);
            assert!(
                e <= d * 1.25,
                "{bytes}B at {wifi}/{lte}: ecf {e:.2}s vs default {d:.2}s"
            );
        }
    }
}

#[test]
fn web_page_load_improves_with_ecf_under_heterogeneity() {
    // Fig 20 (1-10 Mbps): mean object completion shrinks under ECF.
    let load = |kind| {
        let conns = (0..6).map(|_| ConnSpec::new(kind, vec![0, 1])).collect();
        let cfg = TestbedConfig {
            paths: vec![PathConfig::wifi(1.0), PathConfig::lte(10.0)],
            conns,
            seed: 7,
            path_seeds: None,
            recorder: RecorderConfig::default(),
            scenario: Scenario::default(),
            telemetry: TelemetryHandle::off(),
        };
        let mut tb = Testbed::new(cfg, BrowserApp::new(PageModel::cnn_like(2014), 6));
        tb.run_until(Time::from_secs(600));
        assert!(tb.app().done());
        metrics::mean(&tb.app().completion_times_secs())
    };
    let d = load(SchedulerKind::Default);
    let e = load(SchedulerKind::Ecf);
    assert!(e <= d * 1.05, "mean object completion: ecf {e:.3}s vs default {d:.3}s");
}

#[test]
fn seeded_regression_ecf_completes_no_later_than_minrtt() {
    // Pinned (config, seed) regression for the paper's headline ordering:
    // at a heterogeneous 1/10 Mbps WiFi/LTE pair, ECF's download completion
    // time never exceeds minRTT's. Deliberately asserts the *ordering*, not
    // exact times: the random streams feeding jitter/loss may change when
    // the PRNG evolves (as in the rand → testkit::rng swap), but the
    // ordering is the paper's claim and must survive any reseeding.
    for seed in [1u64, 7, 20170707] {
        let run = |kind| {
            let cfg = TestbedConfig::wifi_lte(1.0, 10.0, kind, seed);
            let mut tb = Testbed::new(cfg, WgetApp::new(512 * 1024));
            tb.run_until(Time::from_secs(300));
            tb.app().completed_at.expect("download completes").as_secs_f64()
        };
        let minrtt = run(SchedulerKind::Default);
        let ecf = run(SchedulerKind::Ecf);
        assert!(
            ecf <= minrtt,
            "seed {seed}: ecf {ecf:.3}s must not exceed minRTT {minrtt:.3}s"
        );
    }
}

#[test]
fn four_subflows_keep_the_ecf_advantage() {
    // Fig 15: two subflows per interface, 0.3 Mbps WiFi / 8.6 Mbps LTE.
    let run = |kind| {
        let paths = vec![
            PathConfig::wifi(0.15),
            PathConfig::wifi(0.15),
            PathConfig::lte(4.3),
            PathConfig::lte(4.3),
        ];
        let cfg = TestbedConfig {
            paths,
            conns: vec![ConnSpec::new(kind, vec![0, 1, 2, 3])],
            seed: 4,
            path_seeds: None,
            recorder: RecorderConfig::default(),
            scenario: Scenario::default(),
            telemetry: TelemetryHandle::off(),
        };
        let player = PlayerConfig { video_secs: 90.0, ..PlayerConfig::default() };
        let mut tb = Testbed::new(cfg, DashApp::new(player, 0));
        tb.run_until(Time::from_secs(3000));
        tb.app().player.avg_bitrate_mbps()
    };
    let e = run(SchedulerKind::Ecf);
    let d = run(SchedulerKind::Default);
    assert!(e >= d, "4-subflow: ecf {e:.2} vs default {d:.2}");
}
