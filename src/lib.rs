//! # mptcp-ecf — a reproduction of "ECF: An MPTCP Path Scheduler to Manage
//! # Heterogeneous Paths" (Lim et al., CoNEXT 2017)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`scheduler`] ([`ecf_core`]) — the paper's contribution: the ECF
//!   scheduler and every baseline it is compared against, written
//!   transport-agnostically so they can drive any multipath stack;
//! * [`transport`] ([`mptcp`]) — a full MPTCP sender/receiver model
//!   (subflows, coupled congestion control, reordering, mitigations) plus
//!   the simulated WiFi+LTE testbed;
//! * [`net`] ([`simnet`]) — the deterministic discrete-event network
//!   simulator underneath;
//! * [`telemetry`] — zero-cost-when-off observability: scheduler decision
//!   provenance, counters, and deterministic JSONL/CSV trace export;
//! * [`video`] ([`dash`]) and [`web`] ([`webload`]) — the paper's workloads;
//! * [`experiments`] — one runner per table/figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use mptcp_ecf::prelude::*;
//!
//! // One MPTCP connection over heterogeneous WiFi+LTE, scheduled by ECF.
//! struct OneDownload(Option<Time>);
//! impl Application for OneDownload {
//!     fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
//!         api.request(0, 512 * 1024);
//!     }
//!     fn on_response_complete(&mut self, now: Time, _c: usize, _r: u64, _a: &mut Api<'_>) {
//!         self.0 = Some(now);
//!     }
//! }
//!
//! let cfg = TestbedConfig::wifi_lte(0.3, 8.6, SchedulerKind::Ecf, 1);
//! let mut tb = Testbed::new(cfg, OneDownload(None));
//! tb.run_until(Time::from_secs(60));
//! assert!(tb.app().0.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dash as video;
pub use ecf_core as scheduler;
pub use experiments;
pub use telemetry;
pub use metrics;
pub use mptcp as transport;
pub use scenario as dynamics;
pub use simnet as net;
pub use tcp_model as tcp;
pub use webload as web;

/// The most common imports in one place.
pub mod prelude {
    pub use dash::{AbrKind, DashApp, Player, PlayerConfig};
    pub use ecf_core::{
        Decision, Ecf, EcfConfig, EcfTerms, PathId, PathSnapshot, SchedInput, Scheduler,
        SchedulerKind, Why,
    };
    pub use telemetry::{Counter, Event, EventKind, TelemetryHandle};
    pub use mptcp::{
        Api, Application, CcKind, ConnConfig, ConnSpec, RecorderConfig, Testbed, TestbedConfig,
    };
    pub use scenario::{GilbertElliott, LossModel, RateSchedule, Scenario};
    pub use simnet::{PathConfig, Time};
    pub use webload::{BrowserApp, PageModel, SequentialApp, WgetApp};
}
