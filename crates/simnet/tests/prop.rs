//! Property tests for the link model: FIFO delivery, queue conservation and
//! latency bounds must hold for arbitrary traffic patterns.

use std::time::Duration;

use proptest::prelude::*;
use simnet::{Link, LinkConfig, Time, Verdict};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arrivals_are_fifo_for_any_traffic(
        mbps in 1u32..100,
        delay_ms in 0u64..200,
        jitter_ms in 0u64..50,
        offers in prop::collection::vec((0u64..10_000, 200u32..1500), 1..200),
    ) {
        let mut cfg = LinkConfig::shaped(
            f64::from(mbps),
            Duration::from_millis(delay_ms),
            256 * 1024,
        );
        cfg.jitter_max = Duration::from_millis(jitter_ms);
        let mut link = Link::new(cfg, 42);
        let mut t = Time::ZERO;
        let mut last_arrival = Time::ZERO;
        for (gap_us, bytes) in offers {
            t += Duration::from_micros(gap_us);
            if let Verdict::Deliver { arrival } = link.enqueue(t, bytes) {
                prop_assert!(arrival >= last_arrival, "FIFO violated");
                prop_assert!(arrival >= t, "arrival before send");
                last_arrival = arrival;
            }
        }
    }

    #[test]
    fn accepted_plus_dropped_equals_offered(
        mbps in 1u32..20,
        queue_kb in 4u64..64,
        offers in prop::collection::vec(500u32..1500, 1..300),
    ) {
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(mbps), Duration::from_millis(10), queue_kb * 1024),
            7,
        );
        let n = offers.len() as u64;
        let mut delivered = 0u64;
        for bytes in offers {
            // All at t=0: worst-case burst into the queue.
            if matches!(link.enqueue(Time::ZERO, bytes), Verdict::Deliver { .. }) {
                delivered += 1;
            }
        }
        let stats = link.stats();
        prop_assert_eq!(stats.delivered_pkts, delivered);
        prop_assert_eq!(stats.delivered_pkts + stats.dropped_queue, n);
    }

    #[test]
    fn latency_bounded_by_queue_plus_serialization(
        mbps in 1u32..50,
        queue_kb in 8u64..128,
        bytes in 200u32..1500,
    ) {
        // A packet accepted at time t arrives no later than
        // t + (queue + own size)/rate + propagation (no jitter configured).
        let prop_delay = Duration::from_millis(20);
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(mbps), prop_delay, queue_kb * 1024),
            1,
        );
        // Pre-fill the queue.
        for _ in 0..200 {
            link.enqueue(Time::ZERO, 1500);
        }
        if let Verdict::Deliver { arrival } = link.enqueue(Time::ZERO, bytes) {
            let max_backlog_bits = (queue_kb * 1024 + u64::from(bytes)) * 8;
            let bound = Duration::from_secs_f64(
                max_backlog_bits as f64 / (f64::from(mbps) * 1e6),
            ) + prop_delay + Duration::from_millis(1);
            prop_assert!(
                arrival <= Time::ZERO + bound,
                "arrival {arrival:?} beyond bound {bound:?}"
            );
        }
    }

    #[test]
    fn rate_changes_never_break_fifo(
        rates in prop::collection::vec(1u32..50, 2..10),
    ) {
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(rates[0]), Duration::from_millis(10), 128 * 1024),
            3,
        );
        let mut last = Time::ZERO;
        let mut t = Time::ZERO;
        for (i, &r) in rates.iter().enumerate() {
            link.set_rate_bps(u64::from(r) * 1_000_000);
            for _ in 0..20 {
                t += Duration::from_micros(300 + i as u64);
                if let Verdict::Deliver { arrival } = link.enqueue(t, 1200) {
                    prop_assert!(arrival >= last);
                    last = arrival;
                }
            }
        }
    }
}
