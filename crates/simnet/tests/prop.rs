//! Property tests for the link model: FIFO delivery, queue conservation and
//! latency bounds must hold for arbitrary traffic patterns.
//!
//! Run under `testkit::prop`; replay a failure with `TESTKIT_SEED=<n>`.

use std::time::Duration;

use simnet::{Link, LinkConfig, Time, Verdict};
use testkit::prop::{check, vec_of};

#[test]
fn arrivals_are_fifo_for_any_traffic() {
    check(
        128,
        (
            1u32..100,
            0u64..200,
            0u64..50,
            vec_of((0u64..10_000, 200u32..1500), 1..200),
        ),
        |(mbps, delay_ms, jitter_ms, offers)| {
            let mut cfg = LinkConfig::shaped(
                f64::from(mbps),
                Duration::from_millis(delay_ms),
                256 * 1024,
            );
            cfg.jitter_max = Duration::from_millis(jitter_ms);
            let mut link = Link::new(cfg, 42);
            let mut t = Time::ZERO;
            let mut last_arrival = Time::ZERO;
            for (gap_us, bytes) in offers {
                t += Duration::from_micros(gap_us);
                if let Verdict::Deliver { arrival } = link.enqueue(t, bytes) {
                    assert!(arrival >= last_arrival, "FIFO violated");
                    assert!(arrival >= t, "arrival before send");
                    last_arrival = arrival;
                }
            }
        },
    );
}

#[test]
fn accepted_plus_dropped_equals_offered() {
    check(
        128,
        (1u32..20, 4u64..64, vec_of(500u32..1500, 1..300)),
        |(mbps, queue_kb, offers)| {
            let mut link = Link::new(
                LinkConfig::shaped(f64::from(mbps), Duration::from_millis(10), queue_kb * 1024),
                7,
            );
            let n = offers.len() as u64;
            let mut delivered = 0u64;
            for bytes in offers {
                // All at t=0: worst-case burst into the queue.
                if matches!(link.enqueue(Time::ZERO, bytes), Verdict::Deliver { .. }) {
                    delivered += 1;
                }
            }
            let stats = link.stats();
            assert_eq!(stats.delivered_pkts, delivered);
            assert_eq!(stats.delivered_pkts + stats.dropped_queue, n);
        },
    );
}

#[test]
fn latency_bounded_by_queue_plus_serialization() {
    check(128, (1u32..50, 8u64..128, 200u32..1500), |(mbps, queue_kb, bytes)| {
        // A packet accepted at time t arrives no later than
        // t + (queue + own size)/rate + propagation (no jitter configured).
        let prop_delay = Duration::from_millis(20);
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(mbps), prop_delay, queue_kb * 1024),
            1,
        );
        // Pre-fill the queue.
        for _ in 0..200 {
            link.enqueue(Time::ZERO, 1500);
        }
        if let Verdict::Deliver { arrival } = link.enqueue(Time::ZERO, bytes) {
            let max_backlog_bits = (queue_kb * 1024 + u64::from(bytes)) * 8;
            let bound = Duration::from_secs_f64(
                max_backlog_bits as f64 / (f64::from(mbps) * 1e6),
            ) + prop_delay + Duration::from_millis(1);
            assert!(
                arrival <= Time::ZERO + bound,
                "arrival {arrival:?} beyond bound {bound:?}"
            );
        }
    });
}

#[test]
fn rate_changes_never_break_fifo() {
    check(128, vec_of(1u32..50, 2..10), |rates| {
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(rates[0]), Duration::from_millis(10), 128 * 1024),
            3,
        );
        let mut last = Time::ZERO;
        let mut t = Time::ZERO;
        for (i, &r) in rates.iter().enumerate() {
            link.set_rate_bps(u64::from(r) * 1_000_000);
            for _ in 0..20 {
                t += Duration::from_micros(300 + i as u64);
                if let Verdict::Deliver { arrival } = link.enqueue(t, 1200) {
                    assert!(arrival >= last);
                    last = arrival;
                }
            }
        }
    });
}
