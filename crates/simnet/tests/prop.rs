//! Property tests for the link model: FIFO delivery, queue conservation and
//! latency bounds must hold for arbitrary traffic patterns.
//!
//! Run under `testkit::prop`; replay a failure with `TESTKIT_SEED=<n>`.

use std::time::Duration;

use simnet::{
    DeliveryQueue, Engine, EventQueue, Link, LinkConfig, Model, Time, Verdict,
};
use testkit::prop::{check, vec_of};

#[test]
fn arrivals_are_fifo_for_any_traffic() {
    check(
        128,
        (
            1u32..100,
            0u64..200,
            0u64..50,
            vec_of((0u64..10_000, 200u32..1500), 1..200),
        ),
        |(mbps, delay_ms, jitter_ms, offers)| {
            let mut cfg = LinkConfig::shaped(
                f64::from(mbps),
                Duration::from_millis(delay_ms),
                256 * 1024,
            );
            cfg.jitter_max = Duration::from_millis(jitter_ms);
            let mut link = Link::new(cfg, 42);
            let mut t = Time::ZERO;
            let mut last_arrival = Time::ZERO;
            for (gap_us, bytes) in offers {
                t += Duration::from_micros(gap_us);
                if let Verdict::Deliver { arrival } = link.enqueue(t, bytes) {
                    assert!(arrival >= last_arrival, "FIFO violated");
                    assert!(arrival >= t, "arrival before send");
                    last_arrival = arrival;
                }
            }
        },
    );
}

#[test]
fn accepted_plus_dropped_equals_offered() {
    check(
        128,
        (1u32..20, 4u64..64, vec_of(500u32..1500, 1..300)),
        |(mbps, queue_kb, offers)| {
            let mut link = Link::new(
                LinkConfig::shaped(f64::from(mbps), Duration::from_millis(10), queue_kb * 1024),
                7,
            );
            let n = offers.len() as u64;
            let mut delivered = 0u64;
            for bytes in offers {
                // All at t=0: worst-case burst into the queue.
                if matches!(link.enqueue(Time::ZERO, bytes), Verdict::Deliver { .. }) {
                    delivered += 1;
                }
            }
            let stats = link.stats();
            assert_eq!(stats.delivered_pkts, delivered);
            assert_eq!(stats.delivered_pkts + stats.dropped_queue, n);
        },
    );
}

#[test]
fn latency_bounded_by_queue_plus_serialization() {
    check(128, (1u32..50, 8u64..128, 200u32..1500), |(mbps, queue_kb, bytes)| {
        // A packet accepted at time t arrives no later than
        // t + (queue + own size)/rate + propagation (no jitter configured).
        let prop_delay = Duration::from_millis(20);
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(mbps), prop_delay, queue_kb * 1024),
            1,
        );
        // Pre-fill the queue.
        for _ in 0..200 {
            link.enqueue(Time::ZERO, 1500);
        }
        if let Verdict::Deliver { arrival } = link.enqueue(Time::ZERO, bytes) {
            let max_backlog_bits = (queue_kb * 1024 + u64::from(bytes)) * 8;
            let bound = Duration::from_secs_f64(
                max_backlog_bits as f64 / (f64::from(mbps) * 1e6),
            ) + prop_delay + Duration::from_millis(1);
            assert!(
                arrival <= Time::ZERO + bound,
                "arrival {arrival:?} beyond bound {bound:?}"
            );
        }
    });
}

/// Offer schedule shared by both scheduling strategies below:
/// `(link index, wire bytes)` per offer id, offers pre-scheduled on the heap.
type Offers = Vec<(usize, u32)>;

fn make_links(mbps: (u32, u32), jitter_ms: u64) -> Vec<Link> {
    [(mbps.0, 11u64), (mbps.1, 22u64)]
        .into_iter()
        .map(|(m, seed)| {
            let mut cfg =
                LinkConfig::shaped(f64::from(m), Duration::from_millis(15), 96 * 1024);
            cfg.jitter_max = Duration::from_millis(jitter_ms);
            Link::new(cfg, seed)
        })
        .collect()
}

/// Reference semantics: every delivery is its own heap entry.
struct AllHeap {
    links: Vec<Link>,
    offers: Offers,
    delivered: Vec<(Time, u32)>,
}

enum RefEv {
    Offer(u32),
    Deliver(u32),
}

impl Model for AllHeap {
    type Event = RefEv;
    fn handle(&mut self, now: Time, ev: RefEv, q: &mut EventQueue<RefEv>) {
        match ev {
            RefEv::Offer(id) => {
                let (link, bytes) = self.offers[id as usize];
                if let Verdict::Deliver { arrival } = self.links[link].enqueue(now, bytes) {
                    q.schedule(arrival, RefEv::Deliver(id));
                }
            }
            RefEv::Deliver(id) => self.delivered.push((now, id)),
        }
    }
}

/// Coalesced semantics: per-link [`DeliveryQueue`] with one wakeup in the
/// heap, seqs reserved at the moment the reference would have scheduled.
struct Coalesced {
    links: Vec<Link>,
    inflight: Vec<DeliveryQueue<u32>>,
    offers: Offers,
    delivered: Vec<(Time, u32)>,
}

enum CoalEv {
    Offer(u32),
    Wake(u32),
}

impl Model for Coalesced {
    type Event = CoalEv;
    fn handle(&mut self, now: Time, ev: CoalEv, q: &mut EventQueue<CoalEv>) {
        match ev {
            CoalEv::Offer(id) => {
                let (link, bytes) = self.offers[id as usize];
                if let Verdict::Deliver { arrival } = self.links[link].enqueue(now, bytes) {
                    let seq = q.reserve_seq();
                    if let Some((at, s)) = self.inflight[link].push(arrival, seq, id) {
                        q.schedule_reserved(at, s, CoalEv::Wake(link as u32));
                    }
                }
            }
            CoalEv::Wake(link) => {
                if let Some((id, next)) = self.inflight[link as usize].pop() {
                    if let Some((at, s)) = next {
                        q.schedule_reserved(at, s, CoalEv::Wake(link));
                    }
                    self.delivered.push((now, id));
                }
            }
        }
    }
}

#[test]
fn coalesced_delivery_equals_all_heap_scheduling() {
    // The engine invariant behind mptcp's per-link delivery queues: parking
    // payloads in a FIFO with reserved seqs must reproduce the exact
    // (arrival time, payload) sequence of scheduling every delivery
    // individually — same ties, same interleaving across links, same
    // total event count.
    check(
        96,
        (
            (1u32..60, 1u32..60),
            0u64..4,
            vec_of((0u64..2_000, 0u32..2, 100u32..1500), 1..250),
        ),
        |(mbps, jitter_ms, pattern)| {
            let offers: Offers = pattern
                .iter()
                .map(|&(_, link, bytes)| (link as usize, bytes))
                .collect();
            let mut offer_times = Vec::with_capacity(pattern.len());
            let mut t = Time::ZERO;
            for &(gap_us, _, _) in &pattern {
                t += Duration::from_micros(gap_us);
                offer_times.push(t);
            }

            let mut reference = Engine::new(AllHeap {
                links: make_links(mbps, jitter_ms),
                offers: offers.clone(),
                delivered: Vec::new(),
            });
            for (id, &at) in offer_times.iter().enumerate() {
                reference.queue_mut().schedule(at, RefEv::Offer(id as u32));
            }
            reference.run_to_completion();

            let mut coalesced = Engine::new(Coalesced {
                links: make_links(mbps, jitter_ms),
                inflight: (0..2).map(|_| DeliveryQueue::new()).collect(),
                offers,
                delivered: Vec::new(),
            });
            for (id, &at) in offer_times.iter().enumerate() {
                coalesced.queue_mut().schedule(at, CoalEv::Offer(id as u32));
            }
            coalesced.run_to_completion();

            assert_eq!(
                reference.model.delivered, coalesced.model.delivered,
                "coalesced scheduling reordered deliveries"
            );
            assert_eq!(reference.processed(), coalesced.processed());
        },
    );
}

#[test]
fn rate_changes_never_break_fifo() {
    check(128, vec_of(1u32..50, 2..10), |rates| {
        let mut link = Link::new(
            LinkConfig::shaped(f64::from(rates[0]), Duration::from_millis(10), 128 * 1024),
            3,
        );
        let mut last = Time::ZERO;
        let mut t = Time::ZERO;
        for (i, &r) in rates.iter().enumerate() {
            link.set_rate_bps(u64::from(r) * 1_000_000);
            for _ in 0..20 {
                t += Duration::from_micros(300 + i as u64);
                if let Verdict::Deliver { arrival } = link.enqueue(t, 1200) {
                    assert!(arrival >= last);
                    last = arrival;
                }
            }
        }
    });
}
