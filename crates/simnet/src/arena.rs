//! Generational-index arena.
//!
//! A slab allocator for hot-path objects whose lifetimes don't nest: segment
//! payload buffers, reorder-slot metadata, scratch records. Instead of
//! `Box`/`Vec` churn per object, slots are recycled through an internal free
//! list — after warm-up the arena never touches the global allocator, which
//! is what lets the steady-state deliver loop run allocation-free (pinned by
//! the counting-allocator test in `experiments`).
//!
//! Handles are [`ArenaIdx`]: a slot index plus a generation stamp. Removing
//! a value bumps the slot's generation, so a stale handle held past a
//! `remove` can never alias the slot's next occupant — `get` returns `None`
//! instead of silently reading someone else's data. This gives most of the
//! use-after-free safety of `Rc` without reference counts or allocation.

/// Handle to a value in an [`Arena`]: slot index plus generation stamp.
///
/// A handle is invalidated by `remove`; using it afterwards yields `None`
/// (or `false` from [`Arena::contains`]), never another value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArenaIdx {
    index: u32,
    generation: u32,
}

impl ArenaIdx {
    /// The raw slot index (stable for the lifetime of the occupant).
    pub fn index(self) -> usize {
        self.index as usize
    }
}

enum Slot<T> {
    /// Free slot; holds the next free slot's index (or `u32::MAX` for none)
    /// and the generation the *next* occupant will get.
    Free { next_free: u32, generation: u32 },
    Occupied { generation: u32, value: T },
}

const NIL: u32 = u32::MAX;

/// A generational slab: O(1) insert/remove, stable handles, zero allocation
/// once warm (slots are recycled through a free list).
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena { slots: Vec::new(), free_head: NIL, len: 0 }
    }

    /// An empty arena with `cap` slots preallocated (no allocation until
    /// more than `cap` values are live at once).
    pub fn with_capacity(cap: usize) -> Self {
        let mut a = Arena { slots: Vec::with_capacity(cap), free_head: NIL, len: 0 };
        for i in 0..cap as u32 {
            // Chain every preallocated slot onto the free list.
            a.slots.push(Slot::Free { next_free: a.free_head, generation: 0 });
            a.free_head = i;
        }
        a
    }

    /// Insert `value`, returning its handle. O(1); allocates only when no
    /// free slot is available.
    pub fn insert(&mut self, value: T) -> ArenaIdx {
        self.len += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            let (next_free, generation) = match *slot {
                Slot::Free { next_free, generation } => (next_free, generation),
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            *slot = Slot::Occupied { generation, value };
            ArenaIdx { index, generation }
        } else {
            assert!(self.slots.len() < NIL as usize, "arena full");
            let index = self.slots.len() as u32;
            self.slots.push(Slot::Occupied { generation: 0, value });
            ArenaIdx { index, generation: 0 }
        }
    }

    /// Remove the value behind `idx`, if the handle is still live.
    pub fn remove(&mut self, idx: ArenaIdx) -> Option<T> {
        let slot = self.slots.get_mut(idx.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == idx.generation => {
                // Bump the generation so the outstanding handle goes stale.
                let next_gen = idx.generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Free { next_free: self.free_head, generation: next_gen },
                );
                self.free_head = idx.index;
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Shared access to the value behind `idx`, if the handle is still live.
    pub fn get(&self, idx: ArenaIdx) -> Option<&T> {
        match self.slots.get(idx.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == idx.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `idx`, if the handle is still live.
    pub fn get_mut(&mut self, idx: ArenaIdx) -> Option<&mut T> {
        match self.slots.get_mut(idx.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == idx.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Drop every live value and return all slots to the free list, keeping
    /// the backing allocation. Occupied slots get a generation bump exactly
    /// as if they had been [`Arena::remove`]d, so handles held across a
    /// reset go stale instead of aliasing the next occupant. This is the
    /// engine-reuse hook: a shard worker recycles one arena across many
    /// short runs instead of re-growing it each time.
    pub fn reset(&mut self) {
        self.free_head = NIL;
        for (i, slot) in self.slots.iter_mut().enumerate().rev() {
            let generation = match *slot {
                Slot::Occupied { generation, .. } => generation.wrapping_add(1),
                Slot::Free { generation, .. } => generation,
            };
            *slot = Slot::Free { next_free: self.free_head, generation };
            self.free_head = i as u32;
        }
        self.len = 0;
    }

    /// True when `idx` still addresses a live value.
    pub fn contains(&self, idx: ArenaIdx) -> bool {
        self.get(idx).is_some()
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots (live + free) currently backing the arena.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let i = a.insert("alpha");
        let j = a.insert("beta");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(i), Some(&"alpha"));
        assert_eq!(a.get(j), Some(&"beta"));
        assert_eq!(a.remove(i), Some("alpha"));
        assert_eq!(a.remove(i), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn stale_handle_never_aliases_new_occupant() {
        let mut a = Arena::new();
        let i = a.insert(1u32);
        a.remove(i);
        let k = a.insert(2u32);
        // Same slot recycled, but the old handle is dead.
        assert_eq!(k.index(), i.index());
        assert_eq!(a.get(i), None);
        assert!(!a.contains(i));
        assert_eq!(a.get(k), Some(&2));
    }

    #[test]
    fn with_capacity_recycles_without_growth() {
        let mut a = Arena::with_capacity(8);
        assert_eq!(a.capacity(), 8);
        let mut handles = Vec::new();
        for round in 0..10u32 {
            for v in 0..8u32 {
                handles.push(a.insert(round * 8 + v));
            }
            assert_eq!(a.capacity(), 8, "steady state must not grow");
            for h in handles.drain(..) {
                assert!(a.remove(h).is_some());
            }
            assert!(a.is_empty());
        }
    }

    #[test]
    fn reset_keeps_capacity_and_stales_handles() {
        let mut a = Arena::with_capacity(4);
        let live = a.insert(10u32);
        let dead = a.insert(20u32);
        a.remove(dead);
        a.insert(30u32);
        assert_eq!(a.len(), 2);

        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), 4, "reset must keep the slab");
        assert_eq!(a.get(live), None, "pre-reset handles must go stale");

        // The recycled arena refills to capacity without growing.
        let handles: Vec<_> = (0..4u32).map(|v| a.insert(v)).collect();
        assert_eq!(a.capacity(), 4);
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(a.get(*h), Some(&(i as u32)));
        }
        assert_eq!(a.get(live), None);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut a = Arena::new();
        let i = a.insert(vec![1, 2, 3]);
        a.get_mut(i).unwrap().push(4);
        assert_eq!(a.get(i).unwrap().len(), 4);
    }
}
