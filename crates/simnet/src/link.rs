//! Shaped link model.
//!
//! A [`Link`] is one direction of a path: a droptail FIFO queue draining at a
//! configurable rate, followed by a fixed propagation delay (plus optional
//! bounded jitter). This is exactly the shape produced by the paper's `tc`
//! token-bucket regulation on the server egress: serialization at the shaped
//! rate, bufferbloat in the queue, then the physical path delay.
//!
//! The link is *passive*: `enqueue` computes the arrival time analytically and
//! the caller schedules the delivery event. Packets on a link never reorder
//! (arrival times are clamped monotonic), which mirrors a real FIFO pipe and
//! is what lets the TCP model detect loss purely from sequence gaps.

use std::collections::VecDeque;
use std::time::Duration;

use testkit::Rng;

use crate::time::Time;

/// Static configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Drain rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Duration,
    /// Droptail queue capacity in bytes. Packets that would overflow it are
    /// dropped. Use a large value to model an effectively unbuffered pipe.
    pub queue_limit_bytes: u64,
    /// When set, the queue is *latency-sized* like a `tc tbf latency` knob:
    /// capacity = rate × latency (clamped to [32 KB, 2 MB]) and it is
    /// re-derived whenever the rate changes.
    pub queue_latency: Option<Duration>,
    /// Maximum additional per-packet delay, drawn uniformly in
    /// `[0, jitter_max]`. Arrivals are clamped to stay FIFO.
    pub jitter_max: Duration,
    /// Independent per-packet drop probability (0 disables).
    pub loss_rate: f64,
}

impl LinkConfig {
    /// A link shaped to `mbps` with the given propagation delay and queue, no
    /// jitter or random loss.
    pub fn shaped(mbps: f64, prop_delay: Duration, queue_limit_bytes: u64) -> Self {
        LinkConfig {
            rate_bps: (mbps * 1e6) as u64,
            prop_delay,
            queue_limit_bytes,
            queue_latency: None,
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
        }
    }

    /// A link shaped to `mbps` whose droptail queue holds `latency` worth of
    /// traffic at the shaped rate — how `tc tbf latency` provisions queues.
    pub fn shaped_latency(mbps: f64, prop_delay: Duration, latency: Duration) -> Self {
        let rate_bps = (mbps * 1e6) as u64;
        LinkConfig {
            rate_bps,
            prop_delay,
            queue_limit_bytes: latency_queue_bytes(rate_bps, latency),
            queue_latency: Some(latency),
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
        }
    }

    /// An effectively unshaped reverse path: line-rate drain, generous queue.
    /// Used for the ACK direction, which the paper does not regulate.
    pub fn reverse(prop_delay: Duration) -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000, // 1 Gbps
            prop_delay,
            queue_limit_bytes: 16 * 1024 * 1024,
            queue_latency: None,
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
        }
    }
}

/// Queue capacity for a latency-sized droptail: rate × latency, clamped to
/// [32 KB, 2 MB].
fn latency_queue_bytes(rate_bps: u64, latency: Duration) -> u64 {
    let bytes = (rate_bps as f64 / 8.0 * latency.as_secs_f64()) as u64;
    bytes.clamp(32 * 1024, 2 * 1024 * 1024)
}

/// Result of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The packet will arrive at the far end at this time.
    Deliver {
        /// Arrival time at the far end of the link.
        arrival: Time,
    },
    /// Dropped: the droptail queue was full.
    DropQueue,
    /// Dropped: random loss.
    DropRandom,
}

/// Counters accumulated over the life of a link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted and delivered.
    pub delivered_pkts: u64,
    /// Bytes accepted and delivered.
    pub delivered_bytes: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Packets dropped by random loss.
    pub dropped_random: u64,
}

/// One direction of a network path. See the module docs.
pub struct Link {
    cfg: LinkConfig,
    /// Completion time of the serialization of the last accepted packet.
    busy_until: Time,
    /// (serialization completion, size) of packets still occupying the queue.
    in_queue: VecDeque<(Time, u32)>,
    /// Bytes currently in `in_queue` (kept incrementally).
    queued_bytes: u64,
    /// Latest arrival handed out, for FIFO clamping under jitter.
    last_arrival: Time,
    rng: Rng,
    stats: LinkStats,
}

impl Link {
    /// Create a link; `seed` drives jitter and random loss only.
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        Link {
            cfg,
            busy_until: Time::ZERO,
            in_queue: VecDeque::new(),
            queued_bytes: 0,
            last_arrival: Time::ZERO,
            rng: Rng::seed_from_u64(seed),
            stats: LinkStats::default(),
        }
    }

    /// Current drain rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.cfg.rate_bps
    }

    /// Change the drain rate (models `tc` re-regulation / wild variation).
    ///
    /// Packets already accepted keep their computed departure times: a rate
    /// change affects subsequent arrivals only, so its effect settles within
    /// one queue drain. This is documented in DESIGN.md as an approximation.
    /// Latency-sized queues are re-derived for the new rate.
    pub fn set_rate_bps(&mut self, rate_bps: u64) {
        self.cfg.rate_bps = rate_bps.max(1);
        if let Some(latency) = self.cfg.queue_latency {
            self.cfg.queue_limit_bytes = latency_queue_bytes(self.cfg.rate_bps, latency);
        }
    }

    /// One-way propagation delay.
    pub fn prop_delay(&self) -> Duration {
        self.cfg.prop_delay
    }

    /// Update the propagation delay (wild RTT drift model).
    pub fn set_prop_delay(&mut self, d: Duration) {
        self.cfg.prop_delay = d;
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes currently waiting in (or being serialized out of) the queue.
    pub fn queued_bytes(&mut self, now: Time) -> u64 {
        self.expire(now);
        self.queued_bytes
    }

    fn expire(&mut self, now: Time) {
        while let Some(&(dep, bytes)) = self.in_queue.front() {
            if dep <= now {
                self.in_queue.pop_front();
                self.queued_bytes -= u64::from(bytes);
            } else {
                break;
            }
        }
    }

    fn serialization(&self, wire_bytes: u32) -> Duration {
        let nanos =
            (u128::from(wire_bytes) * 8 * 1_000_000_000) / u128::from(self.cfg.rate_bps.max(1));
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }

    /// Offer a packet of `wire_bytes` to the link at time `now`.
    pub fn enqueue(&mut self, now: Time, wire_bytes: u32) -> Verdict {
        self.expire(now);
        if self.cfg.loss_rate > 0.0 && self.rng.f64() < self.cfg.loss_rate {
            self.stats.dropped_random += 1;
            return Verdict::DropRandom;
        }
        if self.queued_bytes + u64::from(wire_bytes) > self.cfg.queue_limit_bytes {
            self.stats.dropped_queue += 1;
            return Verdict::DropQueue;
        }
        let start = self.busy_until.max(now);
        let departure = start + self.serialization(wire_bytes);
        self.busy_until = departure;
        self.in_queue.push_back((departure, wire_bytes));
        self.queued_bytes += u64::from(wire_bytes);

        let jitter = if self.cfg.jitter_max > Duration::ZERO {
            let max = crate::time::dur_nanos(self.cfg.jitter_max);
            Duration::from_nanos(self.rng.gen_range(0..=max))
        } else {
            Duration::ZERO
        };
        let mut arrival = departure + self.cfg.prop_delay + jitter;
        // FIFO: never hand out an arrival earlier than a previous one.
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        self.stats.delivered_pkts += 1;
        self.stats.delivered_bytes += u64::from(wire_bytes);
        Verdict::Deliver { arrival }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MTU: u32 = 1500;

    fn mk(mbps: f64, delay_ms: u64, queue: u64) -> Link {
        Link::new(LinkConfig::shaped(mbps, Duration::from_millis(delay_ms), queue), 1)
    }

    #[test]
    fn single_packet_latency() {
        // 1500B at 12 Mbps = 1 ms serialization + 10 ms prop.
        let mut l = mk(12.0, 10, 1_000_000);
        match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => assert_eq!(arrival, Time::from_millis(11)),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let mut l = mk(12.0, 10, 1_000_000);
        let a1 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        let a2 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        assert_eq!(a2 - a1, Duration::from_millis(1));
    }

    #[test]
    fn droptail_overflow() {
        // Queue fits exactly two MTU packets.
        let mut l = mk(1.0, 5, u64::from(MTU) * 2);
        assert!(matches!(l.enqueue(Time::ZERO, MTU), Verdict::Deliver { .. }));
        assert!(matches!(l.enqueue(Time::ZERO, MTU), Verdict::Deliver { .. }));
        assert_eq!(l.enqueue(Time::ZERO, MTU), Verdict::DropQueue);
        assert_eq!(l.stats().dropped_queue, 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = mk(12.0, 5, u64::from(MTU) * 2);
        l.enqueue(Time::ZERO, MTU);
        l.enqueue(Time::ZERO, MTU);
        assert_eq!(l.enqueue(Time::ZERO, MTU), Verdict::DropQueue);
        // After 1 ms the first packet has fully serialized out.
        assert!(matches!(l.enqueue(Time::from_millis(1), MTU), Verdict::Deliver { .. }));
    }

    #[test]
    fn idle_link_resets_busy() {
        let mut l = mk(12.0, 10, 1_000_000);
        l.enqueue(Time::ZERO, MTU);
        // Long after the first packet, latency is again 11 ms end to end.
        let t = Time::from_secs(5);
        match l.enqueue(t, MTU) {
            Verdict::Deliver { arrival } => assert_eq!(arrival - t, Duration::from_millis(11)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rate_change_applies_to_new_packets() {
        let mut l = mk(12.0, 0, 10_000_000);
        l.set_rate_bps(1_200_000); // 10x slower
        match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => assert_eq!(arrival, Time::from_millis(10)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn random_loss_rate_roughly_respected() {
        let mut cfg = LinkConfig::shaped(100.0, Duration::ZERO, u64::MAX);
        cfg.loss_rate = 0.3;
        let mut l = Link::new(cfg, 42);
        let mut dropped = 0;
        for i in 0..10_000 {
            if matches!(l.enqueue(Time::from_millis(i), 100), Verdict::DropRandom) {
                dropped += 1;
            }
        }
        assert!((2_500..3_500).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn jitter_preserves_fifo() {
        let mut cfg = LinkConfig::shaped(100.0, Duration::from_millis(10), u64::MAX);
        cfg.jitter_max = Duration::from_millis(5);
        let mut l = Link::new(cfg, 7);
        let mut last = Time::ZERO;
        for i in 0..1_000 {
            if let Verdict::Deliver { arrival } = l.enqueue(Time::from_micros(i * 50), MTU) {
                assert!(arrival >= last, "reordered at pkt {i}");
                last = arrival;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = LinkConfig::shaped(10.0, Duration::from_millis(10), u64::MAX);
        cfg.jitter_max = Duration::from_millis(2);
        cfg.loss_rate = 0.01;
        let run = |seed| {
            let mut l = Link::new(cfg.clone(), seed);
            (0..500).map(|i| l.enqueue(Time::from_micros(i * 777), MTU)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
