//! Shaped link model.
//!
//! A [`Link`] is one direction of a path: a droptail FIFO queue draining at a
//! configurable rate, followed by a fixed propagation delay (plus optional
//! bounded jitter). This is exactly the shape produced by the paper's `tc`
//! token-bucket regulation on the server egress: serialization at the shaped
//! rate, bufferbloat in the queue, then the physical path delay.
//!
//! The link is *passive*: `enqueue` computes the arrival time analytically and
//! the caller schedules the delivery event. Packets on a link never reorder
//! (arrival times are clamped monotonic), which mirrors a real FIFO pipe and
//! is what lets the TCP model detect loss purely from sequence gaps.

use std::collections::VecDeque;
use std::time::Duration;

use telemetry::{Counter, DropKind, EventKind, LinkDir, TelemetryHandle};
use testkit::Rng;

use crate::loss::LossModel;
use crate::time::Time;

/// Static configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Drain rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Duration,
    /// Droptail queue capacity in bytes. Packets that would overflow it are
    /// dropped. Use a large value to model an effectively unbuffered pipe.
    pub queue_limit_bytes: u64,
    /// When set, the queue is *latency-sized* like a `tc tbf latency` knob:
    /// capacity = rate × latency (clamped to [32 KB, 2 MB]) and it is
    /// re-derived whenever the rate changes.
    pub queue_latency: Option<Duration>,
    /// Maximum additional per-packet delay, drawn uniformly in
    /// `[0, jitter_max]`. Arrivals are clamped to stay FIFO.
    pub jitter_max: Duration,
    /// Independent per-packet drop probability (0 disables).
    pub loss_rate: f64,
}

impl LinkConfig {
    /// A link shaped to `mbps` with the given propagation delay and queue, no
    /// jitter or random loss.
    pub fn shaped(mbps: f64, prop_delay: Duration, queue_limit_bytes: u64) -> Self {
        LinkConfig {
            rate_bps: (mbps * 1e6) as u64,
            prop_delay,
            queue_limit_bytes,
            queue_latency: None,
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
        }
    }

    /// A link shaped to `mbps` whose droptail queue holds `latency` worth of
    /// traffic at the shaped rate — how `tc tbf latency` provisions queues.
    pub fn shaped_latency(mbps: f64, prop_delay: Duration, latency: Duration) -> Self {
        let rate_bps = (mbps * 1e6) as u64;
        LinkConfig {
            rate_bps,
            prop_delay,
            queue_limit_bytes: latency_queue_bytes(rate_bps, latency),
            queue_latency: Some(latency),
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
        }
    }

    /// An effectively unshaped reverse path: line-rate drain, generous queue.
    /// Used for the ACK direction, which the paper does not regulate.
    pub fn reverse(prop_delay: Duration) -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000, // 1 Gbps
            prop_delay,
            queue_limit_bytes: 16 * 1024 * 1024,
            queue_latency: None,
            jitter_max: Duration::ZERO,
            loss_rate: 0.0,
        }
    }
}

/// Queue capacity for a latency-sized droptail: rate × latency, clamped to
/// [32 KB, 2 MB].
fn latency_queue_bytes(rate_bps: u64, latency: Duration) -> u64 {
    let bytes = (rate_bps as f64 / 8.0 * latency.as_secs_f64()) as u64;
    bytes.clamp(32 * 1024, 2 * 1024 * 1024)
}

/// Result of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The packet will arrive at the far end at this time.
    Deliver {
        /// Arrival time at the far end of the link.
        arrival: Time,
    },
    /// Dropped: the droptail queue was full.
    DropQueue,
    /// Dropped: random loss.
    DropRandom,
}

/// Counters accumulated over the life of a link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted and delivered.
    pub delivered_pkts: u64,
    /// Bytes accepted and delivered.
    pub delivered_bytes: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Packets dropped by random loss.
    pub dropped_random: u64,
}

/// Fractional bits of the serialization reciprocal (Q32 fixed point).
const RECIP_SHIFT: u32 = 32;
/// Nanoseconds of serialization per byte, numerator: 8 bits × 1e9 ns.
const BIT_NANOS_PER_BYTE: u128 = 8 * 1_000_000_000;

/// Precomputed `ceil(8e9 × 2^32 / rate)`: multiplying by wire bytes and
/// shifting right by [`RECIP_SHIFT`] approximates the serialization nanos
/// without the per-packet `u128` division (see [`Link::serialization`]).
fn serialization_recip(rate_bps: u64) -> u128 {
    let rate = u128::from(rate_bps.max(1));
    (BIT_NANOS_PER_BYTE << RECIP_SHIFT).div_ceil(rate)
}

/// Exact serialization delay of `wire_bytes` at `rate_bps`:
/// `floor(bytes × 8e9 / rate)` nanoseconds — the same quantity a live
/// [`Link`] computes through its Q32 reciprocal. Exposed for *horizon math*:
/// conservative co-simulation derives its lookahead window from a
/// cross-boundary link's propagation delay plus this serialization floor,
/// and the window must be exact (an optimistic horizon would deliver a
/// boundary message into an engine's past).
pub fn serialization_nanos(rate_bps: u64, wire_bytes: u32) -> u64 {
    let exact = u128::from(wire_bytes) * BIT_NANOS_PER_BYTE / u128::from(rate_bps.max(1));
    u64::try_from(exact).unwrap_or(u64::MAX)
}

/// One direction of a network path. See the module docs.
pub struct Link {
    cfg: LinkConfig,
    /// Completion time of the serialization of the last accepted packet.
    busy_until: Time,
    /// (serialization completion, size) of packets still occupying the queue.
    in_queue: VecDeque<(Time, u32)>,
    /// Bytes currently in `in_queue` (kept incrementally).
    queued_bytes: u64,
    /// Latest arrival handed out, for FIFO clamping under jitter.
    last_arrival: Time,
    /// Q32 nanos-per-byte reciprocal, recomputed on every rate change.
    recip_q32: u128,
    /// One-entry serialization memo `(wire_bytes, delay)`. Traffic on a link
    /// is dominated by a single packet size (MTU data forward, fixed-size
    /// ACKs reverse), so most enqueues skip the u128 reciprocal math.
    /// `(0, ZERO)` is always a valid entry; invalidated on rate change.
    ser_memo: (u32, Duration),
    /// Active random-loss process (seeded from `cfg.loss_rate` as a
    /// Bernoulli model; scenarios swap in richer models at run time).
    loss: LossModel,
    /// Gilbert–Elliott chain state (false = good). Meaningless for the
    /// other models.
    loss_bad_state: bool,
    /// True when the config has neither jitter nor random loss — the common
    /// case, which then skips the per-packet RNG branches entirely.
    deterministic: bool,
    rng: Rng,
    stats: LinkStats,
    /// Bytes offered since the last [`Link::take_offered_bytes`] — the
    /// windowed demand signal a co-simulation contention controller divides
    /// shared capacity by. Counted on every `enqueue`, drops included:
    /// demand on a bottleneck exists whether or not the packet survived.
    offered_bytes: u64,
    /// Telemetry sink (off by default) plus this link's trace identity.
    tel: TelemetryHandle,
    tel_path: u16,
    tel_dir: LinkDir,
}

impl Link {
    /// Create a link; `seed` drives jitter and random loss only.
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        let recip_q32 = serialization_recip(cfg.rate_bps);
        let loss = if cfg.loss_rate > 0.0 {
            LossModel::Bernoulli(cfg.loss_rate)
        } else {
            LossModel::None
        };
        let deterministic = loss.is_none() && cfg.jitter_max == Duration::ZERO;
        // Reserve the droptail bound up front (in full-size ~1448 B packets,
        // capped for the generous reverse-path queues) so steady-state
        // enqueues never grow the deque: the drop check keeps occupancy under
        // `queue_limit_bytes`, so this capacity is never exceeded by MSS
        // traffic, and sub-MSS traffic rides line-rate links that drain too
        // fast to build comparable depth.
        let queue_cap = (cfg.queue_limit_bytes / 1448).clamp(64, 16_384) as usize;
        Link {
            cfg,
            busy_until: Time::ZERO,
            in_queue: VecDeque::with_capacity(queue_cap),
            queued_bytes: 0,
            last_arrival: Time::ZERO,
            recip_q32,
            ser_memo: (0, Duration::ZERO),
            loss,
            loss_bad_state: false,
            deterministic,
            rng: Rng::seed_from_u64(seed),
            stats: LinkStats::default(),
            offered_bytes: 0,
            tel: TelemetryHandle::off(),
            tel_path: 0,
            tel_dir: LinkDir::Forward,
        }
    }

    /// Attach a telemetry sink; drops on this link will be reported as
    /// `link_drop` events under the given path index and direction.
    pub fn attach_telemetry(&mut self, tel: TelemetryHandle, path: u16, dir: LinkDir) {
        self.tel = tel;
        self.tel_path = path;
        self.tel_dir = dir;
    }

    /// Current drain rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.cfg.rate_bps
    }

    /// Change the drain rate (models `tc` re-regulation / wild variation).
    ///
    /// Packets already accepted keep their computed departure times: a rate
    /// change affects subsequent arrivals only, so its effect settles within
    /// one queue drain. This is documented in DESIGN.md as an approximation.
    /// Latency-sized queues are re-derived for the new rate.
    pub fn set_rate_bps(&mut self, rate_bps: u64) {
        self.cfg.rate_bps = rate_bps.max(1);
        self.recip_q32 = serialization_recip(self.cfg.rate_bps);
        self.ser_memo = (0, Duration::ZERO);
        if let Some(latency) = self.cfg.queue_latency {
            self.cfg.queue_limit_bytes = latency_queue_bytes(self.cfg.rate_bps, latency);
        }
    }

    /// One-way propagation delay.
    pub fn prop_delay(&self) -> Duration {
        self.cfg.prop_delay
    }

    /// Update the propagation delay (wild RTT drift model).
    pub fn set_prop_delay(&mut self, d: Duration) {
        self.cfg.prop_delay = d;
    }

    /// The active random-loss process.
    pub fn loss_model(&self) -> LossModel {
        self.loss
    }

    /// Swap the random-loss process (scenario impairment hook). Resets the
    /// Gilbert–Elliott chain to the good state; the zero-loss/zero-jitter
    /// fast path is restored automatically when `model` can never drop.
    pub fn set_loss_model(&mut self, model: LossModel) {
        self.loss = model;
        self.loss_bad_state = false;
        self.deterministic = self.loss.is_none() && self.cfg.jitter_max == Duration::ZERO;
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes offered to the link since the last call, resetting the
    /// accumulator — the per-window load report of a co-simulated shared
    /// bottleneck (see [`serialization_nanos`] for the matching horizon
    /// math). Plain-field accounting: reading it never perturbs the link.
    pub fn take_offered_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.offered_bytes)
    }

    /// Bytes currently waiting in (or being serialized out of) the queue.
    pub fn queued_bytes(&mut self, now: Time) -> u64 {
        self.expire(now);
        self.queued_bytes
    }

    fn expire(&mut self, now: Time) {
        while let Some(&(dep, bytes)) = self.in_queue.front() {
            if dep <= now {
                self.in_queue.pop_front();
                self.queued_bytes -= u64::from(bytes);
            } else {
                break;
            }
        }
    }

    /// Serialization delay of `wire_bytes` at the current rate:
    /// `floor(bytes × 8e9 / rate)` nanoseconds, computed via the
    /// precomputed Q32 reciprocal instead of a `u128` division.
    ///
    /// The ceiling reciprocal overshoots by strictly less than
    /// `bytes / 2^32 ≤ 1`, so the candidate is at most `floor + 1` (+1 more
    /// only at the unreachable `bytes = 2^32` corner); one multiply-compare
    /// correction per excess unit restores the exact quotient, keeping every
    /// arrival time bit-identical to the division it replaces.
    fn serialization(&self, wire_bytes: u32) -> Duration {
        let exact_num = u128::from(wire_bytes) * BIT_NANOS_PER_BYTE;
        let mut nanos = (u128::from(wire_bytes) * self.recip_q32) >> RECIP_SHIFT;
        let rate = u128::from(self.cfg.rate_bps.max(1));
        while nanos * rate > exact_num {
            nanos -= 1;
        }
        debug_assert_eq!(nanos, exact_num / rate);
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }

    #[cold]
    fn drop_event(&self, now: Time, kind: DropKind) {
        self.tel.emit(
            now.as_nanos(),
            EventKind::LinkDrop { path: self.tel_path, dir: self.tel_dir, kind },
        );
        self.tel.incr(Counter::LinkDrops);
    }

    /// Offer a packet of `wire_bytes` to the link at time `now`.
    pub fn enqueue(&mut self, now: Time, wire_bytes: u32) -> Verdict {
        self.offered_bytes += u64::from(wire_bytes);
        self.expire(now);
        // Hot path: deterministic links (no loss, no jitter) skip both RNG
        // branches. The stochastic path below consumes the RNG in exactly
        // the order the flag-free code did (loss draw first, then jitter),
        // so seeded verdict sequences are unchanged — see the
        // `lossy_jittery_verdicts_match_golden` test.
        if !self.deterministic {
            let loss = self.loss;
            if loss.drop_packet(&mut self.loss_bad_state, &mut self.rng) {
                self.stats.dropped_random += 1;
                self.drop_event(now, DropKind::Random);
                return Verdict::DropRandom;
            }
        }
        if self.queued_bytes + u64::from(wire_bytes) > self.cfg.queue_limit_bytes {
            self.stats.dropped_queue += 1;
            self.drop_event(now, DropKind::Queue);
            return Verdict::DropQueue;
        }
        let start = self.busy_until.max(now);
        if self.ser_memo.0 != wire_bytes {
            self.ser_memo = (wire_bytes, self.serialization(wire_bytes));
        }
        let departure = start + self.ser_memo.1;
        self.busy_until = departure;
        self.in_queue.push_back((departure, wire_bytes));
        self.queued_bytes += u64::from(wire_bytes);

        let mut arrival = departure + self.cfg.prop_delay;
        if !self.deterministic && self.cfg.jitter_max > Duration::ZERO {
            let max = crate::time::dur_nanos(self.cfg.jitter_max);
            arrival += Duration::from_nanos(self.rng.gen_range(0..=max));
        }
        // FIFO: never hand out an arrival earlier than a previous one. The
        // batched-delivery protocol leans on this clamp: `DeliveryQueue`
        // parks arrivals in the order this method hands them out, and
        // `EventQueue::claim_dispatch` may fast-forward its pop horizon to
        // a parked head's `(time, seq)` — sound only because no later
        // enqueue on the same link can produce an earlier arrival.
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        self.stats.delivered_pkts += 1;
        self.stats.delivered_bytes += u64::from(wire_bytes);
        Verdict::Deliver { arrival }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::GilbertElliott;

    const MTU: u32 = 1500;

    fn mk(mbps: f64, delay_ms: u64, queue: u64) -> Link {
        Link::new(LinkConfig::shaped(mbps, Duration::from_millis(delay_ms), queue), 1)
    }

    #[test]
    fn single_packet_latency() {
        // 1500B at 12 Mbps = 1 ms serialization + 10 ms prop.
        let mut l = mk(12.0, 10, 1_000_000);
        match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => assert_eq!(arrival, Time::from_millis(11)),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let mut l = mk(12.0, 10, 1_000_000);
        let a1 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        let a2 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        assert_eq!(a2 - a1, Duration::from_millis(1));
    }

    #[test]
    fn droptail_overflow() {
        // Queue fits exactly two MTU packets.
        let mut l = mk(1.0, 5, u64::from(MTU) * 2);
        assert!(matches!(l.enqueue(Time::ZERO, MTU), Verdict::Deliver { .. }));
        assert!(matches!(l.enqueue(Time::ZERO, MTU), Verdict::Deliver { .. }));
        assert_eq!(l.enqueue(Time::ZERO, MTU), Verdict::DropQueue);
        assert_eq!(l.stats().dropped_queue, 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = mk(12.0, 5, u64::from(MTU) * 2);
        l.enqueue(Time::ZERO, MTU);
        l.enqueue(Time::ZERO, MTU);
        assert_eq!(l.enqueue(Time::ZERO, MTU), Verdict::DropQueue);
        // After 1 ms the first packet has fully serialized out.
        assert!(matches!(l.enqueue(Time::from_millis(1), MTU), Verdict::Deliver { .. }));
    }

    #[test]
    fn idle_link_resets_busy() {
        let mut l = mk(12.0, 10, 1_000_000);
        l.enqueue(Time::ZERO, MTU);
        // Long after the first packet, latency is again 11 ms end to end.
        let t = Time::from_secs(5);
        match l.enqueue(t, MTU) {
            Verdict::Deliver { arrival } => assert_eq!(arrival - t, Duration::from_millis(11)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rate_change_applies_to_new_packets() {
        let mut l = mk(12.0, 0, 10_000_000);
        l.set_rate_bps(1_200_000); // 10x slower
        match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => assert_eq!(arrival, Time::from_millis(10)),
            _ => unreachable!(),
        }
    }

    /// Pins the flush-at-old-rate contract scenario rate traces rely on:
    /// a mid-flight `set_rate_bps` must not retroactively reprice packets
    /// already accepted into the queue. Departures computed before the
    /// change stand; only packets offered *after* it see the new rate.
    #[test]
    fn rate_change_does_not_reprice_queued_packets() {
        // 12 Mbps: 1500B serializes in 1 ms.
        let mut l = mk(12.0, 0, 10_000_000);
        let a1 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        let a2 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        assert_eq!(a1, Time::from_millis(1));
        assert_eq!(a2, Time::from_millis(2));

        // Drop to 1.2 Mbps while both packets are still queued. Their
        // departures are already fixed; the next packet starts serializing
        // only after the old-rate backlog fully flushes at t = 2 ms.
        l.set_rate_bps(1_200_000);
        let a3 = match l.enqueue(Time::ZERO, MTU) {
            Verdict::Deliver { arrival } => arrival,
            _ => unreachable!(),
        };
        assert_eq!(a3, Time::from_millis(2) + Duration::from_millis(10));

        // The queue also drains on the old schedule: at t = 2 ms both
        // original packets are gone, not stretched out by the new rate.
        assert_eq!(l.queued_bytes(Time::from_millis(2)), u64::from(MTU));
    }

    /// Gilbert–Elliott with p(good→bad) = 0 never leaves the good state and
    /// must consume the RNG exactly like Bernoulli(loss_good): the full
    /// verdict sequences (drops, arrivals, jitter draws) are bit-identical.
    #[test]
    fn gilbert_elliott_degenerate_matches_bernoulli_bit_identically() {
        let run = |model: LossModel| {
            let mut cfg = LinkConfig::shaped(4.0, Duration::from_millis(12), 128 * 1024);
            cfg.jitter_max = Duration::from_millis(2);
            let mut l = Link::new(cfg, 4242);
            l.set_loss_model(model);
            (0..4_000u64)
                .map(|i| l.enqueue(Time::from_micros(i * 311), 80 + (i % 1420) as u32))
                .collect::<Vec<_>>()
        };
        let degenerate = LossModel::GilbertElliott(GilbertElliott {
            p_good_bad: 0.0,
            p_bad_good: 0.5,
            loss_good: 0.07,
            loss_bad: 1.0,
        });
        let ge = run(degenerate);
        let bern = run(LossModel::Bernoulli(0.07));
        assert_eq!(ge, bern);
        assert!(ge.iter().any(|v| matches!(v, Verdict::DropRandom)));
    }

    #[test]
    fn random_loss_rate_roughly_respected() {
        let mut cfg = LinkConfig::shaped(100.0, Duration::ZERO, u64::MAX);
        cfg.loss_rate = 0.3;
        let mut l = Link::new(cfg, 42);
        let mut dropped = 0;
        for i in 0..10_000 {
            if matches!(l.enqueue(Time::from_millis(i), 100), Verdict::DropRandom) {
                dropped += 1;
            }
        }
        assert!((2_500..3_500).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn jitter_preserves_fifo() {
        let mut cfg = LinkConfig::shaped(100.0, Duration::from_millis(10), u64::MAX);
        cfg.jitter_max = Duration::from_millis(5);
        let mut l = Link::new(cfg, 7);
        let mut last = Time::ZERO;
        for i in 0..1_000 {
            if let Verdict::Deliver { arrival } = l.enqueue(Time::from_micros(i * 50), MTU) {
                assert!(arrival >= last, "reordered at pkt {i}");
                last = arrival;
            }
        }
    }

    /// The Q32 reciprocal must reproduce `floor(bytes × 8e9 / rate)`
    /// exactly — arrival times feed the determinism goldens, so "close"
    /// is not good enough.
    #[test]
    fn reciprocal_serialization_matches_division_exactly() {
        let rates = [
            1u64, 3, 7, 999, 300_000, 1_000_000, 8_600_000, 299_999_999, 1_000_000_000,
            987_654_321_987, u64::MAX,
        ];
        let sizes = [0u32, 1, 40, 72, 300, 1499, 1500, 1540, 9000, 65_535, u32::MAX];
        for &rate in &rates {
            let mut cfg = LinkConfig::shaped(1.0, Duration::ZERO, u64::MAX);
            cfg.rate_bps = rate;
            let l = Link::new(cfg, 0);
            for &bytes in &sizes {
                let exact = (u128::from(bytes) * 8 * 1_000_000_000) / u128::from(rate.max(1));
                let expect = Duration::from_nanos(u64::try_from(exact).unwrap_or(u64::MAX));
                assert_eq!(l.serialization(bytes), expect, "rate={rate} bytes={bytes}");
            }
        }
    }

    /// Golden digest of the full verdict sequence for a lossy + jittery
    /// config, captured before the serialization-reciprocal and
    /// fast-path-hoist changes. Those optimizations must not disturb the
    /// RNG consumption order or any computed arrival time.
    #[test]
    fn lossy_jittery_verdicts_match_golden() {
        let mut cfg = LinkConfig::shaped(2.5, Duration::from_millis(15), 96 * 1024);
        cfg.jitter_max = Duration::from_millis(3);
        cfg.loss_rate = 0.05;
        let mut l = Link::new(cfg, 2017);
        let mut d: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |d: &mut u64, x: u64| {
            for b in x.to_le_bytes() {
                *d ^= u64::from(b);
                *d = d.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for i in 0..5_000u64 {
            let v = l.enqueue(Time::from_micros(i * 431), 100 + (i % 1400) as u32);
            match v {
                Verdict::Deliver { arrival } => fold(&mut d, arrival.as_nanos()),
                Verdict::DropQueue => fold(&mut d, u64::MAX - 1),
                Verdict::DropRandom => fold(&mut d, u64::MAX),
            }
        }
        println!("lossy/jittery verdict digest: {d:#018x}");
        assert_eq!(d, 0xab2a_a11c_9c46_fcc3);
    }

    #[test]
    fn offered_bytes_counts_demand_including_drops() {
        let mut l = mk(1.0, 5, u64::from(MTU) * 2);
        l.enqueue(Time::ZERO, MTU);
        l.enqueue(Time::ZERO, MTU);
        assert_eq!(l.enqueue(Time::ZERO, MTU), Verdict::DropQueue);
        assert_eq!(l.take_offered_bytes(), u64::from(MTU) * 3);
        // The take resets the accumulator: next window counts fresh demand.
        assert_eq!(l.take_offered_bytes(), 0);
        l.enqueue(Time::from_secs(10), MTU);
        assert_eq!(l.take_offered_bytes(), u64::from(MTU));
    }

    #[test]
    fn serialization_floor_matches_link_math() {
        // The free helper must agree exactly with the Q32 path for any
        // (rate, size) — co-sim horizon math depends on it.
        for &rate in &[1u64, 999, 1_000_000, 8_600_000, 1_000_000_000] {
            let mut cfg = LinkConfig::shaped(1.0, Duration::ZERO, u64::MAX);
            cfg.rate_bps = rate;
            let l = Link::new(cfg, 0);
            for &bytes in &[1u32, 72, 300, 1500, 65_535] {
                assert_eq!(
                    Duration::from_nanos(super::serialization_nanos(rate, bytes)),
                    l.serialization(bytes),
                    "rate={rate} bytes={bytes}"
                );
            }
        }
        // Degenerate: an effectively infinite rate has a zero floor.
        assert_eq!(super::serialization_nanos(u64::MAX, 1500), 0);
    }

    #[test]
    fn drops_emit_telemetry_events() {
        let tel = TelemetryHandle::with_capacity(64);
        let mut l = mk(1.0, 5, u64::from(MTU) * 2);
        l.attach_telemetry(tel.clone(), 3, LinkDir::Forward);
        l.enqueue(Time::ZERO, MTU);
        l.enqueue(Time::ZERO, MTU);
        l.enqueue(Time::from_micros(7), MTU); // overflow → queue drop
        let evs = tel.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t_ns, 7_000);
        assert!(matches!(
            evs[0].kind,
            EventKind::LinkDrop { path: 3, dir: LinkDir::Forward, kind: DropKind::Queue }
        ));
        assert_eq!(tel.counter(Counter::LinkDrops), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = LinkConfig::shaped(10.0, Duration::from_millis(10), u64::MAX);
        cfg.jitter_max = Duration::from_millis(2);
        cfg.loss_rate = 0.01;
        let run = |seed| {
            let mut l = Link::new(cfg.clone(), seed);
            (0..500).map(|i| l.enqueue(Time::from_micros(i * 777), MTU)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
