//! Bidirectional paths.
//!
//! A [`Path`] bundles the two directions of one end-to-end interface pair:
//! the *forward* (data) direction, which the experiments shape to a target
//! bandwidth exactly as the paper shapes server egress with `tc`, and the
//! *reverse* (ACK) direction, which is unshaped delay.
//!
//! [`PathConfig::wifi`] and [`PathConfig::lte`] encode the calibration worked
//! out in DESIGN.md: base delays and droptail queue sizes chosen so that the
//! *measured* RTT under regulation reproduces the shape of the paper's
//! Table 2 (bufferbloat makes RTT balloon as the shaped rate shrinks, and LTE
//! sits above WiFi at equal rate).

use std::time::Duration;

use crate::link::{Link, LinkConfig};

/// WiFi one-way propagation delay (base RTT ≈ 20 ms; paper Table 2 shows
/// 40 ms at 8.6 Mbps once queueing is included).
pub const WIFI_ONE_WAY: Duration = Duration::from_millis(10);
/// LTE one-way propagation delay (base RTT ≈ 60 ms; Table 2 shows 105 ms at
/// 8.6 Mbps).
pub const LTE_ONE_WAY: Duration = Duration::from_millis(30);
/// Shaped-link queue depth: the paper regulates with `tc` in front of a
/// default 1000-packet txqueue (~1.5 MB) — effectively lossless for any
/// window the endpoints reach. Inflight is then bounded by the receive
/// window, penalization and RFC 2861 validation rather than drops, which is
/// what lets the paper's Fig 11/12 windows ride at 60–350 segments and RTT
/// inflate to the ≈1 s of Table 2 instead of sawtoothing on loss.
pub const SHAPED_QUEUE_BYTES: u64 = 1_500_000;

/// Configuration of one bidirectional path.
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Human-readable label used in reports ("wifi", "lte", ...).
    pub name: String,
    /// Data direction (sender → receiver), shaped.
    pub fwd: LinkConfig,
    /// ACK direction (receiver → sender), delay only.
    pub rev: LinkConfig,
}

impl PathConfig {
    /// A WiFi-like path shaped to `mbps` in the data direction.
    pub fn wifi(mbps: f64) -> Self {
        let mut fwd = LinkConfig::shaped(mbps, WIFI_ONE_WAY, SHAPED_QUEUE_BYTES);
        fwd.jitter_max = Duration::from_millis(2);
        PathConfig { name: "wifi".into(), fwd, rev: LinkConfig::reverse(WIFI_ONE_WAY) }
    }

    /// An LTE-like path shaped to `mbps` in the data direction.
    pub fn lte(mbps: f64) -> Self {
        let mut fwd = LinkConfig::shaped(mbps, LTE_ONE_WAY, SHAPED_QUEUE_BYTES);
        fwd.jitter_max = Duration::from_millis(4);
        PathConfig { name: "lte".into(), fwd, rev: LinkConfig::reverse(LTE_ONE_WAY) }
    }

    /// A fully custom symmetric-delay path.
    pub fn custom(name: &str, mbps: f64, one_way: Duration, queue_bytes: u64) -> Self {
        PathConfig {
            name: name.into(),
            fwd: LinkConfig::shaped(mbps, one_way, queue_bytes),
            rev: LinkConfig::reverse(one_way),
        }
    }

    /// Disable jitter on both directions (for exactly-reproducible unit math).
    pub fn without_jitter(mut self) -> Self {
        self.fwd.jitter_max = Duration::ZERO;
        self.rev.jitter_max = Duration::ZERO;
        self
    }

    /// Set the forward-direction random loss rate.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.fwd.loss_rate = loss;
        self
    }

    /// The minimum (unloaded) round-trip time of this path.
    pub fn base_rtt(&self) -> Duration {
        self.fwd.prop_delay + self.rev.prop_delay
    }
}

/// Canonical per-path seed derivation: path `index` of a run seeded with
/// `base` gets `base + index * 7919`. Every harness — the mptcp monolith
/// testbed, the sharded sweep executor (which keys by *global* unit index so
/// shard and monolith runs agree bit-for-bit), and the quic testbed — derives
/// path seeds through this one function so no second variant can drift.
#[inline]
pub fn path_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add(index as u64 * 7919)
}

/// A live bidirectional path instance.
pub struct Path {
    /// Label copied from the config.
    pub name: String,
    /// Data-direction link.
    pub fwd: Link,
    /// ACK-direction link.
    pub rev: Link,
}

impl Path {
    /// Instantiate from a config; `seed` feeds the two links' jitter/loss RNGs.
    pub fn new(cfg: &PathConfig, seed: u64) -> Self {
        Path {
            name: cfg.name.clone(),
            fwd: Link::new(cfg.fwd.clone(), seed.wrapping_mul(2).wrapping_add(1)),
            rev: Link::new(cfg.rev.clone(), seed.wrapping_mul(2).wrapping_add(2)),
        }
    }

    /// Attach a telemetry sink to both directions; drops will be reported
    /// under path index `idx`.
    pub fn attach_telemetry(&mut self, tel: &telemetry::TelemetryHandle, idx: u16) {
        self.fwd.attach_telemetry(tel.clone(), idx, telemetry::LinkDir::Forward);
        self.rev.attach_telemetry(tel.clone(), idx, telemetry::LinkDir::Reverse);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_base_rtt() {
        assert_eq!(PathConfig::wifi(8.6).base_rtt(), Duration::from_millis(20));
        assert_eq!(PathConfig::lte(8.6).base_rtt(), Duration::from_millis(60));
    }

    #[test]
    fn queues_are_txqueuelen_deep() {
        // A 1000-packet txqueue never drops at the windows our endpoints
        // reach (receive window ≈ 362 segments), so inflight is bounded by
        // flow control, not loss — the paper's regime.
        let cfg = PathConfig::wifi(0.3);
        assert!(cfg.fwd.queue_limit_bytes >= 1_000_000);
        assert!(cfg.fwd.queue_limit_bytes / 1500 >= 724);
    }

    #[test]
    fn without_jitter_clears_both_directions() {
        let cfg = PathConfig::wifi(1.0).without_jitter();
        assert_eq!(cfg.fwd.jitter_max, Duration::ZERO);
        assert_eq!(cfg.rev.jitter_max, Duration::ZERO);
    }

    #[test]
    fn custom_path_uses_given_values() {
        let cfg = PathConfig::custom("p", 5.0, Duration::from_millis(15), 10_000);
        assert_eq!(cfg.base_rtt(), Duration::from_millis(30));
        assert_eq!(cfg.fwd.rate_bps, 5_000_000);
        assert_eq!(cfg.fwd.queue_limit_bytes, 10_000);
    }
}
