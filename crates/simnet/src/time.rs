//! Simulated time.
//!
//! All simulator time is an absolute [`Time`] measured in integer nanoseconds
//! from the start of the run. Durations are `std::time::Duration`, which keeps
//! the API familiar while arithmetic stays exact: there is no floating point
//! anywhere on the clock path, so runs are bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never" for inactive timers.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Time(nanos)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since t=0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since t=0 (truncated).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since t=0 (truncated).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since t=0 as a float, for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since an earlier instant, saturating at zero.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(dur_nanos(d)))
    }
}

/// Convert a `Duration` to u64 nanoseconds, saturating (spans > ~584 years
/// are clamped, which is far beyond any simulation horizon).
#[inline]
pub fn dur_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Duration) -> Time {
        Time(self.0 + dur_nanos(d))
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += dur_nanos(d);
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(2), Time::from_nanos(2_000_000_000));
        assert_eq!(Time::from_millis(5), Time::from_micros(5_000));
        assert_eq!(Time::from_micros(7), Time::from_nanos(7_000));
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = Time::from_millis(100);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_saturates() {
        let early = Time::from_secs(1);
        let late = Time::from_secs(3);
        assert_eq!(early.since(late), Duration::ZERO);
        assert_eq!(late.since(early), Duration::from_secs(2));
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(1) < Time::from_millis(2));
        assert!(Time::MAX > Time::from_secs(1_000_000));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", Time::from_millis(1500)), "1.500s");
    }
}
