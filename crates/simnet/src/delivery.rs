//! Per-link delivery coalescing.
//!
//! A [`crate::Link`] never reorders: arrival times handed out by
//! `Link::enqueue` are clamped monotonic (FIFO pipe). That invariant means
//! the global event heap never needs more than *one* pending delivery entry
//! per link direction — the head. Everything behind the head waits in a
//! [`DeliveryQueue`], a plain `VecDeque`, and is promoted when the head
//! fires. Per-packet cost drops from an `O(log n)` heap push/pop of a full
//! event entry to an `O(1)` deque push/pop, and the heap stays small, which
//! in turn makes the remaining heap operations cheaper.
//!
//! Determinism is preserved *exactly*, not just statistically: each parked
//! delivery carries a seq reserved from [`crate::EventQueue::reserve_seq`]
//! at the moment the all-heap design would have scheduled it, and the
//! wakeup entry is inserted with that seq via
//! [`crate::EventQueue::schedule_reserved`]. The heap therefore pops the
//! same `(time, seq)` keys in the same order as if every delivery had been
//! scheduled individually — proven by the golden-digest and property tests
//! (`crates/simnet/tests/prop.rs`, `crates/experiments/tests/golden.rs`).
//!
//! Protocol (the caller is the [`crate::Model`]):
//!
//! 1. On `Verdict::Deliver { arrival }`: reserve a seq, then
//!    [`DeliveryQueue::push`]. If it returns a `(time, seq)` pair, the
//!    queue was idle — schedule the wakeup under that reserved key.
//! 2. On the wakeup event: [`DeliveryQueue::pop`] the head payload and
//!    dispatch it, then *batch*: while the returned next `(time, seq)` key
//!    wins an [`crate::EventQueue::claim_dispatch`] (nothing else pending
//!    orders before it and the run deadline allows it), pop and dispatch it
//!    in the same handler activation; on the first refused claim, schedule
//!    the follow-up wakeup under that reserved key and stop.
//!
//! The batch loop is order-exact by construction: a claim succeeds only in
//! the precise state where the unbatched engine's next pop would have been
//! that wakeup, and the claim check re-runs after every dispatch so events
//! scheduled *by* a batched delivery (app timers, cross-path ACKs)
//! interrupt the batch just as they would have interleaved unbatched.
//! Pushes during a dispatch stay consistent too: while later entries remain
//! parked, `push` returns `None` (no wakeup to schedule), and once the
//! queue drains the next push correctly requests a fresh wakeup.

use std::collections::VecDeque;

use crate::time::Time;

/// A FIFO of in-flight deliveries for one link direction, of which only the
/// head has a wakeup entry in the engine's heap. See the module docs.
pub struct DeliveryQueue<P> {
    q: VecDeque<(Time, u64, P)>,
}

impl<P> Default for DeliveryQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> DeliveryQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        DeliveryQueue { q: VecDeque::new() }
    }

    /// An empty queue with room for `cap` in-flight deliveries.
    pub fn with_capacity(cap: usize) -> Self {
        DeliveryQueue { q: VecDeque::with_capacity(cap) }
    }

    /// Park a delivery arriving at `arrival` under reserved seq `seq`.
    ///
    /// Returns `Some((arrival, seq))` when the queue was idle, i.e. the
    /// caller must now schedule the wakeup for this head; `None` when a
    /// wakeup is already in flight for an earlier delivery.
    #[must_use]
    pub fn push(&mut self, arrival: Time, seq: u64, payload: P) -> Option<(Time, u64)> {
        debug_assert!(
            self.q.back().is_none_or(|&(t, s, _)| t <= arrival && s < seq),
            "FIFO link handed out a reordered arrival"
        );
        let was_idle = self.q.is_empty();
        self.q.push_back((arrival, seq, payload));
        was_idle.then_some((arrival, seq))
    }

    /// Take the head payload on wakeup. Also returns the next head's
    /// `(arrival, seq)` when one is waiting — the caller must schedule its
    /// wakeup immediately, before acting on the payload.
    pub fn pop(&mut self) -> Option<(P, Option<(Time, u64)>)> {
        let (_, _, payload) = self.q.pop_front()?;
        Some((payload, self.q.front().map(|&(t, s, _)| (t, s))))
    }

    /// Number of parked deliveries (including the head).
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is in flight on this link direction.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_reports_idle_transitions_only() {
        let mut dq = DeliveryQueue::new();
        assert_eq!(dq.push(Time::from_millis(1), 0, "a"), Some((Time::from_millis(1), 0)));
        assert_eq!(dq.push(Time::from_millis(2), 1, "b"), None);
        assert_eq!(dq.push(Time::from_millis(2), 2, "c"), None);
        assert_eq!(dq.len(), 3);
    }

    #[test]
    fn pop_returns_payloads_in_fifo_order_with_next_wakeup() {
        let mut dq = DeliveryQueue::new();
        let _ = dq.push(Time::from_millis(1), 0, 10);
        let _ = dq.push(Time::from_millis(3), 1, 20);
        assert_eq!(dq.pop(), Some((10, Some((Time::from_millis(3), 1)))));
        assert_eq!(dq.pop(), Some((20, None)));
        assert_eq!(dq.pop(), None);
        assert!(dq.is_empty());
    }

    #[test]
    fn idle_again_after_drain() {
        let mut dq = DeliveryQueue::new();
        let _ = dq.push(Time::from_millis(1), 0, ());
        let _ = dq.pop();
        // Drained: the next push must request a fresh wakeup.
        assert_eq!(dq.push(Time::from_millis(9), 5, ()), Some((Time::from_millis(9), 5)));
    }
}
