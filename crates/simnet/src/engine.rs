//! Discrete-event engine.
//!
//! The engine is deliberately minimal, in the spirit of event-driven stacks
//! like smoltcp: a model is a plain state machine that receives events and may
//! schedule more. Determinism comes from a strict ordering of the event queue
//! (a calendar wheel, see [`crate::wheel`]) — ties in time are broken by
//! insertion sequence number, so two runs with the same inputs pop events in
//! exactly the same order.

use crate::time::Time;
use crate::wheel::EventQueue;

/// A state machine driven by the [`Engine`].
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulated time `now`, scheduling any follow-ups
    /// through `sched`.
    fn handle(&mut self, now: Time, event: Self::Event, sched: &mut EventQueue<Self::Event>);
}

/// Outcome of [`Engine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the deadline.
    Drained,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The configured event budget was exhausted (runaway-model guard).
    BudgetExhausted,
}

/// Drives a [`Model`] until a deadline, the queue drains, or an event budget
/// is exhausted.
pub struct Engine<M: Model> {
    /// The model under simulation.
    pub model: M,
    queue: EventQueue<M::Event>,
    now: Time,
    processed: u64,
    /// Stop after this many events as a guard against runaway models.
    pub event_budget: u64,
}

impl<M: Model> Engine<M> {
    /// Wrap `model` with an empty event queue at t=0.
    pub fn new(model: M) -> Self {
        Engine::with_queue(model, EventQueue::new())
    }

    /// Wrap `model` with a recycled queue, resetting it to t=0 first. The
    /// queue keeps its slab capacity across the reset, so a worker running
    /// many short simulations (one engine allocation per worker, see
    /// [`EventQueue::reset`]) skips the per-run growth entirely.
    pub fn with_queue(model: M, mut queue: EventQueue<M::Event>) -> Self {
        queue.reset();
        Engine {
            model,
            queue,
            now: Time::ZERO,
            processed: 0,
            event_budget: u64::MAX,
        }
    }

    /// Tear the engine down, recovering the queue for reuse by a later
    /// [`Engine::with_queue`]. Pending events are dropped with it.
    pub fn into_queue(self) -> EventQueue<M::Event> {
        self.queue
    }

    /// Current simulation time (time of the last handled event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events handled so far, including deliveries dispatched in
    /// batch via [`EventQueue::claim_dispatch`] — each claim stands for an
    /// event the unbatched engine would have popped, so this count (which
    /// feeds golden digests and bench throughput) is independent of whether
    /// batching engaged.
    pub fn processed(&self) -> u64 {
        self.processed + self.queue.batch_deliveries()
    }

    /// A lower bound on the time of the next pending event (`None` when the
    /// queue is drained). Read-only; see [`EventQueue::next_event_time`].
    /// Co-sim drivers use it to fast-forward over windows in which no group
    /// has anything to do.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.next_event_time()
    }

    /// Read-only access to the queue, e.g. for diagnostics
    /// ([`EventQueue::cascaded_total`], [`EventQueue::peak_len`]).
    pub fn queue(&self) -> &EventQueue<M::Event> {
        &self.queue
    }

    /// Access the queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Run until `deadline` (inclusive). Events scheduled exactly at the
    /// deadline are processed.
    pub fn run_until(&mut self, deadline: Time) -> RunOutcome {
        // Claims (batched dispatches inside model handlers) are bounded by
        // the same deadline as pops, so a batch can never cross a co-sim
        // window barrier.
        self.queue.set_run_deadline(deadline);
        loop {
            if self.processed + self.queue.batch_deliveries() >= self.event_budget {
                // Budget exhaustion only reports when another event would
                // actually have run before the deadline.
                return match self.queue.peek_time() {
                    None => RunOutcome::Drained,
                    Some(at) if at > deadline => {
                        self.now = deadline;
                        RunOutcome::DeadlineReached
                    }
                    Some(_) => RunOutcome::BudgetExhausted,
                };
            }
            // One combined queue operation per event instead of peek + pop.
            let Some((at, ev)) = self.queue.pop_at_or_before(deadline) else {
                if self.queue.is_empty() {
                    return RunOutcome::Drained;
                }
                self.now = deadline;
                return RunOutcome::DeadlineReached;
            };
            debug_assert!(at >= self.now, "event scheduled in the past");
            self.now = at;
            self.processed += 1;
            self.model.handle(at, ev, &mut self.queue);
        }
    }

    /// Run until the queue drains completely.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(Time::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Records the order events are seen in; re-schedules chains.
    struct Recorder {
        seen: Vec<(Time, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, sched: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
            // Event 100 spawns a chain of two more.
            if ev == 100 {
                sched.schedule(now + Duration::from_millis(1), 101);
                sched.schedule(now + Duration::from_millis(1), 102);
            }
        }
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut eng = Engine::new(Recorder { seen: vec![] });
        let t = Time::from_millis(5);
        eng.queue_mut().schedule(t, 1);
        eng.queue_mut().schedule(t, 2);
        eng.queue_mut().schedule(t, 3);
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        let evs: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 2, 3]);
    }

    #[test]
    fn time_ordering_dominates_insertion() {
        let mut eng = Engine::new(Recorder { seen: vec![] });
        eng.queue_mut().schedule(Time::from_millis(9), 1);
        eng.queue_mut().schedule(Time::from_millis(3), 2);
        eng.run_to_completion();
        let evs: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![2, 1]);
    }

    #[test]
    fn chained_events_run() {
        let mut eng = Engine::new(Recorder { seen: vec![] });
        eng.queue_mut().schedule(Time::from_millis(1), 100);
        eng.run_to_completion();
        let evs: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![100, 101, 102]);
        assert_eq!(eng.processed(), 3);
    }

    #[test]
    fn deadline_stops_early() {
        let mut eng = Engine::new(Recorder { seen: vec![] });
        eng.queue_mut().schedule(Time::from_millis(1), 1);
        eng.queue_mut().schedule(Time::from_millis(10), 2);
        let out = eng.run_until(Time::from_millis(5));
        assert_eq!(out, RunOutcome::DeadlineReached);
        assert_eq!(eng.model.seen.len(), 1);
        assert_eq!(eng.now(), Time::from_millis(5));
        // Resume to the end.
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        assert_eq!(eng.model.seen.len(), 2);
    }

    #[test]
    fn deadline_inclusive() {
        let mut eng = Engine::new(Recorder { seen: vec![] });
        eng.queue_mut().schedule(Time::from_millis(5), 7);
        assert_eq!(eng.run_until(Time::from_millis(5)), RunOutcome::Drained);
        assert_eq!(eng.model.seen.len(), 1);
    }

    #[test]
    fn recycled_queue_runs_like_fresh() {
        let mut eng = Engine::new(Recorder { seen: vec![] });
        eng.queue_mut().schedule(Time::from_millis(1), 100);
        eng.run_to_completion();
        let first = eng.model.seen.clone();

        // Recycle the queue into a second engine; the run must be
        // indistinguishable from the first.
        let queue = eng.into_queue();
        let mut eng2 = Engine::with_queue(Recorder { seen: vec![] }, queue);
        assert_eq!(eng2.now(), Time::ZERO);
        assert_eq!(eng2.processed(), 0);
        eng2.queue_mut().schedule(Time::from_millis(1), 100);
        eng2.run_to_completion();
        assert_eq!(eng2.model.seen, first);
    }

    /// The batching pattern: each event chains the next one 1 ms later and
    /// claims it inline when the queue allows (events stop at id 3).
    struct Claimer {
        seen: Vec<(Time, u32)>,
        claimed: u32,
    }

    impl Model for Claimer {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, q: &mut EventQueue<u32>) {
            let (mut now, mut ev) = (now, ev);
            loop {
                self.seen.push((now, ev));
                if ev >= 3 {
                    return;
                }
                let at = now + Duration::from_millis(1);
                let seq = q.reserve_seq();
                if q.claim_dispatch(at, seq) {
                    self.claimed += 1;
                    (now, ev) = (at, ev + 1);
                    continue;
                }
                q.schedule_reserved(at, seq, ev + 1);
                return;
            }
        }
    }

    #[test]
    fn claims_counted_in_processed() {
        let mut eng = Engine::new(Claimer { seen: vec![], claimed: 0 });
        eng.queue_mut().schedule(Time::from_millis(1), 0);
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        let times: Vec<_> =
            eng.model.seen.iter().map(|&(t, e)| (t.as_nanos() / 1_000_000, e)).collect();
        assert_eq!(times, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
        assert_eq!(eng.model.claimed, 3, "empty queue must allow every claim");
        // One wheel pop + three claims: each claim stands for an event the
        // unbatched engine would have popped, so all four count.
        assert_eq!(eng.processed(), 4);
    }

    #[test]
    fn run_deadline_clamps_claims() {
        let mut eng = Engine::new(Claimer { seen: vec![], claimed: 0 });
        eng.queue_mut().schedule(Time::from_millis(1), 0);
        // The 3 ms successor lies past the 2.5 ms window: the batch must
        // break there and fall back to a scheduled wakeup, exactly like the
        // unbatched engine stopping at the barrier.
        assert_eq!(eng.run_until(Time::from_micros(2_500)), RunOutcome::DeadlineReached);
        assert_eq!(eng.model.seen.len(), 2);
        assert_eq!(eng.model.claimed, 1);
        assert_eq!(eng.now(), Time::from_micros(2_500));
        // Resuming observes the parked event and re-batches the tail.
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        assert_eq!(eng.model.seen.len(), 4);
        assert_eq!(eng.model.claimed, 2);
        assert_eq!(eng.processed(), 4);
    }

    #[test]
    fn budget_guard() {
        struct Looper;
        impl Model for Looper {
            type Event = ();
            fn handle(&mut self, now: Time, _: (), sched: &mut EventQueue<()>) {
                sched.schedule(now + Duration::from_nanos(1), ());
            }
        }
        let mut eng = Engine::new(Looper);
        eng.event_budget = 1000;
        eng.queue_mut().schedule(Time::ZERO, ());
        assert_eq!(eng.run_to_completion(), RunOutcome::BudgetExhausted);
        assert_eq!(eng.processed(), 1000);
    }
}
