//! Hierarchical calendar-wheel future-event list.
//!
//! The [`EventQueue`] behind [`crate::Engine`]. PR 2 left the queue a
//! `BinaryHeap`, whose `O(log n)` push/pop and comparator cost dominate the
//! engine loop once many connections share one engine. This module replaces
//! it with a classic hashed hierarchical timing wheel (Varghese & Lauck):
//!
//! * Time is bucketed into quanta of `2^16` ns ≈ 65.5 µs. Level 0 has 256
//!   slots covering one quantum each (span ≈ 16.8 ms — RTT-scale delays land
//!   here directly); each higher level's slot covers the full span of the
//!   level below (level 1 ≈ 4.3 s for delayed-ACK/RTO timers, level 2 ≈ 18.3
//!   min, level 3 ≈ 78 h). Events beyond the total span go to an unsorted
//!   `overflow` list that is reconsidered only when the wheel drains — in
//!   practice only `Time::MAX`-style "never" sentinels live there.
//! * `schedule` is O(1): compute the level from the highest differing digit
//!   between the event's quantum index and the wheel cursor, push onto that
//!   slot's intrusive list (nodes live in a slab with an internal free list,
//!   so the steady state allocates nothing). Each event cascades down at
//!   most `LEVELS - 1` times before it is popped, so `pop` is amortized O(1).
//! * Occupancy bitmaps (one bit per slot) make "next non-empty slot" a
//!   masked `trailing_zeros` scan instead of a walk over 256 heads.
//!
//! # The `(time, seq)` determinism contract
//!
//! Pop order must stay **bit-identical** to the old heap: strictly ascending
//! `(time, seq)`, where `seq` is the insertion sequence number (also reserved
//! out-of-band via [`EventQueue::reserve_seq`] for the delivery-queue
//! coalescing protocol). Wheel slots are unordered, so ordering is
//! re-established at the last moment: when the cursor reaches a slot, the
//! slot is drained, sorted by `(time, seq)` (a handful of entries — one
//! 65.5 µs quantum's worth), and moved into the `ready` FIFO. `ready` always
//! holds *every* pending event earlier than `ready_horizon` (the cursor's
//! left edge), so a later `schedule`/`schedule_reserved` targeting an
//! already-drained quantum binary-inserts into `ready` at its `(time, seq)`
//! position and the global order is preserved exactly. `(time, seq)` keys are
//! unique, so "sorted" is a total order and two runs with the same inputs pop
//! the same sequence — the golden-digest tests pin this.
//!
//! # Scheduling into the past
//!
//! `schedule` with `at` earlier than the last popped event's time cannot be
//! honored — that instant has already been simulated. The old heap silently
//! accepted such entries and popped them "in the past" (tripping a
//! `debug_assert` in the engine only once already interleaved wrongly). The
//! wheel makes the contract explicit: a `debug_assert!` flags the bug in
//! debug builds, and release builds **clamp** `at` to the last popped time,
//! i.e. the event fires as soon as possible, after everything already
//! scheduled at that instant.

use std::collections::VecDeque;

use crate::time::Time;

/// log2 of the bucket quantum in nanoseconds (2^16 ns ≈ 65.5 µs).
const QUANTUM_BITS: u32 = 16;
/// log2 of the slot count per level (256 slots = one 8-bit digit each).
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; an event's relative delay beyond `SLOT_BITS * LEVELS`
/// quantum bits (≈ 78 hours) overflows to the unsorted far-future list.
const LEVELS: usize = 4;
/// Occupancy-bitmap words per level.
const WORDS: usize = SLOTS / 64;
/// Null slab index (empty list / end of list).
const NIL: u32 = u32::MAX;

/// Slab node: one pending event plus an intrusive slot-list link.
struct Node<E> {
    at: Time,
    seq: u64,
    next: u32,
    /// `Some` while pending; taken on drain. The free list reuses `next`.
    event: Option<E>,
}

/// A deterministic future-event list (hierarchical calendar wheel).
///
/// Events at equal times are delivered in the order they were scheduled.
pub struct EventQueue<E> {
    /// Slab of pending nodes; freed nodes chain through `free`.
    nodes: Vec<Node<E>>,
    free: u32,
    /// Slot list heads, `LEVELS * SLOTS` flat (level-major).
    heads: Vec<u32>,
    /// One occupancy bit per slot.
    occ: [[u64; WORDS]; LEVELS],
    /// Events beyond the wheel span, unsorted; pulled back into the wheel
    /// once the cursor advances to within span of the earliest of them.
    overflow: Vec<u32>,
    /// Cached minimum quantum index in `overflow` (`u64::MAX` when empty).
    overflow_min_q: u64,
    /// Drained, `(time, seq)`-sorted events awaiting `pop`. Invariant: every
    /// pending event with `at < ready_horizon` is here; the wheel and
    /// `overflow` only hold events at or beyond the horizon.
    ready: VecDeque<(Time, u64, E)>,
    /// Reused sort buffer for slot drains.
    scratch: Vec<(Time, u64, E)>,
    /// Current wheel position in quantum units; never decreases, and never
    /// passes the quantum of a pending wheel event.
    cursor: u64,
    /// `cursor` expressed in nanoseconds (`cursor << QUANTUM_BITS`, saturating).
    ready_horizon: Time,
    /// Time of the last popped event; the clamp floor for new schedules.
    popped_horizon: Time,
    /// Inclusive upper bound for [`EventQueue::claim_dispatch`]; the engine
    /// sets it to the current `run_until` deadline so batched dispatches can
    /// never cross a co-sim window barrier.
    run_deadline: Time,
    len: usize,
    next_seq: u64,
    scheduled_total: u64,
    cascaded_total: u64,
    peak_len: usize,
    /// Cursor advances that crossed at least one empty quantum (diagnostic).
    ff_jumps: u64,
    /// Total simulated dead air the cursor jumped over, in ns (diagnostic).
    ff_skipped_ns: u64,
    /// Events dispatched via [`EventQueue::claim_dispatch`] (diagnostic).
    batch_claims: u64,
    /// Consecutive claims since the last real pop (resets on pop).
    claim_streak: u64,
    /// Longest observed batch: head pop plus its consecutive claims.
    batch_max: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the cursor at t=0.
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free: NIL,
            heads: vec![NIL; LEVELS * SLOTS],
            occ: [[0; WORDS]; LEVELS],
            overflow: Vec::new(),
            overflow_min_q: u64::MAX,
            ready: VecDeque::new(),
            scratch: Vec::new(),
            cursor: 0,
            ready_horizon: Time::ZERO,
            popped_horizon: Time::ZERO,
            run_deadline: Time::MAX,
            len: 0,
            next_seq: 0,
            scheduled_total: 0,
            cascaded_total: 0,
            peak_len: 0,
            ff_jumps: 0,
            ff_skipped_ns: 0,
            batch_claims: 0,
            claim_streak: 0,
            batch_max: 0,
        }
    }

    /// Return the queue to its pristine t=0 state while keeping every
    /// allocation: the node slab, slot-head table, overflow/ready/scratch
    /// buffers all retain their capacity and only their contents are
    /// dropped. This is the engine-reuse hook for sharded sweeps — a worker
    /// that runs many short simulations back to back pays the slab's growth
    /// once instead of once per shard.
    ///
    /// Diagnostics (`scheduled_total`, `cascaded_total`, `peak_len`, and the
    /// fast-forward/batch counters) restart from zero: after a reset the
    /// queue is indistinguishable from [`EventQueue::new`] except for its
    /// capacity.
    pub fn reset(&mut self) {
        // Drop pending payloads and rebuild the free list over the whole
        // slab; chaining every slot is O(capacity), the same order of work
        // the drain that preceded a reset already did.
        self.free = NIL;
        for (i, n) in self.nodes.iter_mut().enumerate().rev() {
            n.event = None;
            n.next = self.free;
            self.free = i as u32;
        }
        self.heads.iter_mut().for_each(|h| *h = NIL);
        self.occ = [[0; WORDS]; LEVELS];
        self.overflow.clear();
        self.overflow_min_q = u64::MAX;
        self.ready.clear();
        self.scratch.clear();
        self.cursor = 0;
        self.ready_horizon = Time::ZERO;
        self.popped_horizon = Time::ZERO;
        self.run_deadline = Time::MAX;
        self.len = 0;
        self.next_seq = 0;
        self.scheduled_total = 0;
        self.cascaded_total = 0;
        self.peak_len = 0;
        self.ff_jumps = 0;
        self.ff_skipped_ns = 0;
        self.batch_claims = 0;
        self.claim_streak = 0;
        self.batch_max = 0;
    }

    /// Slots currently backing the node slab (diagnostic for reuse tests).
    pub fn slab_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// `at` earlier than the time of the last popped event is a model bug:
    /// it trips a `debug_assert!` in debug builds and is clamped to that
    /// time in release builds (the event fires as soon as possible, ordered
    /// after everything already scheduled at that instant).
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.reserve_seq();
        self.insert(at, seq, event);
    }

    /// Allocate the next tie-break sequence number *without* inserting an
    /// entry.
    ///
    /// This is the coalescing hook (see [`crate::DeliveryQueue`]): a model
    /// that parks a delivery in a per-link FIFO instead of the queue reserves
    /// its seq at the moment the old code would have called [`schedule`],
    /// then materializes the entry later via [`schedule_reserved`]. Because
    /// the counter advances in exactly the same program order either way, the
    /// `(time, seq)` keys — and therefore the engine's total event order —
    /// are bit-identical to scheduling every delivery individually.
    ///
    /// [`schedule`]: EventQueue::schedule
    /// [`schedule_reserved`]: EventQueue::schedule_reserved
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        seq
    }

    /// Insert an event under a seq previously obtained from
    /// [`EventQueue::reserve_seq`]. Does not advance the counter. Applies
    /// the same past-time clamp as [`EventQueue::schedule`].
    pub fn schedule_reserved(&mut self, at: Time, seq: u64, event: E) {
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        self.insert(at, seq, event);
    }

    fn insert(&mut self, at: Time, seq: u64, event: E) {
        debug_assert!(
            at >= self.popped_horizon,
            "event scheduled in the past: at {at:?} < last popped {:?}",
            self.popped_horizon
        );
        let at = at.max(self.popped_horizon);
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        // `q < cursor` ⟺ `at < ready_horizon`, but stays exact when the
        // horizon saturates at Time::MAX.
        let q = at.as_nanos() >> QUANTUM_BITS;
        if q >= self.cursor {
            // At or past the horizon: O(1) slot filing. The cursor only
            // ever moves in `advance` (and only while `ready` is empty),
            // never here — an insert that extended the horizon would force
            // every later insert into the gap to pay a sorted-buffer move
            // below, turning a dense burst into O(n) memmoves per schedule.
            let idx = self.alloc(at, seq, event);
            self.place(idx);
            return;
        }
        // Already-drained quantum: keep `ready` sorted. The engine only
        // schedules at or after `now`, which sits inside the drained
        // quantum, so these inserts target at most one quantum's worth of
        // pending events — the binary search + shift stays small.
        match self.ready.back() {
            Some(&(bt, bs, _)) if (bt, bs) > (at, seq) => {
                let pos = self.ready.partition_point(|e| (e.0, e.1) < (at, seq));
                self.ready.insert(pos, (at, seq, event));
            }
            _ => self.ready.push_back((at, seq, event)),
        }
    }

    /// Time of the next pending event, if any.
    ///
    /// Takes `&mut self` because peeking may advance the wheel cursor and
    /// drain the next slot into the sorted `ready` buffer; the observable
    /// state (pending set and pop order) is unchanged.
    pub fn peek_time(&mut self) -> Option<Time> {
        if self.ready.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        self.ready.front().map(|e| e.0)
    }

    /// Remove and return the next (earliest `(time, seq)`) event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_at_or_before(Time::MAX)
    }

    /// Remove and return the next event if its time is `<= deadline`;
    /// `None` when the queue is empty *or* the next event is later (callers
    /// distinguish via [`EventQueue::is_empty`]). This is the engine-loop
    /// primitive: one call replaces the peek-then-pop pair, so the ready
    /// front is located once per event instead of twice.
    ///
    /// The wheel walk is deadline-bounded: when every pending event lies
    /// beyond `deadline` the cursor fast-forwards at most to the earliest
    /// occupied slot and nothing is drained, so a queue holding only
    /// far-future events (e.g. `Time::MAX` "never" sentinels) costs O(levels
    /// × words) per call instead of a full cascade chase.
    pub fn pop_at_or_before(&mut self, deadline: Time) -> Option<(Time, E)> {
        if self.ready.is_empty() {
            if self.len == 0 {
                return None;
            }
            if !self.advance_within(deadline.as_nanos() >> QUANTUM_BITS) {
                return None;
            }
        }
        if self.ready.front().map(|e| e.0)? > deadline {
            return None;
        }
        let (at, _seq, event) = self.ready.pop_front()?;
        self.len -= 1;
        self.popped_horizon = at;
        self.claim_streak = 0;
        Some((at, event))
    }

    /// Set the inclusive time bound for [`EventQueue::claim_dispatch`]. The
    /// engine calls this on entry to `run_until` with the run deadline so a
    /// batched dispatch can never cross it — in co-simulation the window
    /// barrier `run_until(k·W)` must observe every event up to `k·W` and
    /// nothing later, batched or not.
    pub fn set_run_deadline(&mut self, deadline: Time) {
        self.run_deadline = deadline;
    }

    /// Attempt to dispatch the *reserved* key `(at, seq)` directly, without
    /// a schedule/pop round-trip through the wheel.
    ///
    /// Succeeds iff `at` is within the run deadline (see
    /// [`EventQueue::set_run_deadline`]) **and** no pending event orders
    /// before `(at, seq)` — i.e. exactly when an unbatched engine's very
    /// next pop would have been this key. On success the queue state is as
    /// if the event had been filed via [`EventQueue::schedule_reserved`] and
    /// immediately popped: `popped_horizon` advances to `at` and the claim
    /// is counted in [`EventQueue::batch_deliveries`]. On failure nothing
    /// changes and the caller must `schedule_reserved` the event as usual.
    ///
    /// This is the batched-delivery primitive (see [`crate::DeliveryQueue`]):
    /// a model holding the next parked delivery for a link direction asks
    /// the queue whether anything else comes first, and if not dispatches it
    /// in the same handler activation. The check re-runs per delivery, so an
    /// event scheduled *by* a batched dispatch (an app timer, an ACK on the
    /// other path) correctly interrupts the batch.
    pub fn claim_dispatch(&mut self, at: Time, seq: u64) -> bool {
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        debug_assert!(
            at >= self.popped_horizon,
            "claim in the past: at {at:?} < last popped {:?}",
            self.popped_horizon
        );
        if at > self.run_deadline {
            return false;
        }
        loop {
            if let Some(front) = self.ready.front() {
                if (front.0, front.1) < (at, seq) {
                    return false;
                }
                break;
            }
            if self.len == 0 {
                break;
            }
            // Drain up to the claim's quantum; a `false` return proves every
            // pending event sits in a strictly later quantum than `at`.
            if !self.advance_within(at.as_nanos() >> QUANTUM_BITS) {
                break;
            }
        }
        self.popped_horizon = at;
        self.batch_claims += 1;
        self.claim_streak += 1;
        self.batch_max = self.batch_max.max(self.claim_streak + 1);
        true
    }

    /// A lower bound on the time of the next pending event: exact when the
    /// next event is already drained into `ready`, otherwise the start of
    /// the earliest occupied wheel quantum (or the overflow minimum).
    /// `None` iff the queue is empty.
    ///
    /// Read-only — unlike [`EventQueue::peek_time`] this never moves the
    /// cursor or drains a slot, so a co-sim driver can poll every engine in
    /// a lockstep group without perturbing wheel state. The bound is safe
    /// for idle fast-forward: the true next event never fires before it.
    pub fn next_event_time(&self) -> Option<Time> {
        if let Some(front) = self.ready.front() {
            return Some(front.0);
        }
        if self.len == 0 {
            return None;
        }
        let mut q = u64::MAX;
        let cur0 = (self.cursor & (SLOTS as u64 - 1)) as usize;
        if let Some(s0) = self.next_occupied(0, cur0) {
            q = (self.cursor & !(SLOTS as u64 - 1)) | s0 as u64;
        } else {
            // Occupied higher-level slots lower-bound their contents by the
            // span start; scanning low levels first finds the earliest.
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let cur = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as usize;
                if let Some(sl) = self.next_occupied(level, cur) {
                    let keep = SLOT_BITS * (level as u32 + 1);
                    let c = if keep >= 64 {
                        (sl as u64) << shift
                    } else {
                        (self.cursor >> keep << keep) | ((sl as u64) << shift)
                    };
                    q = c.max(self.cursor);
                    break;
                }
            }
        }
        q = q.min(self.overflow_min_q);
        Some(Time::from_nanos(q.saturating_mul(1 << QUANTUM_BITS)))
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of slot cascades performed (events re-filed from a
    /// higher wheel level toward level 0). Diagnostic; each event cascades
    /// at most `LEVELS - 1` times, so this bounds the non-O(1) work done.
    pub fn cascaded_total(&self) -> u64 {
        self.cascaded_total
    }

    /// High-water mark of pending events (diagnostic).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Cursor advances that fast-forwarded over at least one empty quantum
    /// (diagnostic; dense workloads stay near zero).
    pub fn ff_jumps(&self) -> u64 {
        self.ff_jumps
    }

    /// Total simulated dead air the cursor jumped over, in nanoseconds
    /// (diagnostic).
    pub fn ff_skipped_ns(&self) -> u64 {
        self.ff_skipped_ns
    }

    /// Events dispatched via [`EventQueue::claim_dispatch`], i.e. deliveries
    /// that skipped the schedule/pop round-trip (diagnostic).
    pub fn batch_deliveries(&self) -> u64 {
        self.batch_claims
    }

    /// Longest observed dispatch batch — one popped wakeup plus its run of
    /// consecutive claims. Zero when batching never engaged (diagnostic).
    pub fn batch_max_len(&self) -> u64 {
        self.batch_max
    }

    // ---- internals ------------------------------------------------------

    fn alloc(&mut self, at: Time, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            n.at = at;
            n.seq = seq;
            n.next = NIL;
            n.event = Some(event);
            idx
        } else {
            assert!(self.nodes.len() < NIL as usize, "event queue slab full");
            self.nodes.push(Node { at, seq, next: NIL, event: Some(event) });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Unlink a node's payload and return the slot to the free list.
    fn release(&mut self, idx: u32) -> (Time, u64, E) {
        let n = &mut self.nodes[idx as usize];
        let ev = n.event.take().expect("releasing a free node");
        let out = (n.at, n.seq, ev);
        n.next = self.free;
        self.free = idx;
        out
    }

    fn set_cursor(&mut self, c: u64) {
        debug_assert!(c >= self.cursor, "wheel cursor went backwards");
        self.cursor = c;
        // Saturating: the quantum after Time::MAX's is the end of time.
        self.ready_horizon = Time::from_nanos(c.saturating_mul(1 << QUANTUM_BITS));
    }

    /// File a slab node (with `at >= ready_horizon`) into the wheel. O(1).
    fn place(&mut self, idx: u32) {
        let q = self.nodes[idx as usize].at.as_nanos() >> QUANTUM_BITS;
        debug_assert!(q >= self.cursor, "placing an event behind the cursor");
        let diff = q ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow_min_q = self.overflow_min_q.min(q);
            self.overflow.push(idx);
            return;
        }
        let slot = ((q >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let cell = level * SLOTS + slot;
        self.nodes[idx as usize].next = self.heads[cell];
        self.heads[cell] = idx;
        self.occ[level][slot / 64] |= 1u64 << (slot % 64);
    }

    /// Lowest occupied slot index `>= from` at `level`, via the bitmap.
    fn next_occupied(&self, level: usize, from: usize) -> Option<usize> {
        let occ = &self.occ[level];
        let mut w = from / 64;
        let mut word = occ[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = occ[w];
        }
    }

    /// Advance the cursor to the next occupied slot and drain it — sorted —
    /// into `ready`. Precondition: `ready` is empty and `len > 0`, so at
    /// least one event is in the wheel or the overflow list.
    fn advance(&mut self) {
        let drained = self.advance_within(u64::MAX);
        debug_assert!(drained, "unbounded advance must drain");
    }

    /// Record a fast-forward: the cursor moved from `from` to its current
    /// position without draining anything in between.
    fn note_jump(&mut self, from: u64) {
        let skipped = self.cursor - from;
        if skipped > 0 {
            self.ff_jumps += 1;
            self.ff_skipped_ns += skipped.saturating_mul(1 << QUANTUM_BITS);
        }
    }

    /// Advance the cursor toward the next occupied slot and, if that slot
    /// can hold an event at or before quantum `limit_q`, drain it — sorted —
    /// into `ready` and return `true`. When every pending event provably
    /// lies in a quantum after `limit_q`, return `false` without draining:
    /// the cursor fast-forwards over empty quanta only (never past a pending
    /// event) and parks. Parking rules keep pop order intact:
    ///
    /// * At a level-0 slot of the current rotation the cursor may move right
    ///   up to the slot (all quanta before it are empty, no cascades due).
    /// * At a higher-level cascade candidate or the overflow list the cursor
    ///   stays put — stepping into a rotation without cascading its
    ///   newly-current slots would let later level-0 inserts pop ahead of
    ///   older events still filed above (the `enter_rotations` invariant).
    ///
    /// Precondition: `ready` is empty and `len > 0`.
    fn advance_within(&mut self, limit_q: u64) -> bool {
        debug_assert!(self.ready.is_empty());
        let entry = self.cursor;
        loop {
            // Pull the far-future list back in if the cursor caught up: an
            // overflow event now within the wheel span must be filed before
            // any slot scan, or a nearer wheel event could pop ahead of it.
            // The cached min makes the common case (no overflow, or still
            // far away) a single compare.
            if self.overflow_min_q >> (SLOT_BITS * LEVELS as u32)
                == self.cursor >> (SLOT_BITS * LEVELS as u32)
            {
                let far = std::mem::take(&mut self.overflow);
                self.overflow_min_q = u64::MAX;
                for idx in far {
                    self.place(idx); // re-files; far stragglers go back
                }
            }
            // Next occupied level-0 slot in the current rotation.
            let cur0 = (self.cursor & (SLOTS as u64 - 1)) as usize;
            if let Some(s0) = self.next_occupied(0, cur0) {
                let c = (self.cursor & !(SLOTS as u64 - 1)) | s0 as u64;
                self.set_cursor(c);
                self.note_jump(entry);
                if c > limit_q {
                    // Deadline-bounded: park at the occupied slot without
                    // draining it. Same rotation, so no cascades are due and
                    // the fast-forward over the empty prefix is safe.
                    return false;
                }
                self.drain_level0(s0);
                // Step past the drained slot. If that carries into a new
                // rotation at any level, eagerly cascade the slots that just
                // became current — otherwise later inserts targeting the new
                // rotation would file into level 0 while its older events
                // still sat one level up, and the scan would pop them out
                // of order.
                self.set_cursor(c + 1);
                if (c + 1) >> SLOT_BITS != c >> SLOT_BITS {
                    self.enter_rotations(c ^ (c + 1));
                }
                return true;
            }
            // Rotation exhausted: cascade the earliest occupied slot of the
            // lowest non-empty higher level down one level. Scanning low
            // levels first is correct because a level-l slot at or after the
            // cursor digit covers strictly earlier time than any occupied
            // level-(l+1) slot after its digit.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let cur = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as usize;
                if let Some(sl) = self.next_occupied(level, cur) {
                    let keep = SLOT_BITS * (level as u32 + 1);
                    let c = if keep >= 64 {
                        (sl as u64) << shift
                    } else {
                        (self.cursor >> keep << keep) | ((sl as u64) << shift)
                    };
                    debug_assert!(c >= self.cursor, "cascade moved cursor back");
                    if c.max(self.cursor) > limit_q {
                        // Everything pending sits at or beyond this slot's
                        // span start, past the limit. Park without moving —
                        // see the method doc for why the cursor must not
                        // enter an un-cascaded rotation.
                        return false;
                    }
                    self.set_cursor(c.max(self.cursor));
                    self.cascade(level, sl);
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Whole wheel span exhausted: jump the cursor to the earliest
            // far-future event; the refile at the top of the loop picks it
            // up on the next iteration.
            debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing pending");
            if self.overflow_min_q > limit_q {
                // Only far-future events remain (e.g. Time::MAX sentinels);
                // don't chase them through the cascade chain.
                return false;
            }
            self.set_cursor(self.overflow_min_q.max(self.cursor));
        }
    }

    /// After the cursor carried into a new rotation at one or more levels
    /// (`changed` = old XOR new cursor), cascade each newly-current slot so
    /// its events are filed below before anything else happens at this
    /// position. Top-down: a level-3 cascade may fill level-2/1 slots, never
    /// a newly-current one (an event only files at level `l` when its
    /// level-`l` digit differs from the cursor's).
    fn enter_rotations(&mut self, changed: u64) {
        for level in (1..LEVELS).rev() {
            let shift = SLOT_BITS * level as u32;
            if (changed >> shift) & (SLOTS as u64 - 1) != 0 {
                let cur = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as usize;
                if self.occ[level][cur / 64] & (1u64 << (cur % 64)) != 0 {
                    self.cascade(level, cur);
                }
            }
        }
    }

    /// Drain level-0 slot `slot` into `ready` in `(time, seq)` order.
    fn drain_level0(&mut self, slot: usize) {
        debug_assert!(self.scratch.is_empty());
        let mut idx = std::mem::replace(&mut self.heads[slot], NIL);
        self.occ[0][slot / 64] &= !(1u64 << (slot % 64));
        // Sparse workloads put one event per slot; skip the sort buffer.
        if idx != NIL && self.nodes[idx as usize].next == NIL {
            let entry = self.release(idx);
            self.ready.push_back(entry);
            return;
        }
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            let entry = self.release(idx);
            self.scratch.push(entry);
            idx = next;
        }
        self.scratch.sort_unstable_by_key(|a| (a.0, a.1));
        self.ready.extend(self.scratch.drain(..));
    }

    /// Re-file every event in `(level, slot)` one level down (or lower).
    fn cascade(&mut self, level: usize, slot: usize) {
        let cell = level * SLOTS + slot;
        let mut idx = std::mem::replace(&mut self.heads[cell], NIL);
        self.occ[level][slot / 64] &= !(1u64 << (slot % 64));
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            self.nodes[idx as usize].next = NIL;
            self.place(idx);
            self.cascaded_total += 1;
            idx = next;
        }
    }
}

/// The pre-PR-5 `BinaryHeap` queue, kept as the ordering oracle for the
/// wheel's property tests: same API, trivially correct `(time, seq)` order.
#[cfg(test)]
pub mod reference {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::Time;

    struct Entry<E> {
        at: Time,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap; invert so the earliest (time, seq) pops first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    /// Reference event queue: a binary heap ordered by `(time, seq)`.
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        last_popped: Time,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue { heap: BinaryHeap::new(), next_seq: 0, last_popped: Time::ZERO }
        }

        pub fn schedule(&mut self, at: Time, event: E) {
            let seq = self.reserve_seq();
            self.schedule_reserved(at, seq, event);
        }

        pub fn reserve_seq(&mut self) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            seq
        }

        pub fn schedule_reserved(&mut self, at: Time, seq: u64, event: E) {
            // Mirror the wheel's past-time clamp so the oracle agrees on it.
            let at = at.max(self.last_popped);
            self.heap.push(Entry { at, seq, event });
        }

        pub fn pop(&mut self) -> Option<(Time, u64, E)> {
            self.heap.pop().map(|e| {
                self.last_popped = e.at;
                (e.at, e.seq, e.event)
            })
        }

        /// Oracle for [`super::EventQueue::claim_dispatch`] (no run-deadline
        /// bound — the deadline clamp has its own deterministic tests):
        /// succeed iff no pending entry orders before `(at, seq)`.
        pub fn claim_dispatch(&mut self, at: Time, seq: u64) -> bool {
            if self.heap.peek().is_some_and(|e| (e.at, e.seq) < (at, seq)) {
                return false;
            }
            self.last_popped = at;
            true
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::HeapQueue;
    use super::*;
    use std::time::Duration;

    /// Drain both queues fully and assert identical (time, event) pops.
    fn assert_pops_match(wheel: &mut EventQueue<u64>, heap: &mut HeapQueue<u64>) {
        assert_eq!(wheel.len(), heap.len(), "pending-count mismatch");
        let mut n = 0u64;
        loop {
            let w = wheel.pop();
            let h = heap.pop().map(|(at, _seq, ev)| (at, ev));
            assert_eq!(w, h, "pop #{n} diverged");
            if w.is_none() {
                break;
            }
            n += 1;
        }
    }

    #[test]
    fn same_instant_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(5);
        for i in 0..10u64 {
            q.schedule(t, i);
        }
        for i in 0..10u64 {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn spans_all_levels_and_overflow() {
        // One event per wheel level plus one beyond the span and one at
        // Time::MAX; pops must come back in time order.
        let delays_ns = [
            1u64,                 // level 0
            5 << QUANTUM_BITS,    // level 0, later slot
            300 << QUANTUM_BITS,  // level 1
            70_000u64 << QUANTUM_BITS,   // level 2
            18_000_000u64 << QUANTUM_BITS, // level 3
            1u64 << 52,           // overflow
        ];
        let mut q = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &d) in delays_ns.iter().enumerate() {
            q.schedule(Time::from_nanos(d), i as u64);
            heap.schedule(Time::from_nanos(d), i as u64);
        }
        q.schedule(Time::MAX, 99);
        heap.schedule(Time::MAX, 99);
        assert_pops_match(&mut q, &mut heap);
    }

    #[test]
    fn schedule_into_drained_quantum_keeps_order() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(10);
        q.schedule(t, 0);
        q.schedule(Time::from_secs(1), 9);
        // Peeking drains the first slot into `ready`...
        assert_eq!(q.peek_time(), Some(t));
        // ...and a later schedule into that same (already drained) quantum
        // must still pop in (time, seq) order.
        q.schedule(t + Duration::from_nanos(1), 1);
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), Some((t + Duration::from_nanos(1), 1)));
        assert_eq!(q.pop(), Some((Time::from_secs(1), 9)));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "event scheduled in the past"))]
    fn schedule_in_past_is_flagged_and_clamped() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(10), 0);
        q.schedule(Time::from_millis(20), 1);
        assert_eq!(q.pop(), Some((Time::from_millis(10), 0)));
        // A model bug: schedule earlier than the last popped event. Debug
        // builds panic on the debug_assert above; release builds clamp to
        // the last popped time, firing after events already at that instant.
        q.schedule(Time::from_millis(3), 2);
        assert_eq!(q.pop(), Some((Time::from_millis(10), 2)));
        assert_eq!(q.pop(), Some((Time::from_millis(20), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_and_totals_track() {
        let mut q: EventQueue<u64> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_millis(1), 1);
        let s = q.reserve_seq();
        assert_eq!(q.len(), 1);
        q.schedule_reserved(Time::from_millis(2), s, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        assert!(q.peak_len() >= 2);
    }

    /// Random interleavings of schedule / reserve+schedule_reserved / pop
    /// with same-instant bursts and delays spanning every wheel level must
    /// pop bit-identically to the BinaryHeap reference.
    #[test]
    fn wheel_matches_heap_for_random_schedules() {
        use testkit::prop::{check, vec_of};

        // (op selector, delay selector, delay payload, burst size)
        check(
            256,
            vec_of((0u32..100, 0u32..6, 0u64..1 << 17, 1u32..4), 1..200),
            |ops| {
                let mut wheel: EventQueue<u64> = EventQueue::new();
                let mut heap: HeapQueue<u64> = HeapQueue::new();
                let mut now = Time::ZERO;
                let mut next_ev = 0u64;
                // Reserved-but-unfilled seqs, filled by later ops (the
                // delivery-queue coalescing pattern).
                let mut parked: Vec<(u64, Time)> = Vec::new();

                for (op, dsel, draw, burst) in ops {
                    // Delay distribution deliberately covers: same-instant
                    // (0), sub-quantum, level 0/1/2 spans, and far-future
                    // jumps past the whole wheel (rollover cascades).
                    let delay_ns = match dsel {
                        0 => 0,
                        1 => draw & 0xFFFF,                      // < 1 quantum
                        2 => draw,                               // level 0/1
                        3 => draw << 14,                         // level 1/2
                        4 => draw << 24,                         // level 2/3
                        _ => (draw << 33) | 1,                   // deep rollover
                    };
                    let at = now + Duration::from_nanos(delay_ns);
                    match op {
                        // Plain schedule, occasionally a same-time burst.
                        0..=49 => {
                            for _ in 0..burst {
                                wheel.schedule(at, next_ev);
                                heap.schedule(at, next_ev);
                                next_ev += 1;
                            }
                        }
                        // Reserve now, materialize later.
                        50..=64 => {
                            let sw = wheel.reserve_seq();
                            let sh = heap.reserve_seq();
                            assert_eq!(sw, sh);
                            parked.push((sw, at));
                        }
                        // Fill the oldest parked reservation.
                        65..=79 => {
                            if let Some((seq, t)) = parked.first().copied() {
                                parked.remove(0);
                                let t = t.max(now);
                                wheel.schedule_reserved(t, seq, seq << 32);
                                heap.schedule_reserved(t, seq, seq << 32);
                            }
                        }
                        // Pop one event; simulated time advances to it.
                        _ => {
                            let w = wheel.pop();
                            let h = heap.pop().map(|(t, _s, e)| (t, e));
                            assert_eq!(w, h, "pop diverged mid-run");
                            if let Some((t, _)) = w {
                                now = t;
                            }
                        }
                    }
                }
                // Fill any leftover reservations, then drain both.
                for (seq, t) in parked {
                    let t = t.max(now);
                    wheel.schedule_reserved(t, seq, seq << 32);
                    heap.schedule_reserved(t, seq, seq << 32);
                }
                assert_pops_match(&mut wheel, &mut heap);
            },
        );
    }

    /// The batched-delivery flow against the heap oracle: random schedules
    /// interleaved with reserve → claim-or-fallback, covering past-clamp
    /// edges (parked time below the pop horizon), overflow-list residents
    /// (deep-rollover delays pending during claims), and zero-gap claims
    /// (`at == now`). Both queues must agree on every claim verdict and pop
    /// bit-identically afterwards.
    #[test]
    fn claims_match_heap_for_random_schedules() {
        use testkit::prop::{check, vec_of};

        check(
            256,
            vec_of((0u32..100, 0u32..6, 0u64..1 << 17, 1u32..4), 1..200),
            |ops| {
                let mut wheel: EventQueue<u64> = EventQueue::new();
                let mut heap: HeapQueue<u64> = HeapQueue::new();
                let mut now = Time::ZERO;
                let mut next_ev = 0u64;
                // Parked reservations, claimed or materialized later.
                let mut parked: Vec<(u64, Time)> = Vec::new();
                let mut claims = 0u64;

                for (op, dsel, draw, burst) in ops {
                    let delay_ns = match dsel {
                        0 => 0,
                        1 => draw & 0xFFFF,                      // < 1 quantum
                        2 => draw,                               // level 0/1
                        3 => draw << 14,                         // level 1/2
                        4 => draw << 24,                         // level 2/3
                        _ => (draw << 33) | 1,                   // deep rollover
                    };
                    let at = now + Duration::from_nanos(delay_ns);
                    match op {
                        0..=39 => {
                            for _ in 0..burst {
                                wheel.schedule(at, next_ev);
                                heap.schedule(at, next_ev);
                                next_ev += 1;
                            }
                        }
                        40..=59 => {
                            let sw = wheel.reserve_seq();
                            let sh = heap.reserve_seq();
                            assert_eq!(sw, sh);
                            parked.push((sw, at));
                        }
                        // The DeliveryQueue pattern: try to dispatch the
                        // oldest parked key inline; on refusal file it the
                        // classic way. Clamping to `now` models a parked
                        // arrival whose wakeup time has already been popped
                        // past (the past-clamp edge; delay 0 gives the
                        // zero-gap `at == now` case).
                        60..=79 => {
                            if let Some((seq, t)) = parked.first().copied() {
                                parked.remove(0);
                                let t = t.max(now);
                                let w = wheel.claim_dispatch(t, seq);
                                let h = heap.claim_dispatch(t, seq);
                                assert_eq!(w, h, "claim verdict diverged");
                                if w {
                                    now = t;
                                    claims += 1;
                                } else {
                                    wheel.schedule_reserved(t, seq, seq << 32);
                                    heap.schedule_reserved(t, seq, seq << 32);
                                }
                            }
                        }
                        _ => {
                            let w = wheel.pop();
                            let h = heap.pop().map(|(t, _s, e)| (t, e));
                            assert_eq!(w, h, "pop diverged mid-run");
                            if let Some((t, _)) = w {
                                now = t;
                            }
                        }
                    }
                }
                for (seq, t) in parked {
                    let t = t.max(now);
                    wheel.schedule_reserved(t, seq, seq << 32);
                    heap.schedule_reserved(t, seq, seq << 32);
                }
                assert_eq!(wheel.batch_deliveries(), claims);
                assert_pops_match(&mut wheel, &mut heap);
            },
        );
    }

    /// `reset` must zero the fast-forward / batching diagnostics and lift a
    /// run deadline left behind by the previous run — a recycled shard
    /// queue reporting a prior run's jumps (or refusing claims against a
    /// stale deadline) would corrupt sweep telemetry and batching.
    #[test]
    fn reset_clears_ff_and_batch_diagnostics() {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Provoke a fast-forward jump (far-apart events) and a claim.
        q.schedule(Time::from_nanos(100), 0);
        q.schedule(Time::from_secs(2), 1);
        while q.pop().is_some() {}
        let s = q.reserve_seq();
        assert!(q.claim_dispatch(Time::from_secs(3), s));
        q.set_run_deadline(Time::from_secs(4));
        assert!(q.ff_jumps() > 0, "setup never fast-forwarded");
        assert_eq!(q.batch_deliveries(), 1);
        assert!(q.batch_max_len() > 0);

        q.reset();
        assert_eq!(q.ff_jumps(), 0);
        assert_eq!(q.ff_skipped_ns(), 0);
        assert_eq!(q.batch_deliveries(), 0);
        assert_eq!(q.batch_max_len(), 0);
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.cascaded_total(), 0);
        // The stale 4 s deadline must be gone: a fresh reservation claims
        // fine at 5 s on an empty queue.
        let s = q.reserve_seq();
        assert!(
            q.claim_dispatch(Time::from_secs(5), s),
            "reset left the previous run deadline in place"
        );
    }

    /// After `reset`, the queue behaves exactly like a fresh one (same pop
    /// order for the same schedule sequence) but keeps its slab capacity.
    #[test]
    fn reset_is_pristine_but_keeps_capacity() {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Grow the slab across several levels, pop some, leave some pending.
        for i in 0..64u64 {
            q.schedule(Time::from_nanos(i * 77_777), i);
        }
        for _ in 0..20 {
            q.pop();
        }
        let cap = q.slab_capacity();
        assert!(cap > 0);

        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.peak_len(), 0);
        assert_eq!(q.slab_capacity(), cap, "reset must keep the slab");

        // Replay a schedule sequence on the reset queue and on a fresh one;
        // pops (and the seq-sensitive same-instant order) must match.
        let mut fresh: EventQueue<u64> = EventQueue::new();
        let t = Time::from_millis(3);
        for i in 0..40u64 {
            let at = if i % 3 == 0 { t } else { Time::from_nanos(i * 99_999) };
            q.schedule(at, i);
            fresh.schedule(at, i);
        }
        loop {
            let a = q.pop();
            let b = fresh.pop();
            assert_eq!(a, b, "reset queue diverged from fresh queue");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(q.slab_capacity(), cap, "replay within capacity must not grow");
    }

    /// A long chain of pops with re-schedules crossing every rotation
    /// boundary (the cascade path) stays sorted.
    #[test]
    fn rollover_chain_stays_sorted() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        // Steps sized to straddle level-0 (16.8ms) and level-1 (4.3s)
        // rotation boundaries repeatedly.
        let steps_ns =
            [60_000u64, 16_800_000, 120_000, 4_300_000_000, 65_537, 1 << 34];
        let mut t = Time::ZERO;
        for (i, &s) in steps_ns.iter().cycle().take(500).enumerate() {
            t += Duration::from_nanos(s);
            q.schedule(t, i as u32);
            heap.schedule(t, i as u32);
        }
        let mut wheel64: Vec<(Time, u32)> = Vec::new();
        while let Some(p) = q.pop() {
            wheel64.push(p);
        }
        let mut heap64: Vec<(Time, u32)> = Vec::new();
        while let Some((at, _, e)) = heap.pop() {
            heap64.push((at, e));
        }
        assert_eq!(wheel64, heap64);
        assert!(q.cascaded_total() > 0, "chain never exercised a cascade");
    }
}
