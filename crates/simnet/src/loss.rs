//! Stochastic packet-loss processes.
//!
//! A [`LossModel`] decides, per packet offered to a [`crate::Link`], whether
//! the packet is randomly dropped. Two models are provided:
//!
//! * **Bernoulli** — independent per-packet drops, the classic `loss_rate`
//!   knob the paper's `tc netem` baseline exposes.
//! * **Gilbert–Elliott** — a two-state Markov chain (good/bad) with a
//!   per-state drop probability. This is the standard model for *bursty*
//!   wireless loss: long clean stretches punctuated by short windows where
//!   most packets die (a fading WiFi channel, an LTE cell edge). Scheduler
//!   rankings that hold under independent loss can invert under bursts,
//!   which is exactly what the `dyn_burstloss` experiment measures.
//!
//! Determinism contract: the model draws from the owning link's seeded RNG
//! and consumes **exactly one draw per probability that is actually in
//! play** — a zero transition or drop probability consumes nothing. In
//! particular, Gilbert–Elliott with `p_good_bad == 0` never leaves the good
//! state and consumes the RNG in exactly the order `Bernoulli(loss_good)`
//! does, so the two are bit-identical (pinned by a property test in
//! `simnet/tests/prop.rs`).

use testkit::Rng;

/// Per-packet random-loss process applied by a link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No random loss (the zero-cost default: no RNG draws at all).
    #[default]
    None,
    /// Independent drops with the given probability.
    Bernoulli(f64),
    /// Two-state bursty loss.
    GilbertElliott(GilbertElliott),
}

/// Parameters of the Gilbert–Elliott two-state chain. Each offered packet
/// first advances the chain (good ↔ bad with the corresponding transition
/// probability), then draws a drop with the *current* state's loss rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) per offered packet.
    pub p_good_bad: f64,
    /// P(bad → good) per offered packet.
    pub p_bad_good: f64,
    /// Drop probability while in the good state.
    pub loss_good: f64,
    /// Drop probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// The common "burst erasure" parameterization: clean good state,
    /// all-loss bad state, chosen so the stationary average loss is
    /// `avg_loss` and bad-state visits last `mean_burst_pkts` packets on
    /// average. `avg_loss` must be in `[0, 1)`.
    pub fn bursty(avg_loss: f64, mean_burst_pkts: f64) -> Self {
        assert!((0.0..1.0).contains(&avg_loss), "avg_loss must be in [0, 1)");
        assert!(mean_burst_pkts >= 1.0, "a burst is at least one packet");
        let p_bad_good = 1.0 / mean_burst_pkts;
        // Stationary P(bad) = p_gb / (p_gb + p_bg) = avg_loss.
        let p_good_bad = p_bad_good * avg_loss / (1.0 - avg_loss);
        GilbertElliott { p_good_bad, p_bad_good, loss_good: 0.0, loss_bad: 1.0 }
    }

    /// Stationary fraction of time spent in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_good_bad <= 0.0 {
            return 0.0;
        }
        self.p_good_bad / (self.p_good_bad + self.p_bad_good)
    }

    /// Long-run average drop probability.
    pub fn avg_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        bad * self.loss_bad + (1.0 - bad) * self.loss_good
    }
}

impl LossModel {
    /// True when this model can never drop a packet (lets the link keep its
    /// RNG-free fast path).
    pub fn is_none(&self) -> bool {
        match *self {
            LossModel::None => true,
            LossModel::Bernoulli(p) => p <= 0.0,
            LossModel::GilbertElliott(_) => false,
        }
    }

    /// Advance the process by one offered packet and decide whether to drop
    /// it. `bad_state` is the chain state for Gilbert–Elliott (unused by the
    /// other models).
    pub fn drop_packet(&self, bad_state: &mut bool, rng: &mut Rng) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Bernoulli(p) => p > 0.0 && rng.f64() < p,
            LossModel::GilbertElliott(ge) => {
                let p_flip = if *bad_state { ge.p_bad_good } else { ge.p_good_bad };
                if p_flip > 0.0 && rng.f64() < p_flip {
                    *bad_state = !*bad_state;
                }
                let p_loss = if *bad_state { ge.loss_bad } else { ge.loss_good };
                p_loss > 0.0 && rng.f64() < p_loss
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_parameterization_hits_targets() {
        let ge = GilbertElliott::bursty(0.02, 8.0);
        assert!((ge.avg_loss() - 0.02).abs() < 1e-12);
        assert!((ge.p_bad_good - 0.125).abs() < 1e-12);
        assert_eq!(ge.loss_good, 0.0);
        assert_eq!(ge.loss_bad, 1.0);
    }

    #[test]
    fn none_and_zero_bernoulli_are_free() {
        assert!(LossModel::None.is_none());
        assert!(LossModel::Bernoulli(0.0).is_none());
        assert!(!LossModel::Bernoulli(0.1).is_none());
        assert!(!LossModel::GilbertElliott(GilbertElliott::bursty(0.01, 4.0)).is_none());
    }

    #[test]
    fn gilbert_elliott_long_run_loss_tracks_stationary_average() {
        let ge = GilbertElliott::bursty(0.05, 10.0);
        let model = LossModel::GilbertElliott(ge);
        let mut rng = Rng::seed_from_u64(99);
        let mut bad = false;
        let n = 200_000;
        let dropped = (0..n).filter(|_| model.drop_packet(&mut bad, &mut rng)).count();
        let rate = dropped as f64 / n as f64;
        assert!((0.04..0.06).contains(&rate), "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // At equal average loss, GE must produce far fewer distinct loss
        // "episodes" (runs of consecutive drops) than Bernoulli.
        let n = 100_000;
        let runs = |model: LossModel| {
            let mut rng = Rng::seed_from_u64(7);
            let mut bad = false;
            let mut runs = 0u32;
            let mut prev = false;
            for _ in 0..n {
                let d = model.drop_packet(&mut bad, &mut rng);
                if d && !prev {
                    runs += 1;
                }
                prev = d;
            }
            runs
        };
        let ge_runs = runs(LossModel::GilbertElliott(GilbertElliott::bursty(0.02, 16.0)));
        let bern_runs = runs(LossModel::Bernoulli(0.02));
        assert!(
            ge_runs * 4 < bern_runs,
            "GE runs {ge_runs} not bursty vs Bernoulli {bern_runs}"
        );
    }
}
