//! # simnet — deterministic discrete-event network simulation
//!
//! The substrate under the MPTCP reproduction: a minimal, fully deterministic
//! discrete-event engine plus a shaped-link model. It plays the role of the
//! paper's physical testbed (WiFi + LTE paths regulated with `tc`).
//!
//! Design points, in the spirit of event-driven stacks like smoltcp:
//!
//! * **Passive components.** A [`Link`] computes arrival times; the *model*
//!   schedules delivery events. No callbacks, no interior mutability, no
//!   hidden threads.
//! * **Determinism.** Integer-nanosecond clock, `(time, sequence)`-ordered
//!   event heap, and one seeded [`testkit::Rng`] per stochastic
//!   component. A run is a pure function of (config, seed).
//! * **Bufferbloat built in.** Droptail queues sized in bytes reproduce the
//!   RTT inflation the paper measures under `tc` regulation (Table 2).
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Engine, EventQueue, Model, Time, Link, LinkConfig, Verdict};
//! use std::time::Duration;
//!
//! struct Ping { link: Link, got: Vec<Time> }
//! enum Ev { Send(u32), Arrive }
//!
//! impl Model for Ping {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Time, ev: Ev, q: &mut EventQueue<Ev>) {
//!         match ev {
//!             Ev::Send(bytes) => {
//!                 if let Verdict::Deliver { arrival } = self.link.enqueue(now, bytes) {
//!                     q.schedule(arrival, Ev::Arrive);
//!                 }
//!             }
//!             Ev::Arrive => self.got.push(now),
//!         }
//!     }
//! }
//!
//! let link = Link::new(LinkConfig::shaped(12.0, Duration::from_millis(10), 64 * 1024), 0);
//! let mut eng = Engine::new(Ping { link, got: vec![] });
//! eng.queue_mut().schedule(Time::ZERO, Ev::Send(1500));
//! eng.run_to_completion();
//! assert_eq!(eng.model.got, vec![Time::from_millis(11)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod delivery;
mod engine;
mod link;
mod loss;
mod path;
mod time;
mod wheel;

pub use arena::{Arena, ArenaIdx};
pub use delivery::DeliveryQueue;
pub use engine::{Engine, Model, RunOutcome};
pub use wheel::EventQueue;
pub use link::{serialization_nanos, Link, LinkConfig, LinkStats, Verdict};
pub use loss::{GilbertElliott, LossModel};
pub use path::{
    path_seed, Path, PathConfig, LTE_ONE_WAY, SHAPED_QUEUE_BYTES, WIFI_ONE_WAY,
};
pub use time::{dur_nanos, Time};
