//! RTT estimation per RFC 6298, with the Linux 200 ms RTO floor.
//!
//! Besides sRTT/RTTVAR this estimator is what feeds ECF's δ margin: the
//! paper's δ = max(σf, σs) uses the per-path RTT deviation, for which RTTVAR
//! (a smoothed mean absolute deviation) is the standard in-kernel proxy.

use std::time::Duration;

/// Smoothed RTT / deviation / RTO state for one subflow.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Duration,
    rttvar: Duration,
    min_rtt: Duration,
    min_rto: Duration,
    max_rto: Duration,
    samples: u64,
    /// `rto()` precomputed at sample time. The engine hot path reads the RTO
    /// several times per ACK (idle checks, window validation, timer re-arm);
    /// its inputs only change here, so the Duration arithmetic runs once per
    /// sample instead of once per read.
    cached_rto: Duration,
    /// HyStart delay threshold `min + max(min/4, 8 ms)` precomputed whenever
    /// `min_rtt` improves (rare) instead of on every slow-start ACK, where
    /// the `mul_f64` chain would otherwise run. `Duration::MAX` until the
    /// first sample.
    cached_hystart_thresh: Duration,
}

impl RttEstimator {
    /// Linux `TCP_RTO_MIN`.
    pub const DEFAULT_MIN_RTO: Duration = Duration::from_millis(200);
    /// A practical RTO ceiling (RFC 6298 allows ≥ 60 s; we keep 60 s).
    pub const DEFAULT_MAX_RTO: Duration = Duration::from_secs(60);
    /// RTO used before the first RTT sample (RFC 6298 §2.1 says 1 s).
    pub const INITIAL_RTO: Duration = Duration::from_secs(1);

    /// A fresh estimator with Linux-like clamping.
    pub fn new() -> Self {
        Self::with_bounds(Self::DEFAULT_MIN_RTO, Self::DEFAULT_MAX_RTO)
    }

    /// Estimator with explicit RTO bounds.
    pub fn with_bounds(min_rto: Duration, max_rto: Duration) -> Self {
        RttEstimator {
            srtt: Duration::ZERO,
            rttvar: Duration::ZERO,
            min_rtt: Duration::MAX,
            min_rto,
            max_rto,
            samples: 0,
            cached_rto: Self::INITIAL_RTO,
            cached_hystart_thresh: Duration::MAX,
        }
    }

    /// Smallest RTT ever observed — the propagation-delay estimate HyStart
    /// compares against (`Duration::MAX` before the first sample).
    pub fn min_rtt(&self) -> Duration {
        self.min_rtt
    }

    /// Feed one RTT measurement (RFC 6298 §2.2–2.3).
    pub fn on_sample(&mut self, rtt: Duration) {
        if rtt < self.min_rtt {
            self.min_rtt = rtt;
            self.cached_hystart_thresh = rtt + rtt.mul_f64(0.25).max(Duration::from_millis(8));
        }
        if self.samples == 0 {
            self.srtt = rtt;
            self.rttvar = rtt / 2;
        } else {
            let err = self.srtt.abs_diff(rtt);
            // RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − R|
            self.rttvar = (self.rttvar * 3 + err) / 4;
            // SRTT ← 7/8·SRTT + 1/8·R
            self.srtt = (self.srtt * 7 + rtt) / 8;
        }
        self.samples += 1;
        self.cached_rto = (self.srtt + self.rttvar * 4).clamp(self.min_rto, self.max_rto);
    }

    /// Smoothed RTT (zero until the first sample).
    pub fn srtt(&self) -> Duration {
        self.srtt
    }

    /// RTT deviation estimate — σ for ECF's δ margin.
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }

    /// True once at least one sample has arrived.
    pub fn has_sample(&self) -> bool {
        self.samples > 0
    }

    /// Number of samples fed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current RTO: SRTT + 4·RTTVAR, clamped; [`Self::INITIAL_RTO`] before
    /// any sample.
    pub fn rto(&self) -> Duration {
        self.cached_rto
    }

    /// HyStart delay-increase threshold, `min_rtt + max(min_rtt/4, 8 ms)`
    /// ([`Duration::MAX`] before any sample — compares as "never exceeded").
    pub fn hystart_threshold(&self) -> Duration {
        self.cached_hystart_thresh
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(RttEstimator::new().rto(), Duration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        e.on_sample(Duration::from_millis(100));
        assert_eq!(e.srtt(), Duration::from_millis(100));
        assert_eq!(e.rttvar(), Duration::from_millis(50));
        // 100 + 4·50 = 300 ms.
        assert_eq!(e.rto(), Duration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge() {
        let mut e = RttEstimator::new();
        for _ in 0..200 {
            e.on_sample(Duration::from_millis(80));
        }
        assert_eq!(e.srtt(), Duration::from_millis(80));
        assert!(e.rttvar() < Duration::from_millis(1));
        // RTO floors at 200 ms even for small variance.
        assert_eq!(e.rto(), Duration::from_millis(200));
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut e = RttEstimator::new();
        for i in 0..400 {
            let ms = if i % 2 == 0 { 50 } else { 150 };
            e.on_sample(Duration::from_millis(ms));
        }
        // Mean ~100 ms, deviation on the order of 50 ms.
        assert!((80..=120).contains(&(e.srtt().as_millis() as u64)), "{:?}", e.srtt());
        assert!((30..=80).contains(&(e.rttvar().as_millis() as u64)), "{:?}", e.rttvar());
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut e = RttEstimator::with_bounds(Duration::from_millis(200), Duration::from_secs(2));
        e.on_sample(Duration::from_secs(5));
        assert_eq!(e.rto(), Duration::from_secs(2));
    }

    #[test]
    fn smoothing_weights_follow_rfc() {
        let mut e = RttEstimator::new();
        e.on_sample(Duration::from_millis(100));
        e.on_sample(Duration::from_millis(200));
        // SRTT = 7/8·100 + 1/8·200 = 112.5 ms
        assert_eq!(e.srtt(), Duration::from_micros(112_500));
        // RTTVAR = 3/4·50 + 1/4·100 = 62.5 ms
        assert_eq!(e.rttvar(), Duration::from_micros(62_500));
    }
}
