//! Congestion-window state machine for one subflow.
//!
//! This models the sender-side variables a Linux TCP socket keeps: cwnd
//! (fractionally, so coupled controllers can apply sub-segment increases),
//! ssthresh, slow start vs congestion avoidance, RTO backoff, and — central
//! to the paper — the RFC 5681 §4.1 *idle restart*: a connection idle for
//! longer than one RTO resets cwnd to the initial window. The paper shows
//! this reset is what cripples the fast subflow under the default scheduler
//! (Table 3 counts these events; Fig 6 toggles the mechanism).
//!
//! The *increase policy* is split out: in slow start the window grows here,
//! but congestion-avoidance increments are computed by the connection-level
//! congestion controller (Reno, LIA, OLIA — see the `mptcp` crate) and
//! applied through [`TcpCc::apply_ca_increase`], because coupled controllers
//! need cross-subflow state.

use std::time::Duration;

use simnet::Time;

use crate::rtt::RttEstimator;

/// Static per-subflow TCP parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial window in segments (RFC 6928; Linux default 10).
    pub initial_cwnd: u32,
    /// Window floor after loss events.
    pub min_cwnd: u32,
    /// Apply the RFC 5681 idle restart and RFC 2861 congestion-window
    /// validation (`false` reproduces Fig 6's "w/o CWND reset" mode).
    pub idle_reset: bool,
    /// RTO floor.
    pub min_rto: Duration,
    /// RTO ceiling.
    pub max_rto: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            initial_cwnd: 10,
            min_cwnd: 2,
            idle_reset: true,
            min_rto: RttEstimator::DEFAULT_MIN_RTO,
            max_rto: RttEstimator::DEFAULT_MAX_RTO,
        }
    }
}

/// Lifetime counters for one subflow's congestion controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcStats {
    /// Idle restarts back to the initial window (the paper's Table 3 metric,
    /// which also counts timeout-driven resets; see [`CcStats::iw_resets`]).
    pub idle_resets: u64,
    /// RTO-driven window collapses.
    pub rto_events: u64,
    /// Fast-retransmit (triple-dupack) halvings.
    pub fast_retransmits: u64,
    /// RFC 2861 application-limited decays applied.
    pub app_limited_decays: u64,
}

impl CcStats {
    /// Events that return the window to the initial value / slow start —
    /// idle restarts plus RTO collapses, matching Table 3's counting.
    pub fn iw_resets(&self) -> u64 {
        self.idle_resets + self.rto_events
    }
}

/// The congestion state machine.
#[derive(Debug, Clone)]
pub struct TcpCc {
    cfg: TcpConfig,
    /// Congestion window in segments, kept fractionally.
    cwnd: f64,
    /// `cwnd_pkts()` precomputed at mutation time: the scheduler and the ACK
    /// path read whole-segment cwnd far more often than it changes, and the
    /// f64 floor/convert chain is not free on that path.
    cwnd_pkts: u32,
    /// Slow-start threshold in segments.
    ssthresh: f64,
    /// RTT estimator for this subflow.
    pub rtt: RttEstimator,
    /// Exponential RTO backoff factor (power of two).
    backoff: u32,
    /// Last time a segment was sent (for idle detection).
    last_send: Time,
    /// Whether anything has been sent yet.
    started: bool,
    /// RFC 2861: the window actually used since the flow last filled cwnd.
    cwnd_used: u32,
    /// RFC 2861: when the flow was last cwnd-limited (or last decayed).
    cwnd_stamp: Time,
    stats: CcStats,
}

impl TcpCc {
    /// Fresh state with the given parameters.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpCc {
            cfg,
            cwnd: f64::from(cfg.initial_cwnd),
            cwnd_pkts: cfg.initial_cwnd.max(1),
            ssthresh: f64::INFINITY,
            rtt: RttEstimator::with_bounds(cfg.min_rto, cfg.max_rto),
            backoff: 0,
            last_send: Time::ZERO,
            started: false,
            cwnd_used: 0,
            cwnd_stamp: Time::ZERO,
            stats: CcStats::default(),
        }
    }

    /// Current window, whole segments (≥ 1).
    pub fn cwnd_pkts(&self) -> u32 {
        debug_assert_eq!(self.cwnd_pkts, (self.cwnd.floor() as u32).max(1));
        self.cwnd_pkts
    }

    /// Refresh the whole-segment cache; call after every `cwnd` write.
    fn sync_cwnd_pkts(&mut self) {
        self.cwnd_pkts = (self.cwnd.floor() as u32).max(1);
    }

    /// Current window, fractional (for controllers).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// True while cwnd is below ssthresh.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Effective retransmission timeout including exponential backoff,
    /// clamped to the configured ceiling.
    pub fn rto(&self) -> Duration {
        let base = self.rtt.rto();
        if self.backoff == 0 {
            // Multiplying by 2^0 is identity work; only the ceiling clamp
            // matters (the pre-sample initial RTO is not bounds-clamped).
            return base.min(self.cfg.max_rto);
        }
        base.saturating_mul(1u32 << self.backoff.min(6)).min(self.cfg.max_rto)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CcStats {
        self.stats
    }

    /// Record a transmission at `now` (updates idle tracking).
    pub fn note_send(&mut self, now: Time) {
        if !self.started {
            // First transmission starts the validation clock.
            self.cwnd_stamp = now;
        }
        self.last_send = now;
        self.started = true;
    }

    /// RFC 2861 congestion-window validation, Linux's
    /// `tcp_cwnd_application_limited`: call at the end of every send
    /// opportunity with the flow's current in-flight count. While the flow
    /// is *application-limited* (window open but nothing to send), the
    /// window decays halfway toward what was actually used, once per RTO,
    /// and ssthresh banks 3/4 of the forgotten window.
    ///
    /// This — not just the after-idle restart — is what drains a fast
    /// subflow's window while the default scheduler leaves it starved
    /// behind a slow subflow's stragglers.
    pub fn validate_app_limited(&mut self, now: Time, inflight: u32) -> bool {
        if !self.cfg.idle_reset || !self.started {
            return false;
        }
        if inflight >= self.cwnd_pkts() {
            // Network-limited: usage is honest, restart the clock.
            self.cwnd_used = 0;
            self.cwnd_stamp = now;
            return false;
        }
        self.cwnd_used = self.cwnd_used.max(inflight);
        if now.since(self.cwnd_stamp) >= self.rto()
            && self.cwnd > f64::from(self.cfg.initial_cwnd)
        {
            self.ssthresh = self.ssthresh.max(0.75 * self.cwnd);
            let used = f64::from(self.cwnd_used.max(self.cfg.initial_cwnd));
            self.cwnd = ((self.cwnd + used) / 2.0).max(f64::from(self.cfg.min_cwnd));
            self.sync_cwnd_pkts();
            self.cwnd_stamp = now;
            self.cwnd_used = 0;
            self.stats.app_limited_decays += 1;
            return true;
        }
        false
    }

    /// RFC 5681 §4.1: called before transmitting after a potential idle gap.
    /// If the subflow has been quiet for more than one RTO, collapse the
    /// window back to the initial value and return `true`.
    pub fn maybe_idle_reset(&mut self, now: Time) -> bool {
        if !self.cfg.idle_reset || !self.started {
            return false;
        }
        if now.since(self.last_send) > self.rto() && self.cwnd > f64::from(self.cfg.initial_cwnd)
        {
            self.cwnd = f64::from(self.cfg.initial_cwnd);
            self.sync_cwnd_pkts();
            // ssthresh is left in place: restart ramps via slow start up to
            // the previously learned threshold (RFC 2861 behaviour).
            self.stats.idle_resets += 1;
            return true;
        }
        false
    }

    /// HyStart-style delay-increase slow-start exit (Linux has shipped this
    /// since 2.6.29): once the smoothed RTT has risen clearly above the
    /// propagation floor, the pipe is full and further exponential growth
    /// only builds queue — exit into congestion avoidance at the current
    /// window. Returns true if slow start was exited.
    ///
    /// Deliberately conservative: the comparison uses the lifetime sRTT, so
    /// a restart that begins while the estimator still remembers bufferbloat
    /// exits early and climbs via congestion avoidance. Real HyStart samples
    /// per round and would ramp slightly faster; the conservative form is
    /// part of this model's calibration (see DESIGN.md §3).
    pub fn maybe_hystart_exit(&mut self) -> bool {
        if !self.in_slow_start() {
            return false;
        }
        // Threshold is min_rtt + max(min_rtt/4, 8 ms), cached by the
        // estimator (Duration::MAX before any sample, so the comparison
        // below also covers the no-sample case).
        let threshold = self.rtt.hystart_threshold();
        if self.rtt.srtt() > threshold && self.cwnd > f64::from(self.cfg.initial_cwnd) {
            self.ssthresh = self.cwnd;
            return true;
        }
        false
    }

    /// Clear the exponential RTO backoff (a cumulative ACK arrived).
    pub fn clear_rto_backoff(&mut self) {
        self.backoff = 0;
    }

    /// An ACK advanced the window during slow start: exponential growth.
    pub fn on_ack_slow_start(&mut self, newly_acked_pkts: u32) {
        debug_assert!(self.in_slow_start());
        self.cwnd += f64::from(newly_acked_pkts);
        self.sync_cwnd_pkts();
        self.backoff = 0;
    }

    /// Congestion-avoidance increase computed by the (possibly coupled)
    /// controller; `inc` is in segments and is typically ≤ 1/cwnd per ACK.
    pub fn apply_ca_increase(&mut self, inc: f64) {
        debug_assert!(inc >= 0.0, "CA increase must be non-negative");
        self.cwnd += inc;
        self.sync_cwnd_pkts();
        self.backoff = 0;
    }

    /// Triple-dupack fast retransmit: multiplicative decrease.
    pub fn on_fast_retransmit(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(f64::from(self.cfg.min_cwnd));
        self.cwnd = self.ssthresh;
        self.sync_cwnd_pkts();
        self.stats.fast_retransmits += 1;
    }

    /// Retransmission timeout: collapse to one segment, halve ssthresh,
    /// back off the timer exponentially.
    pub fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(f64::from(self.cfg.min_cwnd));
        self.cwnd = 1.0;
        self.sync_cwnd_pkts();
        self.backoff += 1;
        self.stats.rto_events += 1;
    }

    /// Externally force the window down (the opportunistic-retransmission
    /// *penalization* of Raiciu et al. halves the slow subflow's window).
    pub fn penalize(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(f64::from(self.cfg.min_cwnd));
        self.cwnd = self.ssthresh;
        self.sync_cwnd_pkts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> TcpCc {
        TcpCc::new(TcpConfig::default())
    }

    #[test]
    fn starts_at_initial_window_in_slow_start() {
        let c = cc();
        assert_eq!(c.cwnd_pkts(), 10);
        assert!(c.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut c = cc();
        // Ack a full window: 10 acks of 1 packet → cwnd 20.
        for _ in 0..10 {
            c.on_ack_slow_start(1);
        }
        assert_eq!(c.cwnd_pkts(), 20);
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut c = cc();
        for _ in 0..30 {
            c.on_ack_slow_start(1);
        }
        let before = c.cwnd_pkts();
        c.on_fast_retransmit();
        assert_eq!(c.cwnd_pkts(), before / 2);
        assert!(!c.in_slow_start());
        assert_eq!(c.stats().fast_retransmits, 1);
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut c = cc();
        for _ in 0..30 {
            c.on_ack_slow_start(1);
        }
        c.on_rto();
        assert_eq!(c.cwnd_pkts(), 1);
        assert!(c.in_slow_start());
        assert_eq!(c.stats().rto_events, 1);
        assert_eq!(c.stats().iw_resets(), 1);
    }

    #[test]
    fn rto_backoff_doubles_and_acks_clear_it() {
        let mut c = cc();
        c.rtt.on_sample(Duration::from_millis(100));
        let base = c.rto();
        c.on_rto();
        assert_eq!(c.rto(), base * 2);
        c.on_rto();
        assert_eq!(c.rto(), base * 4);
        c.apply_ca_increase(0.1);
        assert_eq!(c.rto(), base);
    }

    #[test]
    fn idle_reset_fires_after_rto_of_silence() {
        let mut c = cc();
        c.rtt.on_sample(Duration::from_millis(100));
        for _ in 0..50 {
            c.on_ack_slow_start(1);
        }
        assert_eq!(c.cwnd_pkts(), 60);
        c.note_send(Time::from_secs(1));
        // 250 ms later: not idle (RTO is 300 ms with rttvar=50).
        assert!(!c.maybe_idle_reset(Time::from_millis(1_250)));
        assert_eq!(c.cwnd_pkts(), 60);
        // 2 s later: idle → reset to IW.
        assert!(c.maybe_idle_reset(Time::from_secs(3)));
        assert_eq!(c.cwnd_pkts(), 10);
        assert!(c.in_slow_start());
        assert_eq!(c.stats().idle_resets, 1);
        assert_eq!(c.stats().iw_resets(), 1);
    }

    #[test]
    fn idle_reset_disabled_by_config() {
        let mut c = TcpCc::new(TcpConfig { idle_reset: false, ..TcpConfig::default() });
        c.rtt.on_sample(Duration::from_millis(50));
        for _ in 0..50 {
            c.on_ack_slow_start(1);
        }
        c.note_send(Time::from_secs(1));
        assert!(!c.maybe_idle_reset(Time::from_secs(100)));
        assert_eq!(c.cwnd_pkts(), 60);
    }

    #[test]
    fn idle_reset_never_inflates_small_window() {
        // A window already at/below IW must not be touched (nor counted).
        let mut c = cc();
        c.rtt.on_sample(Duration::from_millis(50));
        c.note_send(Time::from_secs(1));
        assert!(!c.maybe_idle_reset(Time::from_secs(50)));
        assert_eq!(c.stats().idle_resets, 0);
    }

    #[test]
    fn idle_reset_noop_before_first_send() {
        let mut c = cc();
        assert!(!c.maybe_idle_reset(Time::from_secs(100)));
    }

    #[test]
    fn penalize_halves_like_loss_but_counts_nothing() {
        let mut c = cc();
        for _ in 0..30 {
            c.on_ack_slow_start(1);
        }
        let before = c.cwnd_pkts();
        c.penalize();
        assert_eq!(c.cwnd_pkts(), before / 2);
        assert_eq!(c.stats().fast_retransmits, 0);
    }

    #[test]
    fn app_limited_decay_halves_toward_usage() {
        let mut c = cc();
        c.rtt.on_sample(Duration::from_millis(100));
        for _ in 0..100 {
            c.on_ack_slow_start(1);
        }
        assert_eq!(c.cwnd_pkts(), 110);
        c.note_send(Time::from_secs(1));
        // Flow becomes app-limited with only ~12 segments in use.
        assert!(!c.validate_app_limited(Time::from_secs(1), 12));
        // One RTO later the window decays halfway toward max(used, IW).
        assert!(c.validate_app_limited(Time::from_secs(3), 12));
        assert_eq!(c.cwnd_pkts(), (110 + 12) / 2);
        // ssthresh banked 3/4 of the forgotten window.
        assert!(c.ssthresh() >= 0.75 * 110.0);
        assert_eq!(c.stats().app_limited_decays, 1);
        // Repeated idling keeps decaying toward usage.
        assert!(c.validate_app_limited(Time::from_secs(6), 12));
        assert_eq!(c.cwnd_pkts(), (61 + 12) / 2);
    }

    #[test]
    fn network_limited_flow_never_decays() {
        let mut c = cc();
        c.rtt.on_sample(Duration::from_millis(100));
        for _ in 0..50 {
            c.on_ack_slow_start(1);
        }
        c.note_send(Time::from_secs(1));
        let cwnd = c.cwnd_pkts();
        for t in 1..20 {
            assert!(!c.validate_app_limited(Time::from_secs(t), cwnd));
        }
        assert_eq!(c.cwnd_pkts(), cwnd);
        assert_eq!(c.stats().app_limited_decays, 0);
    }

    #[test]
    fn validation_respects_disable_flag() {
        let mut c = TcpCc::new(TcpConfig { idle_reset: false, ..TcpConfig::default() });
        c.rtt.on_sample(Duration::from_millis(100));
        for _ in 0..50 {
            c.on_ack_slow_start(1);
        }
        c.note_send(Time::from_secs(1));
        assert!(!c.validate_app_limited(Time::from_secs(30), 2));
        assert_eq!(c.cwnd_pkts(), 60);
    }

    #[test]
    fn hystart_exits_on_delay_increase() {
        let mut c = cc();
        // Propagation floor 60 ms...
        c.rtt.on_sample(Duration::from_millis(60));
        for _ in 0..40 {
            c.on_ack_slow_start(1);
        }
        assert!(c.in_slow_start());
        // ...sRTT still near the floor: no exit.
        assert!(!c.maybe_hystart_exit());
        // Queue builds: samples well above floor + 25%.
        for _ in 0..20 {
            c.rtt.on_sample(Duration::from_millis(140));
        }
        assert!(c.maybe_hystart_exit());
        assert!(!c.in_slow_start());
        assert_eq!(c.ssthresh(), c.cwnd());
        // Idempotent once exited.
        assert!(!c.maybe_hystart_exit());
    }

    #[test]
    fn hystart_never_fires_at_initial_window() {
        let mut c = cc();
        c.rtt.on_sample(Duration::from_millis(60));
        for _ in 0..20 {
            c.rtt.on_sample(Duration::from_millis(200));
        }
        // cwnd still at IW: exiting would pin ssthresh at 10 forever.
        assert!(!c.maybe_hystart_exit());
    }

    #[test]
    fn cwnd_floor_is_one_segment() {
        let mut c = cc();
        c.on_rto();
        c.on_rto();
        assert_eq!(c.cwnd_pkts(), 1);
        c.on_fast_retransmit();
        assert!(c.cwnd_pkts() >= 1);
    }
}
