//! # tcp-model — sender-side TCP machinery for subflows
//!
//! The per-subflow state a Linux MPTCP sender keeps, modelled at segment
//! granularity: RFC 6298 RTT estimation ([`RttEstimator`]), and the
//! congestion state machine ([`TcpCc`]) with slow start, congestion
//! avoidance, fast retransmit, RTO backoff, and the RFC 5681 §4.1 idle
//! restart whose interaction with the default scheduler the paper dissects.
//!
//! Congestion-avoidance *increase policies* (Reno, coupled LIA, OLIA) live in
//! the `mptcp` crate because coupled controllers need cross-subflow state;
//! this crate exposes the mechanics they drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod rtt;

pub use congestion::{CcStats, TcpCc, TcpConfig};
pub use rtt::RttEstimator;

/// Segment payload size used throughout the reproduction (typical Ethernet
/// MSS with timestamps).
pub const MSS: u32 = 1448;
/// On-the-wire size of a full segment (payload + TCP/IP/MPTCP overhead).
pub const WIRE_OVERHEAD: u32 = 52;

/// Wire size of a segment carrying `payload` bytes.
pub const fn wire_size(payload: u32) -> u32 {
    payload + WIRE_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_adds_overhead() {
        assert_eq!(wire_size(MSS), 1500);
        assert_eq!(wire_size(0), 52);
    }
}
