//! The DASH client player state machine.
//!
//! Reproduces the behaviour §2.2 describes: an *initial buffering* phase
//! that fills the playback buffer to its maximum, then a steady ON-OFF cycle
//! — pause while the buffer is full, resume one chunk-duration below the
//! cap — with *rebuffering* when the buffer runs dry. The OFF periods are
//! what idle MPTCP subflows long enough to trigger the CWND resets at the
//! heart of the paper.
//!
//! The player is a pure state machine (no simulator types beyond `Time`), so
//! its logic is tested exhaustively here; `DashApp` adapts it to the
//! testbed's [`mptcp::Application`] interface.

use simnet::Time;

use crate::abr::{select, AbrKind, BITRATE_LADDER_MBPS};

/// Player parameters. Defaults give a Netflix-like small-screen profile
/// scaled for simulation speed (documented in DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Seconds of video per chunk (the paper encodes 5 s chunks).
    pub chunk_secs: f64,
    /// Total video duration in seconds.
    pub video_secs: f64,
    /// Playback buffer capacity in seconds of video.
    pub max_buffer_secs: f64,
    /// Buffer level at which playback starts (initially and after a stall).
    pub startup_threshold_secs: f64,
    /// ABR policy.
    pub abr: AbrKind,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            chunk_secs: 5.0,
            video_secs: 180.0,
            max_buffer_secs: 30.0,
            startup_threshold_secs: 10.0,
            abr: AbrKind::BufferBased,
        }
    }
}

/// One downloaded chunk.
#[derive(Debug, Clone, Copy)]
pub struct ChunkRecord {
    /// Chunk index.
    pub index: u64,
    /// Representation chosen.
    pub repr: usize,
    /// Bytes downloaded.
    pub bytes: u64,
    /// Request time.
    pub started: Time,
    /// Completion time.
    pub finished: Time,
}

impl ChunkRecord {
    /// Download throughput of this chunk in Mbps.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.finished.since(self.started).as_secs_f64().max(1e-9);
        self.bytes as f64 * 8.0 / secs / 1e6
    }

    /// Encoded bit rate of the chosen representation.
    pub fn bitrate_mbps(&self) -> f64 {
        BITRATE_LADDER_MBPS[self.repr]
    }
}

/// What the player wants to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlayerAction {
    /// Fetch the next chunk: `bytes` at representation `repr`.
    Request {
        /// Representation index.
        repr: usize,
        /// Chunk size in bytes.
        bytes: u64,
    },
    /// Pause (buffer full) until the given time, then ask again.
    WaitUntil(Time),
    /// All chunks fetched.
    Finished,
}

/// The player.
pub struct Player {
    cfg: PlayerConfig,
    chunks_total: u64,
    next_chunk: u64,
    /// Seconds of video buffered.
    buffer_secs: f64,
    /// Whether the video is currently playing (consuming buffer).
    playing: bool,
    /// Last time `buffer_secs` was brought up to date.
    last_update: Time,
    /// EWMA of per-chunk throughput, Mbps.
    est_mbps: f64,
    /// Pending request: (repr, bytes, started).
    outstanding: Option<(usize, u64, Time)>,
    /// Completed chunk log.
    pub history: Vec<ChunkRecord>,
    /// Number of playback stalls after startup.
    pub rebuffer_events: u64,
    /// Total seconds spent stalled (including initial buffering).
    pub stalled_secs: f64,
}

/// EWMA weight for new throughput samples.
const EST_GAIN: f64 = 0.4;

impl Player {
    /// A player for the configured video.
    pub fn new(cfg: PlayerConfig) -> Self {
        assert!(cfg.chunk_secs > 0.0 && cfg.video_secs >= cfg.chunk_secs);
        assert!(
            cfg.startup_threshold_secs <= cfg.max_buffer_secs - cfg.chunk_secs,
            "startup threshold must leave room below the ON-OFF cap"
        );
        let chunks_total = (cfg.video_secs / cfg.chunk_secs).ceil() as u64;
        Player {
            cfg,
            chunks_total,
            next_chunk: 0,
            buffer_secs: 0.0,
            playing: false,
            last_update: Time::ZERO,
            est_mbps: 0.0,
            outstanding: None,
            history: Vec::new(),
            rebuffer_events: 0,
            stalled_secs: 0.0,
        }
    }

    /// Number of chunks in the video.
    pub fn chunks_total(&self) -> u64 {
        self.chunks_total
    }

    /// Current buffer level (seconds of video), after draining to `now`.
    pub fn buffer_secs(&self, now: Time) -> f64 {
        let mut b = self.buffer_secs;
        if self.playing {
            b -= now.since(self.last_update).as_secs_f64();
        }
        b.max(0.0)
    }

    /// Mean encoded bit rate over downloaded chunks (the paper's headline
    /// streaming metric).
    pub fn avg_bitrate_mbps(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(ChunkRecord::bitrate_mbps).sum::<f64>()
            / self.history.len() as f64
    }

    /// Mean per-chunk download throughput.
    pub fn avg_throughput_mbps(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(ChunkRecord::throughput_mbps).sum::<f64>()
            / self.history.len() as f64
    }

    /// Bring buffer/stall accounting up to `now`.
    fn advance(&mut self, now: Time) {
        let dt = now.since(self.last_update).as_secs_f64();
        if self.playing {
            self.buffer_secs -= dt;
            if self.buffer_secs <= 0.0 {
                // Stall: the buffer ran dry dt + buffer ago.
                self.stalled_secs += -self.buffer_secs;
                self.buffer_secs = 0.0;
                self.playing = false;
                self.rebuffer_events += 1;
            }
        } else {
            self.stalled_secs += dt;
        }
        self.last_update = now;
    }

    /// Size in bytes of a chunk at representation `repr`.
    fn chunk_bytes(&self, repr: usize) -> u64 {
        (BITRATE_LADDER_MBPS[repr] * 1e6 * self.cfg.chunk_secs / 8.0) as u64
    }

    /// Start the session: request the first chunk.
    pub fn on_start(&mut self, now: Time) -> PlayerAction {
        self.last_update = now;
        self.decide(now)
    }

    /// The outstanding chunk finished downloading.
    pub fn on_chunk_complete(&mut self, now: Time) -> PlayerAction {
        self.advance(now);
        let (repr, bytes, started) =
            self.outstanding.take().expect("completion without outstanding request");
        let rec = ChunkRecord { index: self.next_chunk, repr, bytes, started, finished: now };
        let sample = rec.throughput_mbps();
        self.est_mbps = if self.est_mbps == 0.0 {
            sample
        } else {
            (1.0 - EST_GAIN) * self.est_mbps + EST_GAIN * sample
        };
        self.history.push(rec);
        self.next_chunk += 1;
        self.buffer_secs += self.cfg.chunk_secs;
        // Play once the startup threshold is buffered (or there is nothing
        // left to fetch).
        if !self.playing
            && (self.buffer_secs >= self.cfg.startup_threshold_secs || self.remaining() == 0)
        {
            self.playing = true;
        }
        self.decide(now)
    }

    /// A scheduled wake-up (end of an OFF period) fired.
    pub fn on_wake(&mut self, now: Time) -> PlayerAction {
        self.advance(now);
        self.decide(now)
    }

    fn remaining(&self) -> u64 {
        self.chunks_total - self.next_chunk
    }

    fn decide(&mut self, now: Time) -> PlayerAction {
        if self.next_chunk >= self.chunks_total {
            return PlayerAction::Finished;
        }
        debug_assert!(self.outstanding.is_none(), "one request at a time");
        // OFF period: wait until one chunk of room frees up.
        let room_needed = self.cfg.max_buffer_secs - self.cfg.chunk_secs;
        if self.buffer_secs > room_needed && self.playing {
            // Floor the wait so float rounding can never produce a zero-length
            // sleep (which would spin the event loop at one instant).
            let wait = (self.buffer_secs - room_needed).max(0.01);
            return PlayerAction::WaitUntil(
                now + std::time::Duration::from_secs_f64(wait),
            );
        }
        let prev = self.history.last().map_or(0, |c| c.repr);
        let repr = select(
            self.cfg.abr,
            self.buffer_secs,
            self.cfg.max_buffer_secs,
            self.est_mbps,
            prev,
        );
        let bytes = self.chunk_bytes(repr);
        self.outstanding = Some((repr, bytes, now));
        PlayerAction::Request { repr, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg() -> PlayerConfig {
        PlayerConfig { video_secs: 60.0, ..PlayerConfig::default() }
    }

    /// Simulate downloads at a fixed network rate and return the player log.
    fn run_fixed_rate(cfg: PlayerConfig, mbps: f64) -> Player {
        let mut p = Player::new(cfg);
        let mut now = Time::ZERO;
        let mut action = p.on_start(now);
        loop {
            match action {
                PlayerAction::Request { bytes, .. } => {
                    let dl = Duration::from_secs_f64(bytes as f64 * 8.0 / (mbps * 1e6));
                    now += dl;
                    action = p.on_chunk_complete(now);
                }
                PlayerAction::WaitUntil(t) => {
                    assert!(t > now, "wake-up must be in the future");
                    now = t;
                    action = p.on_wake(now);
                }
                PlayerAction::Finished => return p,
            }
        }
    }

    #[test]
    fn downloads_whole_video() {
        let p = run_fixed_rate(cfg(), 5.0);
        assert_eq!(p.history.len(), 12); // 60 s / 5 s chunks
        let indices: Vec<u64> = p.history.iter().map(|c| c.index).collect();
        assert_eq!(indices, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn abr_converges_below_available_rate() {
        let p = run_fixed_rate(PlayerConfig { video_secs: 300.0, ..cfg() }, 5.0);
        // BBA equilibrium at 5 Mbps: a 760p base with occasional 1080p picks
        // when the buffer tops out — average tracks the available rate.
        let avg = p.avg_bitrate_mbps();
        assert!((3.2..=5.5).contains(&avg), "avg bitrate {avg} at 5 Mbps");
        assert_eq!(p.rebuffer_events, 0);
    }

    #[test]
    fn poor_network_sticks_to_low_rates() {
        let p = run_fixed_rate(PlayerConfig { video_secs: 300.0, ..cfg() }, 0.4);
        let avg = p.avg_bitrate_mbps();
        // Oscillates between 144p and 240p around the 0.4 Mbps equilibrium.
        assert!(avg < 0.65, "avg bitrate {avg} too high for 0.4 Mbps");
    }

    #[test]
    fn on_off_cycle_appears_at_high_bandwidth() {
        // At 50 Mbps the buffer fills far faster than it drains: the player
        // must enter OFF periods rather than request continuously.
        let mut p = Player::new(PlayerConfig { video_secs: 300.0, ..cfg() });
        let mut now = Time::ZERO;
        let mut waits = 0;
        let mut action = p.on_start(now);
        loop {
            match action {
                PlayerAction::Request { bytes, .. } => {
                    let dl = Duration::from_secs_f64(bytes as f64 * 8.0 / 50e6);
                    now += dl;
                    action = p.on_chunk_complete(now);
                }
                PlayerAction::WaitUntil(t) => {
                    waits += 1;
                    now = t;
                    action = p.on_wake(now);
                }
                PlayerAction::Finished => break,
            }
        }
        assert!(waits > 10, "expected ON-OFF cycling, saw {waits} waits");
    }

    #[test]
    fn buffer_never_exceeds_cap_by_more_than_one_chunk() {
        let mut p = Player::new(PlayerConfig { video_secs: 300.0, ..cfg() });
        let mut now = Time::ZERO;
        let mut action = p.on_start(now);
        loop {
            assert!(
                p.buffer_secs(now) <= p.cfg.max_buffer_secs + p.cfg.chunk_secs + 1e-6,
                "buffer overflow at {now}"
            );
            match action {
                PlayerAction::Request { bytes, .. } => {
                    now += Duration::from_secs_f64(bytes as f64 * 8.0 / 20e6);
                    action = p.on_chunk_complete(now);
                }
                PlayerAction::WaitUntil(t) => {
                    now = t;
                    action = p.on_wake(now);
                }
                PlayerAction::Finished => break,
            }
        }
    }

    #[test]
    fn rebuffering_counted_on_starvation() {
        // Startup at 10 s of buffer, then the network collapses far below
        // the lowest representation: the buffer must run dry.
        let mut p = Player::new(PlayerConfig { video_secs: 120.0, ..cfg() });
        let mut now = Time::ZERO;
        let mut action = p.on_start(now);
        let mut chunk = 0;
        loop {
            match action {
                PlayerAction::Request { bytes, .. } => {
                    chunk += 1;
                    // First two chunks fast (startup), then 30 s per chunk.
                    let rate = if chunk <= 2 { 50e6 } else { 0.04e6 };
                    now += Duration::from_secs_f64(bytes as f64 * 8.0 / rate);
                    action = p.on_chunk_complete(now);
                }
                PlayerAction::WaitUntil(t) => {
                    now = t;
                    action = p.on_wake(now);
                }
                PlayerAction::Finished => break,
            }
        }
        assert!(p.rebuffer_events > 0);
        assert!(p.stalled_secs > 10.0);
    }

    #[test]
    fn throughput_metric_sane() {
        let p = run_fixed_rate(cfg(), 2.0);
        let tp = p.avg_throughput_mbps();
        assert!((1.0..=2.2).contains(&tp), "avg throughput {tp}");
    }

    #[test]
    fn chunk_bytes_match_ladder() {
        let p = Player::new(cfg());
        // 1080p, 5 s: 8.47 Mbps · 5 s / 8 = 5.29 MB.
        assert_eq!(p.chunk_bytes(5), (8.47 * 1e6 * 5.0 / 8.0) as u64);
        assert!(p.chunk_bytes(0) < p.chunk_bytes(5));
    }
}
