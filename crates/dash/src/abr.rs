//! Adaptive bit-rate selection.
//!
//! The paper's client runs a "state-of-the-art" buffer-based ABR
//! (Huang et al., SIGCOMM 2014 \[12\]); we implement that (BBA-style
//! reservoir + cushion mapping), a classic throughput-based ABR, and a
//! fixed-rate pseudo-ABR for controlled tests.
//!
//! Table 1's ladder is the paper's.

/// Table 1: bit rates (Mbps) for each representation, 144p → 1080p.
pub const BITRATE_LADDER_MBPS: [f64; 6] = [0.26, 0.64, 1.00, 1.60, 4.14, 8.47];

/// Resolution labels matching [`BITRATE_LADDER_MBPS`].
pub const RESOLUTIONS: [&str; 6] = ["144p", "240p", "360p", "480p", "760p", "1080p"];

/// The ideal average bit rate for a given aggregate bandwidth: the paper
/// defines it as min(aggregate bandwidth, highest-representation bit rate)
/// (§3.1's Fig 2 definition).
pub fn ideal_avg_bitrate_mbps(aggregate_mbps: f64) -> f64 {
    aggregate_mbps.min(*BITRATE_LADDER_MBPS.last().expect("ladder non-empty"))
}

/// Largest representation whose bit rate fits within `budget_mbps`
/// (at least the lowest).
pub fn highest_fitting(budget_mbps: f64) -> usize {
    BITRATE_LADDER_MBPS
        .iter()
        .rposition(|&r| r <= budget_mbps)
        .unwrap_or(0)
}

/// Which ABR policy the player runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbrKind {
    /// Buffer-based (BBA): rate is a function of playback-buffer level.
    BufferBased,
    /// Throughput-based: rate ≤ safety × estimated throughput.
    RateBased,
    /// Always the given representation (controlled experiments).
    Fixed(usize),
}

/// Buffer-based parameters (fractions of the maximum buffer). The ramp must
/// end below the player's ON-OFF operating point (max − one chunk), i.e. an
/// upper reservoir, otherwise steady state can never reach R_max — BBA's
/// map reaches R_max at 90% of the cushion for the same reason.
const RESERVOIR_FRAC: f64 = 0.2;
const CUSHION_FRAC: f64 = 0.55;
/// Safety factor for throughput-driven decisions.
const RATE_SAFETY: f64 = 0.8;

/// Pick the representation for the next chunk.
///
/// * `buffer_secs` — current playback buffer level;
/// * `max_buffer_secs` — the player's buffer capacity;
/// * `est_mbps` — smoothed throughput estimate (0 before the first chunk);
/// * `prev` — representation of the previous chunk (BBA-0 hysteresis).
pub fn select(
    kind: AbrKind,
    buffer_secs: f64,
    max_buffer_secs: f64,
    est_mbps: f64,
    prev: usize,
) -> usize {
    let top = BITRATE_LADDER_MBPS.len() - 1;
    match kind {
        AbrKind::Fixed(r) => r.min(top),
        AbrKind::RateBased => highest_fitting(RATE_SAFETY * est_mbps),
        AbrKind::BufferBased => {
            let prev = prev.min(top);
            let reservoir = RESERVOIR_FRAC * max_buffer_secs;
            let cushion = CUSHION_FRAC * max_buffer_secs;
            let r_min = BITRATE_LADDER_MBPS[0];
            let r_max = *BITRATE_LADDER_MBPS.last().expect("ladder non-empty");
            // BBA-0 (Huang et al. [12]): R_min below the reservoir, R_max
            // above reservoir+cushion, and inside the ramp a linear rate map
            // f(B) with hysteresis — keep the previous rate unless f(B)
            // crosses the next rate up or falls below the current one.
            let pick = if buffer_secs <= reservoir {
                0
            } else if buffer_secs >= reservoir + cushion {
                top
            } else {
                let f = r_min + (r_max - r_min) * (buffer_secs - reservoir) / cushion;
                let rate_up =
                    BITRATE_LADDER_MBPS.get(prev + 1).copied().unwrap_or(f64::INFINITY);
                if f >= rate_up || f < BITRATE_LADDER_MBPS[prev] {
                    highest_fitting(f)
                } else {
                    prev
                }
            };
            // Upward moves are smoothed to one level per chunk (as deployed
            // players do); downward moves may jump to stay stall-safe.
            pick.min(prev + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_table1() {
        assert_eq!(BITRATE_LADDER_MBPS.len(), 6);
        assert_eq!(RESOLUTIONS.len(), 6);
        assert_eq!(BITRATE_LADDER_MBPS[0], 0.26);
        assert_eq!(BITRATE_LADDER_MBPS[5], 8.47);
        // Strictly increasing.
        for w in BITRATE_LADDER_MBPS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ideal_bitrate_definition() {
        // The paper's 8.6+8.6 example: ideal is the 1080p rate.
        assert_eq!(ideal_avg_bitrate_mbps(17.2), 8.47);
        // 0.3+0.7 = 1.0: ideal is the aggregate itself.
        assert_eq!(ideal_avg_bitrate_mbps(1.0), 1.0);
    }

    #[test]
    fn highest_fitting_basics() {
        assert_eq!(highest_fitting(0.0), 0);
        assert_eq!(highest_fitting(0.26), 0);
        assert_eq!(highest_fitting(0.9), 1);
        assert_eq!(highest_fitting(1.0), 2);
        assert_eq!(highest_fitting(100.0), 5);
    }

    #[test]
    fn fixed_clamps() {
        assert_eq!(select(AbrKind::Fixed(3), 0.0, 30.0, 0.0, 0), 3);
        assert_eq!(select(AbrKind::Fixed(99), 0.0, 30.0, 0.0, 0), 5);
    }

    #[test]
    fn fixed_ignores_everything_else() {
        assert_eq!(select(AbrKind::Fixed(2), 30.0, 30.0, 100.0, 5), 2);
    }

    #[test]
    fn rate_based_uses_safety_margin() {
        // 2 Mbps estimate → budget 1.6 → 480p (index 3).
        assert_eq!(select(AbrKind::RateBased, 0.0, 30.0, 2.0, 0), 3);
        // No estimate yet → lowest.
        assert_eq!(select(AbrKind::RateBased, 0.0, 30.0, 0.0, 0), 0);
    }

    #[test]
    fn buffer_based_monotone_in_buffer_from_low_prev() {
        let mut last = 0;
        for b in 0..=30 {
            let r = select(AbrKind::BufferBased, f64::from(b), 30.0, 0.0, last);
            assert!(r >= last, "ABR regressed at buffer={b}");
            last = r;
        }
        // The ratchet walked all the way up by the end.
        assert_eq!(last, 5);
        // Empty buffer → lowest; full buffer from one level below → highest.
        assert_eq!(select(AbrKind::BufferBased, 0.0, 30.0, 0.0, 0), 0);
        assert_eq!(select(AbrKind::BufferBased, 30.0, 30.0, 0.0, 4), 5);
        // Step-up smoothing: a cold player cannot jump straight to 1080p.
        assert_eq!(select(AbrKind::BufferBased, 30.0, 30.0, 0.0, 0), 1);
    }

    #[test]
    fn buffer_based_reservoir_forces_lowest() {
        // Below the reservoir (6 s of a 30 s buffer) always the lowest rate,
        // regardless of history.
        assert_eq!(select(AbrKind::BufferBased, 3.0, 30.0, 50.0, 5), 0);
    }

    #[test]
    fn buffer_based_hysteresis_holds_previous() {
        // Ramp: f(B) = 0.26 + 8.21·(B−6)/16.5. At B=8, f ≈ 1.26: between
        // 360p (1.0) and 480p (1.6) → a player already at 360p stays there.
        assert_eq!(select(AbrKind::BufferBased, 8.0, 30.0, 0.0, 2), 2);
        // ...but a player at 480p steps down to what the map supports.
        assert_eq!(select(AbrKind::BufferBased, 8.0, 30.0, 0.0, 3), 2);
        // ...and a player at 240p steps up since f crossed 1.0.
        assert_eq!(select(AbrKind::BufferBased, 8.0, 30.0, 0.0, 1), 2);
    }

    #[test]
    fn buffer_based_ramp_ends_before_buffer_cap() {
        // R_max must already be selected at the ON-OFF operating point
        // (max buffer − one chunk), or steady state can never reach 1080p.
        assert_eq!(select(AbrKind::BufferBased, 25.0, 30.0, 0.0, 4), 5);
    }
}
