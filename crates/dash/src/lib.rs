//! # dash — DASH adaptive-bit-rate streaming client model
//!
//! The video workload of the paper's evaluation: a DASH session with the
//! Table-1 representation ladder, 5-second chunks, initial buffering, the
//! steady ON-OFF download cycle and rebuffering (§2.2), driven by a
//! buffer-based ABR (Huang et al. [12]) by default.
//!
//! [`Player`] is a pure state machine; [`DashApp`] runs it over an
//! [`mptcp::Testbed`] connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abr;
mod app;
mod player;

pub use abr::{
    highest_fitting, ideal_avg_bitrate_mbps, select, AbrKind, BITRATE_LADDER_MBPS, RESOLUTIONS,
};
pub use app::DashApp;
pub use player::{ChunkRecord, Player, PlayerAction, PlayerConfig};
