//! Adapter binding the [`Player`] state machine to the MPTCP testbed.

use mptcp::{Api, Application, ConnId};
use simnet::Time;

use crate::player::{Player, PlayerAction, PlayerConfig};

/// A DASH streaming session running over testbed connection `conn`.
pub struct DashApp {
    /// The player under test (exposes history/metrics after the run).
    pub player: Player,
    conn: ConnId,
    finished_at: Option<Time>,
}

impl DashApp {
    /// Stream the configured video over connection `conn`.
    pub fn new(cfg: PlayerConfig, conn: ConnId) -> Self {
        DashApp { player: Player::new(cfg), conn, finished_at: None }
    }

    /// When the last chunk completed, if the session is done.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    fn act(&mut self, now: Time, action: PlayerAction, api: &mut Api<'_>) {
        match action {
            PlayerAction::Request { bytes, .. } => {
                api.request(self.conn, bytes);
            }
            PlayerAction::WaitUntil(t) => api.set_timer(t, self.conn as u64),
            PlayerAction::Finished => self.finished_at = Some(now),
        }
    }
}

impl Application for DashApp {
    fn on_start(&mut self, now: Time, api: &mut Api<'_>) {
        let action = self.player.on_start(now);
        self.act(now, action, api);
    }

    fn on_response_complete(&mut self, now: Time, conn: ConnId, _req: u64, api: &mut Api<'_>) {
        debug_assert_eq!(conn, self.conn);
        let action = self.player.on_chunk_complete(now);
        self.act(now, action, api);
    }

    fn on_timer(&mut self, now: Time, _token: u64, api: &mut Api<'_>) {
        let action = self.player.on_wake(now);
        self.act(now, action, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecf_core::SchedulerKind;
    use mptcp::{Testbed, TestbedConfig};

    fn stream(
        wifi: f64,
        lte: f64,
        kind: SchedulerKind,
        video_secs: f64,
        seed: u64,
    ) -> Testbed<DashApp> {
        let cfg = TestbedConfig::wifi_lte(wifi, lte, kind, seed);
        let pcfg = PlayerConfig { video_secs, ..PlayerConfig::default() };
        let mut tb = Testbed::new(cfg, DashApp::new(pcfg, 0));
        tb.run_until(Time::from_secs(video_secs as u64 * 4 + 120));
        tb
    }

    #[test]
    fn streams_to_completion_over_mptcp() {
        let tb = stream(4.2, 4.2, SchedulerKind::Ecf, 60.0, 1);
        assert!(tb.app().finished_at().is_some(), "video did not finish");
        assert_eq!(tb.app().player.history.len(), 12);
    }

    #[test]
    fn rich_network_reaches_high_bitrate() {
        let tb = stream(8.6, 8.6, SchedulerKind::Ecf, 120.0, 2);
        let avg = tb.app().player.avg_bitrate_mbps();
        assert!(avg > 4.0, "avg bitrate only {avg} Mbps on 17.2 Mbps aggregate");
    }

    #[test]
    fn starved_network_stays_low() {
        let tb = stream(0.3, 0.3, SchedulerKind::Default, 60.0, 3);
        let avg = tb.app().player.avg_bitrate_mbps();
        assert!(avg < 0.7, "avg bitrate {avg} impossible at 0.6 Mbps aggregate");
    }

    #[test]
    fn heterogeneous_paths_ecf_beats_default() {
        // The paper's headline effect, end to end: 0.3 Mbps WiFi (primary)
        // + 8.6 Mbps LTE. ECF must extract a higher average bit rate.
        let ecf = stream(0.3, 8.6, SchedulerKind::Ecf, 120.0, 4);
        let def = stream(0.3, 8.6, SchedulerKind::Default, 120.0, 4);
        let (be, bd) = (
            ecf.app().player.avg_bitrate_mbps(),
            def.app().player.avg_bitrate_mbps(),
        );
        assert!(
            be > bd * 1.1,
            "ECF ({be} Mbps) should clearly beat default ({bd} Mbps) under heterogeneity"
        );
    }
}
