//! Streaming benches: regenerate the data behind Figs 1-3, 5-7, 9-17 and
//! Tables 2-3 at benchmark scale (30 s videos, one seed).

use testkit::bench::{criterion_group, criterion_main, Criterion};
use ecf_bench::{bench_streaming, HETERO, SYMMETRIC};
use ecf_core::SchedulerKind;
use experiments::{run_streaming, StreamingConfig, VARIABLE_BW_SET};
use scenario::Scenario;
use simnet::Time;

fn bench_fig2_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_bitrate_ratio_cell");
    group.sample_size(10);
    for kind in SchedulerKind::paper_set() {
        group.bench_function(format!("hetero_0.3-8.6/{}", kind.label()), |b| {
            b.iter(|| {
                let out = bench_streaming(HETERO.0, HETERO.1, kind);
                std::hint::black_box(out.avg_bitrate / out.ideal_bitrate)
            })
        });
    }
    group.bench_function("symmetric_4.2-4.2/ecf", |b| {
        b.iter(|| bench_streaming(SYMMETRIC.0, SYMMETRIC.1, SchedulerKind::Ecf).avg_bitrate)
    });
    group.finish();
}

fn bench_fig1_fig3_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_figures");
    group.sample_size(10);
    group.bench_function("fig1_download_progress", |b| {
        b.iter(|| bench_streaming(4.2, 4.2, SchedulerKind::Default).download_progress)
    });
    group.bench_function("fig3_sndbuf+fig11_cwnd_traces", |b| {
        b.iter(|| {
            let out = run_streaming(&StreamingConfig {
                video_secs: 30.0,
                recorder: mptcp::RecorderConfig {
                    cwnd_traces: true,
                    sndbuf_traces: true,
                    ..mptcp::RecorderConfig::default()
                },
                ..StreamingConfig::new(HETERO.0, HETERO.1, SchedulerKind::Default, 1)
            });
            std::hint::black_box((out.cwnd_traces.len(), out.sndbuf_traces.len()))
        })
    });
    group.finish();
}

fn bench_fig5_fig13_fig14_delays(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_figures");
    group.sample_size(10);
    group.bench_function("fig5_last_packet_gaps", |b| {
        b.iter(|| bench_streaming(HETERO.0, HETERO.1, SchedulerKind::Default).last_packet_gaps)
    });
    group.bench_function("fig13_fig14_ooo_delays", |b| {
        b.iter(|| bench_streaming(HETERO.0, HETERO.1, SchedulerKind::Ecf).ooo_delays)
    });
    group.finish();
}

fn bench_fig6_tab3_resets(c: &mut Criterion) {
    let mut group = c.benchmark_group("cwnd_reset_figures");
    group.sample_size(10);
    group.bench_function("fig6_with_reset", |b| {
        b.iter(|| bench_streaming(HETERO.0, HETERO.1, SchedulerKind::Default).avg_throughput)
    });
    group.bench_function("fig6_without_reset", |b| {
        b.iter(|| {
            run_streaming(&StreamingConfig {
                video_secs: 30.0,
                cwnd_conservation: false,
                ..StreamingConfig::new(HETERO.0, HETERO.1, SchedulerKind::Default, 1)
            })
            .avg_throughput
        })
    });
    group.bench_function("tab3_iw_resets", |b| {
        b.iter(|| bench_streaming(HETERO.0, HETERO.1, SchedulerKind::Ecf).fast_iw_resets)
    });
    group.finish();
}

fn bench_fig7_fig10_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_split");
    group.sample_size(10);
    for kind in [SchedulerKind::Default, SchedulerKind::Blest, SchedulerKind::Ecf] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| bench_streaming(HETERO.0, HETERO.1, kind).fast_fraction)
        });
    }
    group.finish();
}

fn bench_fig15_four_subflows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_four_subflows");
    group.sample_size(10);
    for kind in [SchedulerKind::Default, SchedulerKind::Ecf] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                run_streaming(&StreamingConfig {
                    video_secs: 30.0,
                    subflows_per_interface: 2,
                    ..StreamingConfig::new(0.3, 4.2, kind, 1)
                })
                .avg_bitrate
            })
        });
    }
    group.finish();
}

fn bench_fig16_fig17_variable_bw(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_bandwidth");
    group.sample_size(10);
    let horizon = Time::from_secs(400);
    for kind in [SchedulerKind::Default, SchedulerKind::Ecf] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mean = std::time::Duration::from_secs(40);
                let dynamics = Scenario::new()
                    .random_rates(0, 12, mean, &VARIABLE_BW_SET, horizon)
                    .random_rates(1, 13, mean, &VARIABLE_BW_SET, horizon);
                run_streaming(&StreamingConfig {
                    video_secs: 30.0,
                    scenario: Some(dynamics),
                    ..StreamingConfig::new(1.7, 1.7, kind, 6)
                })
                .chunk_throughputs
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fig2_fig9, bench_fig1_fig3_traces, bench_fig5_fig13_fig14_delays,
              bench_fig6_tab3_resets, bench_fig7_fig10_split, bench_fig15_four_subflows,
              bench_fig16_fig17_variable_bw
}
criterion_main!(benches);
