//! Raw event-queue throughput: calendar wheel vs the binary heap it
//! replaced.
//!
//! The workload models the many-connection steady state (`browse_24conn`):
//! thousands of pending events — per-packet link deliveries a few hundred
//! microseconds out, delayed-ACK timers tens of milliseconds out, RTO
//! timers hundreds of milliseconds out — churned pop-one/push-one the way
//! the engine drives its queue. At this depth every heap op walks a
//! log₂(n)-deep comparison path while the wheel's schedule/pop stay O(1),
//! which is the gap this bench pins (the wheel is expected to be well
//! over 1.5× the heap here; see DESIGN.md §9).
//!
//! The heap implementation below is a faithful replica of the pre-wheel
//! `simnet::EventQueue` (`BinaryHeap<Reverse<(Time, seq, event)>>`); the
//! in-tree original now lives behind `#[cfg(test)]` as the property-test
//! oracle and is not visible to benches.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use simnet::{EventQueue, Time};
use testkit::bench::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use testkit::Rng;

/// Pending events held during the churn: roughly 24 browse connections'
/// worth of in-flight deliveries and timers.
const DEPTH: usize = 16_384;
/// Pop-one/push-one operations timed per iteration.
const CHURN: usize = 65_536;

/// The pre-PR-5 queue: a min-heap ordered by `(time, seq)`.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(Time, u64, u64)>>,
    next_seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    fn schedule(&mut self, at: Time, event: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, event)));
    }

    fn pop(&mut self) -> Option<(Time, u64)> {
        self.heap.pop().map(|Reverse((at, _, ev))| (at, ev))
    }
}

/// One draw from the delay mix, proportioned like the measured simulator
/// event mix (~97% link deliveries a few hundred µs out, ~3% delayed-ACK
/// timers, a few per mille RTO-range timers). Identical sequence for both
/// queues.
fn delay(rng: &mut Rng) -> Duration {
    match rng.gen_range(0..1000u32) {
        0..=966 => Duration::from_micros(rng.gen_range(150..900u64)),
        967..=996 => Duration::from_micros(rng.gen_range(10_000..60_000u64)),
        _ => Duration::from_micros(rng.gen_range(200_000..800_000u64)),
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(15);
    group.throughput(Throughput::Elements(CHURN as u64));

    group.bench_function("wheel_churn_16k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Rng::seed_from_u64(24);
            let mut now = Time::ZERO;
            for i in 0..DEPTH {
                q.schedule(now + delay(&mut rng), i as u64);
            }
            let mut acc = 0u64;
            for _ in 0..CHURN {
                let (at, ev) = q.pop().unwrap();
                now = at;
                acc ^= ev;
                q.schedule(now + delay(&mut rng), ev);
            }
            black_box(acc)
        })
    });

    group.bench_function("heap_churn_16k", |b| {
        b.iter(|| {
            let mut q = HeapQueue::new();
            let mut rng = Rng::seed_from_u64(24);
            let mut now = Time::ZERO;
            for i in 0..DEPTH {
                q.schedule(now + delay(&mut rng), i as u64);
            }
            let mut acc = 0u64;
            for _ in 0..CHURN {
                let (at, ev) = q.pop().unwrap();
                now = at;
                acc ^= ev;
                q.schedule(now + delay(&mut rng), ev);
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
