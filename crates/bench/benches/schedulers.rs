//! Scheduler micro-benchmarks: cost of one scheduling decision (the hot
//! path a kernel would run per packet), for every scheduler in the paper.

use std::time::Duration;

use testkit::bench::{criterion_group, criterion_main, Criterion};
use ecf_core::{PathId, PathSnapshot, SchedInput, SchedulerKind};

fn snapshots() -> Vec<PathSnapshot> {
    vec![
        PathSnapshot {
            id: PathId(0),
            srtt: Duration::from_millis(969),
            rtt_dev: Duration::from_millis(80),
            cwnd: 24,
            inflight: 24,
            in_slow_start: false,
            usable: true,
            queue_bytes: 0,
        },
        PathSnapshot {
            id: PathId(1),
            srtt: Duration::from_millis(105),
            rtt_dev: Duration::from_millis(12),
            cwnd: 140,
            inflight: 131,
            in_slow_start: false,
            usable: true,
            queue_bytes: 0,
        },
    ]
}

fn bench_decisions(c: &mut Criterion) {
    let paths = snapshots();
    let mut group = c.benchmark_group("scheduler_decision");
    for kind in SchedulerKind::paper_set() {
        let mut sched = kind.build();
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let input = SchedInput {
                    paths: std::hint::black_box(&paths),
                    queued_pkts: std::hint::black_box(37),
                    send_window_free_pkts: 1 << 16,
                };
                std::hint::black_box(sched.select(&input))
            })
        });
    }
    group.finish();
}

fn bench_ecf_waiting_path(c: &mut Criterion) {
    // The Algorithm-1 slow path: fastest full, inequalities evaluated.
    let mut paths = snapshots();
    paths[1].inflight = paths[1].cwnd; // fast subflow full
    let mut sched = SchedulerKind::Ecf.build();
    c.bench_function("ecf_inequality_path", |b| {
        b.iter(|| {
            let input = SchedInput {
                paths: std::hint::black_box(&paths),
                queued_pkts: std::hint::black_box(3),
                send_window_free_pkts: 1 << 16,
            };
            std::hint::black_box(sched.select(&input))
        })
    });
}

criterion_group!(benches, bench_decisions, bench_ecf_waiting_path);
criterion_main!(benches);
