//! Ablation benches: ECF variants (β sweep, δ margin, second inequality)
//! on the headline heterogeneous pair.

use testkit::bench::{criterion_group, criterion_main, Criterion};
use ecf_bench::{bench_streaming, HETERO};
use ecf_core::{EcfConfig, SchedulerKind};
use experiments::{run_streaming, StreamingConfig};

fn variant(cfg: EcfConfig) -> SchedulerKind {
    SchedulerKind::EcfWith(cfg)
}

fn run_kind(kind: SchedulerKind) -> f64 {
    run_streaming(&StreamingConfig {
        video_secs: 30.0,
        ..StreamingConfig::new(HETERO.0, HETERO.1, kind, 1)
    })
    .avg_bitrate
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecf_ablations");
    group.sample_size(10);
    group.bench_function("full_ecf", |b| {
        b.iter(|| bench_streaming(HETERO.0, HETERO.1, SchedulerKind::Ecf).avg_bitrate)
    });
    for beta in [0.0, 0.5, 1.0] {
        group.bench_function(format!("beta_{beta}"), |b| {
            b.iter(|| run_kind(variant(EcfConfig { beta, ..EcfConfig::default() })))
        });
    }
    group.bench_function("no_delta", |b| {
        b.iter(|| run_kind(variant(EcfConfig { use_delta: false, ..EcfConfig::default() })))
    });
    group.bench_function("no_second_inequality", |b| {
        b.iter(|| {
            run_kind(variant(EcfConfig {
                use_second_inequality: false,
                ..EcfConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
