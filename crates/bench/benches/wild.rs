//! In-the-wild benches: one Fig 22 streaming run and one Fig 23 page load
//! on the synthesized wild paths.

use testkit::bench::{criterion_group, criterion_main, Criterion};
use experiments::{wild, Effort};

fn bench_wild(c: &mut Criterion) {
    let mut group = c.benchmark_group("wild");
    group.sample_size(10);
    group.bench_function("fig22_streaming_quick", |b| {
        b.iter(|| std::hint::black_box(wild::fig22(Effort::Quick).len()))
    });
    group.bench_function("fig23_tab4_web_quick", |b| {
        b.iter(|| std::hint::black_box(wild::fig23_tab4(Effort::Quick).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_wild);
criterion_main!(benches);
