//! Sharded-sweep scaling: the ~10k-connection browse population, monolith
//! vs sharded.
//!
//! This bench is deliberately **not** part of the CI perf gate (it is
//! absent from `scripts/verify.sh`'s smoke list): one monolith iteration
//! simulates ten thousand connections through a single engine and takes
//! seconds. It exists to track the headline scaling claim — a sweep split
//! into per-unit engines sustains ≥3× the aggregate events/s of the same
//! population forced through one engine, because each small engine's
//! working set (wheel slab, segment arena, per-path queues) stays
//! cache-resident while the monolith cycles all of it every simulated
//! instant. Shard workers also reuse engine allocations across shard runs
//! (`Testbed::new_with_queue`), so the shard-count overhead is one warm-up
//! per worker, not per shard.
//!
//! Both variants produce the same merged digest (the DESIGN.md §11
//! equivalence contract, pinned at 1k scale by `experiments/tests/shard.rs`);
//! the bench asserts it too, so the speedup can never come from simulating
//! less. The recorded `workers` field says what the rates were measured on:
//! run with `TESTKIT_WORKERS=1` for the pure locality effect, unset for
//! locality + parallelism.

use experiments::sharding::{
    browse_10k, browse_10k_coupled, browse_1k, browse_coupled_population, run_sweep, SweepOptions,
};
use experiments::{default_workers, ENV_WORKERS};
use testkit::bench::{
    black_box, criterion_group, criterion_main, name_enabled, Criterion, Throughput, ENV_SMOKE,
};

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);
    let workers = default_workers(
        std::env::var(ENV_WORKERS).ok().as_deref(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    group.workers(workers);

    // A monolithic 10k-connection iteration takes the better part of a
    // minute, so the smoke pass (verify.sh) downshifts to the 1k
    // population — same code paths, same equivalence assert, ~50× cheaper.
    // Full runs (bench_update.sh) measure the real thing.
    let smoke = std::env::var(ENV_SMOKE).map(|v| v != "0" && !v.is_empty()).unwrap_or(false);
    let sharded_opts = SweepOptions::default();
    let mono_opts = SweepOptions { max_shards: 1, ..SweepOptions::default() };

    // The warm-up/equivalence runs cost more than a bench sample here, so a
    // filtered run (bench_update.sh --filter) skips the whole section when
    // neither of its benchmarks would run.
    if name_enabled("sharded/browse_10k") || name_enabled("sharded/browse_10k_mono") {
        let pop = if smoke { browse_1k(1) } else { browse_10k(1) };
        let sharded = run_sweep(&pop, &sharded_opts);
        let mono = run_sweep(&pop, &mono_opts);
        assert_eq!(
            sharded.digest, mono.digest,
            "sharded and monolithic sweep runs must merge identically"
        );

        group.throughput(Throughput::Elements(sharded.events_total()));
        group.bench_function("browse_10k", |b| {
            b.iter(|| black_box(run_sweep(&pop, &sharded_opts).digest))
        });

        // The monolith baseline is the denominator of the scaling claim,
        // not a number anyone optimizes; five samples keep the cost around
        // five minutes while taming the ~2× p95/median spread three-sample
        // runs showed in BENCH.json.
        group.sample_size(5);
        group.throughput(Throughput::Elements(mono.events_total()));
        group.bench_function("browse_10k_mono", |b| {
            b.iter(|| black_box(run_sweep(&pop, &mono_opts).digest))
        });
    }

    // The coupled population: every unit's LTE leg contends for one shared
    // bottleneck, so PR 7's partitioner could only run it collapsed. The
    // co-sim lockstep loop (DESIGN.md §13) spans it across
    // COUPLED_BENCH_GROUPS engine groups — coarse enough to amortize the
    // window barrier, small enough to stay cache-resident; the monolith
    // variant is the same windowed controller on a single engine. Digest
    // equality is asserted here as above — the speedup must come from
    // locality, not from simulating less or syncing more coarsely.
    if name_enabled("sharded/browse_coupled") || name_enabled("sharded/browse_coupled_mono") {
        let pop = if smoke {
            browse_coupled_population(1, 24, 6, 1.0, 50.0, ecf_core::SchedulerKind::Ecf)
        } else {
            browse_10k_coupled(1)
        };
        let cosim_opts = SweepOptions {
            max_shards: experiments::COUPLED_BENCH_GROUPS,
            ..SweepOptions::default()
        };
        let cosim = run_sweep(&pop, &cosim_opts);
        let mono = run_sweep(&pop, &mono_opts);
        assert_eq!(
            cosim.digest, mono.digest,
            "co-simulated and monolithic coupled runs must merge identically"
        );

        group.sample_size(10);
        group.throughput(Throughput::Elements(cosim.events_total()));
        group.bench_function("browse_coupled", |b| {
            b.iter(|| black_box(run_sweep(&pop, &cosim_opts).digest))
        });

        group.sample_size(5);
        group.throughput(Throughput::Elements(mono.events_total()));
        group.bench_function("browse_coupled_mono", |b| {
            b.iter(|| black_box(run_sweep(&pop, &mono_opts).digest))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
