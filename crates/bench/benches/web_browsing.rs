//! Web-browsing benches: Figs 20/21 — full 107-object page loads over six
//! parallel MPTCP connections at each of the paper's three configurations.

use testkit::bench::{criterion_group, criterion_main, Criterion};
use ecf_core::SchedulerKind;
use experiments::run_browse;

fn bench_fig20_fig21(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_fig21_page_load");
    group.sample_size(10);
    for (w, l, tag) in [(5.0, 5.0, "5-5"), (1.0, 5.0, "1-5"), (1.0, 10.0, "1-10")] {
        for kind in [SchedulerKind::Default, SchedulerKind::Ecf] {
            group.bench_function(format!("{tag}/{}", kind.label()), |b| {
                b.iter(|| {
                    let tb = run_browse(w, l, kind, 1);
                    let completions = tb.app().completion_times_secs();
                    let ooo = tb.world().recorder.ooo_delays_secs();
                    std::hint::black_box((completions.len(), ooo.len()))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig20_fig21);
criterion_main!(benches);
