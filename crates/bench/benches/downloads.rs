//! Download benches: the data behind Figs 18 and 19 (completion times and
//! the ECF/default ratio) at representative grid points.

use testkit::bench::{criterion_group, criterion_main, Criterion};
use ecf_core::SchedulerKind;
use experiments::run_wget;

fn bench_fig18_completion_times(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_wget");
    group.sample_size(10);
    for kind in SchedulerKind::paper_set() {
        group.bench_function(format!("256KB_1-10Mbps/{}", kind.label()), |b| {
            b.iter(|| run_wget(1.0, 10.0, kind, 256 * 1024, 1).0)
        });
    }
    for &(bytes, label) in
        &[(128 * 1024, "128KB"), (512 * 1024, "512KB"), (1024 * 1024, "1MB")]
    {
        group.bench_function(format!("{label}_1-5Mbps/ecf"), |b| {
            b.iter(|| run_wget(1.0, 5.0, SchedulerKind::Ecf, bytes, 1).0)
        });
    }
    group.finish();
}

fn bench_fig19_ratio_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_ratio_cell");
    group.sample_size(10);
    group.bench_function("512KB_hetero", |b| {
        b.iter(|| {
            let (d, _) = run_wget(1.0, 10.0, SchedulerKind::Default, 512 * 1024, 1);
            let (e, _) = run_wget(1.0, 10.0, SchedulerKind::Ecf, 512 * 1024, 1);
            std::hint::black_box(e / d)
        })
    });
    group.bench_function("512KB_diagonal", |b| {
        b.iter(|| {
            let (d, _) = run_wget(5.0, 5.0, SchedulerKind::Default, 512 * 1024, 1);
            let (e, _) = run_wget(5.0, 5.0, SchedulerKind::Ecf, 512 * 1024, 1);
            std::hint::black_box(e / d)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig18_completion_times, bench_fig19_ratio_cell);
criterion_main!(benches);
