//! Shared helpers for the Criterion benches: benchmark-sized (small but
//! real) versions of the paper's workloads. Each bench target regenerates
//! the data behind one table/figure at reduced scale; the full-size reports
//! come from `cargo run -p experiments --release --bin repro`.

use ecf_core::SchedulerKind;
use experiments::{run_streaming, StreamingConfig, StreamingOutcome};

/// A short streaming run (30 s of video) at one bandwidth pair.
pub fn bench_streaming(wifi: f64, lte: f64, kind: SchedulerKind) -> StreamingOutcome {
    run_streaming(&StreamingConfig {
        video_secs: 30.0,
        ..StreamingConfig::new(wifi, lte, kind, 1)
    })
}

/// The heterogeneous pair every headline figure keys on.
pub const HETERO: (f64, f64) = (0.3, 8.6);
/// A symmetric pair for the parity rows.
pub const SYMMETRIC: (f64, f64) = (4.2, 4.2);
