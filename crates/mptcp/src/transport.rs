//! The transport-facing seam between a multipath transport and the
//! scheduler machinery.
//!
//! Two transports consume the `ecf-core` schedulers: the MPTCP model in this
//! crate ([`crate::Connection`]) and the multipath-QUIC model in the `quic`
//! crate. Everything scheduler-adjacent that is *not* transport-specific
//! lives here so both share one implementation and one telemetry format:
//!
//! * [`SchedDriver`] — owns the scheduler instance, the reusable
//!   [`PathSnapshot`] buffer, and the `sched_decision` telemetry provenance
//!   (event emission plus the batched decision counters). A transport builds
//!   snapshots into [`SchedDriver::snap_buf`] and calls
//!   [`SchedDriver::decide`] once per segment/packet it wants to place; the
//!   emitted events are byte-identical across transports, so the exporters
//!   and figure tooling need no per-transport code.
//! * [`TransportApi`] / [`TransportApp`] — the application byte-stream
//!   seam: a workload driver written against these traits (issue a request,
//!   arm a timer, react to completions) runs unmodified on either
//!   transport's testbed.
//!
//! The extraction is value-neutral by construction: the MPTCP golden
//! digests (`experiments/tests/golden.rs`, the same constants the expmatrix
//! cache contract pins) are bit-identical before and after, which
//! `transport_refactor_guard` in the experiments crate asserts.

use ecf_core::{Decision, PathSnapshot, SchedInput, Scheduler, Why};
use simnet::Time;
use telemetry::{Counter, EventKind, PathObs, SchedDecision, TelemetryHandle, MAX_PATHS};

use crate::segment::{ConnId, ReqId};

/// Scheduler invocation + decision provenance, shared by every transport.
///
/// Owns the pluggable [`Scheduler`] and the scratch snapshot buffer the
/// transport fills before each decision. With telemetry enabled every
/// decision goes through [`Scheduler::select_explained`] and is recorded
/// with its full inputs; counter bumps are batched in plain fields and
/// flushed as one atomic add per counter on drop.
pub struct SchedDriver {
    /// The scheduler under evaluation.
    scheduler: Box<dyn Scheduler>,
    /// Scratch per-decision path snapshots. The transport rebuilds this
    /// when path state changed (ACKs, penalization, reinjection) and may
    /// update it in place for the one field a send moves (`inflight`).
    pub snap_buf: Vec<PathSnapshot>,
    tel: TelemetryHandle,
    tel_conn: u32,
    /// (decisions, waits) not yet flushed to the telemetry counters.
    tel_pending: (u64, u64),
}

impl SchedDriver {
    /// Wrap `scheduler` for a connection with `n_paths` paths.
    pub fn new(scheduler: Box<dyn Scheduler>, n_paths: usize) -> Self {
        SchedDriver {
            scheduler,
            snap_buf: Vec::with_capacity(n_paths),
            tel: TelemetryHandle::off(),
            tel_conn: 0,
            tel_pending: (0, 0),
        }
    }

    /// Attach a telemetry sink; decision events are stamped with connection
    /// index `conn`.
    pub fn set_telemetry(&mut self, tel: TelemetryHandle, conn: u32) {
        self.tel = tel;
        self.tel_conn = conn;
    }

    /// The scheduler's stable short name ("ecf", "default", ...).
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Forward a connection-level send-window stall to the scheduler
    /// (BLEST adapts its scale factor on this).
    pub fn on_window_blocked(&mut self) {
        self.scheduler.on_window_blocked();
    }

    /// Run the scheduler over the current [`SchedDriver::snap_buf`] for one
    /// segment. With an enabled telemetry sink the decision is recorded
    /// with full inputs and provenance; the off-handle check is one
    /// predictable branch, so a silent run pays nothing extra.
    pub fn decide(&mut self, now: Time, queued_pkts: u64, send_window_free_pkts: u64) -> Decision {
        let input = SchedInput { paths: &self.snap_buf, queued_pkts, send_window_free_pkts };
        if self.tel.is_enabled() {
            let (d, why) = self.scheduler.select_explained(&input);
            self.emit_decision(now, d, why, queued_pkts, send_window_free_pkts);
            self.tel_pending.0 += 1;
            self.tel_pending.1 += u64::from(d == Decision::Wait);
            d
        } else {
            self.scheduler.select(&input)
        }
    }

    /// Record one scheduler verdict with its full inputs (from `snap_buf`)
    /// and provenance. Only called when the sink is enabled, and hot when it
    /// is — one event per decision — so it stays inline-friendly and sticks
    /// to u64 arithmetic (no `Duration::as_micros` u128 division).
    fn emit_decision(&self, now: Time, decision: Decision, why: Why, k: u64, swnd_free: u64) {
        self.tel.emit_with(|| {
            let micros = |d: std::time::Duration| {
                u32::try_from(d.as_secs() * 1_000_000 + u64::from(d.subsec_micros()))
                    .unwrap_or(u32::MAX)
            };
            let sat32 = |v: u64| u32::try_from(v).unwrap_or(u32::MAX);
            let mut paths = [PathObs::default(); MAX_PATHS];
            let n = self.snap_buf.len().min(MAX_PATHS);
            for (obs, s) in paths.iter_mut().zip(self.snap_buf.iter()) {
                *obs = PathObs {
                    path: s.id.0 as u16,
                    usable: s.usable,
                    srtt_us: micros(s.srtt),
                    rttvar_us: micros(s.rtt_dev),
                    cwnd: s.cwnd,
                    inflight: s.inflight,
                    queue_bytes: sat32(s.queue_bytes),
                };
            }
            telemetry::Event {
                t_ns: now.as_nanos(),
                kind: EventKind::SchedDecision(SchedDecision {
                    conn: self.tel_conn,
                    scheduler: self.scheduler.name(),
                    decision,
                    why,
                    queued_pkts: sat32(k),
                    send_window_free_pkts: sat32(swnd_free),
                    n_paths: n as u8,
                    paths,
                }),
            }
        });
    }
}

/// Flush the batched decision counters. Counter snapshots taken while a
/// traced connection is still alive can lag by the unflushed tail; every
/// in-tree consumer reads counters after the run (and its testbed) has been
/// dropped.
impl Drop for SchedDriver {
    fn drop(&mut self) {
        let (decisions, waits) = self.tel_pending;
        if decisions > 0 {
            self.tel.add(Counter::Decisions, decisions);
        }
        if waits > 0 {
            self.tel.add(Counter::WaitDecisions, waits);
        }
    }
}

/// What a workload driver may ask of any multipath transport testbed:
/// issue an application request and arm a timer. Both the MPTCP testbed's
/// [`crate::Api`] and the quic testbed's API implement this, so one
/// generic application runs on either transport.
pub trait TransportApi {
    /// Issue a request for `bytes` of response payload on connection
    /// `conn`. On MPTCP this is an HTTP GET on one of several connections;
    /// on QUIC it opens a new stream on the (single) connection.
    fn request(&mut self, conn: ConnId, bytes: u64) -> ReqId;
    /// Arrange for the application's timer callback to fire at `at`.
    fn set_timer(&mut self, at: Time, token: u64);
}

/// A transport-agnostic workload driver: [`crate::Application`] generalized
/// over the API handle. Implementations written against this trait drive
/// the MPTCP testbed (via [`GenericApp`]) and the quic testbed unchanged.
pub trait TransportApp {
    /// Called once at t=0.
    fn on_start(&mut self, now: Time, api: &mut dyn TransportApi);
    /// The full response to `req` has been delivered in order.
    fn on_response_complete(
        &mut self,
        now: Time,
        conn: ConnId,
        req: ReqId,
        api: &mut dyn TransportApi,
    );
    /// A timer armed through [`TransportApi::set_timer`] fired.
    fn on_timer(&mut self, _now: Time, _token: u64, _api: &mut dyn TransportApi) {}
}

impl TransportApi for crate::sim::Api<'_> {
    fn request(&mut self, conn: ConnId, bytes: u64) -> ReqId {
        crate::sim::Api::request(self, conn, bytes)
    }
    fn set_timer(&mut self, at: Time, token: u64) {
        crate::sim::Api::set_timer(self, at, token)
    }
}

/// Adapter running any [`TransportApp`] on the MPTCP testbed.
pub struct GenericApp<A: TransportApp>(pub A);

impl<A: TransportApp> crate::sim::Application for GenericApp<A> {
    fn on_start(&mut self, now: Time, api: &mut crate::sim::Api<'_>) {
        self.0.on_start(now, api);
    }
    fn on_response_complete(
        &mut self,
        now: Time,
        conn: ConnId,
        req: ReqId,
        api: &mut crate::sim::Api<'_>,
    ) {
        self.0.on_response_complete(now, conn, req, api);
    }
    fn on_timer(&mut self, now: Time, token: u64, api: &mut crate::sim::Api<'_>) {
        self.0.on_timer(now, token, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecf_core::SchedulerKind;
    use std::time::Duration;

    fn snap(id: usize, srtt_ms: u64, cwnd: u32, inflight: u32) -> PathSnapshot {
        PathSnapshot {
            id: ecf_core::PathId(id),
            srtt: Duration::from_millis(srtt_ms),
            rtt_dev: Duration::ZERO,
            cwnd,
            inflight,
            in_slow_start: false,
            usable: true,
            queue_bytes: 0,
        }
    }

    #[test]
    fn decide_matches_bare_scheduler() {
        let mut driver = SchedDriver::new(SchedulerKind::Default.build(), 2);
        driver.snap_buf = vec![snap(0, 20, 10, 0), snap(1, 100, 10, 0)];
        let mut bare = SchedulerKind::Default.build();
        let paths = driver.snap_buf.clone();
        let want = bare.select(&SchedInput {
            paths: &paths,
            queued_pkts: 5,
            send_window_free_pkts: 100,
        });
        assert_eq!(driver.decide(Time::ZERO, 5, 100), want);
    }

    #[test]
    fn telemetry_records_decisions_with_queue_depth() {
        let tel = TelemetryHandle::with_capacity(16);
        let mut driver = SchedDriver::new(SchedulerKind::Ecf.build(), 2);
        driver.set_telemetry(tel.clone(), 3);
        driver.snap_buf = vec![snap(0, 20, 10, 0), snap(1, 100, 10, 0)];
        driver.snap_buf[1].queue_bytes = 77_000;
        let d = driver.decide(Time::from_millis(5), 10, 1000);
        assert!(matches!(d, Decision::Send(_)));
        let events = tel.events();
        assert_eq!(events.len(), 1);
        match events[0].kind {
            EventKind::SchedDecision(sd) => {
                assert_eq!(sd.conn, 3);
                assert_eq!(sd.scheduler, "ecf");
                assert_eq!(sd.n_paths, 2);
                assert_eq!(sd.paths[1].queue_bytes, 77_000);
            }
            _ => panic!("expected a sched_decision event"),
        }
        drop(driver);
        assert_eq!(tel.counter(Counter::Decisions), 1);
    }
}
