//! Sender-side MPTCP connection: the connection-level send buffer, the
//! scheduler plug-in point, coupled congestion control application, and the
//! opportunistic-retransmission + penalization mechanisms of Raiciu et al.
//! (enabled by default, as in the paper's experiments).

use std::collections::VecDeque;

use ecf_core::{Decision, PathSnapshot, Scheduler};
use simnet::Time;
use tcp_model::TcpConfig;
use telemetry::{Counter, EventKind, TelemetryHandle};

use crate::cc::{ca_increase, CcKind, CcView};
use crate::segment::{AckInfo, ReqId, Segment, SubId};
use crate::subflow::Subflow;
use crate::transport::SchedDriver;

/// Connection-level configuration. Defaults model the paper's testbed hosts:
/// a ~4 MB autotuned server send buffer and a ~2 MB client receive window —
/// large enough that flow control only binds transiently (the paper's §3.2
/// observes receive-window limits are not the bottleneck), LIA coupling,
/// both mitigation mechanisms on.
#[derive(Debug, Clone, Copy)]
pub struct ConnConfig {
    /// Send-buffer capacity in segments (≈1 MB at MSS 1448).
    pub sndbuf_segs: u64,
    /// Receiver reorder-buffer capacity in segments.
    pub rwnd_segs: u64,
    /// Congestion-avoidance coupling.
    pub cc: CcKind,
    /// Per-subflow TCP parameters.
    pub tcp: TcpConfig,
    /// Enable opportunistic retransmission (reinject the window-blocking
    /// segment on a faster subflow).
    pub opportunistic_rtx: bool,
    /// Enable penalization (halve the window of the blocking subflow).
    pub penalization: bool,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            sndbuf_segs: 2896,
            rwnd_segs: 2896,
            cc: CcKind::default(),
            tcp: TcpConfig::default(),
            opportunistic_rtx: true,
            penalization: true,
        }
    }
}

/// Lifetime connection counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    /// Times the connection-level send window blocked transmission.
    pub window_blocked: u64,
    /// Scheduler `Wait` verdicts (ECF/BLEST holding back).
    pub wait_decisions: u64,
    /// Segments queued for opportunistic reinjection.
    pub reinjections_queued: u64,
    /// Penalization events applied to subflows.
    pub penalizations: u64,
}

/// One planned transmission returned by [`Connection::try_send`]; the
/// testbed puts it on the wire.
#[derive(Debug, Clone, Copy)]
pub struct Transmission {
    /// Which subflow sends.
    pub sub: SubId,
    /// The segment (dsn + ssn).
    pub seg: Segment,
}

/// Sender-side connection state.
pub struct Connection {
    /// Configuration (immutable after construction).
    pub cfg: ConnConfig,
    /// Scheduler invocation + decision telemetry, the transport seam shared
    /// with the quic transport (see [`crate::transport`]).
    pub driver: SchedDriver,
    /// The subflows, index == `SubId` == `ecf_core::PathId.0`.
    pub subflows: Vec<Subflow>,
    /// Next data sequence number to assign to a subflow.
    next_dsn: u64,
    /// End of the dsn range admitted into the send buffer.
    buffered_end: u64,
    /// Segments written by the application but not yet admitted (send buffer
    /// full); they flow in as DATA_ACKs free space.
    pending_app: u64,
    /// Oldest dsn not yet data-acked (the meta send-window left edge).
    meta_una: u64,
    /// Receive window advertised in the most recent ACK.
    rwnd_adv: u64,
    /// Opportunistic-retransmission queue (dsn values).
    reinject_queue: VecDeque<u64>,
    /// Guard against repeatedly queueing the same blocking dsn.
    last_reinject: Option<u64>,
    /// Responses written, in order: `(request, last dsn)` — popped by the
    /// testbed as deliveries complete.
    pub response_bounds: VecDeque<(ReqId, u64)>,
    stats: ConnStats,
    /// Scratch for coupled-CC views (avoids an allocation per CA ACK).
    cc_views: Vec<CcView>,
    /// Telemetry sink for lifecycle events (off by default; see
    /// [`Connection::set_telemetry`]). Decision events ride `driver`.
    tel: TelemetryHandle,
    /// This connection's index in lifecycle events.
    tel_conn: u32,
}

impl Connection {
    /// Build a connection whose subflow `i` rides path `paths[i]` with the
    /// given handshake RTT seed.
    pub fn new(
        cfg: ConnConfig,
        scheduler: Box<dyn Scheduler>,
        subflow_paths: &[(usize, std::time::Duration)],
    ) -> Self {
        assert!(!subflow_paths.is_empty(), "a connection needs at least one subflow");
        // A subflow can never hold more unacked segments than the meta
        // buffers admit outstanding; reserving that bound up front keeps the
        // inflight deque from ever reallocating mid-run.
        let inflight_cap = cfg.sndbuf_segs.min(cfg.rwnd_segs) as usize;
        let subflows = subflow_paths
            .iter()
            .map(|&(path, hs_rtt)| Subflow::new(path, cfg.tcp, hs_rtt, inflight_cap))
            .collect();
        Connection {
            cfg,
            driver: SchedDriver::new(scheduler, subflow_paths.len()),
            subflows,
            next_dsn: 0,
            buffered_end: 0,
            pending_app: 0,
            meta_una: 0,
            rwnd_adv: cfg.rwnd_segs,
            reinject_queue: VecDeque::new(),
            last_reinject: None,
            response_bounds: VecDeque::new(),
            stats: ConnStats::default(),
            cc_views: Vec::with_capacity(subflow_paths.len()),
            tel: TelemetryHandle::off(),
            tel_conn: 0,
        }
    }

    /// Attach a telemetry sink. With an enabled handle every scheduler
    /// invocation goes through [`Scheduler::select_explained`] and is
    /// recorded as a `sched_decision` event (full inputs + provenance)
    /// stamped with connection index `conn`; transport lifecycle events
    /// (idle window resets, fast retransmits, penalizations) are recorded
    /// too. With the default (off) handle the hot path is unchanged.
    pub fn set_telemetry(&mut self, tel: TelemetryHandle, conn: u32) {
        self.driver.set_telemetry(tel.clone(), conn);
        self.tel = tel;
        self.tel_conn = conn;
    }

    /// Segments admitted to the send buffer but not yet assigned to any
    /// subflow — the `k` of the paper's Algorithm 1.
    pub fn unassigned_segs(&self) -> u64 {
        self.buffered_end - self.next_dsn
    }

    /// Connection-level send-buffer occupancy in segments (assigned-unacked
    /// plus unassigned). Fig 3's *per-subflow* traces use each subflow's
    /// in-flight count instead (see the testbed's `record_samples`).
    pub fn sndbuf_occupancy(&self) -> u64 {
        self.buffered_end - self.meta_una
    }

    /// Oldest un-data-acked dsn.
    pub fn meta_una(&self) -> u64 {
        self.meta_una
    }

    /// Next dsn that will be assigned.
    pub fn next_dsn(&self) -> u64 {
        self.next_dsn
    }

    /// Total dsn space written so far (admitted + pending).
    pub fn written_end(&self) -> u64 {
        self.buffered_end + self.pending_app
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// True when every written segment has been data-acked.
    pub fn all_acked(&self) -> bool {
        self.pending_app == 0 && self.meta_una == self.buffered_end
    }

    /// The application (server) writes a response of `segs` segments for
    /// request `req`. Returns the dsn range `[first, last]` it occupies.
    pub fn server_write(&mut self, req: ReqId, segs: u64) -> (u64, u64) {
        debug_assert!(segs > 0);
        let first = self.written_end();
        let last = first + segs - 1;
        self.pending_app += segs;
        self.response_bounds.push_back((req, last));
        self.admit();
        (first, last)
    }

    /// Move pending application data into the send buffer while space lasts.
    fn admit(&mut self) {
        while self.pending_app > 0 && self.sndbuf_occupancy() < self.cfg.sndbuf_segs {
            self.buffered_end += 1;
            self.pending_app -= 1;
        }
    }

    /// Scheduler-facing view of the subflows.
    pub fn snapshots(&self) -> Vec<PathSnapshot> {
        self.subflows
            .iter()
            .enumerate()
            .map(|(i, sf)| PathSnapshot {
                id: ecf_core::PathId(i),
                srtt: sf.cc.rtt.srtt(),
                rtt_dev: sf.cc.rtt.rttvar(),
                cwnd: sf.cc.cwnd_pkts(),
                inflight: sf.inflight_count(),
                in_slow_start: sf.cc.in_slow_start(),
                usable: sf.usable,
                queue_bytes: sf.link_queue_bytes,
            })
            .collect()
    }

    /// Process a subflow ACK arriving at the sender. Returns a segment to
    /// fast-retransmit on that subflow, if loss was detected.
    pub fn on_ack(&mut self, now: Time, sub: SubId, ack: &AckInfo) -> Option<Segment> {
        let out = self.subflows[sub].on_ack(now, ack);
        // Window growth: only when the flow was actually limited by cwnd and
        // is not recovering from loss.
        if out.newly_acked > 0 && !out.in_recovery && out.was_cwnd_limited {
            // HyStart: leave slow start as soon as queueing delay shows.
            self.subflows[sub].cc.maybe_hystart_exit();
            if self.subflows[sub].cc.in_slow_start() {
                self.subflows[sub].cc.on_ack_slow_start(out.newly_acked);
            } else {
                self.cc_views.clear();
                self.cc_views.extend(self.subflows.iter().map(|s| CcView {
                    cwnd: s.cc.cwnd(),
                    srtt: s.cc.rtt.srtt().as_secs_f64(),
                }));
                let inc =
                    ca_increase(self.cfg.cc, &self.cc_views, sub) * f64::from(out.newly_acked);
                self.subflows[sub].cc.apply_ca_increase(inc);
            }
        }
        // Meta-level bookkeeping.
        if ack.data_next_dsn > self.meta_una {
            self.meta_una = ack.data_next_dsn;
            self.admit();
        }
        self.rwnd_adv = ack.rwnd_free;
        if out.fast_retx.is_some() {
            self.tel.emit(
                now.as_nanos(),
                EventKind::FastRetx { conn: self.tel_conn, path: sub as u16 },
            );
            self.tel.incr(Counter::FastRetx);
        }
        out.fast_retx
    }

    /// A path died under subflow `sub`: stop scheduling there and queue its
    /// unacknowledged data for reinjection on the surviving subflows, as the
    /// Linux implementation does when a subflow is closed on error.
    pub fn on_subflow_down(&mut self, sub: SubId) {
        self.subflows[sub].usable = false;
        for dsn in self.subflows[sub].inflight_dsns() {
            if dsn >= self.meta_una && !self.reinject_queue.contains(&dsn) {
                self.reinject_queue.push_back(dsn);
                self.stats.reinjections_queued += 1;
            }
        }
    }

    /// The path under subflow `sub` recovered.
    pub fn on_subflow_up(&mut self, sub: SubId) {
        self.subflows[sub].usable = true;
    }

    /// Fastest subflow with window space that is not already carrying `dsn`
    /// (reinjection target).
    fn reinjection_target(&self, dsn: u64) -> Option<SubId> {
        self.subflows
            .iter()
            .enumerate()
            .filter(|(_, s)| s.has_space() && !s.carries_dsn(dsn))
            .min_by_key(|(_, s)| s.cc.rtt.srtt())
            .map(|(i, _)| i)
    }

    /// The meta window is receive-window-blocked: apply Raiciu et al.'s
    /// opportunistic retransmission + penalization against the subflow
    /// holding the window edge.
    /// Returns true when a new reinjection was queued (the send loop should
    /// take another pass to transmit it).
    fn on_rwnd_blocked(&mut self, now: Time) -> bool {
        let dsn = self.meta_una;
        // Among subflows carrying the blocking dsn, penalize the slowest —
        // a reinjected fast-path copy must not draw the penalty.
        let Some(holder) = self
            .subflows
            .iter()
            .enumerate()
            .filter(|(_, s)| s.usable && s.carries_dsn(dsn))
            .max_by_key(|(_, s)| s.cc.rtt.srtt())
            .map(|(i, _)| i)
        else {
            return false;
        };
        let mut queued = false;
        if self.cfg.opportunistic_rtx
            && self.last_reinject != Some(dsn)
            && !self.reinject_queue.contains(&dsn)
        {
            self.reinject_queue.push_back(dsn);
            self.last_reinject = Some(dsn);
            self.stats.reinjections_queued += 1;
            queued = true;
        }
        if self.cfg.penalization {
            let sf = &mut self.subflows[holder];
            if now.since(sf.last_penalty) > sf.cc.rtt.srtt() {
                sf.cc.penalize();
                sf.last_penalty = now;
                self.stats.penalizations += 1;
                self.tel.emit(
                    now.as_nanos(),
                    EventKind::Penalization { conn: self.tel_conn, path: holder as u16 },
                );
                self.tel.incr(Counter::Penalizations);
            }
        }
        queued
    }

    /// Drive the scheduler until it stops producing transmissions. Returns
    /// the segments to put on the wire, in order.
    ///
    /// Convenience wrapper over [`Connection::try_send_into`]; the simulator
    /// hot path uses the `_into` variant with a reused buffer.
    pub fn try_send(&mut self, now: Time) -> Vec<Transmission> {
        let mut plan = Vec::new();
        self.try_send_into(now, &mut plan);
        plan
    }

    /// Drive the scheduler until it stops producing transmissions, appending
    /// the segments to put on the wire, in order, to `plan` (not cleared
    /// here).
    pub fn try_send_into(&mut self, now: Time, plan: &mut Vec<Transmission>) {
        for (i, sf) in self.subflows.iter_mut().enumerate() {
            // RFC 5681 restart applies to *idle* connections only: nothing
            // outstanding (Linux checks packets_out == 0). A flow that is
            // merely draining its window during recovery is not idle.
            if sf.inflight_count() == 0 && sf.cc.maybe_idle_reset(now) {
                self.tel.emit(
                    now.as_nanos(),
                    EventKind::IwReset { conn: self.tel_conn, path: i as u16 },
                );
                self.tel.incr(Counter::IwResets);
            }
        }
        let mut blocked_noted = false;
        // Tracks whether the driver's `snap_buf` still mirrors the subflows
        // exactly. The inner loop updates the chosen path's in-flight count
        // in place, so after a pass that only scheduled new data the buffer
        // is already identical to what a rebuild would produce; only
        // reinjection sends and penalization (cwnd change in
        // `on_rwnd_blocked`) invalidate it.
        let mut snap_valid = false;
        loop {
            let before = plan.len();
            let mut reinjection_created = false;

            // Phase 1: pending reinjections ride the fastest free subflow.
            while let Some(&dsn) = self.reinject_queue.front() {
                if dsn < self.meta_una {
                    self.reinject_queue.pop_front();
                    continue;
                }
                let Some(sub) = self.reinjection_target(dsn) else { break };
                let seg = self.subflows[sub].register_send(now, dsn, true);
                plan.push(Transmission { sub, seg });
                self.reinject_queue.pop_front();
                snap_valid = false;
            }

            // Phase 2: new data through the scheduler. The path snapshot is
            // built once per pass — and only when there is data to schedule
            // (an ACK clocking an idle sender skips it entirely): within the
            // inner loop the only snapshot-visible state that moves is the
            // chosen subflow's in-flight count (register_send pushes one
            // segment; RTT, cwnd and slow-start state only change on ACKs),
            // so it is updated in place below instead of re-reading every
            // subflow per packet. Anything that can change other fields
            // (penalization, idle reset, reinjection) happens outside this
            // loop, and the outer retry pass rebuilds the snapshot.
            if self.unassigned_segs() > 0 && !snap_valid {
                self.driver.snap_buf.clear();
                self.driver.snap_buf.extend(self.subflows.iter().enumerate().map(|(i, sf)| {
                    PathSnapshot {
                        id: ecf_core::PathId(i),
                        srtt: sf.cc.rtt.srtt(),
                        rtt_dev: sf.cc.rtt.rttvar(),
                        cwnd: sf.cc.cwnd_pkts(),
                        inflight: sf.inflight_count(),
                        in_slow_start: sf.cc.in_slow_start(),
                        usable: sf.usable,
                        queue_bytes: sf.link_queue_bytes,
                    }
                }));
                snap_valid = true;
            }
            loop {
                let k = self.unassigned_segs();
                if k == 0 {
                    break;
                }
                let outstanding = self.next_dsn - self.meta_una;
                if outstanding >= self.rwnd_adv {
                    // The outer retry loop can revisit this branch; count
                    // (and signal BLEST) once per send opportunity.
                    if !blocked_noted {
                        blocked_noted = true;
                        self.stats.window_blocked += 1;
                        self.driver.on_window_blocked();
                    }
                    reinjection_created |= self.on_rwnd_blocked(now);
                    // Penalization may have shrunk a cwnd under us.
                    snap_valid = false;
                    break;
                }
                match self.driver.decide(now, k, self.rwnd_adv - outstanding) {
                    Decision::Send(pid) => {
                        let sub = pid.0;
                        debug_assert!(sub < self.subflows.len(), "scheduler chose unknown path");
                        let seg = self.subflows[sub].register_send(now, self.next_dsn, false);
                        self.next_dsn += 1;
                        self.driver.snap_buf[sub].inflight += 1;
                        plan.push(Transmission { sub, seg });
                    }
                    Decision::Wait => {
                        self.stats.wait_decisions += 1;
                        break;
                    }
                    Decision::Blocked => break,
                }
            }

            if plan.len() == before && !reinjection_created {
                break;
            }
        }
        // RFC 2861 congestion-window validation on every subflow now that
        // this send opportunity has played out.
        for sf in &mut self.subflows {
            sf.cc.validate_app_limited(now, sf.inflight_count());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecf_core::SchedulerKind;
    use std::time::Duration;

    fn conn(kind: SchedulerKind) -> Connection {
        Connection::new(
            ConnConfig::default(),
            kind.build(),
            &[(0, Duration::from_millis(20)), (1, Duration::from_millis(100))],
        )
    }

    fn ack(sub_ssn: u64, dsn: u64, rwnd: u64) -> AckInfo {
        AckInfo { sub_next_ssn: sub_ssn, data_next_dsn: dsn, rwnd_free: rwnd }
    }

    #[test]
    fn write_then_send_fills_fast_window_first() {
        let mut c = conn(SchedulerKind::Default);
        c.server_write(0, 50);
        assert_eq!(c.unassigned_segs(), 50);
        let plan = c.try_send(Time::ZERO);
        // Both windows (10 + 10) fill; fast (sub 0, 20 ms) gets dsn 0..10.
        assert_eq!(plan.len(), 20);
        assert!(plan[..10].iter().all(|t| t.sub == 0));
        assert!(plan[10..].iter().all(|t| t.sub == 1));
        assert_eq!(c.unassigned_segs(), 30);
        // dsn assignment is sequential.
        let dsns: Vec<u64> = plan.iter().map(|t| t.seg.dsn).collect();
        assert_eq!(dsns, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn ecf_keeps_tail_off_slow_path() {
        // 11 segments, fast cwnd 10: ECF sends 10 on the fast subflow and
        // holds the last one back (the §3.2 example, end to end).
        let mut c = conn(SchedulerKind::Ecf);
        c.server_write(0, 11);
        let plan = c.try_send(Time::ZERO);
        assert_eq!(plan.len(), 10);
        assert!(plan.iter().all(|t| t.sub == 0));
        assert!(c.stats().wait_decisions >= 1);
        assert_eq!(c.unassigned_segs(), 1);
    }

    #[test]
    fn ack_frees_window_and_sends_more() {
        let mut c = conn(SchedulerKind::Default);
        c.server_write(0, 100);
        let first = c.try_send(Time::ZERO);
        assert_eq!(first.len(), 20);
        // Ack 5 segments on the fast subflow (in slow start → window grows).
        c.on_ack(Time::from_millis(20), 0, &ack(5, 5, 724));
        let more = c.try_send(Time::from_millis(20));
        assert!(!more.is_empty());
        assert!(more.iter().all(|t| t.sub == 0));
        // Slow start: 5 acked while limited → cwnd 15, inflight was 5 → 10 new.
        assert_eq!(more.len(), 10);
    }

    #[test]
    fn sndbuf_caps_admission() {
        let mut c = Connection::new(
            ConnConfig { sndbuf_segs: 30, ..ConnConfig::default() },
            SchedulerKind::Default.build(),
            &[(0, Duration::from_millis(20))],
        );
        c.server_write(0, 100);
        assert_eq!(c.sndbuf_occupancy(), 30);
        assert_eq!(c.unassigned_segs(), 30);
        c.try_send(Time::ZERO);
        // Acking deliveries frees buffer and admits more.
        c.on_ack(Time::from_millis(40), 0, &ack(10, 10, 724));
        assert_eq!(c.sndbuf_occupancy(), 30); // refilled from pending
        assert_eq!(c.written_end(), 100);
    }

    #[test]
    fn rwnd_blocking_triggers_mitigations() {
        let mut c = conn(SchedulerKind::Default);
        c.server_write(0, 100);
        c.try_send(Time::ZERO);
        // Receiver advertises a tiny window with nothing data-acked: the
        // window edge (dsn 0) is on the fast subflow.
        c.on_ack(Time::from_millis(100), 1, &ack(0, 0, 5));
        let plan = c.try_send(Time::from_millis(100));
        // outstanding (20) >= rwnd (5) → blocked; dsn 0 is held by sub 0, so
        // penalization hits sub 0 and a reinjection is queued for... sub 1
        // (not carrying dsn 0) — but sub 1's window is also full, so the
        // reinjection stays queued.
        assert!(plan.is_empty());
        assert!(c.stats().window_blocked >= 1);
        assert_eq!(c.stats().reinjections_queued, 1);
        assert_eq!(c.stats().penalizations, 1);
    }

    #[test]
    fn reinjection_rides_fast_path_when_space() {
        let mut c = conn(SchedulerKind::Default);
        c.server_write(0, 100);
        c.try_send(Time::ZERO);
        // Fast subflow fully acked (10 segs arrived); meta stuck at dsn 10
        // (slow subflow's first segment not yet in). Tiny window → blocked.
        c.on_ack(Time::from_millis(40), 0, &ack(10, 10, 2));
        let plan = c.try_send(Time::from_millis(40));
        // dsn 10 is carried by sub 1 → reinjected on sub 0.
        assert!(plan.iter().any(|t| t.sub == 0 && t.seg.dsn == 10));
        assert!(c.stats().reinjections_queued >= 1);
        assert_eq!(c.subflows[0].stats().reinjections, 1);
    }

    #[test]
    fn completion_tracking() {
        let mut c = conn(SchedulerKind::Default);
        let (f0, l0) = c.server_write(7, 10);
        let (f1, l1) = c.server_write(8, 5);
        assert_eq!((f0, l0), (0, 9));
        assert_eq!((f1, l1), (10, 14));
        assert_eq!(c.response_bounds.len(), 2);
        assert!(!c.all_acked());
        c.try_send(Time::ZERO);
        c.on_ack(Time::from_millis(40), 0, &ack(10, 15, 724));
        c.on_ack(Time::from_millis(200), 1, &ack(5, 15, 724));
        assert!(c.all_acked());
    }

    #[test]
    fn growth_only_when_cwnd_limited() {
        let mut c = conn(SchedulerKind::Default);
        c.server_write(0, 3);
        c.try_send(Time::ZERO); // only 3 segs in flight, window 10: not limited
        let cwnd_before = c.subflows[0].cc.cwnd_pkts();
        c.on_ack(Time::from_millis(20), 0, &ack(3, 3, 724));
        assert_eq!(c.subflows[0].cc.cwnd_pkts(), cwnd_before);
    }
}
