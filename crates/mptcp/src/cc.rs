//! Congestion-avoidance increase policies: uncoupled Reno and the two
//! coupled MPTCP controllers the paper mentions — LIA ("coupled", Wischik et
//! al. / RFC 6356) and OLIA (Khalili et al.).
//!
//! Coupling is the second half of the paper's root-cause story: because a
//! coupled controller adapts each subflow's window as a function of *all*
//! windows, a fast subflow that loses its window to an idle reset regains it
//! slowly, compounding the default scheduler's under-utilization (§3.2).
//!
//! Slow-start growth is uncoupled (one segment per ACKed segment) for all
//! kinds, as in the Linux implementation; these policies only shape the
//! congestion-avoidance increase, which the subflow applies via
//! [`tcp_model::TcpCc::apply_ca_increase`].

/// Selects the coupled (or not) increase policy for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcKind {
    /// Uncoupled per-subflow NewReno (1/cwnd per ACKed segment).
    Reno,
    /// Linked Increases Algorithm, RFC 6356 — the Linux MPTCP default.
    #[default]
    Lia,
    /// Opportunistic LIA (Khalili et al., CoNEXT 2012).
    Olia,
}

/// Per-subflow view the controllers need: fractional window and sRTT seconds.
#[derive(Debug, Clone, Copy)]
pub struct CcView {
    /// Congestion window in segments (fractional).
    pub cwnd: f64,
    /// Smoothed RTT in seconds.
    pub srtt: f64,
}

/// Congestion-avoidance window increase, in segments, for one ACKed segment
/// arriving on `views[idx]`.
pub fn ca_increase(kind: CcKind, views: &[CcView], idx: usize) -> f64 {
    debug_assert!(idx < views.len());
    let me = views[idx];
    let cwnd = me.cwnd.max(1.0);
    match kind {
        CcKind::Reno => 1.0 / cwnd,
        CcKind::Lia => {
            let total: f64 = views.iter().map(|v| v.cwnd).sum();
            let total = total.max(1.0);
            // α = cwnd_total · max_r(cwnd_r/rtt_r²) / (Σ_r cwnd_r/rtt_r)²
            let max_term = views
                .iter()
                .map(|v| v.cwnd / (v.srtt * v.srtt).max(1e-12))
                .fold(0.0, f64::max);
            let sum_term: f64 = views.iter().map(|v| v.cwnd / v.srtt.max(1e-6)).sum();
            let alpha = total * max_term / (sum_term * sum_term).max(1e-12);
            (alpha / total).min(1.0 / cwnd)
        }
        CcKind::Olia => {
            // Per-ACK increase: w_r/rtt_r² / (Σ_p w_p/rtt_p)² + α_r/w_r.
            // A negative α can make the sum negative for the penalized path;
            // we floor the applied increase at zero (freeze rather than
            // shrink), since the decrease side of OLIA is realized through
            // its loss response in this model.
            let sum_term: f64 = views.iter().map(|v| v.cwnd / v.srtt.max(1e-6)).sum();
            let base = (me.cwnd / (me.srtt * me.srtt).max(1e-12))
                / (sum_term * sum_term).max(1e-12);
            (base + olia_alpha(views, idx) / cwnd).max(0.0)
        }
    }
}

/// OLIA's α_r term. The exact definition ranks paths by bytes sent between
/// losses; we approximate the "best paths" set B by the current bandwidth
/// estimate cwnd/rtt (documented substitution — the sets coincide in steady
/// state, where transmission share is proportional to achieved rate).
fn olia_alpha(views: &[CcView], idx: usize) -> f64 {
    let n = views.len() as f64;
    if views.len() < 2 {
        return 0.0;
    }
    const EPS: f64 = 1e-9;
    let max_cwnd = views.iter().map(|v| v.cwnd).fold(0.0, f64::max);
    let best_rate = views.iter().map(|v| v.cwnd / v.srtt.max(1e-6)).fold(0.0, f64::max);
    let in_m = |v: &CcView| (v.cwnd - max_cwnd).abs() < EPS;
    let in_b = |v: &CcView| (v.cwnd / v.srtt.max(1e-6) - best_rate).abs() < EPS;
    // B \ M: best paths that do not already have the largest window.
    let b_minus_m: Vec<usize> =
        (0..views.len()).filter(|&i| in_b(&views[i]) && !in_m(&views[i])).collect();
    if b_minus_m.is_empty() {
        return 0.0;
    }
    let me = &views[idx];
    if b_minus_m.contains(&idx) {
        1.0 / (n * b_minus_m.len() as f64)
    } else if in_m(me) {
        let m_count = views.iter().filter(|v| in_m(v)).count() as f64;
        -1.0 / (n * m_count)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(cwnd: f64, srtt_ms: f64) -> CcView {
        CcView { cwnd, srtt: srtt_ms / 1e3 }
    }

    #[test]
    fn reno_is_inverse_cwnd() {
        let views = [v(10.0, 50.0), v(20.0, 100.0)];
        assert!((ca_increase(CcKind::Reno, &views, 0) - 0.1).abs() < 1e-12);
        assert!((ca_increase(CcKind::Reno, &views, 1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn lia_two_equal_paths_quarter_rate() {
        // Symmetric case: α = 1/2, increase = α/total = 1/(4·cwnd) — each
        // subflow grows at a quarter of the Reno rate, so the pair together
        // is no more aggressive than a single connection.
        let views = [v(10.0, 50.0), v(10.0, 50.0)];
        let inc = ca_increase(CcKind::Lia, &views, 0);
        assert!((inc - 1.0 / 40.0).abs() < 1e-9, "inc={inc}");
    }

    #[test]
    fn lia_never_exceeds_reno() {
        for (c0, c1, r0, r1) in
            [(5.0, 50.0, 10.0, 200.0), (30.0, 4.0, 80.0, 30.0), (10.0, 10.0, 50.0, 50.0)]
        {
            let views = [v(c0, r0), v(c1, r1)];
            for i in 0..2 {
                let lia = ca_increase(CcKind::Lia, &views, i);
                let reno = ca_increase(CcKind::Reno, &views, i);
                assert!(lia <= reno + 1e-12, "lia={lia} reno={reno}");
                assert!(lia > 0.0);
            }
        }
    }

    #[test]
    fn lia_single_path_reduces_to_reno() {
        // One path: α = cwnd · (c/r²) / (c/r)² = 1 → increase = 1/cwnd.
        let views = [v(12.0, 70.0)];
        let lia = ca_increase(CcKind::Lia, &views, 0);
        assert!((lia - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn olia_increase_never_negative() {
        // The penalized (largest-window, not-best-rate) path's α is negative;
        // the applied increase must floor at zero, not shrink the window.
        let views = [v(10.0, 10.0), v(100.0, 1000.0)];
        assert!(olia_alpha(&views, 1) < 0.0);
        assert!(ca_increase(CcKind::Olia, &views, 1) >= 0.0);
    }

    #[test]
    fn olia_positive_on_best_small_window_path() {
        // Path 0: small window but better rate per cwnd/rtt → in B \ M,
        // gets the α bonus; path 1 (largest window) is penalized.
        let views = [v(5.0, 10.0), v(20.0, 100.0)];
        let inc0 = ca_increase(CcKind::Olia, &views, 0);
        let inc1 = ca_increase(CcKind::Olia, &views, 1);
        assert!(inc0 > 0.0);
        // The penalized path still must not decrease below zero overall
        // growth by α alone dominating in sane regimes is not required, but
        // the α terms must have the documented signs:
        assert!(olia_alpha(&views, 0) > 0.0);
        assert!(olia_alpha(&views, 1) < 0.0);
        let _ = inc1;
    }

    #[test]
    fn olia_alpha_zero_when_best_equals_largest() {
        // Path 0 has both the largest window and the best rate → B ⊆ M.
        let views = [v(20.0, 10.0), v(5.0, 100.0)];
        assert_eq!(olia_alpha(&views, 0), 0.0);
        assert_eq!(olia_alpha(&views, 1), 0.0);
    }

    #[test]
    fn olia_single_path_no_alpha() {
        let views = [v(10.0, 50.0)];
        assert_eq!(olia_alpha(&views, 0), 0.0);
        assert!(ca_increase(CcKind::Olia, &views, 0) > 0.0);
    }

    #[test]
    fn increases_are_finite_on_degenerate_input() {
        let views = [v(0.0, 0.0), v(1.0, 0.0)];
        for kind in [CcKind::Reno, CcKind::Lia, CcKind::Olia] {
            for i in 0..2 {
                let inc = ca_increase(kind, &views, i);
                assert!(inc.is_finite(), "{kind:?} idx {i} gave {inc}");
            }
        }
    }
}
