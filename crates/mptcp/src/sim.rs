//! The testbed: wires connections, paths and an application into a
//! `simnet` discrete-event model. This plays the role of the paper's lab —
//! server and mobile client, WiFi + LTE paths shaped with `tc`, and a
//! workload application driving HTTP requests.
//!
//! Data flows server → client on each path's `fwd` link (shaped); requests
//! and ACKs ride the unshaped `rev` link. The client application
//! ([`Application`]) issues requests and reacts to completed responses,
//! which is all a DASH player, a `wget` download, or a browser needs.

use std::time::Duration;

use ecf_core::SchedulerKind;
use simnet::{
    Engine, EventQueue, Model, Path, PathConfig, RateSchedule, RunOutcome, Time, Verdict,
};
use tcp_model::{wire_size, MSS};

use crate::connection::{ConnConfig, Connection, Transmission};
use crate::receiver::Receiver;
use crate::segment::{segs_for_bytes, AckInfo, ConnId, ReqId, Segment, SubId};
use crate::trace::{Recorder, RecorderConfig};

/// Wire size of an HTTP GET (request line + headers, single packet).
const REQUEST_WIRE_BYTES: u32 = 300;
/// Wire size of a pure ACK.
const ACK_WIRE_BYTES: u32 = 72;
/// Linux delayed-ACK timeout.
const DELACK_TIMEOUT: Duration = Duration::from_millis(40);

/// Events of the testbed model.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Kick the application's `on_start` at t=0.
    AppStart,
    /// A data segment arrives at the client.
    Data {
        /// Connection index.
        conn: ConnId,
        /// Subflow index within the connection.
        sub: SubId,
        /// The segment.
        seg: Segment,
    },
    /// An ACK arrives back at the server.
    Ack {
        /// Connection index.
        conn: ConnId,
        /// Subflow index within the connection.
        sub: SubId,
        /// ACK payload.
        ack: AckInfo,
    },
    /// A request arrives at the server.
    Request {
        /// Connection index.
        conn: ConnId,
        /// Request id.
        req: ReqId,
        /// Response size in segments.
        segs: u64,
    },
    /// A delayed-ACK timer fires at the receiver.
    DelAck {
        /// Connection index.
        conn: ConnId,
        /// Subflow index.
        sub: SubId,
    },
    /// A subflow's lazy RTO timer fires.
    Rto {
        /// Connection index.
        conn: ConnId,
        /// Subflow index.
        sub: SubId,
    },
    /// An application timer fires.
    AppTimer {
        /// Opaque token the application chose.
        token: u64,
    },
    /// A path's shaped (forward) rate changes.
    RateChange {
        /// Path index.
        path: usize,
        /// New rate, bits per second.
        bps: u64,
    },
    /// A path goes down or comes back (handover, radio loss).
    PathState {
        /// Path index.
        path: usize,
        /// True = up, false = down.
        up: bool,
    },
    /// A path's one-way propagation delay changes (wild RTT drift).
    DelayChange {
        /// Path index.
        path: usize,
        /// New one-way delay in microseconds.
        one_way_us: u64,
    },
    /// Periodic trace sampling tick.
    Sample,
}

/// The workload driver, running at the client. Implementations issue
/// requests through [`Api`] and react to completions and timers.
pub trait Application {
    /// Called once at t=0.
    fn on_start(&mut self, now: Time, api: &mut Api<'_>);
    /// The full response to `req` has been delivered in order.
    fn on_response_complete(&mut self, now: Time, conn: ConnId, req: ReqId, api: &mut Api<'_>);
    /// A timer set through [`Api::set_timer`] fired.
    fn on_timer(&mut self, _now: Time, _token: u64, _api: &mut Api<'_>) {}
}

/// Specification of one MPTCP connection in the testbed.
pub struct ConnSpec {
    /// Connection parameters.
    pub cfg: ConnConfig,
    /// Which scheduler this connection runs.
    pub scheduler: SchedulerKind,
    /// A custom scheduler instance overriding `scheduler` — the plug-in
    /// point for schedulers defined outside this crate.
    pub custom_scheduler: Option<Box<dyn ecf_core::Scheduler + Send>>,
    /// Path index (into [`TestbedConfig::paths`]) per subflow; index 0 is the
    /// primary subflow (carries requests), WiFi in the paper's setup.
    pub subflow_paths: Vec<usize>,
}

impl ConnSpec {
    /// A connection with default parameters running a built-in scheduler.
    pub fn new(scheduler: SchedulerKind, subflow_paths: Vec<usize>) -> Self {
        ConnSpec {
            cfg: ConnConfig::default(),
            scheduler,
            custom_scheduler: None,
            subflow_paths,
        }
    }

    /// A connection running a user-provided scheduler implementation.
    pub fn with_custom(
        scheduler: Box<dyn ecf_core::Scheduler + Send>,
        subflow_paths: Vec<usize>,
    ) -> Self {
        ConnSpec {
            cfg: ConnConfig::default(),
            scheduler: SchedulerKind::Default,
            custom_scheduler: Some(scheduler),
            subflow_paths,
        }
    }
}

/// Full testbed specification.
pub struct TestbedConfig {
    /// The physical paths.
    pub paths: Vec<PathConfig>,
    /// The connections (one per HTTP connection; a browser opens six).
    pub conns: Vec<ConnSpec>,
    /// Seed for link jitter/loss.
    pub seed: u64,
    /// What to record.
    pub recorder: RecorderConfig,
    /// Forward-rate schedules, `(path index, schedule)` (§5.3 experiments).
    pub rate_schedules: Vec<(usize, RateSchedule)>,
    /// One-way delay schedules (in-the-wild experiments).
    pub delay_schedules: Vec<(usize, Vec<(Time, Duration)>)>,
    /// Path up/down events (handover scenarios): `(when, path, up)`.
    pub path_events: Vec<(Time, usize, bool)>,
}

impl TestbedConfig {
    /// A two-path (WiFi + LTE) testbed with one connection, the common case.
    pub fn wifi_lte(
        wifi_mbps: f64,
        lte_mbps: f64,
        scheduler: SchedulerKind,
        seed: u64,
    ) -> Self {
        TestbedConfig {
            paths: vec![PathConfig::wifi(wifi_mbps), PathConfig::lte(lte_mbps)],
            conns: vec![ConnSpec::new(scheduler, vec![0, 1])],
            seed,
            recorder: RecorderConfig::default(),
            rate_schedules: Vec::new(),
            delay_schedules: Vec::new(),
            path_events: Vec::new(),
        }
    }
}

struct ConnState {
    sender: Connection,
    receiver: Receiver,
    /// Path carrying requests (the primary subflow's path).
    primary_path: usize,
    /// Per-subflow: whether a delayed-ACK timer is outstanding.
    delack_armed: Vec<bool>,
}

/// Mutable simulation state (everything except the application).
pub struct World {
    /// Live paths, indexed as in the config.
    pub paths: Vec<Path>,
    conns: Vec<ConnState>,
    /// Collected measurements.
    pub recorder: Recorder,
    /// Per-path liveness (down paths drop everything offered to them).
    path_up: Vec<bool>,
    sample_every: Duration,
    sampling: bool,
}

/// The application's handle into the running world.
pub struct Api<'a> {
    /// Current simulation time.
    pub now: Time,
    world: &'a mut World,
    queue: &'a mut EventQueue<Event>,
}

impl Api<'_> {
    /// Issue an HTTP GET for `bytes` of response payload on `conn`.
    pub fn request(&mut self, conn: ConnId, bytes: u64) -> ReqId {
        self.world.issue_request(self.now, conn, bytes, self.queue)
    }

    /// Arrange for [`Application::on_timer`] to fire at `at`.
    pub fn set_timer(&mut self, at: Time, token: u64) {
        self.queue.schedule(at, Event::AppTimer { token });
    }

    /// Read-only world access (counters, receiver state...).
    pub fn world(&self) -> &World {
        self.world
    }
}

impl World {
    fn build(cfg: &mut TestbedConfig) -> Self {
        let paths: Vec<Path> = cfg
            .paths
            .iter()
            .enumerate()
            .map(|(i, pc)| Path::new(pc, cfg.seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let path_cfgs = cfg.paths.clone();
        let conns: Vec<ConnState> = cfg
            .conns
            .iter_mut()
            .map(|spec| {
                assert!(!spec.subflow_paths.is_empty());
                let subflow_paths: Vec<(usize, Duration)> = spec
                    .subflow_paths
                    .iter()
                    .map(|&p| (p, path_cfgs[p].base_rtt()))
                    .collect();
                let scheduler: Box<dyn ecf_core::Scheduler> = match spec.custom_scheduler.take()
                {
                    Some(custom) => custom,
                    None => spec.scheduler.build(),
                };
                ConnState {
                    sender: Connection::new(spec.cfg, scheduler, &subflow_paths),
                    receiver: Receiver::new(spec.subflow_paths.len(), spec.cfg.rwnd_segs),
                    primary_path: spec.subflow_paths[0],
                    delack_armed: vec![false; spec.subflow_paths.len()],
                }
            })
            .collect();
        let subflow_counts: Vec<usize> =
            cfg.conns.iter().map(|c| c.subflow_paths.len()).collect();
        let recorder = Recorder::new(cfg.recorder, &subflow_counts);
        let n_paths = paths.len();
        World {
            paths,
            conns,
            recorder,
            path_up: vec![true; n_paths],
            sample_every: cfg.recorder.sample_every,
            sampling: cfg.recorder.cwnd_traces || cfg.recorder.sndbuf_traces,
        }
    }

    /// The sender side of connection `c`.
    pub fn sender(&self, c: ConnId) -> &Connection {
        &self.conns[c].sender
    }

    /// The receiver side of connection `c`.
    pub fn receiver(&self, c: ConnId) -> &Receiver {
        &self.conns[c].receiver
    }

    /// Number of connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// True when every connection has delivered everything written to it.
    pub fn all_drained(&self) -> bool {
        self.conns.iter().all(|c| c.sender.all_acked())
    }

    fn issue_request(
        &mut self,
        now: Time,
        conn: ConnId,
        bytes: u64,
        q: &mut EventQueue<Event>,
    ) -> ReqId {
        let segs = segs_for_bytes(bytes);
        let n_subs = self.conns[conn].sender.subflows.len();
        let req = self.recorder.new_request(conn, bytes, segs, now, n_subs);
        let path = self.conns[conn].primary_path;
        // Requests ride the primary path if it is up, else any live path —
        // a real client retries the GET over the surviving interface.
        let path = if self.path_up[path] {
            path
        } else {
            match (0..self.paths.len()).find(|&p| self.path_up[p]) {
                Some(p) => p,
                // Total blackout: the request is lost (the application will
                // observe a stall until it retries on recovery).
                None => return req,
            }
        };
        let arrival = match self.paths[path].rev.enqueue(now, REQUEST_WIRE_BYTES) {
            Verdict::Deliver { arrival } => arrival,
            // The reverse link is engineered lossless, but stay robust.
            _ => now + self.paths[path].rev.prop_delay(),
        };
        q.schedule(arrival, Event::Request { conn, req, segs });
        req
    }

    fn transmit(
        &mut self,
        now: Time,
        conn: ConnId,
        plan: &[Transmission],
        q: &mut EventQueue<Event>,
    ) {
        for t in plan {
            let path_idx = self.conns[conn].sender.subflows[t.sub].path;
            // A down path swallows everything (radio gone); recovery runs
            // through RTO and reinjection exactly as for tail loss.
            if self.path_up[path_idx] {
                if let Verdict::Deliver { arrival } =
                    self.paths[path_idx].fwd.enqueue(now, wire_size(MSS))
                {
                    q.schedule(arrival, Event::Data { conn, sub: t.sub, seg: t.seg });
                }
            }
            // Dropped segments stay in the retransmission queue; dupacks or
            // the RTO recover them.
            self.arm_rto(conn, t.sub, q);
        }
    }

    fn arm_rto(&mut self, conn: ConnId, sub: SubId, q: &mut EventQueue<Event>) {
        let sf = &mut self.conns[conn].sender.subflows[sub];
        if !sf.rto_scheduled && sf.rto_deadline != Time::MAX {
            sf.rto_scheduled = true;
            q.schedule(sf.rto_deadline, Event::Rto { conn, sub });
        }
    }

    fn on_request(&mut self, now: Time, conn: ConnId, req: ReqId, segs: u64, q: &mut EventQueue<Event>) {
        let rec = &mut self.recorder.requests[req as usize];
        rec.server_arrival = Some(now);
        let (first, last) = self.conns[conn].sender.server_write(req, segs);
        let rec = &mut self.recorder.requests[req as usize];
        rec.first_dsn = first;
        rec.last_dsn = last;
        let plan = self.conns[conn].sender.try_send(now);
        self.transmit(now, conn, &plan, q);
    }

    fn on_data(
        &mut self,
        now: Time,
        conn: ConnId,
        sub: SubId,
        seg: Segment,
        q: &mut EventQueue<Event>,
    ) -> Vec<ReqId> {
        // Map the dsn to its request for last-packet bookkeeping.
        let owner = self.conns[conn]
            .sender
            .response_bounds
            .iter()
            .find(|&&(req, _)| {
                let r = &self.recorder.requests[req as usize];
                seg.dsn >= r.first_dsn && seg.dsn <= r.last_dsn
            })
            .map(|&(req, _)| req);
        if let Some(req) = owner {
            self.recorder.note_arrival(req, sub, now);
        }

        let out = self.conns[conn].receiver.on_segment(now, sub, seg);
        for d in &out.delivered {
            self.recorder.note_ooo(d.ooo_delay);
        }

        // Complete responses whose last dsn is now delivered.
        let meta_next = self.conns[conn].receiver.meta_next();
        let mut completed = Vec::new();
        while let Some(&(req, last)) = self.conns[conn].sender.response_bounds.front() {
            if last < meta_next {
                self.conns[conn].sender.response_bounds.pop_front();
                self.recorder.requests[req as usize].completed = Some(now);
                completed.push(req);
            } else {
                break;
            }
        }

        // ACK back on the same path's reverse link (possibly delayed).
        if let Some(ack) = out.ack {
            self.send_ack(now, conn, sub, ack, q);
        } else if out.arm_delack && !self.conns[conn].delack_armed[sub] {
            self.conns[conn].delack_armed[sub] = true;
            q.schedule(now + DELACK_TIMEOUT, Event::DelAck { conn, sub });
        }
        completed
    }

    fn send_ack(
        &mut self,
        now: Time,
        conn: ConnId,
        sub: SubId,
        ack: AckInfo,
        q: &mut EventQueue<Event>,
    ) {
        let path_idx = self.conns[conn].sender.subflows[sub].path;
        // A down path is a dead radio in both directions.
        if !self.path_up[path_idx] {
            return;
        }
        if let Verdict::Deliver { arrival } = self.paths[path_idx].rev.enqueue(now, ACK_WIRE_BYTES)
        {
            q.schedule(arrival, Event::Ack { conn, sub, ack });
        }
    }

    fn on_delack(&mut self, now: Time, conn: ConnId, sub: SubId, q: &mut EventQueue<Event>) {
        self.conns[conn].delack_armed[sub] = false;
        if let Some(ack) = self.conns[conn].receiver.take_delayed_ack(sub) {
            self.send_ack(now, conn, sub, ack, q);
        }
    }

    fn on_ack(&mut self, now: Time, conn: ConnId, sub: SubId, ack: AckInfo, q: &mut EventQueue<Event>) {
        let fast_retx = self.conns[conn].sender.on_ack(now, sub, &ack);
        if let Some(seg) = fast_retx {
            let path_idx = self.conns[conn].sender.subflows[sub].path;
            if self.path_up[path_idx] {
                if let Verdict::Deliver { arrival } =
                    self.paths[path_idx].fwd.enqueue(now, wire_size(MSS))
                {
                    q.schedule(arrival, Event::Data { conn, sub, seg });
                }
            }
        }
        let plan = self.conns[conn].sender.try_send(now);
        self.transmit(now, conn, &plan, q);
        self.arm_rto(conn, sub, q);
    }

    fn on_rto(&mut self, now: Time, conn: ConnId, sub: SubId, q: &mut EventQueue<Event>) {
        self.conns[conn].sender.subflows[sub].rto_scheduled = false;
        if let Some(seg) = self.conns[conn].sender.subflows[sub].on_rto_fire(now) {
            let path_idx = self.conns[conn].sender.subflows[sub].path;
            if self.path_up[path_idx] {
                if let Verdict::Deliver { arrival } =
                    self.paths[path_idx].fwd.enqueue(now, wire_size(MSS))
                {
                    q.schedule(arrival, Event::Data { conn, sub, seg });
                }
            }
        }
        self.arm_rto(conn, sub, q);
    }

    fn on_path_state(&mut self, now: Time, path: usize, up: bool, q: &mut EventQueue<Event>) {
        self.path_up[path] = up;
        for c in 0..self.conns.len() {
            let subs: Vec<SubId> = self.conns[c]
                .sender
                .subflows
                .iter()
                .enumerate()
                .filter(|(_, sf)| sf.path == path)
                .map(|(i, _)| i)
                .collect();
            for sub in subs {
                if up {
                    self.conns[c].sender.on_subflow_up(sub);
                } else {
                    self.conns[c].sender.on_subflow_down(sub);
                }
            }
            // Reinjections (down) or fresh capacity (up) may unblock sends.
            let plan = self.conns[c].sender.try_send(now);
            self.transmit(now, c, &plan, q);
        }
    }

    fn record_samples(&mut self, now: Time) {
        let t = now.as_secs_f64();
        for (ci, cs) in self.conns.iter().enumerate() {
            for (si, sf) in cs.sender.subflows.iter().enumerate() {
                if let Some(series) = self.recorder.cwnd.get_mut(ci) {
                    series[si].push(t, f64::from(sf.cc.cwnd_pkts()));
                }
                if let Some(series) = self.recorder.sndbuf.get_mut(ci) {
                    let kb = f64::from(sf.inflight_count()) * f64::from(MSS) / 1024.0;
                    series[si].push(t, kb);
                }
            }
        }
    }
}

/// The complete model: world + application.
pub struct Sim<A: Application> {
    /// Simulation state.
    pub world: World,
    /// The workload driver.
    pub app: A,
}

impl<A: Application> Model for Sim<A> {
    type Event = Event;

    fn handle(&mut self, now: Time, ev: Event, q: &mut EventQueue<Event>) {
        match ev {
            Event::AppStart => {
                let mut api = Api { now, world: &mut self.world, queue: q };
                self.app.on_start(now, &mut api);
            }
            Event::AppTimer { token } => {
                let mut api = Api { now, world: &mut self.world, queue: q };
                self.app.on_timer(now, token, &mut api);
            }
            Event::Request { conn, req, segs } => self.world.on_request(now, conn, req, segs, q),
            Event::Data { conn, sub, seg } => {
                let completed = self.world.on_data(now, conn, sub, seg, q);
                for req in completed {
                    let mut api = Api { now, world: &mut self.world, queue: q };
                    self.app.on_response_complete(now, conn, req, &mut api);
                }
            }
            Event::Ack { conn, sub, ack } => self.world.on_ack(now, conn, sub, ack, q),
            Event::DelAck { conn, sub } => self.world.on_delack(now, conn, sub, q),
            Event::Rto { conn, sub } => self.world.on_rto(now, conn, sub, q),
            Event::PathState { path, up } => self.world.on_path_state(now, path, up, q),
            Event::RateChange { path, bps } => self.world.paths[path].fwd.set_rate_bps(bps),
            Event::DelayChange { path, one_way_us } => {
                let d = Duration::from_micros(one_way_us);
                self.world.paths[path].fwd.set_prop_delay(d);
                self.world.paths[path].rev.set_prop_delay(d);
            }
            Event::Sample => {
                self.world.record_samples(now);
                if self.world.sampling {
                    q.schedule(now + self.world.sample_every, Event::Sample);
                }
            }
        }
    }
}

/// A ready-to-run testbed: engine + model, with control events pre-scheduled.
pub struct Testbed<A: Application> {
    engine: Engine<Sim<A>>,
}

impl<A: Application> Testbed<A> {
    /// Build the world from `cfg`, install `app`, and schedule the start
    /// event plus any rate/delay schedules.
    pub fn new(mut cfg: TestbedConfig, app: A) -> Self {
        let world = World::build(&mut cfg);
        let sampling = world.sampling;
        let mut engine = Engine::new(Sim { world, app });
        engine.queue_mut().schedule(Time::ZERO, Event::AppStart);
        if sampling {
            engine.queue_mut().schedule(Time::ZERO, Event::Sample);
        }
        for (path, sched) in &cfg.rate_schedules {
            for &(at, bps) in &sched.changes {
                engine.queue_mut().schedule(at, Event::RateChange { path: *path, bps });
            }
        }
        for (path, sched) in &cfg.delay_schedules {
            for &(at, d) in sched {
                engine.queue_mut().schedule(
                    at,
                    Event::DelayChange { path: *path, one_way_us: d.as_micros() as u64 },
                );
            }
        }
        for &(at, path, up) in &cfg.path_events {
            engine.queue_mut().schedule(at, Event::PathState { path, up });
        }
        Testbed { engine }
    }

    /// Run until `deadline` (or the event queue drains).
    pub fn run_until(&mut self, deadline: Time) -> RunOutcome {
        self.engine.run_until(deadline)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Events processed so far (diagnostic).
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// The world (measurements, connections, paths).
    pub fn world(&self) -> &World {
        &self.engine.model.world
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.engine.model.app
    }
}
