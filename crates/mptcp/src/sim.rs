//! The testbed: wires connections, paths and an application into a
//! `simnet` discrete-event model. This plays the role of the paper's lab —
//! server and mobile client, WiFi + LTE paths shaped with `tc`, and a
//! workload application driving HTTP requests.
//!
//! Data flows server → client on each path's `fwd` link (shaped); requests
//! and ACKs ride the unshaped `rev` link. The client application
//! ([`Application`]) issues requests and reacts to completed responses,
//! which is all a DASH player, a `wget` download, or a browser needs.

use std::time::Duration;

use ecf_core::SchedulerKind;
use scenario::{Action, ControlEvent, Scenario};
use simnet::{
    DeliveryQueue, Engine, EventQueue, Model, Path, PathConfig, RunOutcome, Time, Verdict,
};
use tcp_model::{wire_size, MSS};
use telemetry::{Counter, EventKind, LinkDir, TelemetryHandle};

use crate::connection::{ConnConfig, Connection, Transmission};
use crate::receiver::Receiver;
use crate::segment::{segs_for_bytes, AckInfo, ConnId, ReqId, Segment, SubId};
use crate::trace::{Recorder, RecorderConfig};

/// Wire size of an HTTP GET (request line + headers, single packet).
const REQUEST_WIRE_BYTES: u32 = 300;
/// Wire size of a pure ACK.
const ACK_WIRE_BYTES: u32 = 72;
/// Linux delayed-ACK timeout.
const DELACK_TIMEOUT: Duration = Duration::from_millis(40);

/// Events of the testbed model.
///
/// Deliberately slim (≤ 24 bytes): these sit in the engine's binary heap,
/// so every byte is copied on each sift. Per-packet payloads (data
/// segments, ACKs, requests) do *not* ride in the heap at all — they wait
/// in per-link [`DeliveryQueue`]s and the heap only carries the one-per-
/// link-direction [`Event::FwdDeliver`]/[`Event::RevDeliver`] wakeups
/// (see DESIGN.md, "Event coalescing on FIFO links").
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Kick the application's `on_start` at t=0.
    AppStart,
    /// The head of `paths[path]`'s *forward* (data) delivery queue arrives
    /// at the client.
    FwdDeliver {
        /// Path index.
        path: u32,
    },
    /// The head of `paths[path]`'s *reverse* (ACK/request) delivery queue
    /// arrives at the server.
    RevDeliver {
        /// Path index.
        path: u32,
    },
    /// A delayed-ACK timer fires at the receiver.
    DelAck {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        sub: u16,
    },
    /// A subflow's lazy RTO timer fires.
    Rto {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        sub: u16,
    },
    /// An application timer fires.
    AppTimer {
        /// Opaque token the application chose.
        token: u64,
    },
    /// A scenario control event fires: `idx` indexes the compiled
    /// [`ControlEvent`] table held in [`World`]. Keeping the payload out
    /// of the heap keeps this variant pointer-sized even for fat actions
    /// (a Gilbert–Elliott loss model is four `f64`s).
    Control {
        /// Index into `World::controls`.
        idx: u32,
    },
    /// Periodic trace sampling tick.
    Sample,
}

/// A packet parked in a per-link [`DeliveryQueue`], waiting for its
/// direction's wakeup. This is where the fat payloads live instead of the
/// heap; a deque push/pop is `O(1)` and touches no other entries.
#[derive(Debug, Clone, Copy)]
enum LinkPayload {
    /// A data segment headed for the client.
    Data { conn: u32, sub: u16, seg: Segment },
    /// An ACK headed back to the server.
    Ack { conn: u32, sub: u16, ack: AckInfo },
    /// An HTTP GET headed for the server.
    Request { conn: u32, req: ReqId, segs: u64 },
}

/// The workload driver, running at the client. Implementations issue
/// requests through [`Api`] and react to completions and timers.
pub trait Application {
    /// Called once at t=0.
    fn on_start(&mut self, now: Time, api: &mut Api<'_>);
    /// The full response to `req` has been delivered in order.
    fn on_response_complete(&mut self, now: Time, conn: ConnId, req: ReqId, api: &mut Api<'_>);
    /// A timer set through [`Api::set_timer`] fired.
    fn on_timer(&mut self, _now: Time, _token: u64, _api: &mut Api<'_>) {}
}

/// Specification of one MPTCP connection in the testbed.
pub struct ConnSpec {
    /// Connection parameters.
    pub cfg: ConnConfig,
    /// Which scheduler this connection runs.
    pub scheduler: SchedulerKind,
    /// A custom scheduler instance overriding `scheduler` — the plug-in
    /// point for schedulers defined outside this crate.
    pub custom_scheduler: Option<Box<dyn ecf_core::Scheduler + Send>>,
    /// Path index (into [`TestbedConfig::paths`]) per subflow; index 0 is the
    /// primary subflow (carries requests), WiFi in the paper's setup.
    pub subflow_paths: Vec<usize>,
}

impl ConnSpec {
    /// A connection with default parameters running a built-in scheduler.
    pub fn new(scheduler: SchedulerKind, subflow_paths: Vec<usize>) -> Self {
        ConnSpec {
            cfg: ConnConfig::default(),
            scheduler,
            custom_scheduler: None,
            subflow_paths,
        }
    }

    /// A connection running a user-provided scheduler implementation.
    pub fn with_custom(
        scheduler: Box<dyn ecf_core::Scheduler + Send>,
        subflow_paths: Vec<usize>,
    ) -> Self {
        ConnSpec {
            cfg: ConnConfig::default(),
            scheduler: SchedulerKind::Default,
            custom_scheduler: Some(scheduler),
            subflow_paths,
        }
    }
}

/// Full testbed specification.
pub struct TestbedConfig {
    /// The physical paths.
    pub paths: Vec<PathConfig>,
    /// The connections (one per HTTP connection; a browser opens six).
    pub conns: Vec<ConnSpec>,
    /// Seed for link jitter/loss.
    pub seed: u64,
    /// Explicit per-path RNG seeds overriding the derivation from `seed`.
    /// By default path `i` seeds with [`simnet::path_seed`]; a sharded sweep
    /// passes the seeds the paths would have received at their *global*
    /// indices in the monolithic run, which is what makes a shard's link
    /// behavior bit-identical to the monolith's. Length must match `paths`
    /// when present.
    pub path_seeds: Option<Vec<u64>>,
    /// What to record.
    pub recorder: RecorderConfig,
    /// Network dynamics for the run: rate/delay traces, stochastic rate
    /// walks, loss-model swaps, and path outages. The default (empty)
    /// scenario is a fully static network.
    pub scenario: Scenario,
    /// Telemetry sink shared by every component of the testbed. The default
    /// (off) handle records nothing and adds no per-packet work; an enabled
    /// handle collects scheduler decisions, transport lifecycle events, link
    /// drops and counters for trace export.
    pub telemetry: TelemetryHandle,
}

impl TestbedConfig {
    /// A two-path (WiFi + LTE) testbed with one connection, the common case.
    pub fn wifi_lte(
        wifi_mbps: f64,
        lte_mbps: f64,
        scheduler: SchedulerKind,
        seed: u64,
    ) -> Self {
        TestbedConfig {
            paths: vec![PathConfig::wifi(wifi_mbps), PathConfig::lte(lte_mbps)],
            conns: vec![ConnSpec::new(scheduler, vec![0, 1])],
            seed,
            path_seeds: None,
            recorder: RecorderConfig::default(),
            scenario: Scenario::default(),
            telemetry: TelemetryHandle::off(),
        }
    }
}

struct ConnState {
    sender: Connection,
    receiver: Receiver,
    /// Path carrying requests (the primary subflow's path).
    primary_path: usize,
    /// Per-subflow: whether a delayed-ACK timer is outstanding.
    delack_armed: Vec<bool>,
}

/// Mutable simulation state (everything except the application).
pub struct World {
    /// Live paths, indexed as in the config.
    pub paths: Vec<Path>,
    conns: Vec<ConnState>,
    /// Collected measurements.
    pub recorder: Recorder,
    /// Per-path liveness (down paths drop everything offered to them).
    path_up: Vec<bool>,
    /// In-flight data packets per path (forward direction), head-scheduled.
    fwd_inflight: Vec<DeliveryQueue<LinkPayload>>,
    /// In-flight ACKs/requests per path (reverse direction), head-scheduled.
    rev_inflight: Vec<DeliveryQueue<LinkPayload>>,
    /// Compiled scenario events, indexed by [`Event::Control`]. The heap
    /// carries only the index; the fat action payload lives here.
    controls: Vec<ControlEvent>,
    /// Scratch transmission plan reused across send opportunities.
    plan_buf: Vec<Transmission>,
    /// Scratch delivery list reused across data arrivals.
    delivered_buf: Vec<crate::receiver::Delivered>,
    /// Requests completed by the data arrival being dispatched.
    completed_buf: Vec<ReqId>,
    sample_every: Duration,
    sampling: bool,
    /// Telemetry sink for world-level events (rates, path state, RTOs).
    tel: TelemetryHandle,
}

/// The application's handle into the running world.
pub struct Api<'a> {
    /// Current simulation time.
    pub now: Time,
    world: &'a mut World,
    queue: &'a mut EventQueue<Event>,
}

impl Api<'_> {
    /// Issue an HTTP GET for `bytes` of response payload on `conn`.
    pub fn request(&mut self, conn: ConnId, bytes: u64) -> ReqId {
        self.world.issue_request(self.now, conn, bytes, self.queue)
    }

    /// Arrange for [`Application::on_timer`] to fire at `at`.
    pub fn set_timer(&mut self, at: Time, token: u64) {
        self.queue.schedule(at, Event::AppTimer { token });
    }

    /// Read-only world access (counters, receiver state...).
    pub fn world(&self) -> &World {
        self.world
    }
}

impl World {
    fn build(cfg: &mut TestbedConfig) -> Self {
        if let Some(seeds) = &cfg.path_seeds {
            assert_eq!(seeds.len(), cfg.paths.len(), "one seed per path");
        }
        let paths: Vec<Path> = cfg
            .paths
            .iter()
            .enumerate()
            .map(|(i, pc)| {
                let seed = match &cfg.path_seeds {
                    Some(seeds) => seeds[i],
                    None => simnet::path_seed(cfg.seed, i),
                };
                let mut p = Path::new(pc, seed);
                p.attach_telemetry(&cfg.telemetry, i as u16);
                p
            })
            .collect();
        let path_cfgs = cfg.paths.clone();
        let conns: Vec<ConnState> = cfg
            .conns
            .iter_mut()
            .enumerate()
            .map(|(ci, spec)| {
                assert!(!spec.subflow_paths.is_empty());
                let subflow_paths: Vec<(usize, Duration)> = spec
                    .subflow_paths
                    .iter()
                    .map(|&p| (p, path_cfgs[p].base_rtt()))
                    .collect();
                let scheduler: Box<dyn ecf_core::Scheduler> = match spec.custom_scheduler.take()
                {
                    Some(custom) => custom,
                    None => spec.scheduler.build(),
                };
                let mut sender = Connection::new(spec.cfg, scheduler, &subflow_paths);
                sender.set_telemetry(cfg.telemetry.clone(), ci as u32);
                ConnState {
                    sender,
                    receiver: Receiver::new(spec.subflow_paths.len(), spec.cfg.rwnd_segs),
                    primary_path: spec.subflow_paths[0],
                    delack_armed: vec![false; spec.subflow_paths.len()],
                }
            })
            .collect();
        let subflow_counts: Vec<usize> =
            cfg.conns.iter().map(|c| c.subflow_paths.len()).collect();
        let recorder = Recorder::new(cfg.recorder, &subflow_counts);
        let n_paths = paths.len();
        World {
            paths,
            conns,
            recorder,
            path_up: vec![true; n_paths],
            // A window's worth of MSS packets fits comfortably in 512
            // slots; pre-sizing keeps the steady state reallocation-free.
            fwd_inflight: (0..n_paths).map(|_| DeliveryQueue::with_capacity(512)).collect(),
            rev_inflight: (0..n_paths).map(|_| DeliveryQueue::with_capacity(512)).collect(),
            controls: cfg.scenario.compile(),
            plan_buf: Vec::with_capacity(64),
            delivered_buf: Vec::with_capacity(64),
            completed_buf: Vec::with_capacity(8),
            sample_every: cfg.recorder.sample_every,
            sampling: cfg.recorder.cwnd_traces || cfg.recorder.sndbuf_traces,
            tel: cfg.telemetry.clone(),
        }
    }

    /// Park a forward-direction (data) delivery and, when the link was
    /// idle, schedule its wakeup under the seq reserved for this packet.
    fn park_fwd(
        &mut self,
        arrival: Time,
        path: usize,
        payload: LinkPayload,
        q: &mut EventQueue<Event>,
    ) {
        let seq = q.reserve_seq();
        if let Some((at, s)) = self.fwd_inflight[path].push(arrival, seq, payload) {
            q.schedule_reserved(at, s, Event::FwdDeliver { path: path as u32 });
        }
    }

    /// Reverse-direction (ACK/request) counterpart of [`World::park_fwd`].
    fn park_rev(
        &mut self,
        arrival: Time,
        path: usize,
        payload: LinkPayload,
        q: &mut EventQueue<Event>,
    ) {
        let seq = q.reserve_seq();
        if let Some((at, s)) = self.rev_inflight[path].push(arrival, seq, payload) {
            q.schedule_reserved(at, s, Event::RevDeliver { path: path as u32 });
        }
    }

    /// The sender side of connection `c`.
    pub fn sender(&self, c: ConnId) -> &Connection {
        &self.conns[c].sender
    }

    /// The receiver side of connection `c`.
    pub fn receiver(&self, c: ConnId) -> &Receiver {
        &self.conns[c].receiver
    }

    /// Number of connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// True when every connection has delivered everything written to it.
    pub fn all_drained(&self) -> bool {
        self.conns.iter().all(|c| c.sender.all_acked())
    }

    fn issue_request(
        &mut self,
        now: Time,
        conn: ConnId,
        bytes: u64,
        q: &mut EventQueue<Event>,
    ) -> ReqId {
        let segs = segs_for_bytes(bytes);
        let n_subs = self.conns[conn].sender.subflows.len();
        let req = self.recorder.new_request(conn, bytes, segs, now, n_subs);
        let path = self.conns[conn].primary_path;
        // Requests ride the primary path if it is up, else any live path of
        // *this connection* — a real client retries the GET over its own
        // surviving interface, never over some other host's radio. (Sharded
        // populations rely on the conn-local scan: a whole-world scan would
        // pick a foreign unit's path in the monolith and break partition
        // invariance the moment an outage fires.)
        let path = if self.path_up[path] {
            path
        } else {
            let mut own = self.conns[conn].sender.subflows.iter().map(|sf| sf.path);
            match own.find(|&p| self.path_up[p]) {
                Some(p) => p,
                // Total blackout: the request is lost (the application will
                // observe a stall until it retries on recovery).
                None => return req,
            }
        };
        let arrival = match self.paths[path].rev.enqueue(now, REQUEST_WIRE_BYTES) {
            Verdict::Deliver { arrival } => arrival,
            // The reverse link is engineered lossless, but stay robust.
            _ => now + self.paths[path].rev.prop_delay(),
        };
        self.park_rev(arrival, path, LinkPayload::Request { conn: conn as u32, req, segs }, q);
        req
    }

    fn transmit(
        &mut self,
        now: Time,
        conn: ConnId,
        plan: &[Transmission],
        q: &mut EventQueue<Event>,
    ) {
        if plan.is_empty() {
            // Most ACKs clock in with nothing new to send; skip the counter
            // add (a no-op of value 0) and the loop setup entirely.
            return;
        }
        for t in plan {
            let path_idx = self.conns[conn].sender.subflows[t.sub].path;
            // A down path swallows everything (radio gone); recovery runs
            // through RTO and reinjection exactly as for tail loss.
            if self.path_up[path_idx] {
                if let Verdict::Deliver { arrival } =
                    self.paths[path_idx].fwd.enqueue(now, wire_size(MSS))
                {
                    let payload =
                        LinkPayload::Data { conn: conn as u32, sub: t.sub as u16, seg: t.seg };
                    self.park_fwd(arrival, path_idx, payload, q);
                }
            }
            // Dropped segments stay in the retransmission queue; dupacks or
            // the RTO recover them.
            self.arm_rto(conn, t.sub, q);
        }
        self.tel.add(Counter::SegsSent, plan.len() as u64);
    }

    fn arm_rto(&mut self, conn: ConnId, sub: SubId, q: &mut EventQueue<Event>) {
        let sf = &mut self.conns[conn].sender.subflows[sub];
        if !sf.rto_scheduled && sf.rto_deadline != Time::MAX {
            sf.rto_scheduled = true;
            q.schedule(sf.rto_deadline, Event::Rto { conn: conn as u32, sub: sub as u16 });
        }
    }

    /// Run a send opportunity on `conn` and put the resulting segments on
    /// the wire, reusing the scratch plan buffer.
    fn pump_send(&mut self, now: Time, conn: ConnId, q: &mut EventQueue<Event>) {
        // Cross-layer sample: expose each subflow path's droptail backlog to
        // the scheduler snapshot. `Link::queued_bytes` expires the queue at
        // `now` first — a mutation the next enqueue/expiry at a later time
        // would perform anyway, so sampling here cannot change link behavior
        // (the golden digests pin this). Skipped when nothing is waiting to
        // be assigned: `link_queue_bytes` is only consulted by the phase-2
        // scheduler select, which never runs with zero unassigned segments
        // (reinjection reads srtt/cwnd only), so a stale sample is unread
        // and the deferred expiry is performed by the next enqueue anyway.
        if self.conns[conn].sender.unassigned_segs() > 0 {
            for si in 0..self.conns[conn].sender.subflows.len() {
                let path_idx = self.conns[conn].sender.subflows[si].path;
                let qb = if self.path_up[path_idx] {
                    self.paths[path_idx].fwd.queued_bytes(now)
                } else {
                    0
                };
                self.conns[conn].sender.subflows[si].link_queue_bytes = qb;
            }
        }
        let mut plan = std::mem::take(&mut self.plan_buf);
        plan.clear();
        self.conns[conn].sender.try_send_into(now, &mut plan);
        self.transmit(now, conn, &plan, q);
        self.plan_buf = plan;
    }

    fn on_request(&mut self, now: Time, conn: ConnId, req: ReqId, segs: u64, q: &mut EventQueue<Event>) {
        let rec = &mut self.recorder.requests[req as usize];
        rec.server_arrival = Some(now);
        let (first, last) = self.conns[conn].sender.server_write(req, segs);
        let rec = &mut self.recorder.requests[req as usize];
        rec.first_dsn = first;
        rec.last_dsn = last;
        self.pump_send(now, conn, q);
    }

    /// Handle a data arrival. Requests completed by this segment are pushed
    /// onto `completed_buf` (cleared here); the dispatcher notifies the
    /// application from that buffer.
    fn on_data(
        &mut self,
        now: Time,
        conn: ConnId,
        sub: SubId,
        seg: Segment,
        q: &mut EventQueue<Event>,
    ) {
        self.completed_buf.clear();
        // Map the dsn to its request for last-packet bookkeeping. Response
        // ranges are assigned sequentially, so the bounds deque is sorted by
        // `last` with disjoint ranges: the first entry whose `last` covers
        // the dsn is the only candidate, and a single record lookup rules
        // out dsns below its range (a retransmission of already-completed
        // data). In-order traffic matches the front entry immediately.
        let owner = self.conns[conn]
            .sender
            .response_bounds
            .iter()
            .find(|&&(_, last)| seg.dsn <= last)
            .and_then(|&(req, _)| {
                (seg.dsn >= self.recorder.requests[req as usize].first_dsn).then_some(req)
            });
        if let Some(req) = owner {
            self.recorder.note_arrival(req, sub, now);
        }

        let mut delivered = std::mem::take(&mut self.delivered_buf);
        delivered.clear();
        let out = self.conns[conn].receiver.on_segment_into(now, sub, seg, &mut delivered);
        for d in &delivered {
            self.recorder.note_ooo(conn, d.ooo_delay);
        }
        self.delivered_buf = delivered;

        // Complete responses whose last dsn is now delivered.
        let meta_next = self.conns[conn].receiver.meta_next();
        while let Some(&(req, last)) = self.conns[conn].sender.response_bounds.front() {
            if last < meta_next {
                self.conns[conn].sender.response_bounds.pop_front();
                self.recorder.requests[req as usize].completed = Some(now);
                self.completed_buf.push(req);
            } else {
                break;
            }
        }

        // ACK back on the same path's reverse link (possibly delayed).
        if let Some(ack) = out.ack {
            self.send_ack(now, conn, sub, ack, q);
        } else if out.arm_delack && !self.conns[conn].delack_armed[sub] {
            self.conns[conn].delack_armed[sub] = true;
            q.schedule(
                now + DELACK_TIMEOUT,
                Event::DelAck { conn: conn as u32, sub: sub as u16 },
            );
        }
    }

    fn send_ack(
        &mut self,
        now: Time,
        conn: ConnId,
        sub: SubId,
        ack: AckInfo,
        q: &mut EventQueue<Event>,
    ) {
        let path_idx = self.conns[conn].sender.subflows[sub].path;
        // A down path is a dead radio in both directions.
        if !self.path_up[path_idx] {
            return;
        }
        if let Verdict::Deliver { arrival } = self.paths[path_idx].rev.enqueue(now, ACK_WIRE_BYTES)
        {
            let payload = LinkPayload::Ack { conn: conn as u32, sub: sub as u16, ack };
            self.park_rev(arrival, path_idx, payload, q);
        }
    }

    fn on_delack(&mut self, now: Time, conn: ConnId, sub: SubId, q: &mut EventQueue<Event>) {
        self.conns[conn].delack_armed[sub] = false;
        if let Some(ack) = self.conns[conn].receiver.take_delayed_ack(sub) {
            self.send_ack(now, conn, sub, ack, q);
        }
    }

    fn on_ack(&mut self, now: Time, conn: ConnId, sub: SubId, ack: AckInfo, q: &mut EventQueue<Event>) {
        let fast_retx = self.conns[conn].sender.on_ack(now, sub, &ack);
        if let Some(seg) = fast_retx {
            let path_idx = self.conns[conn].sender.subflows[sub].path;
            if self.path_up[path_idx] {
                if let Verdict::Deliver { arrival } =
                    self.paths[path_idx].fwd.enqueue(now, wire_size(MSS))
                {
                    let payload =
                        LinkPayload::Data { conn: conn as u32, sub: sub as u16, seg };
                    self.park_fwd(arrival, path_idx, payload, q);
                }
            }
        }
        self.pump_send(now, conn, q);
        self.arm_rto(conn, sub, q);
    }

    fn on_rto(&mut self, now: Time, conn: ConnId, sub: SubId, q: &mut EventQueue<Event>) {
        self.conns[conn].sender.subflows[sub].rto_scheduled = false;
        if let Some(seg) = self.conns[conn].sender.subflows[sub].on_rto_fire(now) {
            self.tel
                .emit(now.as_nanos(), EventKind::Rto { conn: conn as u32, path: sub as u16 });
            self.tel.incr(Counter::Rtos);
            let path_idx = self.conns[conn].sender.subflows[sub].path;
            if self.path_up[path_idx] {
                if let Verdict::Deliver { arrival } =
                    self.paths[path_idx].fwd.enqueue(now, wire_size(MSS))
                {
                    let payload =
                        LinkPayload::Data { conn: conn as u32, sub: sub as u16, seg };
                    self.park_fwd(arrival, path_idx, payload, q);
                }
            }
        }
        self.arm_rto(conn, sub, q);
    }

    /// Apply a compiled scenario event: rate and delay changes act on the
    /// links directly; liveness changes run the full subflow up/down
    /// machinery; loss swaps install the new model on the forward link.
    fn apply_control(&mut self, now: Time, ev: ControlEvent, q: &mut EventQueue<Event>) {
        match ev.action {
            Action::RateBps(bps) => {
                self.paths[ev.path].fwd.set_rate_bps(bps);
                self.tel.emit(
                    now.as_nanos(),
                    EventKind::RateChange {
                        path: ev.path as u16,
                        dir: LinkDir::Forward,
                        rate_bps: bps,
                    },
                );
                self.tel.incr(Counter::RateChanges);
            }
            Action::OneWayDelay(d) => {
                self.paths[ev.path].fwd.set_prop_delay(d);
                self.paths[ev.path].rev.set_prop_delay(d);
            }
            Action::PathUp(up) => self.on_path_state(now, ev.path, up, q),
            Action::Loss(model) => self.paths[ev.path].fwd.set_loss_model(model),
        }
    }

    fn on_path_state(&mut self, now: Time, path: usize, up: bool, q: &mut EventQueue<Event>) {
        self.path_up[path] = up;
        for c in 0..self.conns.len() {
            let subs: Vec<SubId> = self.conns[c]
                .sender
                .subflows
                .iter()
                .enumerate()
                .filter(|(_, sf)| sf.path == path)
                .map(|(i, _)| i)
                .collect();
            // Connections with no subflow on this path are untouched — no
            // capacity of theirs changed, so they get no extra send poll.
            // (Sharded populations rely on this: a path event is then a
            // no-op for every unit not on the path, wherever it runs.)
            if subs.is_empty() {
                continue;
            }
            for sub in subs {
                if up {
                    self.conns[c].sender.on_subflow_up(sub);
                    self.tel.emit(
                        now.as_nanos(),
                        EventKind::SubflowUp { conn: c as u32, path: sub as u16 },
                    );
                } else {
                    self.conns[c].sender.on_subflow_down(sub);
                    self.tel.emit(
                        now.as_nanos(),
                        EventKind::SubflowDown { conn: c as u32, path: sub as u16 },
                    );
                }
                self.tel.incr(Counter::SubflowTransitions);
            }
            // Reinjections (down) or fresh capacity (up) may unblock sends.
            self.pump_send(now, c, q);
        }
    }

    fn record_samples(&mut self, now: Time) {
        let t = now.as_secs_f64();
        for (ci, cs) in self.conns.iter().enumerate() {
            for (si, sf) in cs.sender.subflows.iter().enumerate() {
                if let Some(series) = self.recorder.cwnd.get_mut(ci) {
                    series[si].push(t, f64::from(sf.cc.cwnd_pkts()));
                }
                if let Some(series) = self.recorder.sndbuf.get_mut(ci) {
                    let kb = f64::from(sf.inflight_count()) * f64::from(MSS) / 1024.0;
                    series[si].push(t, kb);
                }
            }
        }
    }
}

/// The complete model: world + application.
pub struct Sim<A: Application> {
    /// Simulation state.
    pub world: World,
    /// The workload driver.
    pub app: A,
}

impl<A: Application> Sim<A> {
    /// Hand a just-arrived link payload to the right protocol handler.
    fn dispatch(&mut self, now: Time, payload: LinkPayload, q: &mut EventQueue<Event>) {
        match payload {
            LinkPayload::Data { conn, sub, seg } => {
                let conn = conn as usize;
                self.world.on_data(now, conn, usize::from(sub), seg, q);
                if !self.world.completed_buf.is_empty() {
                    // on_data is never re-entered while the application runs
                    // (it is only called from this dispatcher), so taking
                    // the buffer is safe and keeps its capacity.
                    let completed = std::mem::take(&mut self.world.completed_buf);
                    for &req in &completed {
                        let mut api = Api { now, world: &mut self.world, queue: q };
                        self.app.on_response_complete(now, conn, req, &mut api);
                    }
                    self.world.completed_buf = completed;
                }
            }
            LinkPayload::Ack { conn, sub, ack } => {
                self.world.on_ack(now, conn as usize, usize::from(sub), ack, q);
            }
            LinkPayload::Request { conn, req, segs } => {
                self.world.on_request(now, conn as usize, req, segs, q);
            }
        }
    }
}

impl<A: Application> Model for Sim<A> {
    type Event = Event;

    fn handle(&mut self, now: Time, ev: Event, q: &mut EventQueue<Event>) {
        match ev {
            Event::AppStart => {
                let mut api = Api { now, world: &mut self.world, queue: q };
                self.app.on_start(now, &mut api);
            }
            Event::AppTimer { token } => {
                let mut api = Api { now, world: &mut self.world, queue: q };
                self.app.on_timer(now, token, &mut api);
            }
            Event::FwdDeliver { path } => {
                let p = path as usize;
                if let Some((payload, mut next)) = self.world.fwd_inflight[p].pop() {
                    self.dispatch(now, payload, q);
                    // Batched drain (see `simnet::delivery` docs): keep
                    // dispatching parked heads while the queue proves that
                    // nothing else — nor the run deadline — comes first.
                    // Each claim replaces a wakeup the unbatched engine
                    // would schedule and immediately pop, so order and
                    // event counts are bit-identical.
                    while let Some((at, s)) = next {
                        if !q.claim_dispatch(at, s) {
                            q.schedule_reserved(at, s, Event::FwdDeliver { path });
                            break;
                        }
                        let (payload, n) = self.world.fwd_inflight[p]
                            .pop()
                            .expect("claimed delivery vanished");
                        self.dispatch(at, payload, q);
                        next = n;
                    }
                }
            }
            Event::RevDeliver { path } => {
                let p = path as usize;
                if let Some((payload, mut next)) = self.world.rev_inflight[p].pop() {
                    self.dispatch(now, payload, q);
                    while let Some((at, s)) = next {
                        if !q.claim_dispatch(at, s) {
                            q.schedule_reserved(at, s, Event::RevDeliver { path });
                            break;
                        }
                        let (payload, n) = self.world.rev_inflight[p]
                            .pop()
                            .expect("claimed delivery vanished");
                        self.dispatch(at, payload, q);
                        next = n;
                    }
                }
            }
            Event::DelAck { conn, sub } => {
                self.world.on_delack(now, conn as usize, usize::from(sub), q);
            }
            Event::Rto { conn, sub } => {
                self.world.on_rto(now, conn as usize, usize::from(sub), q);
            }
            Event::Control { idx } => {
                let ev = self.world.controls[idx as usize];
                self.world.apply_control(now, ev, q);
                // Chain-schedule the successor instead of pre-loading every
                // control into the heap: compiled controls are time-sorted,
                // so this fires them in the same order while keeping the
                // heap at most one control deep (far-future controls would
                // otherwise tax every heap op for the whole run).
                let next = idx as usize + 1;
                if let Some(n) = self.world.controls.get(next) {
                    q.schedule(n.at, Event::Control { idx: next as u32 });
                }
            }
            Event::Sample => {
                self.world.record_samples(now);
                if self.world.sampling {
                    q.schedule(now + self.world.sample_every, Event::Sample);
                }
            }
        }
    }
}

/// A ready-to-run testbed: engine + model, with control events pre-scheduled.
pub struct Testbed<A: Application> {
    /// `None` only after [`Testbed::into_queue`] — every accessor may
    /// assume `Some` while the testbed is alive.
    engine: Option<Engine<Sim<A>>>,
}

impl<A: Application> Testbed<A> {
    /// Build the world from `cfg`, install `app`, and schedule the start
    /// event plus the compiled scenario's first control event (each
    /// control chain-schedules its successor when it fires).
    pub fn new(cfg: TestbedConfig, app: A) -> Self {
        Testbed::new_with_queue(cfg, app, EventQueue::new())
    }

    /// Like [`Testbed::new`], but recycling an event queue recovered from a
    /// previous run via [`Testbed::into_queue`]. The queue is reset but
    /// keeps its slab, so a shard worker running many short simulations
    /// pays the queue's growth cost once instead of per run.
    pub fn new_with_queue(mut cfg: TestbedConfig, app: A, queue: EventQueue<Event>) -> Self {
        let world = World::build(&mut cfg);
        let sampling = world.sampling;
        let first_control = world.controls.first().map(|e| e.at);
        let mut engine = Engine::with_queue(Sim { world, app }, queue);
        engine.queue_mut().schedule(Time::ZERO, Event::AppStart);
        if sampling {
            engine.queue_mut().schedule(Time::ZERO, Event::Sample);
        }
        if let Some(at) = first_control {
            engine.queue_mut().schedule(at, Event::Control { idx: 0 });
        }
        Testbed { engine: Some(engine) }
    }

    fn eng(&self) -> &Engine<Sim<A>> {
        self.engine.as_ref().expect("testbed engine taken")
    }

    fn eng_mut(&mut self) -> &mut Engine<Sim<A>> {
        self.engine.as_mut().expect("testbed engine taken")
    }

    /// Run until `deadline` (or the event queue drains).
    pub fn run_until(&mut self, deadline: Time) -> RunOutcome {
        self.engine.as_mut().expect("testbed engine taken").run_until(deadline)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.eng().now()
    }

    /// Events processed so far (diagnostic).
    pub fn events_processed(&self) -> u64 {
        self.eng().processed()
    }

    /// A lower bound on the time of the next pending event (`None` when
    /// drained). Read-only — safe for a co-sim driver to poll between
    /// lockstep windows without perturbing engine state.
    pub fn next_event_time(&self) -> Option<Time> {
        self.eng().next_event_time()
    }

    /// Deliveries dispatched inline via batched claims so far (diagnostic;
    /// a subset of [`Testbed::events_processed`]).
    pub fn batched_deliveries(&self) -> u64 {
        self.eng().queue().batch_deliveries()
    }

    /// Read-only view of the event queue, for drivers that aggregate its
    /// diagnostics across engines (the coupled sweep flushes fast-forward /
    /// batching counters from live groups at teardown).
    pub fn queue(&self) -> &EventQueue<Event> {
        self.eng().queue()
    }

    /// The world (measurements, connections, paths).
    pub fn world(&self) -> &World {
        &self.eng().model.world
    }

    /// Mutable world access, for co-simulation drivers that re-shape
    /// links *between* lockstep windows (never during event dispatch —
    /// the engine is quiescent when this is called).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.eng_mut().model.world
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.eng().model.app
    }

    /// Tear the testbed down, recovering the event queue for a later
    /// [`Testbed::new_with_queue`]. Queue diagnostics are flushed to
    /// telemetry exactly as on drop.
    pub fn into_queue(mut self) -> EventQueue<Event> {
        let engine = self.engine.take().expect("testbed engine taken");
        flush_queue_stats(&engine);
        engine.into_queue()
    }
}

/// Flush the event-queue diagnostics (cascade count, peak depth,
/// fast-forward and batch-delivery totals) to the telemetry counters. Done
/// once at teardown like the connection decision counters: the queue keeps
/// plain fields on its hot path and the sink sees the totals when the run
/// is over.
fn flush_queue_stats<A: Application>(engine: &Engine<Sim<A>>) {
    let tel = &engine.model.world.tel;
    if !tel.is_enabled() {
        return;
    }
    let q = engine.queue();
    tel.add(Counter::QueueCascades, q.cascaded_total());
    tel.add(Counter::QueuePeakDepth, q.peak_len() as u64);
    tel.add(Counter::FfJumps, q.ff_jumps());
    tel.add(Counter::FfSkippedNs, q.ff_skipped_ns());
    tel.add(Counter::BatchDeliveries, q.batch_deliveries());
    tel.set_max(Counter::BatchMaxLen, q.batch_max_len());
}

impl<A: Application> Drop for Testbed<A> {
    fn drop(&mut self) {
        if let Some(engine) = &self.engine {
            flush_queue_stats(engine);
        }
    }
}
