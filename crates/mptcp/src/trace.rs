//! Measurement hooks: everything the experiments need to regenerate the
//! paper's figures is collected here, keyed so a single run can feed several
//! figures (e.g. one streaming run yields bitrate, traffic split, CWND
//! traces, IW resets and OOO delay at once).

use std::time::Duration;

use metrics::TimeSeries;
use simnet::Time;

use crate::segment::{ConnId, ReqId, SubId};

/// What to collect during a run. Per-segment OOO delays are cheap; the
/// periodic traces cost one event per `sample_every`.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Collect per-segment out-of-order delays (Figs 13, 14, 21, 23).
    pub ooo_delays: bool,
    /// Sample per-subflow CWND (Figs 11, 12).
    pub cwnd_traces: bool,
    /// Sample per-subflow send-buffer occupancy (Fig 3).
    pub sndbuf_traces: bool,
    /// Keep OOO delays in per-connection pools instead of one shared pool.
    /// Sharded sweeps need this: a per-connection stream is invariant to
    /// how other connections interleave, so shard and monolith runs produce
    /// identical pools per connection even though the global arrival order
    /// differs.
    pub ooo_per_conn: bool,
    /// Sampling period for the periodic traces.
    pub sample_every: Duration,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ooo_delays: true,
            cwnd_traces: false,
            sndbuf_traces: false,
            ooo_per_conn: false,
            sample_every: Duration::from_millis(100),
        }
    }
}

/// Lifecycle record of one application request (HTTP GET → response).
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Connection the request rode on.
    pub conn: ConnId,
    /// Response payload size the application asked for, in bytes.
    pub bytes: u64,
    /// Response size in segments.
    pub segs: u64,
    /// First dsn of the response (set when the server writes it).
    pub first_dsn: u64,
    /// Last dsn of the response, inclusive.
    pub last_dsn: u64,
    /// When the client issued the GET.
    pub issued: Time,
    /// When the GET reached the server.
    pub server_arrival: Option<Time>,
    /// When the last byte was delivered in order at the client.
    pub completed: Option<Time>,
    /// Per subflow: arrival time of the last data segment of this response
    /// seen on that subflow (Fig 5's "time difference of last packets").
    pub last_arrival_per_sub: Vec<Option<Time>>,
    /// Per subflow: data segments of this response that arrived on it.
    pub arrivals_per_sub: Vec<u64>,
}

impl RequestRecord {
    /// Completion time (download duration), if finished.
    pub fn completion_time(&self) -> Option<Duration> {
        self.completed.map(|c| c.since(self.issued))
    }

    /// Goodput of this request in Mbps, if finished.
    pub fn throughput_mbps(&self) -> Option<f64> {
        self.completion_time().map(|d| {
            let secs = d.as_secs_f64().max(1e-9);
            self.bytes as f64 * 8.0 / secs / 1e6
        })
    }

    /// Gap between the last packets over the two first subflows
    /// (Fig 5), if both carried data.
    pub fn last_packet_gap(&self) -> Option<Duration> {
        match (self.last_arrival_per_sub.first()?, self.last_arrival_per_sub.get(1)?) {
            (Some(a), Some(b)) => Some(if a > b { a.since(*b) } else { b.since(*a) }),
            _ => None,
        }
    }
}

/// All measurements of one testbed run.
pub struct Recorder {
    /// Collection configuration.
    pub cfg: RecorderConfig,
    /// Request lifecycles, indexed by `ReqId`.
    pub requests: Vec<RequestRecord>,
    /// Out-of-order delays, microseconds, all connections pooled.
    pub ooo_delays_us: Vec<u64>,
    /// Out-of-order delays split per connection (only filled when
    /// [`RecorderConfig::ooo_per_conn`] is set; empty otherwise).
    pub ooo_delays_us_per_conn: Vec<Vec<u64>>,
    /// CWND traces `[conn][sub]` in segments, seconds on the x axis.
    pub cwnd: Vec<Vec<TimeSeries>>,
    /// Send-buffer occupancy traces `[conn][sub]` in KB.
    pub sndbuf: Vec<Vec<TimeSeries>>,
}

impl Recorder {
    /// Recorder for connections with the given subflow counts.
    pub fn new(cfg: RecorderConfig, subflow_counts: &[usize]) -> Self {
        let mk = |on: bool| {
            if on {
                subflow_counts.iter().map(|&n| vec![TimeSeries::new(); n]).collect()
            } else {
                Vec::new()
            }
        };
        Recorder {
            cfg,
            // Sized for a long DASH session (hundreds of chunk requests) and
            // its reordering tail; avoids doubling-reallocs on the hot path.
            requests: Vec::with_capacity(256),
            ooo_delays_us: Vec::with_capacity(if cfg.ooo_delays { 4096 } else { 0 }),
            ooo_delays_us_per_conn: if cfg.ooo_delays && cfg.ooo_per_conn {
                vec![Vec::new(); subflow_counts.len()]
            } else {
                Vec::new()
            },
            cwnd: mk(cfg.cwnd_traces),
            sndbuf: mk(cfg.sndbuf_traces),
        }
    }

    /// Register a freshly issued request; returns its id.
    pub fn new_request(
        &mut self,
        conn: ConnId,
        bytes: u64,
        segs: u64,
        issued: Time,
        n_subflows: usize,
    ) -> ReqId {
        let id = self.requests.len() as ReqId;
        self.requests.push(RequestRecord {
            conn,
            bytes,
            segs,
            first_dsn: 0,
            last_dsn: 0,
            issued,
            server_arrival: None,
            completed: None,
            last_arrival_per_sub: vec![None; n_subflows],
            arrivals_per_sub: vec![0; n_subflows],
        });
        id
    }

    /// Note a data arrival belonging to request `req` on subflow `sub`.
    pub fn note_arrival(&mut self, req: ReqId, sub: SubId, now: Time) {
        let r = &mut self.requests[req as usize];
        r.last_arrival_per_sub[sub] = Some(now);
        r.arrivals_per_sub[sub] += 1;
    }

    /// Record one delivered segment's reordering delay on `conn`.
    pub fn note_ooo(&mut self, conn: ConnId, delay: Duration) {
        if self.cfg.ooo_delays {
            let us = u64::try_from(delay.as_micros()).unwrap_or(u64::MAX);
            self.ooo_delays_us.push(us);
            if let Some(pool) = self.ooo_delays_us_per_conn.get_mut(conn) {
                pool.push(us);
            }
        }
    }

    /// Completed requests only, in issue order.
    pub fn completed_requests(&self) -> impl Iterator<Item = &RequestRecord> {
        self.requests.iter().filter(|r| r.completed.is_some())
    }

    /// OOO delays as seconds, for CDF construction.
    pub fn ooo_delays_secs(&self) -> Vec<f64> {
        self.ooo_delays_us.iter().map(|&us| us as f64 / 1e6).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lifecycle_metrics() {
        let mut rec = Recorder::new(RecorderConfig::default(), &[2]);
        let id = rec.new_request(0, 1_000_000, 691, Time::from_secs(1), 2);
        rec.note_arrival(id, 0, Time::from_millis(1_500));
        rec.note_arrival(id, 1, Time::from_millis(2_200));
        rec.requests[id as usize].completed = Some(Time::from_secs(3));
        let r = &rec.requests[id as usize];
        assert_eq!(r.completion_time(), Some(Duration::from_secs(2)));
        // 1 MB over 2 s = 4 Mbps.
        assert!((r.throughput_mbps().unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(r.last_packet_gap(), Some(Duration::from_millis(700)));
        assert_eq!(rec.completed_requests().count(), 1);
    }

    #[test]
    fn gap_needs_both_subflows() {
        let mut rec = Recorder::new(RecorderConfig::default(), &[2]);
        let id = rec.new_request(0, 1000, 1, Time::ZERO, 2);
        rec.note_arrival(id, 0, Time::from_millis(10));
        assert_eq!(rec.requests[id as usize].last_packet_gap(), None);
    }

    #[test]
    fn ooo_collection_respects_flag() {
        let mut rec = Recorder::new(
            RecorderConfig { ooo_delays: false, ..RecorderConfig::default() },
            &[1],
        );
        rec.note_ooo(0, Duration::from_millis(5));
        assert!(rec.ooo_delays_us.is_empty());

        let mut rec = Recorder::new(RecorderConfig::default(), &[1]);
        rec.note_ooo(0, Duration::from_millis(5));
        assert_eq!(rec.ooo_delays_secs(), vec![0.005]);
        // Per-conn pools are off by default.
        assert!(rec.ooo_delays_us_per_conn.is_empty());
    }

    #[test]
    fn per_conn_ooo_pools() {
        let mut rec = Recorder::new(
            RecorderConfig { ooo_per_conn: true, ..RecorderConfig::default() },
            &[2, 2, 2],
        );
        rec.note_ooo(1, Duration::from_micros(10));
        rec.note_ooo(0, Duration::from_micros(20));
        rec.note_ooo(1, Duration::from_micros(30));
        // Global pool sees arrival order; per-conn pools see their own
        // streams regardless of how other connections interleave.
        assert_eq!(rec.ooo_delays_us, vec![10, 20, 30]);
        assert_eq!(rec.ooo_delays_us_per_conn[0], vec![20]);
        assert_eq!(rec.ooo_delays_us_per_conn[1], vec![10, 30]);
        assert!(rec.ooo_delays_us_per_conn[2].is_empty());
    }

    #[test]
    fn trace_matrices_sized_by_flags() {
        let rec = Recorder::new(
            RecorderConfig { cwnd_traces: true, ..RecorderConfig::default() },
            &[2, 3],
        );
        assert_eq!(rec.cwnd.len(), 2);
        assert_eq!(rec.cwnd[1].len(), 3);
        assert!(rec.sndbuf.is_empty());
    }
}
