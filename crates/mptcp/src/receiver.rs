//! Receiver-side MPTCP model.
//!
//! Two levels of reassembly, exactly as in the kernel:
//!
//! 1. **Subflow level** — links are FIFO, so gaps within a subflow only come
//!    from drops; out-of-order subflow segments are buffered and duplicate
//!    ACKs generated until a retransmission fills the hole.
//! 2. **Connection (meta) level** — segments from different subflows
//!    interleave arbitrarily; the data-sequence reorder buffer holds them
//!    until the in-order prefix extends, which is where the paper's
//!    *out-of-order delay* is measured (delivery time − arrival time, per
//!    segment).
//!
//! Every data arrival produces one [`AckInfo`] carrying the subflow
//! cumulative ACK, the DATA_ACK, and the advertised receive window
//! (buffer capacity minus out-of-order segments held — the application
//! consumes in-order data immediately, as a streaming/browser client does).

use std::collections::VecDeque;
use std::time::Duration;

use simnet::Time;

use crate::segment::{AckInfo, Segment, SubId};

/// Per-segment delivery record produced when the in-order prefix advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The data sequence number delivered.
    pub dsn: u64,
    /// How long it sat in the meta reorder buffer (0 for in-order arrivals).
    pub ooo_delay: Duration,
}

/// Outcome of processing one arriving data segment.
#[derive(Debug, Clone)]
pub struct RxOutcome {
    /// The ACK to send back on the arrival subflow now, if one is due.
    /// `None` when the ACK is delayed (RFC 1122): the caller must ensure a
    /// delayed-ACK timer is armed and later call [`Receiver::take_delayed_ack`].
    pub ack: Option<AckInfo>,
    /// True when a delayed-ACK timer should be armed for this subflow.
    pub arm_delack: bool,
    /// Segments that became deliverable, in order.
    pub delivered: Vec<Delivered>,
    /// True if this segment was a duplicate at the meta level (e.g. the
    /// second copy of a reinjected dsn).
    pub duplicate: bool,
}

/// The allocation-free part of an [`RxOutcome`], returned by
/// [`Receiver::on_segment_into`]; deliveries land in the caller's buffer.
#[derive(Debug, Clone, Copy)]
pub struct RxSignal {
    /// See [`RxOutcome::ack`].
    pub ack: Option<AckInfo>,
    /// See [`RxOutcome::arm_delack`].
    pub arm_delack: bool,
    /// See [`RxOutcome::duplicate`].
    pub duplicate: bool,
}

/// Lifetime receiver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReceiverStats {
    /// Segments accepted and eventually delivered.
    pub delivered_segs: u64,
    /// Meta-level duplicates discarded (reinjection copies).
    pub duplicate_segs: u64,
    /// Maximum occupancy ever seen in the meta reorder buffer.
    pub max_meta_buffered: u64,
}

/// The meta-level reorder buffer: a sparse ring of undelivered arrivals,
/// indexed relative to `meta_next` (slot 0 ↔ `meta_next`). The window a
/// receiver may hold is dense and bounded by the advertised window, so a
/// ring gives O(1) insert/contains/drain where a `BTreeMap` paid a node
/// walk (and allocation) per buffered segment — a measurable slice of the
/// simulator's per-packet budget on heterogeneous paths, where reordering
/// is the common case, not the exception.
///
/// Invariant between calls: slot 0 is empty (the drain in
/// [`Receiver::on_segment_into`] always consumes the filled prefix).
#[derive(Debug, Clone, Default)]
struct MetaBuffer {
    slots: VecDeque<Option<Time>>,
    held: u64,
}

impl MetaBuffer {
    /// Number of buffered (undelivered, out-of-order) segments.
    fn len(&self) -> u64 {
        self.held
    }

    /// Record `arrival` for the dsn at `offset` slots past `meta_next`.
    /// Returns false (a duplicate) when that dsn is already buffered.
    fn insert(&mut self, offset: u64, arrival: Time) -> bool {
        let idx = offset as usize;
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_some() {
            return false;
        }
        self.slots[idx] = Some(arrival);
        self.held += 1;
        true
    }

    /// Take the head slot's arrival if it is filled; leaves the ring alone
    /// when the head is a hole. The caller advances `meta_next` on `Some`.
    fn take_head(&mut self) -> Option<Time> {
        match self.slots.front() {
            Some(Some(_)) => {
                let t = self.slots.pop_front().flatten();
                self.held -= 1;
                t
            }
            _ => None,
        }
    }

    /// Shift the ring base past an empty head slot: called when `meta_next`
    /// advances through a directly delivered (never buffered) dsn.
    fn advance_empty_head(&mut self) {
        if let Some(front) = self.slots.pop_front() {
            debug_assert!(front.is_none(), "slot 0 must be empty between calls");
        }
    }
}

/// The subflow-level out-of-order buffer: the same sparse-ring shape as
/// [`MetaBuffer`], indexed relative to the subflow's `sub_next` (slot 0 ↔
/// `sub_next`), holding `(dsn, arrival)` per buffered segment. Subflow gaps
/// only come from drops, so the ring is short-lived and narrow — but under
/// loss every buffered segment used to pay a `BTreeMap` node allocation and
/// pointer walk; the ring is O(1) per operation and allocation-free once it
/// has grown to its high-water width, which is what keeps the steady-state
/// deliver loop off the global allocator.
///
/// Invariant between calls: slot 0 is empty (the drain in
/// [`Receiver::on_segment_into`] always consumes the filled prefix).
#[derive(Debug, Clone, Default)]
struct SubBuffer {
    slots: VecDeque<Option<(u64, Time)>>,
    held: u64,
}

impl SubBuffer {
    /// Number of buffered (out-of-order) subflow segments.
    fn len(&self) -> u64 {
        self.held
    }

    /// True when no segments are parked (no open hole on this subflow).
    fn is_empty(&self) -> bool {
        self.held == 0
    }

    /// Record `(dsn, arrival)` for the ssn at `offset` slots past
    /// `sub_next`. A duplicate keeps the first arrival (same semantics as
    /// the `or_insert` this replaces) and reports `false`.
    fn insert(&mut self, offset: u64, dsn: u64, arrival: Time) -> bool {
        let idx = offset as usize;
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_some() {
            return false;
        }
        self.slots[idx] = Some((dsn, arrival));
        self.held += 1;
        true
    }

    /// Take the head slot's record if it is filled; leaves the ring alone
    /// when the head is a hole. The caller advances `sub_next` on `Some`.
    fn take_head(&mut self) -> Option<(u64, Time)> {
        match self.slots.front() {
            Some(Some(_)) => {
                let v = self.slots.pop_front().flatten();
                self.held -= 1;
                v
            }
            _ => None,
        }
    }

    /// Shift the ring base past an empty head slot: called when `sub_next`
    /// advances through an in-order (never buffered) arrival.
    fn advance_empty_head(&mut self) {
        if let Some(front) = self.slots.pop_front() {
            debug_assert!(front.is_none(), "slot 0 must be empty between calls");
        }
    }
}

/// The connection receiver.
pub struct Receiver {
    rwnd_cap: u64,
    /// Per-subflow next expected ssn.
    sub_next: Vec<u64>,
    /// Per-subflow out-of-order buffer (ssn-keyed sparse ring).
    sub_buf: Vec<SubBuffer>,
    /// Total segments held across all subflow buffers, so the advertised
    /// window is O(1) to compute (it rides on every ACK).
    sub_held: u64,
    /// Next data sequence number expected in order.
    meta_next: u64,
    /// Meta reorder buffer (dsn → earliest arrival, keyed by offset).
    meta_buf: MetaBuffer,
    /// Per-subflow count of in-order segments not yet acknowledged
    /// (delayed-ACK state).
    pending_ack: Vec<u32>,
    stats: ReceiverStats,
}

impl Receiver {
    /// A receiver for `n_subflows` subflows with an `rwnd_cap`-segment
    /// reorder buffer.
    pub fn new(n_subflows: usize, rwnd_cap: u64) -> Self {
        Receiver {
            rwnd_cap,
            sub_next: vec![0; n_subflows],
            sub_buf: vec![SubBuffer::default(); n_subflows],
            sub_held: 0,
            meta_next: 0,
            meta_buf: MetaBuffer::default(),
            pending_ack: vec![0; n_subflows],
            stats: ReceiverStats::default(),
        }
    }

    /// Data sequence number up to which everything has been delivered.
    pub fn meta_next(&self) -> u64 {
        self.meta_next
    }

    /// Current advertised window (free reorder-buffer space). Segments held
    /// at either reassembly level occupy the buffer. O(1): both levels keep
    /// occupancy counters, and this is computed for every ACK sent.
    pub fn rwnd_free(&self) -> u64 {
        debug_assert_eq!(
            self.sub_held,
            self.sub_buf.iter().map(SubBuffer::len).sum::<u64>(),
            "sub_held out of sync with the subflow rings"
        );
        self.rwnd_cap.saturating_sub(self.meta_buf.len() + self.sub_held)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Segments a receiver lets accumulate before acking (RFC 1122 allows
    /// one ACK per two full-size segments).
    const DELACK_SEGS: u32 = 2;

    /// Process a data segment arriving on `sub` at `now`.
    ///
    /// Convenience wrapper over [`Receiver::on_segment_into`] that allocates
    /// a fresh delivery vector; the simulator hot path uses the `_into`
    /// variant with a reused buffer.
    pub fn on_segment(&mut self, now: Time, sub: SubId, seg: Segment) -> RxOutcome {
        let mut delivered = Vec::new();
        let sig = self.on_segment_into(now, sub, seg, &mut delivered);
        RxOutcome {
            ack: sig.ack,
            arm_delack: sig.arm_delack,
            delivered,
            duplicate: sig.duplicate,
        }
    }

    /// Process a data segment arriving on `sub` at `now`, appending any
    /// newly deliverable segments to `delivered` (not cleared here).
    pub fn on_segment_into(
        &mut self,
        now: Time,
        sub: SubId,
        seg: Segment,
        delivered: &mut Vec<Delivered>,
    ) -> RxSignal {
        debug_assert!(sub < self.sub_next.len(), "unknown subflow {sub}");
        let mut duplicate = false;
        // Out-of-order, gap-filling and duplicate segments must be
        // acknowledged immediately (they feed dupack counting and recovery);
        // only the clean in-order case may be delayed.
        let mut ack_now = true;

        if seg.ssn == self.sub_next[sub] {
            let filled_gap = !self.sub_buf[sub].is_empty();
            self.sub_next[sub] += 1;
            self.sub_buf[sub].advance_empty_head();
            if seg.dsn == self.meta_next {
                // Fast path: in order at both levels. Deliver directly,
                // sparing the reorder buffer an insert/remove round trip.
                // The buffer never holds `meta_next` (the drain below
                // consumes the full prefix every call), so this is exactly
                // the admit-then-drain outcome: zero ooo delay, and the
                // same transient +1 in the peak-occupancy stat.
                delivered.push(Delivered { dsn: seg.dsn, ooo_delay: Duration::ZERO });
                self.meta_next += 1;
                self.meta_buf.advance_empty_head();
                self.stats.delivered_segs += 1;
                self.stats.max_meta_buffered =
                    self.stats.max_meta_buffered.max(self.meta_buf.len() + 1);
            } else {
                duplicate |= !self.admit_meta(seg.dsn, now);
            }
            // Drain any subflow-level buffered continuation.
            while let Some((dsn, arrival)) = self.sub_buf[sub].take_head() {
                self.sub_held -= 1;
                self.sub_next[sub] += 1;
                self.admit_meta(dsn, arrival);
            }
            if !filled_gap && !duplicate {
                self.pending_ack[sub] += 1;
                ack_now = self.pending_ack[sub] >= Self::DELACK_SEGS;
            }
        } else if seg.ssn > self.sub_next[sub] {
            // Hole on this subflow (a drop): buffer and dup-ack. A second
            // copy of an already-buffered ssn keeps the first arrival, as
            // the map `or_insert` this replaces did.
            let offset = seg.ssn - self.sub_next[sub];
            if self.sub_buf[sub].insert(offset, seg.dsn, now) {
                self.sub_held += 1;
            }
        } else {
            // Old ssn: spurious subflow retransmission.
            duplicate = true;
        }

        // Deliver the extended in-order prefix at the meta level.
        while let Some(arrival) = self.meta_buf.take_head() {
            delivered.push(Delivered { dsn: self.meta_next, ooo_delay: now.since(arrival) });
            self.meta_next += 1;
            self.stats.delivered_segs += 1;
        }

        if duplicate {
            self.stats.duplicate_segs += 1;
        }
        let (ack, arm_delack) = if ack_now {
            self.pending_ack[sub] = 0;
            (Some(self.ack_info(sub)), false)
        } else {
            (None, true)
        };
        RxSignal { ack, arm_delack, duplicate }
    }

    /// Current cumulative ACK for `sub`.
    fn ack_info(&self, sub: SubId) -> AckInfo {
        AckInfo {
            sub_next_ssn: self.sub_next[sub],
            data_next_dsn: self.meta_next,
            rwnd_free: self.rwnd_free(),
        }
    }

    /// The delayed-ACK timer for `sub` fired: emit the pending cumulative
    /// ACK if any segments are still unacknowledged.
    pub fn take_delayed_ack(&mut self, sub: SubId) -> Option<AckInfo> {
        if self.pending_ack[sub] > 0 {
            self.pending_ack[sub] = 0;
            Some(self.ack_info(sub))
        } else {
            None
        }
    }

    /// Insert a dsn into the meta buffer unless already delivered/buffered.
    /// Returns false on duplicate.
    fn admit_meta(&mut self, dsn: u64, arrival: Time) -> bool {
        if dsn < self.meta_next || !self.meta_buf.insert(dsn - self.meta_next, arrival) {
            return false;
        }
        self.stats.max_meta_buffered = self.stats.max_meta_buffered.max(self.meta_buf.len());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(dsn: u64, ssn: u64) -> Segment {
        Segment { dsn, ssn }
    }

    #[test]
    fn in_order_delivery_with_delayed_acks() {
        let mut rx = Receiver::new(1, 100);
        // First in-order segment: delivered, but the ACK is delayed.
        let out = rx.on_segment(Time::from_millis(0), 0, seg(0, 0));
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].ooo_delay, Duration::ZERO);
        assert!(out.ack.is_none());
        assert!(out.arm_delack);
        // Second: the every-2-segments ACK fires.
        let out = rx.on_segment(Time::from_millis(1), 0, seg(1, 1));
        let ack = out.ack.expect("ack every second segment");
        assert_eq!(ack.sub_next_ssn, 2);
        assert_eq!(ack.data_next_dsn, 2);
        assert_eq!(rx.stats().delivered_segs, 2);
    }

    #[test]
    fn delayed_ack_timer_flushes_pending() {
        let mut rx = Receiver::new(1, 100);
        rx.on_segment(Time::from_millis(0), 0, seg(0, 0));
        let ack = rx.take_delayed_ack(0).expect("one segment pending");
        assert_eq!(ack.sub_next_ssn, 1);
        // Nothing pending afterwards.
        assert!(rx.take_delayed_ack(0).is_none());
    }

    #[test]
    fn interleaved_subflows_meta_reordering() {
        let mut rx = Receiver::new(2, 100);
        // dsn 1 arrives first (on the fast subflow), dsn 0 later (slow).
        let out = rx.on_segment(Time::from_millis(10), 1, seg(1, 0));
        assert!(out.delivered.is_empty());
        assert_eq!(rx.rwnd_free(), 99); // one segment parked

        let out = rx.on_segment(Time::from_millis(60), 0, seg(0, 0));
        assert_eq!(out.delivered.len(), 2);
        assert_eq!(out.delivered[0].dsn, 0);
        assert_eq!(out.delivered[0].ooo_delay, Duration::ZERO);
        assert_eq!(out.delivered[1].dsn, 1);
        // dsn 1 waited 50 ms in the reorder buffer.
        assert_eq!(out.delivered[1].ooo_delay, Duration::from_millis(50));
        assert_eq!(rx.meta_next(), 2);
        assert_eq!(rx.rwnd_free(), 100);
        // The delayed data-ack now reflects full delivery.
        let ack = rx.take_delayed_ack(0).expect("pending");
        assert_eq!(ack.data_next_dsn, 2);
    }

    #[test]
    fn subflow_hole_generates_immediate_dupacks() {
        let mut rx = Receiver::new(1, 100);
        rx.on_segment(Time::from_millis(0), 0, seg(0, 0));
        // ssn 1 lost; ssn 2 and 3 arrive: both must ACK immediately with the
        // duplicate cumulative value (these drive fast retransmit).
        let out = rx.on_segment(Time::from_millis(1), 0, seg(2, 2));
        assert_eq!(out.ack.expect("ooo acks immediately").sub_next_ssn, 1);
        assert!(out.delivered.is_empty());
        let out = rx.on_segment(Time::from_millis(2), 0, seg(3, 3));
        assert_eq!(out.ack.expect("ooo acks immediately").sub_next_ssn, 1);
        // Retransmission of ssn 1 fills the hole → everything drains, ACK now.
        let out = rx.on_segment(Time::from_millis(30), 0, seg(1, 1));
        let ack = out.ack.expect("gap fill acks immediately");
        assert_eq!(ack.sub_next_ssn, 4);
        assert_eq!(out.delivered.len(), 3);
        assert_eq!(ack.data_next_dsn, 4);
        // Buffered segments' ooo delay counts from their own arrival.
        assert_eq!(out.delivered[1].ooo_delay, Duration::from_millis(29));
    }

    #[test]
    fn meta_duplicate_from_reinjection_discarded() {
        let mut rx = Receiver::new(2, 100);
        // dsn 5 delayed on subflow 0... sender reinjects it on subflow 1.
        let out = rx.on_segment(Time::from_millis(5), 1, seg(5, 0));
        assert!(!out.duplicate);
        // Original copy arrives later on subflow 0 (ssn 0 there).
        let out = rx.on_segment(Time::from_millis(50), 0, seg(5, 0));
        assert!(out.duplicate);
        assert_eq!(rx.stats().duplicate_segs, 1);
        // Duplicates are acknowledged immediately; the subflow stream is
        // intact, so the cumulative ack advances.
        assert_eq!(out.ack.expect("dup acks immediately").sub_next_ssn, 1);
    }

    #[test]
    fn spurious_subflow_retransmission_ignored() {
        let mut rx = Receiver::new(1, 100);
        rx.on_segment(Time::from_millis(0), 0, seg(0, 0));
        let out = rx.on_segment(Time::from_millis(1), 0, seg(0, 0));
        assert!(out.duplicate);
        assert_eq!(out.ack.expect("dup acks immediately").sub_next_ssn, 1);
        assert_eq!(out.delivered.len(), 0);
    }

    #[test]
    fn rwnd_shrinks_with_buffered_segments() {
        let mut rx = Receiver::new(2, 10);
        for i in 1..=10 {
            rx.on_segment(Time::from_millis(i), 1, seg(i, i - 1));
        }
        assert_eq!(rx.rwnd_free(), 0);
        // Filling dsn 0 releases all 11.
        let out = rx.on_segment(Time::from_millis(100), 0, seg(0, 0));
        assert_eq!(out.delivered.len(), 11);
        assert_eq!(rx.rwnd_free(), 10);
        // dsn 0 transits the buffer before the drain, so the peak is 11.
        assert_eq!(rx.stats().max_meta_buffered, 11);
    }

    #[test]
    fn two_subflow_streams_independent_ssn_spaces() {
        let mut rx = Receiver::new(2, 100);
        rx.on_segment(Time::from_millis(0), 0, seg(0, 0));
        rx.on_segment(Time::from_millis(1), 1, seg(1, 0));
        assert_eq!(rx.take_delayed_ack(0).expect("pending").sub_next_ssn, 1);
        let ack1 = rx.take_delayed_ack(1).expect("pending");
        assert_eq!(ack1.sub_next_ssn, 1); // subflow 1's own counter
        assert_eq!(ack1.data_next_dsn, 2);
    }
}
