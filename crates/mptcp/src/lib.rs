//! # mptcp — a sender/receiver MPTCP model with pluggable path schedulers
//!
//! A from-scratch model of everything in the Linux MPTCP stack that the
//! paper's scheduling story touches: subflows with full TCP sender machinery
//! (slow start, congestion avoidance, fast retransmit, RTO, idle restart),
//! coupled congestion control (LIA/OLIA), the connection-level send buffer
//! and data-sequence mapping, receiver-side two-level reordering with
//! out-of-order-delay measurement, and the opportunistic-retransmission +
//! penalization mitigations — all driven by any [`ecf_core::Scheduler`].
//!
//! The [`Testbed`] ties connections and [`simnet`] paths together with a
//! workload [`Application`] (DASH player, file download, browser — see the
//! `dash` and `webload` crates).
//!
//! ```
//! use mptcp::{Application, Api, Testbed, TestbedConfig};
//! use ecf_core::SchedulerKind;
//! use simnet::Time;
//!
//! /// Download one 256 KB object, then stop.
//! struct OneShot { done: bool }
//! impl Application for OneShot {
//!     fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
//!         api.request(0, 256 * 1024);
//!     }
//!     fn on_response_complete(&mut self, _n: Time, _c: usize, _r: u64, _a: &mut Api<'_>) {
//!         self.done = true;
//!     }
//! }
//!
//! let cfg = TestbedConfig::wifi_lte(2.0, 8.0, SchedulerKind::Ecf, 1);
//! let mut tb = Testbed::new(cfg, OneShot { done: false });
//! tb.run_until(Time::from_secs(30));
//! assert!(tb.app().done);
//! let req = &tb.world().recorder.requests[0];
//! assert!(req.completion_time().unwrap().as_secs_f64() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cc;
mod connection;
mod receiver;
mod segment;
mod sim;
mod subflow;
mod trace;
pub mod transport;

pub use cc::{ca_increase, CcKind, CcView};
pub use connection::{ConnConfig, ConnStats, Connection, Transmission};
pub use receiver::{Delivered, Receiver, ReceiverStats, RxOutcome};
pub use segment::{segs_for_bytes, AckInfo, ConnId, InflightSeg, ReqId, Segment, SubId};
pub use sim::{Api, Application, ConnSpec, Event, Sim, Testbed, TestbedConfig, World};
pub use subflow::{AckOutcome, Subflow, SubflowStats};
pub use trace::{Recorder, RecorderConfig, RequestRecord};
pub use transport::{GenericApp, SchedDriver, TransportApi, TransportApp};
