//! Sender-side subflow: one TCP flow inside an MPTCP connection.
//!
//! Owns the congestion state ([`tcp_model::TcpCc`]), the retransmission
//! queue, duplicate-ACK accounting with NewReno-style recovery, and a lazy
//! RTO timer. Everything here is pure state-machine logic; actually placing
//! packets on links is the testbed's job, so this module is unit-testable in
//! isolation.

use std::collections::VecDeque;
use std::time::Duration;

use simnet::Time;
use tcp_model::{TcpCc, TcpConfig};

use crate::segment::{AckInfo, InflightSeg, Segment};

/// Duplicate ACKs that trigger fast retransmit.
const DUPACK_THRESHOLD: u32 = 3;

/// Lifetime counters for one subflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubflowStats {
    /// Segments handed to the link, including retransmissions/reinjections.
    pub segs_sent: u64,
    /// Retransmissions (fast retransmit + RTO).
    pub retransmits: u64,
    /// Reinjections of data originally sent on another subflow.
    pub reinjections: u64,
}

/// What an ACK did to the subflow; the connection applies window growth and
/// schedules any retransmission.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Segments newly removed from the retransmission queue.
    pub newly_acked: u32,
    /// A segment to fast-retransmit now.
    pub fast_retx: Option<Segment>,
    /// True when the window was full at ACK arrival — growth is only applied
    /// when the flow was actually cwnd-limited (RFC 2861 spirit).
    pub was_cwnd_limited: bool,
    /// True when the flow is in loss recovery (no window growth).
    pub in_recovery: bool,
}

/// One subflow's sender state.
pub struct Subflow {
    /// Index of the `simnet` path this subflow rides on.
    pub path: usize,
    /// Congestion control machinery.
    pub cc: TcpCc,
    next_ssn: u64,
    snd_una: u64,
    inflight: VecDeque<InflightSeg>,
    dupacks: u32,
    /// NewReno recovery: highest ssn outstanding when loss was detected;
    /// recovery ends once it is cumulatively ACKed.
    recovery_high: Option<u64>,
    /// Lazy RTO timer: the deadline moves on every ACK; at most one timer
    /// event is outstanding (tracked by the testbed via `rto_scheduled`).
    pub rto_deadline: Time,
    /// Whether an RTO event is currently scheduled.
    pub rto_scheduled: bool,
    /// Last time this subflow was penalized (rate-limits penalization to
    /// once per RTT, as in the Linux implementation).
    pub last_penalty: Time,
    /// False while the underlying path is down (handover, radio loss); the
    /// scheduler sees this via its snapshot and the send path skips it.
    pub usable: bool,
    /// Bytes queued in the path's forward droptail queue, sampled by the
    /// testbed just before each send opportunity. Pure observability: copied
    /// into [`ecf_core::PathSnapshot::queue_bytes`] for cross-layer
    /// (QAware-style) schedulers; nothing in-tree reads it yet.
    pub link_queue_bytes: u64,
    stats: SubflowStats,
}

impl Subflow {
    /// Create a subflow on `path`. `handshake_rtt` seeds the RTT estimator,
    /// standing in for the SYN/SYN-ACK measurement a real connection gets.
    /// `inflight_cap` is the most unacked segments the connection's meta
    /// buffers will ever let this subflow hold — reserved up front so the
    /// inflight deque never grows on the hot path.
    pub fn new(path: usize, tcp: TcpConfig, handshake_rtt: Duration, inflight_cap: usize) -> Self {
        let mut cc = TcpCc::new(tcp);
        cc.rtt.on_sample(handshake_rtt);
        Subflow {
            path,
            cc,
            next_ssn: 0,
            snd_una: 0,
            inflight: VecDeque::with_capacity(inflight_cap),
            dupacks: 0,
            recovery_high: None,
            rto_deadline: Time::MAX,
            rto_scheduled: false,
            last_penalty: Time::ZERO,
            usable: true,
            link_queue_bytes: 0,
            stats: SubflowStats::default(),
        }
    }

    /// Segments currently unacknowledged.
    pub fn inflight_count(&self) -> u32 {
        self.inflight.len() as u32
    }

    /// True when one more segment fits in the congestion window.
    pub fn has_space(&self) -> bool {
        self.usable && self.inflight_count() < self.cc.cwnd_pkts()
    }

    /// All data sequence numbers currently unacknowledged here (drained for
    /// reinjection when the path dies).
    pub fn inflight_dsns(&self) -> Vec<u64> {
        self.inflight.iter().map(|s| s.seg.dsn).collect()
    }

    /// True while in NewReno loss recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_high.is_some()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SubflowStats {
        self.stats
    }

    /// Next subflow sequence number (diagnostics/tests).
    pub fn next_ssn(&self) -> u64 {
        self.next_ssn
    }

    /// Oldest unacknowledged subflow sequence number.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// The data sequence number of the oldest transmission still in flight
    /// here, if any (used to find who holds up the meta window).
    pub fn oldest_inflight_dsn(&self) -> Option<u64> {
        self.inflight.front().map(|s| s.seg.dsn)
    }

    /// True if any in-flight transmission on this subflow carries `dsn`.
    pub fn carries_dsn(&self, dsn: u64) -> bool {
        self.inflight.iter().any(|s| s.seg.dsn == dsn)
    }

    /// Register a fresh transmission of `dsn` at `now`; returns the segment
    /// (with its new ssn) for the caller to enqueue on the link, and updates
    /// the lazy RTO deadline.
    pub fn register_send(&mut self, now: Time, dsn: u64, reinjection: bool) -> Segment {
        debug_assert!(self.has_space(), "register_send without window space");
        let seg = Segment { dsn, ssn: self.next_ssn };
        self.next_ssn += 1;
        self.inflight.push_back(InflightSeg { seg, sent_at: now, retransmitted: false });
        self.cc.note_send(now);
        self.stats.segs_sent += 1;
        if reinjection {
            self.stats.reinjections += 1;
        }
        self.rto_deadline = now + self.cc.rto();
        seg
    }

    /// Process a subflow-level cumulative ACK.
    pub fn on_ack(&mut self, now: Time, ack: &AckInfo) -> AckOutcome {
        let mut out = AckOutcome {
            was_cwnd_limited: self.inflight_count() >= self.cc.cwnd_pkts(),
            ..AckOutcome::default()
        };
        if ack.sub_next_ssn > self.snd_una {
            // Cumulative advance.
            let mut newest_sample = None;
            let mut covers_retransmit = false;
            while let Some(front) = self.inflight.front() {
                if front.seg.ssn < ack.sub_next_ssn {
                    let acked = self.inflight.pop_front().expect("front exists");
                    out.newly_acked += 1;
                    if acked.retransmitted {
                        covers_retransmit = true;
                    } else {
                        newest_sample = Some(now.since(acked.sent_at));
                    }
                } else {
                    break;
                }
            }
            // Karn's rule applied to the whole cumulative jump: if this ACK
            // covers any retransmitted segment, the un-retransmitted ones it
            // also covers were stalled behind the recovered hole and their
            // send-to-ack spans grossly overstate the path RTT.
            if covers_retransmit {
                newest_sample = None;
            }
            self.snd_una = ack.sub_next_ssn;
            self.dupacks = 0;
            // Any cumulative advance proves the path is delivering again:
            // clear the exponential RTO backoff even when window growth is
            // suppressed (app-limited or in recovery).
            self.cc.clear_rto_backoff();
            if let Some(high) = self.recovery_high {
                if self.snd_una > high {
                    self.recovery_high = None;
                } else if let Some(front) = self.inflight.front_mut() {
                    // NewReno partial ACK: the cumulative point moved but is
                    // still inside the recovery window, so the new front is
                    // the next hole — retransmit it immediately rather than
                    // waiting out an RTO.
                    if !front.retransmitted {
                        front.retransmitted = true;
                        front.sent_at = now;
                        self.stats.retransmits += 1;
                        out.fast_retx = Some(front.seg);
                    }
                }
            }
            if let Some(sample) = newest_sample {
                self.cc.rtt.on_sample(sample);
            }
            // Restart (or disarm) the lazy RTO.
            self.rto_deadline = if self.inflight.is_empty() {
                Time::MAX
            } else {
                now + self.cc.rto()
            };
        } else if ack.sub_next_ssn == self.snd_una && !self.inflight.is_empty() {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.dupacks == DUPACK_THRESHOLD && self.recovery_high.is_none() {
                self.recovery_high = Some(self.next_ssn.saturating_sub(1));
                self.cc.on_fast_retransmit();
                let front = self.inflight.front_mut().expect("non-empty");
                front.retransmitted = true;
                front.sent_at = now;
                self.stats.retransmits += 1;
                self.rto_deadline = now + self.cc.rto();
                out.fast_retx = Some(front.seg);
            }
        }
        out.in_recovery = self.in_recovery();
        out
    }

    /// The lazy RTO timer fired. Returns what to do:
    /// `None` — nothing outstanding (or deadline moved; caller re-schedules
    /// at [`Self::rto_deadline`] if it is not `Time::MAX`).
    /// `Some(seg)` — a genuine timeout: the window collapsed and `seg` must
    /// be retransmitted.
    pub fn on_rto_fire(&mut self, now: Time) -> Option<Segment> {
        if self.inflight.is_empty() {
            self.rto_deadline = Time::MAX;
            return None;
        }
        if now < self.rto_deadline {
            // ACKs pushed the deadline; caller re-arms.
            return None;
        }
        self.cc.on_rto();
        self.dupacks = 0;
        // A timeout ends any fast-recovery episode and starts a fresh one
        // pinned at the current highest ssn.
        self.recovery_high = Some(self.next_ssn.saturating_sub(1));
        let front = self.inflight.front_mut().expect("non-empty");
        front.retransmitted = true;
        front.sent_at = now;
        self.stats.retransmits += 1;
        self.rto_deadline = now + self.cc.rto();
        Some(front.seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf() -> Subflow {
        Subflow::new(0, TcpConfig::default(), Duration::from_millis(50), 64)
    }

    fn ack(ssn: u64) -> AckInfo {
        AckInfo { sub_next_ssn: ssn, data_next_dsn: 0, rwnd_free: 1000 }
    }

    #[test]
    fn handshake_seeds_rtt() {
        let s = sf();
        assert_eq!(s.cc.rtt.srtt(), Duration::from_millis(50));
    }

    #[test]
    fn send_and_cumulative_ack() {
        let mut s = sf();
        let t0 = Time::from_millis(0);
        for i in 0..5 {
            let seg = s.register_send(t0, 100 + i, false);
            assert_eq!(seg.ssn, i);
            assert_eq!(seg.dsn, 100 + i);
        }
        assert_eq!(s.inflight_count(), 5);
        let out = s.on_ack(Time::from_millis(60), &ack(3));
        assert_eq!(out.newly_acked, 3);
        assert_eq!(s.inflight_count(), 2);
        assert_eq!(s.snd_una(), 3);
        // The 60 ms sample moved srtt: 7/8·50 + 1/8·60 = 51.25 ms.
        assert_eq!(s.cc.rtt.srtt(), Duration::from_micros(51_250));
    }

    #[test]
    fn window_space_respects_cwnd() {
        let mut s = sf();
        let cwnd = s.cc.cwnd_pkts() as u64;
        for i in 0..cwnd {
            assert!(s.has_space());
            s.register_send(Time::ZERO, i, false);
        }
        assert!(!s.has_space());
    }

    #[test]
    fn triple_dupack_fast_retransmits_once() {
        let mut s = sf();
        for i in 0..10 {
            s.register_send(Time::ZERO, i, false);
        }
        let cwnd_before = s.cc.cwnd_pkts();
        let t = Time::from_millis(100);
        assert!(s.on_ack(t, &ack(0)).fast_retx.is_none());
        assert!(s.on_ack(t, &ack(0)).fast_retx.is_none());
        let third = s.on_ack(t, &ack(0));
        let seg = third.fast_retx.expect("fast retransmit on 3rd dupack");
        assert_eq!(seg.ssn, 0);
        assert!(s.in_recovery());
        assert_eq!(s.cc.cwnd_pkts(), cwnd_before / 2);
        // Further dupacks do not retransmit again.
        assert!(s.on_ack(t, &ack(0)).fast_retx.is_none());
        assert_eq!(s.stats().retransmits, 1);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut s = sf();
        for i in 0..10 {
            s.register_send(Time::ZERO, i, false);
        }
        let t = Time::from_millis(100);
        for _ in 0..3 {
            s.on_ack(t, &ack(0));
        }
        assert!(s.in_recovery());
        // Partial ack: still in recovery.
        let out = s.on_ack(Time::from_millis(150), &ack(5));
        assert!(out.in_recovery);
        // Full ack past recovery_high (ssn 9): out.
        let out = s.on_ack(Time::from_millis(200), &ack(10));
        assert!(!out.in_recovery);
        assert_eq!(s.inflight_count(), 0);
    }

    #[test]
    fn karn_no_rtt_sample_from_retransmitted() {
        let mut s = sf();
        s.register_send(Time::ZERO, 0, false);
        for _ in 0..3 {
            s.register_send(Time::ZERO, 1, false);
        }
        // Kick ssn 0 into retransmission via dupacks.
        let t = Time::from_millis(10);
        s.on_ack(t, &ack(0));
        s.on_ack(t, &ack(0));
        s.on_ack(t, &ack(0));
        let srtt_before = s.cc.rtt.srtt();
        // Cumulative ack of the retransmitted head: no sample (newest acked
        // is the retransmitted ssn 0 only).
        s.on_ack(Time::from_millis(500), &ack(1));
        assert_eq!(s.cc.rtt.srtt(), srtt_before);
    }

    #[test]
    fn lazy_rto_rearm_vs_fire() {
        let mut s = sf();
        s.register_send(Time::ZERO, 0, false);
        let deadline = s.rto_deadline;
        assert!(deadline > Time::ZERO && deadline < Time::MAX);
        // Fire early: nothing happens, deadline unchanged.
        assert!(s.on_rto_fire(Time::from_millis(1)).is_none());
        assert_eq!(s.rto_deadline, deadline);
        // Fire on time: genuine timeout.
        let seg = s.on_rto_fire(deadline).expect("timeout retransmit");
        assert_eq!(seg.ssn, 0);
        assert_eq!(s.cc.cwnd_pkts(), 1);
        assert_eq!(s.stats().retransmits, 1);
        // Deadline pushed out with backoff.
        assert!(s.rto_deadline > deadline);
    }

    #[test]
    fn rto_with_empty_queue_disarms() {
        let mut s = sf();
        s.register_send(Time::ZERO, 0, false);
        s.on_ack(Time::from_millis(50), &ack(1));
        assert_eq!(s.rto_deadline, Time::MAX);
        assert!(s.on_rto_fire(Time::from_secs(10)).is_none());
    }

    #[test]
    fn dupacks_ignored_when_nothing_inflight() {
        let mut s = sf();
        s.register_send(Time::ZERO, 0, false);
        s.on_ack(Time::from_millis(50), &ack(1));
        for _ in 0..5 {
            let out = s.on_ack(Time::from_millis(60), &ack(1));
            assert!(out.fast_retx.is_none());
        }
        assert!(!s.in_recovery());
    }

    #[test]
    fn cwnd_limited_flag() {
        let mut s = sf();
        let cwnd = s.cc.cwnd_pkts() as u64;
        for i in 0..cwnd {
            s.register_send(Time::ZERO, i, false);
        }
        let out = s.on_ack(Time::from_millis(50), &ack(1));
        assert!(out.was_cwnd_limited);
        let out = s.on_ack(Time::from_millis(51), &ack(2));
        assert!(!out.was_cwnd_limited);
    }

    #[test]
    fn carries_and_oldest_dsn() {
        let mut s = sf();
        s.register_send(Time::ZERO, 42, false);
        s.register_send(Time::ZERO, 43, false);
        assert!(s.carries_dsn(42));
        assert!(!s.carries_dsn(99));
        assert_eq!(s.oldest_inflight_dsn(), Some(42));
        s.on_ack(Time::from_millis(50), &ack(1));
        assert_eq!(s.oldest_inflight_dsn(), Some(43));
    }

    #[test]
    fn reinjection_counted() {
        let mut s = sf();
        s.register_send(Time::ZERO, 7, true);
        assert_eq!(s.stats().reinjections, 1);
        assert_eq!(s.stats().segs_sent, 1);
    }
}
