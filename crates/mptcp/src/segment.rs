//! Wire-level units exchanged between the MPTCP sender and receiver models.
//!
//! The model works at *segment granularity*: sequence numbers count whole
//! MSS-sized segments rather than bytes. Application sizes are converted with
//! [`segs_for_bytes`]; the sub-MSS rounding this introduces is far below the
//! effects the paper measures (documented in DESIGN.md).

use simnet::Time;

/// Index of a connection within a testbed.
pub type ConnId = usize;
/// Index of a subflow within its connection.
pub type SubId = usize;
/// Identifier of one application request (HTTP GET) on a connection.
pub type ReqId = u64;

/// Number of MSS-sized segments needed to carry `bytes` of payload.
pub fn segs_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(u64::from(tcp_model::MSS)).max(1)
}

/// A data segment in flight from sender to receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Data sequence number: index of this segment in the connection-level
    /// stream (the MPTCP DSS mapping).
    pub dsn: u64,
    /// Subflow sequence number: index of this transmission on its subflow.
    pub ssn: u64,
}

/// The acknowledgement a receiver emits for every arriving data segment.
///
/// Carries both levels of MPTCP feedback: the subflow-level cumulative ACK
/// and the connection-level DATA_ACK, plus the advertised receive window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Next subflow sequence number expected (cumulative subflow-level ACK).
    pub sub_next_ssn: u64,
    /// Next data sequence number expected in order (DATA_ACK).
    pub data_next_dsn: u64,
    /// Free receive-window space, in segments, at ACK emission time.
    pub rwnd_free: u64,
}

/// State the sender keeps for each unacknowledged transmission.
#[derive(Debug, Clone, Copy)]
pub struct InflightSeg {
    /// The segment (dsn + ssn).
    pub seg: Segment,
    /// When the most recent transmission of it left the sender.
    pub sent_at: Time,
    /// True once retransmitted (Karn's rule: no RTT sample).
    pub retransmitted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segs_for_bytes_rounds_up() {
        let mss = u64::from(tcp_model::MSS);
        assert_eq!(segs_for_bytes(1), 1);
        assert_eq!(segs_for_bytes(mss), 1);
        assert_eq!(segs_for_bytes(mss + 1), 2);
        assert_eq!(segs_for_bytes(10 * mss), 10);
        // Zero-byte responses still occupy one segment (headers).
        assert_eq!(segs_for_bytes(0), 1);
    }
}
