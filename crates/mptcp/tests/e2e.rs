//! End-to-end tests of the MPTCP testbed: full transfers over simulated
//! WiFi+LTE paths, exercising every scheduler, loss recovery, determinism
//! and conservation invariants.

use ecf_core::SchedulerKind;
use mptcp::{Api, Application, ConnConfig, ConnSpec, Testbed, TestbedConfig};
use scenario::Scenario;
use simnet::{PathConfig, Time};

use mptcp::RecorderConfig;

/// Downloads a fixed list of object sizes sequentially on connection 0.
struct SequentialDownloads {
    sizes: Vec<u64>,
    next: usize,
    completed: Vec<u64>,
}

impl SequentialDownloads {
    fn new(sizes: Vec<u64>) -> Self {
        SequentialDownloads { sizes, next: 0, completed: Vec::new() }
    }
    fn kick(&mut self, api: &mut Api<'_>) {
        if self.next < self.sizes.len() {
            api.request(0, self.sizes[self.next]);
            self.next += 1;
        }
    }
}

impl Application for SequentialDownloads {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        self.kick(api);
    }
    fn on_response_complete(&mut self, _now: Time, _c: usize, req: u64, api: &mut Api<'_>) {
        self.completed.push(req);
        self.kick(api);
    }
}

fn run_download(
    wifi: f64,
    lte: f64,
    kind: SchedulerKind,
    bytes: u64,
    seed: u64,
) -> (f64, Testbed<SequentialDownloads>) {
    let cfg = TestbedConfig::wifi_lte(wifi, lte, kind, seed);
    let mut tb = Testbed::new(cfg, SequentialDownloads::new(vec![bytes]));
    tb.run_until(Time::from_secs(120));
    let t = tb.world().recorder.requests[0]
        .completion_time()
        .expect("download completes")
        .as_secs_f64();
    (t, tb)
}

#[test]
fn every_scheduler_completes_a_download() {
    for kind in SchedulerKind::paper_set() {
        let (t, tb) = run_download(2.0, 8.0, kind, 512 * 1024, 3);
        assert!(t < 10.0, "{} took {t}s", kind.label());
        assert_eq!(tb.app().completed, vec![0]);
        // Conservation: receiver delivered exactly the written segments.
        let w = tb.world();
        assert_eq!(w.receiver(0).meta_next(), w.sender(0).next_dsn());
        assert!(w.all_drained());
    }
}

#[test]
fn throughput_bounded_by_aggregate_bandwidth() {
    // A 2 MB transfer over 1+2 Mbps cannot beat 3 Mbps aggregate.
    let bytes = 2 * 1024 * 1024;
    let (t, _) = run_download(1.0, 2.0, SchedulerKind::Ecf, bytes, 5);
    let mbps = bytes as f64 * 8.0 / t / 1e6;
    assert!(mbps <= 3.0, "impossible throughput {mbps}");
    // And a sane scheduler should realize a decent fraction of it.
    assert!(mbps > 1.5, "only {mbps} Mbps of 3 available");
}

#[test]
fn single_path_baseline_matches_link_rate() {
    let cfg = TestbedConfig {
        paths: vec![PathConfig::wifi(4.0)],
        conns: vec![ConnSpec {
            cfg: ConnConfig::default(),
            scheduler: SchedulerKind::SinglePath(0),
            custom_scheduler: None,
            subflow_paths: vec![0],
        }],
        seed: 1,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: Scenario::default(),
        telemetry: Default::default(),
    };
    let bytes = 4 * 1024 * 1024;
    let mut tb = Testbed::new(cfg, SequentialDownloads::new(vec![bytes]));
    tb.run_until(Time::from_secs(60));
    let t = tb.world().recorder.requests[0].completion_time().unwrap().as_secs_f64();
    let mbps = bytes as f64 * 8.0 / t / 1e6;
    // Within (slow start + header overhead) of the 4 Mbps shaped rate.
    assert!((2.8..=4.0).contains(&mbps), "got {mbps} Mbps");
}

#[test]
fn deterministic_given_seed() {
    let (t1, tb1) = run_download(1.0, 8.0, SchedulerKind::Ecf, 1024 * 1024, 42);
    let (t2, tb2) = run_download(1.0, 8.0, SchedulerKind::Ecf, 1024 * 1024, 42);
    assert_eq!(t1, t2);
    assert_eq!(
        tb1.world().recorder.ooo_delays_us,
        tb2.world().recorder.ooo_delays_us
    );
    let (t3, _) = run_download(1.0, 8.0, SchedulerKind::Ecf, 1024 * 1024, 43);
    assert_ne!(t1, t3, "different seeds should perturb jitter");
}

#[test]
fn survives_random_loss() {
    let cfg = TestbedConfig {
        paths: vec![
            PathConfig::wifi(2.0).with_loss(0.02),
            PathConfig::lte(8.0).with_loss(0.02),
        ],
        conns: vec![ConnSpec {
            cfg: ConnConfig::default(),
            scheduler: SchedulerKind::Default,
            custom_scheduler: None,
            subflow_paths: vec![0, 1],
        }],
        seed: 7,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: Scenario::default(),
        telemetry: Default::default(),
    };
    let mut tb = Testbed::new(cfg, SequentialDownloads::new(vec![1024 * 1024]));
    tb.run_until(Time::from_secs(120));
    assert_eq!(tb.app().completed.len(), 1, "transfer must survive 2% loss");
    let w = tb.world();
    let retx: u64 = (0..2).map(|s| w.sender(0).subflows[s].stats().retransmits).sum();
    assert!(retx > 0, "2% loss must force retransmissions");
}

#[test]
fn sequential_downloads_complete_in_order() {
    let cfg = TestbedConfig::wifi_lte(2.0, 4.0, SchedulerKind::Ecf, 9);
    let sizes = vec![64 * 1024, 256 * 1024, 128 * 1024, 512 * 1024];
    let mut tb = Testbed::new(cfg, SequentialDownloads::new(sizes));
    tb.run_until(Time::from_secs(60));
    assert_eq!(tb.app().completed, vec![0, 1, 2, 3]);
    // Completion times are non-decreasing in issue order.
    let times: Vec<_> = tb
        .world()
        .recorder
        .requests
        .iter()
        .map(|r| r.completed.unwrap())
        .collect();
    for w in times.windows(2) {
        assert!(w[0] <= w[1]);
    }
}

#[test]
fn four_subflows_two_per_interface() {
    // Fig 15 topology: two subflows per interface, each shaped to half.
    let cfg = TestbedConfig {
        paths: vec![
            PathConfig::wifi(0.15),
            PathConfig::wifi(0.15),
            PathConfig::lte(4.3),
            PathConfig::lte(4.3),
        ],
        conns: vec![ConnSpec {
            cfg: ConnConfig::default(),
            scheduler: SchedulerKind::Ecf,
            custom_scheduler: None,
            subflow_paths: vec![0, 1, 2, 3],
        }],
        seed: 11,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: Scenario::default(),
        telemetry: Default::default(),
    };
    let mut tb = Testbed::new(cfg, SequentialDownloads::new(vec![1024 * 1024]));
    tb.run_until(Time::from_secs(60));
    assert_eq!(tb.app().completed.len(), 1);
    // The fast subflows must carry the bulk of the traffic under ECF.
    let w = tb.world();
    let sent: Vec<u64> = (0..4).map(|s| w.sender(0).subflows[s].stats().segs_sent).collect();
    let slow: u64 = sent[0] + sent[1];
    let fast: u64 = sent[2] + sent[3];
    assert!(fast > slow * 3, "fast {fast} vs slow {slow}");
}

#[test]
fn parallel_connections_share_paths() {
    // Six connections like a browser; all complete, paths are shared.
    let conns = (0..6)
        .map(|_| ConnSpec {
            cfg: ConnConfig::default(),
            scheduler: SchedulerKind::Ecf,
            custom_scheduler: None,
            subflow_paths: vec![0, 1],
        })
        .collect();
    let cfg = TestbedConfig {
        paths: vec![PathConfig::wifi(2.0), PathConfig::lte(8.0)],
        conns,
        seed: 13,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: Scenario::default(),
        telemetry: Default::default(),
    };

    /// Issues one download per connection at start.
    struct FanOut {
        done: usize,
    }
    impl Application for FanOut {
        fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
            for c in 0..6 {
                api.request(c, 200 * 1024);
            }
        }
        fn on_response_complete(&mut self, _n: Time, _c: usize, _r: u64, _a: &mut Api<'_>) {
            self.done += 1;
        }
    }

    let mut tb = Testbed::new(cfg, FanOut { done: 0 });
    tb.run_until(Time::from_secs(60));
    assert_eq!(tb.app().done, 6);
}

#[test]
fn rate_change_mid_transfer_slows_progress() {
    // Start at 8 Mbps on both; collapse to 0.3 Mbps at t=1s.
    let mk = |with_drop: bool| {
        let mut cfg = TestbedConfig::wifi_lte(8.0, 8.0, SchedulerKind::Default, 21);
        if with_drop {
            cfg.scenario = Scenario::new()
                .rate_bps(Time::from_secs(1), 0, 300_000)
                .rate_bps(Time::from_secs(1), 1, 300_000);
        }
        let mut tb = Testbed::new(cfg, SequentialDownloads::new(vec![4 * 1024 * 1024]));
        tb.run_until(Time::from_secs(300));
        tb.world().recorder.requests[0].completion_time().unwrap().as_secs_f64()
    };
    let fast = mk(false);
    let slow = mk(true);
    assert!(slow > fast * 2.0, "rate drop must slow the transfer: {fast} vs {slow}");
}

#[test]
fn ooo_delays_recorded_under_heterogeneity() {
    let (_, tb) = run_download(0.3, 8.6, SchedulerKind::Default, 1024 * 1024, 2);
    let rec = &tb.world().recorder;
    assert!(!rec.ooo_delays_us.is_empty());
    // With a 0.3 vs 8.6 Mbps split some segments must see real reordering.
    let max_us = *rec.ooo_delays_us.iter().max().unwrap();
    assert!(max_us > 50_000, "max ooo delay only {max_us} us");
}
