//! Property tests for the MPTCP receiver and coupled congestion control:
//! reordering invariants must hold for *any* arrival interleaving.
//!
//! Run under `testkit::prop`; replay a failure with `TESTKIT_SEED=<n>`.

use std::time::Duration;

use mptcp::{ca_increase, CcKind, CcView, Receiver, Segment};
use simnet::Time;
use testkit::prop::{any_u64, bools, check, vec_of};

/// Split a dsn stream across two subflows with an arbitrary interleaving
/// (FIFO within each subflow, as the links guarantee): the receiver must
/// deliver every dsn exactly once, in order, and end with empty buffers.
#[test]
fn any_interleaving_delivers_in_order() {
    check(256, (vec_of(bools(), 1..120), any_u64()), |(assignment, order_seed)| {
        let n = assignment.len() as u64;
        // Build per-subflow FIFO queues of (dsn, ssn).
        let mut queues: [Vec<Segment>; 2] = [Vec::new(), Vec::new()];
        for (dsn, &to_fast) in assignment.iter().enumerate() {
            let sub = usize::from(to_fast);
            let ssn = queues[sub].len() as u64;
            queues[sub].push(Segment { dsn: dsn as u64, ssn });
        }
        // Interleave deterministically from the seed.
        let mut rx = Receiver::new(2, 10_000);
        let mut idx = [0usize, 0usize];
        let mut state = order_seed;
        let mut t = 0u64;
        let mut delivered = Vec::new();
        while idx[0] < queues[0].len() || idx[1] < queues[1].len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = if idx[0] >= queues[0].len() {
                1
            } else if idx[1] >= queues[1].len() {
                0
            } else {
                (state >> 33) as usize & 1
            };
            let seg = queues[pick][idx[pick]];
            idx[pick] += 1;
            t += 1;
            let out = rx.on_segment(Time::from_millis(t), pick, seg);
            for d in out.delivered {
                delivered.push(d.dsn);
            }
        }
        // Exactly once, in order, all of them.
        assert_eq!(delivered.len() as u64, n);
        for (i, &dsn) in delivered.iter().enumerate() {
            assert_eq!(dsn, i as u64);
        }
        assert_eq!(rx.meta_next(), n);
        assert_eq!(rx.rwnd_free(), 10_000);
        assert_eq!(rx.stats().duplicate_segs, 0);
    });
}

/// Re-delivering any prefix of segments (duplicates) never double
/// delivers and never regresses the cumulative state.
#[test]
fn duplicates_are_idempotent() {
    check(256, (1u64..60, 1u64..5), |(n, dup_every)| {
        let mut rx = Receiver::new(1, 10_000);
        let mut total = 0u64;
        for i in 0..n {
            let out = rx.on_segment(Time::from_millis(i), 0, Segment { dsn: i, ssn: i });
            total += out.delivered.len() as u64;
            if i % dup_every == 0 {
                let dup = rx.on_segment(
                    Time::from_millis(i),
                    0,
                    Segment { dsn: i, ssn: i },
                );
                assert!(dup.duplicate);
                total += dup.delivered.len() as u64;
            }
        }
        assert_eq!(total, n);
        assert_eq!(rx.meta_next(), n);
    });
}

/// Coupled increases stay within (0, Reno] for sane inputs, for every
/// controller — the RFC 6356 "do no harm" bound.
#[test]
fn ca_increase_bounded_by_reno() {
    check(
        256,
        (
            vec_of(1.0f64..500.0, 1..4),
            vec_of(0.005f64..2.0, 1..4),
            0u8..=255,
        ),
        |(cwnds, rtts, idx_seed)| {
            let n = cwnds.len().min(rtts.len());
            let views: Vec<CcView> = (0..n)
                .map(|i| CcView { cwnd: cwnds[i], srtt: rtts[i] })
                .collect();
            let idx = usize::from(idx_seed) % n;
            let reno = 1.0 / views[idx].cwnd;
            for kind in [CcKind::Reno, CcKind::Lia] {
                let inc = ca_increase(kind, &views, idx);
                assert!(inc > 0.0, "{kind:?} non-positive: {inc}");
                assert!(inc <= reno + 1e-9, "{kind:?} beats Reno: {inc} > {reno}");
            }
            // OLIA's α can exceed Reno transiently but must stay finite and
            // non-negative overall in our formulation.
            let olia = ca_increase(CcKind::Olia, &views, idx);
            assert!(olia.is_finite());
        },
    );
}

/// The out-of-order delay of a segment never exceeds the span between
/// the first buffered arrival and final delivery.
#[test]
fn ooo_delay_bounded_by_blocking_span() {
    check(256, 1u64..5_000, |gap_ms| {
        let mut rx = Receiver::new(2, 10_000);
        // dsn 1 arrives at t=0 on subflow 1, dsn 0 arrives gap later.
        rx.on_segment(Time::ZERO, 1, Segment { dsn: 1, ssn: 0 });
        let out = rx.on_segment(
            Time::from_millis(gap_ms),
            0,
            Segment { dsn: 0, ssn: 0 },
        );
        assert_eq!(out.delivered.len(), 2);
        assert_eq!(out.delivered[1].ooo_delay, Duration::from_millis(gap_ms));
    });
}
