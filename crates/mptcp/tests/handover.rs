//! Path-failure (handover) scenarios: a path dies mid-transfer, its
//! unacknowledged data is reinjected on the survivors, and service resumes
//! when the path returns — the WiFi↔LTE mobility story the paper's
//! introduction motivates.

use ecf_core::SchedulerKind;
use mptcp::{Api, Application, ConnSpec, RecorderConfig, Testbed, TestbedConfig};
use scenario::Scenario;
use simnet::{PathConfig, Time};

struct OneShot {
    bytes: u64,
    done: Option<Time>,
}

impl Application for OneShot {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        api.request(0, self.bytes);
    }
    fn on_response_complete(&mut self, now: Time, _c: usize, _r: u64, _a: &mut Api<'_>) {
        self.done = Some(now);
    }
}

fn testbed(dynamics: Scenario, kind: SchedulerKind) -> TestbedConfig {
    TestbedConfig {
        paths: vec![PathConfig::wifi(4.0), PathConfig::lte(4.0)],
        conns: vec![ConnSpec::new(kind, vec![0, 1])],
        seed: 3,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: dynamics,
        telemetry: Default::default(),
    }
}

#[test]
fn transfer_survives_losing_one_path() {
    // WiFi dies 500 ms in and never returns: the 4 MB transfer must finish
    // over LTE alone, with the stranded WiFi data reinjected.
    for kind in SchedulerKind::paper_set() {
        let cfg = testbed(Scenario::new().path_down(Time::from_millis(500), 0), kind);
        let mut tb = Testbed::new(cfg, OneShot { bytes: 4 * 1024 * 1024, done: None });
        tb.run_until(Time::from_secs(120));
        let done = tb
            .app()
            .done
            .unwrap_or_else(|| panic!("{}: transfer must survive path death", kind.label()));
        // LTE-alone floor: 4 MB over 4 Mbps ≈ 8.4 s (+ recovery overhead).
        assert!(
            done.as_secs_f64() < 60.0,
            "{}: took {done} after handover",
            kind.label()
        );
        // The stranded data really was reinjected.
        let reinjections = tb.world().sender(0).subflows[1].stats().reinjections;
        assert!(reinjections > 0, "{}: no reinjection after path death", kind.label());
    }
}

#[test]
fn dead_path_is_not_scheduled() {
    let cfg = testbed(Scenario::new().path_down(Time::from_millis(200), 0), SchedulerKind::Ecf);
    let mut tb = Testbed::new(cfg, OneShot { bytes: 2 * 1024 * 1024, done: None });
    tb.run_until(Time::from_secs(60));
    assert!(tb.app().done.is_some());
    // Nothing arrives over WiFi after the cutoff: its delivered count stays
    // whatever made it through the first 200 ms.
    let wifi_sent = tb.world().sender(0).subflows[0].stats().segs_sent;
    let lte_sent = tb.world().sender(0).subflows[1].stats().segs_sent;
    assert!(
        lte_sent > wifi_sent * 5,
        "LTE must carry the load after WiFi death ({wifi_sent} vs {lte_sent})"
    );
}

#[test]
fn path_recovery_restores_aggregation() {
    // WiFi blinks off between t=1 s and t=6 s; with a long transfer the
    // recovered path must be used again afterwards.
    let cfg = testbed(
        Scenario::new().outage(0, Time::from_secs(1), Time::from_secs(6)),
        SchedulerKind::Default,
    );
    let mut tb = Testbed::new(cfg, OneShot { bytes: 8 * 1024 * 1024, done: None });
    tb.run_until(Time::from_millis(5_900));
    let wifi_before = tb.world().sender(0).subflows[0].stats().segs_sent;
    tb.run_until(Time::from_secs(120));
    assert!(tb.app().done.is_some(), "transfer finishes after recovery");
    let wifi_after = tb.world().sender(0).subflows[0].stats().segs_sent;
    assert!(
        wifi_after > wifi_before + 50,
        "recovered WiFi must be re-used ({wifi_before} -> {wifi_after})"
    );
}

#[test]
fn total_outage_stalls_then_recovers() {
    // Both paths down for 3 s: nothing delivers during the blackout, the
    // transfer still completes afterwards.
    let cfg = testbed(
        Scenario::new()
            .outage(0, Time::from_secs(1), Time::from_secs(4))
            .outage(1, Time::from_secs(1), Time::from_secs(4)),
        SchedulerKind::Ecf,
    );
    let mut tb = Testbed::new(cfg, OneShot { bytes: 4 * 1024 * 1024, done: None });
    tb.run_until(Time::from_millis(3_900));
    let mid = tb.world().receiver(0).meta_next();
    tb.run_until(Time::from_millis(3_990));
    // Blackout: no progress at the tail of the outage window.
    assert_eq!(tb.world().receiver(0).meta_next(), mid);
    tb.run_until(Time::from_secs(120));
    assert!(tb.app().done.is_some(), "transfer must finish after the blackout");
}
