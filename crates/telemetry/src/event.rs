//! Typed telemetry events.
//!
//! Every event is `Copy` with a fixed memory footprint so the ring buffer
//! can preallocate all storage up front — no heap traffic on the hot path.
//! Times are raw nanoseconds (`t_ns`) rather than `simnet::Time`: this crate
//! sits *below* the simulator in the dependency graph (ecf-core ← telemetry
//! ← simnet ← mptcp), so any clock that counts nanoseconds can feed it.

use ecf_core::{Decision, Why};

/// Maximum paths captured per decision event. The paper's scenarios use two
/// (WiFi + LTE); four leaves room for the multi-subflow experiments without
/// making the event struct heap-allocated.
pub const MAX_PATHS: usize = 4;

/// One path's state as the scheduler saw it at decision time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathObs {
    /// Path (subflow) index within the connection.
    pub path: u16,
    /// Whether the scheduler was allowed to use the path.
    pub usable: bool,
    /// Smoothed RTT, microseconds. `u32` spans over an hour of RTT — far
    /// beyond anything a scheduler will see — and keeps the event compact.
    pub srtt_us: u32,
    /// RTT deviation estimate (ECF's σ), microseconds.
    pub rttvar_us: u32,
    /// Congestion window, segments.
    pub cwnd: u32,
    /// Segments in flight.
    pub inflight: u32,
    /// Bytes in the path's droptail bottleneck queue as sampled at decision
    /// time (saturated to `u32::MAX`; in-tree queues are ≤ 1.5 MB). The
    /// cross-layer signal for QAware-style scheduling analysis.
    pub queue_bytes: u32,
}

/// One scheduler decision with its complete inputs and provenance.
#[derive(Debug, Clone, Copy)]
pub struct SchedDecision {
    /// Connection index within the testbed.
    pub conn: u32,
    /// Scheduler short name ("ecf", "default", ...).
    pub scheduler: &'static str,
    /// The verdict.
    pub decision: Decision,
    /// Why the verdict was reached (which inequality/rule fired).
    pub why: Why,
    /// `k`: unassigned segments in the connection-level send buffer
    /// (saturated to `u32::MAX`; real backlogs are orders of magnitude
    /// smaller — the narrow field keeps the hot-path copy short).
    pub queued_pkts: u32,
    /// Free segments in the connection-level send window (saturated).
    pub send_window_free_pkts: u32,
    /// Number of valid entries in `paths`.
    pub n_paths: u8,
    /// Per-path observations, `[0..n_paths]` valid.
    pub paths: [PathObs; MAX_PATHS],
}

/// Direction of a simulated link (relative to the sender under test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Data direction: sender → receiver.
    Forward,
    /// ACK direction: receiver → sender.
    Reverse,
}

impl LinkDir {
    /// Stable label for trace files.
    pub fn label(self) -> &'static str {
        match self {
            LinkDir::Forward => "fwd",
            LinkDir::Reverse => "rev",
        }
    }
}

/// Why a simulated link dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Bottleneck queue overflow (tail drop).
    Queue,
    /// Random loss per the configured loss rate.
    Random,
}

impl DropKind {
    /// Stable label for trace files.
    pub fn label(self) -> &'static str {
        match self {
            DropKind::Queue => "queue",
            DropKind::Random => "random",
        }
    }
}

/// The event payload. Scheduler decisions carry full inputs; transport and
/// link lifecycle events are slim id-stamped records.
#[derive(Debug, Clone, Copy)]
pub enum EventKind {
    /// A scheduler ran and produced a verdict.
    SchedDecision(SchedDecision),
    /// A congestion controller reset its window after an idle period
    /// (RFC 2861-style restart; the paper's §4.1 ECF interaction).
    IwReset {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        path: u16,
    },
    /// A retransmission timeout fired and retransmitted a segment.
    Rto {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        path: u16,
    },
    /// Fast retransmit triggered by duplicate ACKs.
    FastRetx {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        path: u16,
    },
    /// The subflow was penalized for causing receive-window blocking.
    Penalization {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        path: u16,
    },
    /// A subflow became usable.
    SubflowUp {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        path: u16,
    },
    /// A subflow went down.
    SubflowDown {
        /// Connection index.
        conn: u32,
        /// Subflow index.
        path: u16,
    },
    /// A simulated link dropped a packet.
    LinkDrop {
        /// Path index the link belongs to.
        path: u16,
        /// Link direction.
        dir: LinkDir,
        /// Drop cause.
        kind: DropKind,
    },
    /// A link's shaped rate changed (scenario dynamics).
    RateChange {
        /// Path index the link belongs to.
        path: u16,
        /// Link direction.
        dir: LinkDir,
        /// New rate, bits per second.
        rate_bps: u64,
    },
}

/// A timestamped telemetry event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Event time, nanoseconds since simulation start.
    pub t_ns: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// Stable lowercase event-type label, used as the `ev` field in traces.
    pub fn label(&self) -> &'static str {
        match self.kind {
            EventKind::SchedDecision(_) => "sched_decision",
            EventKind::IwReset { .. } => "iw_reset",
            EventKind::Rto { .. } => "rto",
            EventKind::FastRetx { .. } => "fast_retx",
            EventKind::Penalization { .. } => "penalization",
            EventKind::SubflowUp { .. } => "subflow_up",
            EventKind::SubflowDown { .. } => "subflow_down",
            EventKind::LinkDrop { .. } => "link_drop",
            EventKind::RateChange { .. } => "rate_change",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_compact() {
        // The ring preallocates `capacity` of these; keep the footprint in
        // check so a big ring stays tens of MB and a hot push touches as
        // few cache lines as possible. (Raised from 192 when PathObs gained
        // the 4-byte queue_bytes sample: 4 path slots × 4 bytes.)
        assert!(std::mem::size_of::<Event>() <= 224, "{}", std::mem::size_of::<Event>());
    }

    #[test]
    fn labels_are_stable() {
        let ev = Event { t_ns: 0, kind: EventKind::Rto { conn: 0, path: 1 } };
        assert_eq!(ev.label(), "rto");
        assert_eq!(LinkDir::Forward.label(), "fwd");
        assert_eq!(DropKind::Queue.label(), "queue");
    }
}

