//! Monotonic named counters.
//!
//! A fixed enum of counters backed by one atomic each — incrementing is a
//! single relaxed `fetch_add`, snapshotting is a loop of loads. Unlike the
//! event ring these never drop or wrap, so they stay truthful even when the
//! ring has overflowed.

use std::sync::atomic::{AtomicU64, Ordering};

/// All counters the transport and simulator maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Scheduler invocations (one per segment placement attempt).
    Decisions = 0,
    /// Decisions that came back `Wait` (ECF/BLEST holding back).
    WaitDecisions,
    /// Segments handed to a subflow for (re)transmission.
    SegsSent,
    /// Packets dropped by simulated links (queue + random).
    LinkDrops,
    /// Retransmission timeouts that fired.
    Rtos,
    /// Fast retransmits triggered by duplicate ACKs.
    FastRetx,
    /// Receive-window penalizations applied to subflows.
    Penalizations,
    /// Post-idle congestion-window resets.
    IwResets,
    /// Subflow up/down transitions.
    SubflowTransitions,
    /// Link rate changes applied by scenario dynamics.
    RateChanges,
    /// Event-queue slot cascades (calendar-wheel events re-filed from a
    /// higher level toward level 0; bounds the queue's non-O(1) work).
    QueueCascades,
    /// High-water mark of pending events in the engine's event queue.
    QueuePeakDepth,
    /// Experiment-matrix cells served from the content-addressed cache.
    MatrixCacheHits,
    /// Experiment-matrix cells executed because no valid entry existed.
    MatrixCacheMisses,
    /// Cache entries rejected as corrupt/stale (digest re-check failed);
    /// always also counted as misses.
    MatrixCacheInvalid,
    /// Simulation shards executed by sharded sweeps (one per shard engine).
    ShardRuns,
    /// Engine events processed across all shard runs (aggregate).
    ShardEvents,
    /// Wall-clock nanoseconds spent inside shard runs, summed over shards
    /// (CPU-time, not sweep latency: shards on different workers overlap).
    ShardWallNs,
    /// Worst observed per-sweep shard load imbalance, in permille:
    /// `max(events per shard) * 1000 / min(events per shard)`. 1000 means
    /// perfectly balanced; updated with a running max across sweeps.
    ShardEventsImbalancePermille,
    /// Worst observed per-sweep shard wall-time imbalance, in permille
    /// (same ratio over per-shard wall-ns); running max across sweeps.
    ShardWallImbalancePermille,
    /// Co-simulation lockstep windows completed (one per global sync round
    /// across all engine groups).
    CosimRounds,
    /// Boundary messages exchanged between co-simulated engine groups
    /// (one per shared-bottleneck member per sync round).
    CosimBoundaryMsgs,
    /// Wall-clock nanoseconds engine groups spent stalled at the window
    /// barrier waiting for the slowest group (sum over groups of
    /// `slowest − own` per round).
    CosimStallNs,
    /// Worst observed per-round engine-group wall-time imbalance, in
    /// permille (`max * 1000 / min` over per-group round wall-ns);
    /// running max across rounds and sweeps.
    CosimRoundImbalancePermille,
    /// Populations that collapsed to a single engine because no safe
    /// lookahead exists (literal link sharing or a zero-window coupling).
    ShardCollapses,
    /// Event-queue cursor fast-forwards: advances that jumped over at least
    /// one empty wheel quantum instead of visiting it.
    FfJumps,
    /// Total simulated dead air (ns) the event-queue cursor jumped over.
    FfSkippedNs,
    /// Link deliveries dispatched in batch via the claim protocol,
    /// bypassing a schedule/pop round-trip through the wheel.
    BatchDeliveries,
    /// Longest observed delivery batch (head pop + consecutive claims);
    /// running max across engines and runs.
    BatchMaxLen,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 29;

    /// Every counter, in stable report order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Decisions,
        Counter::WaitDecisions,
        Counter::SegsSent,
        Counter::LinkDrops,
        Counter::Rtos,
        Counter::FastRetx,
        Counter::Penalizations,
        Counter::IwResets,
        Counter::SubflowTransitions,
        Counter::RateChanges,
        Counter::QueueCascades,
        Counter::QueuePeakDepth,
        Counter::MatrixCacheHits,
        Counter::MatrixCacheMisses,
        Counter::MatrixCacheInvalid,
        Counter::ShardRuns,
        Counter::ShardEvents,
        Counter::ShardWallNs,
        Counter::ShardEventsImbalancePermille,
        Counter::ShardWallImbalancePermille,
        Counter::CosimRounds,
        Counter::CosimBoundaryMsgs,
        Counter::CosimStallNs,
        Counter::CosimRoundImbalancePermille,
        Counter::ShardCollapses,
        Counter::FfJumps,
        Counter::FfSkippedNs,
        Counter::BatchDeliveries,
        Counter::BatchMaxLen,
    ];

    /// Stable snake_case name for reports and trace digests.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Decisions => "decisions",
            Counter::WaitDecisions => "wait_decisions",
            Counter::SegsSent => "segs_sent",
            Counter::LinkDrops => "link_drops",
            Counter::Rtos => "rtos",
            Counter::FastRetx => "fast_retx",
            Counter::Penalizations => "penalizations",
            Counter::IwResets => "iw_resets",
            Counter::SubflowTransitions => "subflow_transitions",
            Counter::RateChanges => "rate_changes",
            Counter::QueueCascades => "queue_cascades",
            Counter::QueuePeakDepth => "queue_peak_depth",
            Counter::MatrixCacheHits => "matrix_cache_hits",
            Counter::MatrixCacheMisses => "matrix_cache_misses",
            Counter::MatrixCacheInvalid => "matrix_cache_invalid",
            Counter::ShardRuns => "shard_runs",
            Counter::ShardEvents => "shard_events",
            Counter::ShardWallNs => "shard_wall_ns",
            Counter::ShardEventsImbalancePermille => "shard_events_imbalance_permille",
            Counter::ShardWallImbalancePermille => "shard_wall_imbalance_permille",
            Counter::CosimRounds => "cosim_sync_rounds",
            Counter::CosimBoundaryMsgs => "cosim_boundary_msgs",
            Counter::CosimStallNs => "cosim_stall_ns",
            Counter::CosimRoundImbalancePermille => "cosim_round_imbalance_permille",
            Counter::ShardCollapses => "shard_collapses",
            Counter::FfJumps => "ff_jumps",
            Counter::FfSkippedNs => "ff_skipped_ns",
            Counter::BatchDeliveries => "batch_deliveries",
            Counter::BatchMaxLen => "batch_max_len",
        }
    }
}

/// The counter bank: one atomic per [`Counter`].
#[derive(Debug)]
pub struct Counters {
    vals: [AtomicU64; Counter::COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Counters { vals: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Counters {
    /// Add `n` to one counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.vals[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Raise one counter to `v` if it is currently lower (running maximum —
    /// the imbalance counters track the worst sweep seen, not a sum).
    #[inline]
    pub fn set_max(&self, c: Counter, v: u64) {
        self.vals[c as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize].load(Ordering::Relaxed)
    }

    /// Zero every counter. Engine-reuse hook: a harness that recycles one
    /// telemetry handle across runs (shard workers, repeated benches) can
    /// restart per-run accounting without reallocating the bank.
    pub fn reset(&self) {
        for v in &self.vals {
            v.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of all counters in [`Counter::ALL`] order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant_with_unique_names() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn set_max_is_a_running_maximum() {
        let c = Counters::default();
        c.set_max(Counter::ShardEventsImbalancePermille, 1200);
        c.set_max(Counter::ShardEventsImbalancePermille, 1000);
        assert_eq!(c.get(Counter::ShardEventsImbalancePermille), 1200);
        c.set_max(Counter::ShardEventsImbalancePermille, 2500);
        assert_eq!(c.get(Counter::ShardEventsImbalancePermille), 2500);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::default();
        c.add(Counter::ShardRuns, 8);
        c.set_max(Counter::ShardWallImbalancePermille, 1700);
        c.reset();
        for &ctr in Counter::ALL.iter() {
            assert_eq!(c.get(ctr), 0);
        }
        // The bank stays usable after a reset.
        c.add(Counter::ShardRuns, 1);
        assert_eq!(c.get(Counter::ShardRuns), 1);
    }

    #[test]
    fn add_and_snapshot() {
        let c = Counters::default();
        c.add(Counter::Decisions, 3);
        c.add(Counter::WaitDecisions, 1);
        c.add(Counter::Decisions, 2);
        assert_eq!(c.get(Counter::Decisions), 5);
        let snap = c.snapshot();
        assert_eq!(snap[0], ("decisions", 5));
        assert_eq!(snap[1], ("wait_decisions", 1));
        assert_eq!(snap[4], ("rtos", 0));
    }
}
