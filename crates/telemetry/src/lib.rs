//! Zero-cost-when-off observability for the MPTCP/ECF testbed.
//!
//! The paper's central claims are *mechanistic*: ECF outperforms minRTT
//! because it declines to use the slow subflow at specific moments. A
//! throughput number cannot confirm that mechanism — a decision log can.
//! This crate provides the plumbing:
//!
//! * [`TelemetryHandle`] — a cheap, cloneable handle threaded through the
//!   simulator, transport, and schedulers. A disabled handle (the default)
//!   holds no allocation and every emit is a single predictable
//!   `Option`-discriminant branch; enabling it costs one preallocated ring.
//! * [`Ring`] — a lock-free bounded event buffer that never allocates or
//!   blocks on the hot path; under pressure it drops events and says so
//!   ([`Ring::overflow`], [`Ring::contended`]) rather than perturbing the
//!   system under test.
//! * [`SchedDecision`] events carrying each scheduler verdict with its full
//!   inputs and typed provenance ([`ecf_core::Why`]), plus slim transport
//!   and link lifecycle events ([`EventKind`]).
//! * [`Counter`] — monotonic named counters with a cheap snapshot API,
//!   truthful even when the ring has wrapped.
//! * [`export`] — deterministic JSONL/CSV serialization: same seed ⇒
//!   byte-identical trace files.
//!
//! Dependency position: only `ecf-core` below this crate; `simnet`, `mptcp`
//! and the experiment binaries sit above it. Events therefore timestamp with
//! raw nanoseconds (`t_ns`), not the simulator's clock type.
//!
//! This crate contains the workspace's only `unsafe` code (the ring's slot
//! protocol); everything above and below it keeps `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

mod counters;
mod event;
pub mod export;
mod ring;

pub use counters::{Counter, Counters};
pub use event::{DropKind, Event, EventKind, LinkDir, PathObs, SchedDecision, MAX_PATHS};
pub use ring::Ring;

use std::sync::Arc;

/// Default event capacity when enabling telemetry: large enough for the
/// full decision log of a multi-minute streaming run at paper-scale rates
/// (a 180 s traced session records ~40k events) with ample headroom, while
/// keeping the preallocation tens of megabytes, not hundreds.
pub const DEFAULT_CAPACITY: usize = 1 << 17;

#[derive(Debug)]
struct Inner {
    ring: Ring,
    counters: Counters,
}

/// Handle to a telemetry sink, or a no-op if disabled.
///
/// `Clone` is one `Arc` bump (or a copy of `None`); every component in the
/// stack holds its own handle. The disabled handle is the `Default`, so
/// plumbing telemetry through a constructor costs nothing for callers that
/// never ask for it.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Inner>>,
}

impl TelemetryHandle {
    /// The disabled handle: no allocation, every operation a no-op.
    pub fn off() -> TelemetryHandle {
        TelemetryHandle { inner: None }
    }

    /// An enabled handle with the [`DEFAULT_CAPACITY`] event ring.
    pub fn enabled() -> TelemetryHandle {
        TelemetryHandle::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled handle retaining up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> TelemetryHandle {
        TelemetryHandle {
            inner: Some(Arc::new(Inner {
                ring: Ring::with_capacity(capacity),
                counters: Counters::default(),
            })),
        }
    }

    /// Whether events are being recorded. Callers with non-trivial event
    /// construction cost (e.g. building a [`SchedDecision`]) should check
    /// this first and skip the work entirely when off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event at `t_ns` nanoseconds. No-op when disabled.
    #[inline]
    pub fn emit(&self, t_ns: u64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.ring.push(Event { t_ns, kind });
        }
    }

    /// Record the event returned by `build`. No-op when disabled. The
    /// closure runs only once a ring slot is claimed and its result is
    /// written straight into that slot (see [`Ring::push_with`]) — the
    /// cheapest way to emit a large event like a
    /// [`SchedDecision`](EventKind::SchedDecision).
    #[inline]
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            inner.ring.push_with(build);
        }
    }

    /// Add 1 to a counter. No-op when disabled.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Add `n` to a counter. No-op when disabled.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters.add(c, n);
        }
    }

    /// Raise a counter to `n` if it is currently lower (running maximum).
    /// No-op when disabled. Used for high-water marks like the per-sweep
    /// shard imbalance ratios, where the worst case matters, not the sum.
    #[inline]
    pub fn set_max(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters.set_max(c, n);
        }
    }

    /// Zero every counter, keeping the ring and its events intact. No-op
    /// when disabled. Engine-reuse hook: lets a harness that recycles one
    /// handle across runs restart per-run accounting.
    pub fn reset_counters(&self) {
        if let Some(inner) = &self.inner {
            inner.counters.reset();
        }
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.counters.get(c))
    }

    /// Snapshot of all counters in stable order (empty when disabled).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.counters.snapshot())
    }

    /// Copy out the retained events, oldest first (empty when disabled).
    /// Intended for after the run has quiesced; see [`Ring::snapshot`].
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.ring.snapshot())
    }

    /// Events lost to ring wraparound (0 when disabled or nothing lost).
    pub fn overflow(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.overflow())
    }

    /// Events lost to producer contention (0 when disabled).
    pub fn contended(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.contended())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let h = TelemetryHandle::off();
        assert!(!h.is_enabled());
        h.emit(1, EventKind::Rto { conn: 0, path: 0 });
        h.incr(Counter::Decisions);
        assert_eq!(h.events().len(), 0);
        assert_eq!(h.counter(Counter::Decisions), 0);
        assert!(h.counters().is_empty());
        assert_eq!(h.overflow(), 0);
        // Default is off — constructors plumbed with `Default` stay no-op.
        assert!(!TelemetryHandle::default().is_enabled());
    }

    #[test]
    fn clones_share_the_sink() {
        let h = TelemetryHandle::with_capacity(16);
        let h2 = h.clone();
        h.emit(5, EventKind::Rto { conn: 0, path: 1 });
        h2.incr(Counter::Rtos);
        assert_eq!(h.events().len(), 1);
        assert_eq!(h2.events().len(), 1);
        assert_eq!(h.counter(Counter::Rtos), 1);
    }

    #[test]
    fn set_max_and_reset_counters() {
        let h = TelemetryHandle::with_capacity(16);
        h.add(Counter::ShardEvents, 40);
        h.set_max(Counter::ShardEventsImbalancePermille, 1500);
        h.set_max(Counter::ShardEventsImbalancePermille, 1100);
        assert_eq!(h.counter(Counter::ShardEventsImbalancePermille), 1500);

        h.emit(1, EventKind::Rto { conn: 0, path: 0 });
        h.reset_counters();
        assert_eq!(h.counter(Counter::ShardEvents), 0);
        assert_eq!(h.counter(Counter::ShardEventsImbalancePermille), 0);
        // Counter reset leaves the event ring alone.
        assert_eq!(h.events().len(), 1);

        // Both are no-ops on a disabled handle.
        let off = TelemetryHandle::off();
        off.set_max(Counter::ShardEvents, 9);
        off.reset_counters();
        assert_eq!(off.counter(Counter::ShardEvents), 0);
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TelemetryHandle>();
    }
}
