//! Lock-free, preallocated, bounded event ring.
//!
//! A Vyukov-style slot-sequence protocol restricted to the write side, with
//! two twists that keep the hot path down to roughly a thread-local lookup,
//! one guard load, and the payload stores:
//!
//! * **Block-claimed indices.** Producers claim global write indices in
//!   thread-local blocks of [`CLAIM_BLOCK`], so the atomic `fetch_add` on
//!   `head` — a full lock-prefixed RMW that also drains the store buffer
//!   behind the previous payload write — is paid once per block instead of
//!   once per event. Indices stay globally unique; a thread that stops
//!   pushing (or switches rings) simply abandons the tail of its block.
//! * **Load-guarded slots, no CAS.** Slot ownership needs only a plain
//!   *load* of the slot's sequence word. That is sound because the value a
//!   claimant must observe to proceed — "the claim one lap below me
//!   completed" — is unique to that claimant: indices are unique, so no two
//!   producers ever pass the same guard, and the post-guard payload write is
//!   exclusive by construction.
//!
//! The ring never allocates after construction and never blocks; when a
//! producer would have to wait for an older lap's write to finish it *drops
//! the event* and bumps a counter instead — observability must not perturb
//! the system it observes. A dropped or abandoned claim leaves a gap in the
//! slot's sequence history, so later laps of that slot also drop; contention
//! at all requires a producer preempted for a full lap (or a thread
//! abandoning a partial block by switching rings mid-run, which production
//! code — one ring per traced run — never does).
//!
//! Wraparound keeps the **most recent** `capacity` events (older laps are
//! overwritten); [`Ring::overflow`] reports how many were displaced so a
//! consumer can tell a complete trace from a truncated one. Because claims
//! are block-granular, `head` alone over-states activity; the read-side
//! accounting instead derives **exact** counts from the slot sequence words:
//! a slot completed at index `idx` has, by the lap-continuity induction
//! above, been written exactly `idx / capacity + 1` times.
//!
//! Reading ([`Ring::snapshot`]) is intended for after the run, once all
//! producers have quiesced — the simulator finishes, then the trace is
//! exported. A seqlock-style re-check skips any slot a straggling writer is
//! still touching rather than returning torn data. All read-side APIs
//! ([`Ring::snapshot`], [`Ring::pushed`], [`Ring::overflow`]) are
//! `O(capacity)` scans; they are meant for export time, not the hot path.

use std::cell::Cell;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::Event;

/// Indices claimed per `head.fetch_add`: amortizes the lock-prefixed RMW
/// across this many pushes. Small enough that an abandoned block tail
/// (thread exit, ring switch) wastes a handful of slots at worst.
const CLAIM_BLOCK: u64 = 8;

/// Monotonic ring identities, so a thread-local claim block can never be
/// replayed against a different (possibly later-allocated) ring.
static RING_NONCES: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's open claim block: (ring nonce, next index, block end).
    static CLAIM: Cell<(u64, u64, u64)> = const { Cell::new((0, 0, 0)) };
}

/// Slot sequence encoding, for a slot last claimed by global index `idx`:
/// `idx*2 + 1` while the payload write is in progress, `idx*2 + 2` once the
/// payload is valid. A fresh slot holds 0 (one below index 0's claim value).
struct Slot {
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<Event>>,
}

/// The bounded lock-free event ring. See the module docs for the protocol.
pub struct Ring {
    slots: Box<[Slot]>,
    /// Next unclaimed global write index (block-granular; see module docs).
    head: AtomicU64,
    /// Events dropped because a slot's previous lap was still being written.
    contended: AtomicU64,
    cap: u64,
    nonce: u64,
}

// SAFETY: a slot is only written by the unique producer whose guard value
// matched its sequence word (see the module docs for why no two producers
// can pass the same guard), and `Event` is `Copy + Send`. Readers validate
// the sequence word before and after copying the payload out and discard
// torn reads.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.cap)
            .field("pushed", &self.pushed())
            .field("contended", &self.contended())
            .finish_non_exhaustive()
    }
}

impl Ring {
    /// A ring holding up to `capacity` events, fully preallocated.
    /// Capacity is rounded up to the next power of two (min 1) so the hot
    /// push path can mask instead of divide to find its slot.
    pub fn with_capacity(capacity: usize) -> Ring {
        let cap = capacity.max(1).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            cap: cap as u64,
            nonce: RING_NONCES.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Append one event. Never blocks and never allocates; on contention with
    /// an unfinished older write the event is counted in
    /// [`Ring::contended`] and discarded.
    #[inline]
    pub fn push(&self, ev: Event) {
        self.push_with(|| ev);
    }

    /// Like [`Ring::push`], but the event is built by `fill` only after a
    /// slot has been claimed, and its return value is written straight into
    /// that slot — the optimizer constructs large events in place instead
    /// of staging them on the stack. `fill` is skipped on contention.
    #[inline]
    pub fn push_with(&self, fill: impl FnOnce() -> Event) {
        let idx = CLAIM.with(|c| {
            let (nonce, next, end) = c.get();
            if nonce == self.nonce && next < end {
                c.set((nonce, next + 1, end));
                next
            } else {
                let start = self.head.fetch_add(CLAIM_BLOCK, Ordering::Relaxed);
                c.set((self.nonce, start + 1, start + CLAIM_BLOCK));
                start
            }
        });
        // SAFETY: the mask keeps the index in `0..cap == slots.len()`.
        let slot = unsafe { self.slots.get_unchecked((idx & (self.cap - 1)) as usize) };
        // The value `seq` must hold before we may take this slot for `idx`:
        // 0 on the first lap, else "previous lap's write completed". Only
        // the unique holder of `idx` guards on this exact value, so a plain
        // load-and-check grants exclusive ownership — no CAS needed (the
        // claim store below cannot race another claimant's).
        let expected = if idx < self.cap { 0 } else { (idx - self.cap) * 2 + 2 };
        if slot.seq.load(Ordering::Acquire) != expected {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.seq.store(idx * 2 + 1, Ordering::Relaxed);
        // SAFETY: the guard above grants this producer exclusive ownership
        // of the slot until the release store below publishes it.
        unsafe { (*slot.val.get()).write(fill()) };
        slot.seq.store(idx * 2 + 2, Ordering::Release);
    }

    /// Exact completed-write and retained-slot counts, derived from the slot
    /// sequence words (see module docs): a slot completed at `idx` has been
    /// written `idx/cap + 1` times; an in-progress claim at `idx` contributes
    /// its `idx/cap` already-completed prior laps.
    fn accounting(&self) -> (u64, u64) {
        let (mut written, mut retained) = (0u64, 0u64);
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            if seq % 2 == 0 {
                written += (seq - 2) / 2 / self.cap + 1;
                retained += 1;
            } else {
                written += (seq - 1) / 2 / self.cap;
            }
        }
        (written, retained)
    }

    /// Total push attempts so far: completed writes plus contended drops.
    /// Intended for after producers quiesce (an in-flight push is not yet
    /// counted); `O(capacity)`.
    pub fn pushed(&self) -> u64 {
        self.accounting().0 + self.contended()
    }

    /// Events displaced by wraparound: completed writes that a later lap
    /// overwrote. 0 means the ring still holds everything written.
    /// Intended for after producers quiesce; `O(capacity)`.
    pub fn overflow(&self) -> u64 {
        let (written, retained) = self.accounting();
        written - retained
    }

    /// Events discarded because their slot was still owned by a slower
    /// writer from a previous lap (or poisoned by an abandoned claim).
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Acquire)
    }

    /// Copy out the retained events, oldest first (by claim order). Intended
    /// for after producers have quiesced; slots with in-progress writes are
    /// skipped (never torn). `O(capacity log capacity)`.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue;
            }
            // SAFETY: an even non-zero sequence word says this slot's write
            // completed, so the payload holds a valid `Event`; we copy it
            // out (`Event` is `Copy`) and re-validate to discard a racing
            // overwrite.
            let ev = unsafe { (*slot.val.get()).assume_init() };
            if slot.seq.load(Ordering::Acquire) != seq {
                continue;
            }
            out.push(((seq - 2) / 2, ev));
        }
        out.sort_unstable_by_key(|&(idx, _)| idx);
        out.into_iter().map(|(_, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> Event {
        Event { t_ns: t, kind: EventKind::Rto { conn: 0, path: 0 } }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let ring = Ring::with_capacity(8);
        for t in 0..5 {
            ring.push(ev(t));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.overflow(), 0);
        assert_eq!(ring.contended(), 0);
    }

    #[test]
    fn wraparound_keeps_most_recent_and_counts_overflow() {
        let ring = Ring::with_capacity(4);
        for t in 0..11 {
            ring.push(ev(t));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![7, 8, 9, 10], "retains exactly the last `capacity` events");
        assert_eq!(ring.overflow(), 7);
        assert_eq!(ring.pushed(), 11);
    }

    #[test]
    fn exact_capacity_boundary() {
        let ring = Ring::with_capacity(4);
        for t in 0..4 {
            ring.push(ev(t));
        }
        assert_eq!(ring.overflow(), 0);
        assert_eq!(ring.snapshot().len(), 4);
        ring.push(ev(4));
        assert_eq!(ring.overflow(), 1);
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring = Ring::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(ev(1));
        ring.push(ev(2));
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn block_claims_do_not_inflate_the_accounting() {
        // Claims are block-granular (`head` advances by CLAIM_BLOCK), but
        // the derived counts must reflect actual writes only.
        let ring = Ring::with_capacity(64);
        ring.push(ev(7));
        assert_eq!(ring.pushed(), 1);
        assert_eq!(ring.overflow(), 0);
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::with_capacity(1024));
        let threads: Vec<_> = (0..4)
            .map(|tid| {
                let r = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        r.push(ev(tid * 1_000_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 40_000, "every push is accounted: written or dropped");
        let snap = ring.snapshot();
        // Quiesced: every retained slot must be a valid event we pushed.
        assert!(snap.len() <= 1024);
        for e in &snap {
            let tid = e.t_ns / 1_000_000;
            assert!(tid < 4 && e.t_ns % 1_000_000 < 10_000);
        }
        // Conservation: every write is either still retained or displaced.
        assert_eq!(ring.overflow(), 40_000 - ring.contended() - snap.len() as u64);
    }
}
