//! Deterministic trace exporters: JSONL (one event per line) and a flat CSV
//! of scheduler decisions.
//!
//! Determinism contract: the output is a pure function of the event
//! sequence. Timestamps are emitted as integer microseconds and floats use
//! Rust's shortest-roundtrip formatting, so two runs with the same seed
//! produce byte-identical files. Nothing here consults the wall clock,
//! locale, or environment.

use std::fmt::Write as _;

use ecf_core::{Decision, Why};

use crate::event::{Event, EventKind, SchedDecision, MAX_PATHS};

fn push_why_fields(out: &mut String, why: &Why) {
    let _ = write!(out, r#","why":"{}""#, why.label());
    if let Some(t) = why.ecf_terms() {
        let _ = write!(
            out,
            r#","terms":{{"wait_for_fast_s":{},"threshold_s":{},"slow_time_s":{},"slow_floor_s":{},"delta_s":{},"beta_applied":{}}}"#,
            t.wait_for_fast_s, t.threshold_s, t.slow_time_s, t.slow_floor_s, t.delta_s,
            t.beta_applied
        );
    }
    match *why {
        Why::BlestWait { projected_pkts, lambda } | Why::BlestFits { projected_pkts, lambda } => {
            let _ = write!(out, r#","projected_pkts":{projected_pkts},"lambda":{lambda}"#);
        }
        Why::DapsDesignated { credit } | Why::DapsHold { credit } => {
            let _ = write!(out, r#","credit":{credit}"#);
        }
        Why::SttfBest { estimate_s } | Why::SttfWaitBest { estimate_s } => {
            let _ = write!(out, r#","estimate_s":{estimate_s}"#);
        }
        _ => {}
    }
}

fn push_decision_fields(out: &mut String, d: &SchedDecision) {
    let _ = write!(out, r#","conn":{},"sched":"{}""#, d.conn, d.scheduler);
    match d.decision {
        Decision::Send(id) => {
            let _ = write!(out, r#","decision":"send","path":{}"#, id.0);
        }
        Decision::Wait => out.push_str(r#","decision":"wait""#),
        Decision::Blocked => out.push_str(r#","decision":"blocked""#),
    }
    push_why_fields(out, &d.why);
    let _ = write!(
        out,
        r#","queued_pkts":{},"swnd_free_pkts":{}"#,
        d.queued_pkts, d.send_window_free_pkts
    );
    out.push_str(r#","paths":["#);
    for (i, p) in d.paths.iter().take(d.n_paths as usize).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"path":{},"usable":{},"srtt_us":{},"rttvar_us":{},"cwnd":{},"inflight":{},"queue_bytes":{}}}"#,
            p.path, p.usable, p.srtt_us, p.rttvar_us, p.cwnd, p.inflight, p.queue_bytes
        );
    }
    out.push(']');
}

/// Append one event as a JSONL line (including the trailing newline).
pub fn jsonl_line(ev: &Event, out: &mut String) {
    let _ = write!(out, r#"{{"t_us":{},"ev":"{}""#, ev.t_ns / 1_000, ev.label());
    match &ev.kind {
        EventKind::SchedDecision(d) => push_decision_fields(out, d),
        EventKind::IwReset { conn, path }
        | EventKind::Rto { conn, path }
        | EventKind::FastRetx { conn, path }
        | EventKind::Penalization { conn, path }
        | EventKind::SubflowUp { conn, path }
        | EventKind::SubflowDown { conn, path } => {
            let _ = write!(out, r#","conn":{conn},"path":{path}"#);
        }
        EventKind::LinkDrop { path, dir, kind } => {
            let _ = write!(out, r#","path":{},"dir":"{}","kind":"{}""#, path, dir.label(),
                kind.label());
        }
        EventKind::RateChange { path, dir, rate_bps } => {
            let _ = write!(out, r#","path":{},"dir":"{}","rate_bps":{}"#, path, dir.label(),
                rate_bps);
        }
    }
    out.push_str("}\n");
}

/// Serialize events to a JSONL document, one event per line, in order.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 160);
    for ev in events {
        jsonl_line(ev, &mut out);
    }
    out
}

/// CSV header matching [`to_csv`]'s rows.
pub fn csv_header() -> String {
    let mut h = String::from("t_us,conn,sched,decision,path,why,queued_pkts,swnd_free_pkts");
    for i in 0..MAX_PATHS {
        let _ = write!(h, ",p{i}_srtt_us,p{i}_rttvar_us,p{i}_cwnd,p{i}_inflight,p{i}_queue_bytes");
    }
    h.push('\n');
    h
}

/// Serialize the *scheduler decision* events to a flat CSV (header + one row
/// per decision); other event kinds are omitted. Columns for absent paths
/// are left empty.
pub fn to_csv(events: &[Event]) -> String {
    let mut out = csv_header();
    for ev in events {
        let EventKind::SchedDecision(d) = &ev.kind else { continue };
        let _ = write!(out, "{},{},{},", ev.t_ns / 1_000, d.conn, d.scheduler);
        match d.decision {
            Decision::Send(id) => {
                let _ = write!(out, "send,{}", id.0);
            }
            Decision::Wait => out.push_str("wait,"),
            Decision::Blocked => out.push_str("blocked,"),
        }
        let _ = write!(out, ",{},{},{}", d.why.label(), d.queued_pkts, d.send_window_free_pkts);
        for i in 0..MAX_PATHS {
            if i < d.n_paths as usize {
                let p = &d.paths[i];
                let _ = write!(
                    out,
                    ",{},{},{},{},{}",
                    p.srtt_us, p.rttvar_us, p.cwnd, p.inflight, p.queue_bytes
                );
            } else {
                out.push_str(",,,,,");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropKind, LinkDir, PathObs};
    use ecf_core::{EcfTerms, PathId};

    fn decision_event() -> Event {
        let mut paths = [PathObs::default(); MAX_PATHS];
        paths[0] = PathObs {
            path: 0,
            usable: true,
            srtt_us: 25_000,
            rttvar_us: 3_000,
            cwnd: 10,
            inflight: 10,
            queue_bytes: 52_000,
        };
        paths[1] = PathObs {
            path: 1,
            usable: true,
            srtt_us: 90_000,
            rttvar_us: 12_000,
            cwnd: 8,
            inflight: 0,
            queue_bytes: 0,
        };
        Event {
            t_ns: 1_234_567,
            kind: EventKind::SchedDecision(SchedDecision {
                conn: 0,
                scheduler: "ecf",
                decision: Decision::Wait,
                why: Why::EcfWait(EcfTerms {
                    wait_for_fast_s: 0.05,
                    threshold_s: 0.102,
                    slow_time_s: 0.27,
                    slow_floor_s: 0.062,
                    delta_s: 0.012,
                    beta_applied: false,
                }),
                queued_pkts: 17,
                send_window_free_pkts: 400,
                n_paths: 2,
                paths,
            }),
        }
    }

    #[test]
    fn jsonl_decision_roundtrips_structure() {
        let line = to_jsonl(&[decision_event()]);
        assert!(line.ends_with('\n'));
        assert!(line.contains(r#""t_us":1234"#), "{line}");
        assert!(line.contains(r#""ev":"sched_decision""#));
        assert!(line.contains(r#""decision":"wait""#));
        assert!(line.contains(r#""why":"ecf_wait""#));
        assert!(line.contains(r#""delta_s":0.012"#));
        assert!(line.contains(r#""srtt_us":25000"#));
        assert!(line.contains(r#""queue_bytes":52000"#));
        // Exactly n_paths entries serialized.
        assert_eq!(line.matches(r#"{"path":"#).count(), 2);
    }

    #[test]
    fn jsonl_send_carries_path() {
        let mut ev = decision_event();
        if let EventKind::SchedDecision(d) = &mut ev.kind {
            d.decision = Decision::Send(PathId(1));
            d.why = Why::FastestFree;
        }
        let line = to_jsonl(&[ev]);
        assert!(line.contains(r#""decision":"send","path":1"#), "{line}");
        assert!(!line.contains("terms"));
    }

    #[test]
    fn jsonl_lifecycle_and_link_events() {
        let evs = [
            Event { t_ns: 2_000, kind: EventKind::Rto { conn: 3, path: 1 } },
            Event {
                t_ns: 3_000,
                kind: EventKind::LinkDrop { path: 0, dir: LinkDir::Forward, kind: DropKind::Queue },
            },
            Event {
                t_ns: 4_000,
                kind: EventKind::RateChange { path: 1, dir: LinkDir::Forward, rate_bps: 600_000 },
            },
        ];
        let doc = to_jsonl(&evs);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines[0], r#"{"t_us":2,"ev":"rto","conn":3,"path":1}"#);
        assert_eq!(lines[1], r#"{"t_us":3,"ev":"link_drop","path":0,"dir":"fwd","kind":"queue"}"#);
        assert_eq!(
            lines[2],
            r#"{"t_us":4,"ev":"rate_change","path":1,"dir":"fwd","rate_bps":600000}"#
        );
    }

    #[test]
    fn csv_has_header_and_skips_non_decisions() {
        let evs = [
            Event { t_ns: 2_000, kind: EventKind::Rto { conn: 3, path: 1 } },
            decision_event(),
        ];
        let csv = to_csv(&evs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "header + one decision row");
        assert!(lines[0].starts_with("t_us,conn,sched,decision,path,why"));
        assert!(lines[1].starts_with("1234,0,ecf,wait,,ecf_wait,17,400"));
        // 8 fixed columns + 5 per path slot.
        assert_eq!(lines[1].split(',').count(), 8 + 5 * MAX_PATHS);
    }

    #[test]
    fn export_is_deterministic() {
        let evs = [decision_event(), decision_event()];
        assert_eq!(to_jsonl(&evs), to_jsonl(&evs));
        assert_eq!(to_csv(&evs), to_csv(&evs));
    }
}
