//! One-off micro-measurement of emit cost (not a tracked bench).
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use telemetry::{EventKind, PathObs, SchedDecision, TelemetryHandle, MAX_PATHS};

fn decision(i: u64) -> EventKind {
    let mut paths = [PathObs::default(); MAX_PATHS];
    for (p, obs) in paths.iter_mut().enumerate() {
        *obs = PathObs { path: p as u16, usable: true, srtt_us: 20_000 + i as u32, rttvar_us: 5_000, cwnd: 10, inflight: 3, queue_bytes: 0 };
    }
    EventKind::SchedDecision(SchedDecision {
        conn: 0, scheduler: "ecf",
        decision: ecf_core::Decision::Send(ecf_core::PathId(0)),
        why: ecf_core::Why::FastestFree,
        queued_pkts: i as u32, send_window_free_pkts: 100, n_paths: 2, paths,
    })
}

fn main() {
    println!("Event size: {} bytes", std::mem::size_of::<telemetry::Event>());
    for cap in [1usize << 10, 1 << 13, 1 << 17] {
        let tel = TelemetryHandle::with_capacity(cap);
        let n = 1_000_000u64;
        // warm
        for i in 0..10_000 { tel.emit(i, decision(i)); }
        let t0 = Instant::now();
        for i in 0..n { tel.emit(i, decision(i)); }
        let el = t0.elapsed();
        println!("cap {:>8}: {:.1} ns/emit", cap, el.as_nanos() as f64 / n as f64);
    }
    // build-only cost
    let n = 1_000_000u64;
    let t0 = Instant::now();
    for i in 0..n { std::hint::black_box(decision(i)); }
    println!("build only: {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);

    // atomic RMW floor: one uncontended fetch_add per iteration
    let head = AtomicU64::new(0);
    let t0 = Instant::now();
    for _ in 0..n { std::hint::black_box(head.fetch_add(1, Ordering::Relaxed)); }
    println!("fetch_add only: {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);

    // plain store floor: two relaxed stores (the claim/done pair)
    let seq = AtomicU64::new(0);
    let t0 = Instant::now();
    for i in 0..n {
        seq.store(i * 2 + 1, Ordering::Relaxed);
        seq.store(i * 2 + 2, Ordering::Release);
    }
    println!("store pair only: {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);

    // memcpy floor: copy a built event into a fixed cell
    let mut cell = std::mem::MaybeUninit::<telemetry::Event>::uninit();
    let t0 = Instant::now();
    for i in 0..n {
        cell.write(telemetry::Event { t_ns: i, kind: decision(i) });
        std::hint::black_box(&mut cell);
    }
    println!("build+write cell: {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);
}
