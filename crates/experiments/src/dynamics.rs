//! Dynamic-network experiments built on the `scenario` engine: handover
//! blackouts and bursty wireless loss. These probe the regimes the paper
//! motivates but could only exercise statically in §5 — scheduler rankings
//! under *changing* networks, where ECF's send-buffer-aware path choice
//! has to keep re-learning which path is worth waiting for.

use ecf_core::SchedulerKind;
use metrics::render_table;
use scenario::{GilbertElliott, LossModel, Scenario};
use simnet::Time;

use crate::common::{parallel_map, run_streaming, Effort, StreamingConfig};

/// WiFi rate for the dynamic runs (slow but low-RTT — the paper's
/// congested café AP that minRTT over-trusts).
const WIFI_MBPS: f64 = 1.7;
/// LTE rate (fast, higher RTT — carries most of the goodput).
const LTE_MBPS: f64 = 8.6;

const KINDS: [SchedulerKind; 3] =
    [SchedulerKind::Default, SchedulerKind::Blest, SchedulerKind::Ecf];

/// Periodic LTE blackouts: every 60 s starting at t=30 s the LTE
/// interface goes dark for `outage_secs`, modelling repeated cell-edge
/// dropouts over a long session. `0` means no outages (static baseline).
pub(crate) fn handover_scenario(outage_secs: u64, wall_horizon_secs: u64) -> Scenario {
    let mut s = Scenario::new();
    if outage_secs == 0 {
        return s;
    }
    let mut t = 30u64;
    while t + outage_secs < wall_horizon_secs {
        s = s.outage(1, Time::from_secs(t), Time::from_secs(t + outage_secs));
        t += 60;
    }
    s
}

/// `dyn_handover`: streaming bitrate across a ladder of LTE-outage
/// durations. Losing the fast LTE path collapses capacity onto the slow
/// WiFi AP; in the static phases ECF refuses to strand chunk tails on
/// slow WiFi (minRTT's favourite), and after each recovery it
/// re-aggregates the returning fast path sooner than minRTT does.
pub fn dyn_handover(effort: Effort) -> String {
    let ladder: &[u64] = match effort {
        Effort::Full => &[0, 2, 5, 10, 20, 40],
        Effort::Quick => &[0, 2, 5, 10],
    };
    let video = effort.video_secs();
    // Generate outage cycles across the whole possible run, matching the
    // run_streaming horizon; late events on a finished run are harmless.
    let wall_horizon = (video * 30.0) as u64 + 300;
    let seeds = effort.seeds();

    let work: Vec<(u64, SchedulerKind, u64)> = ladder
        .iter()
        .flat_map(|&d| {
            KINDS
                .iter()
                .flat_map(move |&k| (0..seeds).map(move |s| (d, k, 100 + s)))
        })
        .collect();
    let bitrates = parallel_map(work, |(outage, kind, seed)| {
        let out = run_streaming(&StreamingConfig {
            video_secs: video,
            scenario: Some(handover_scenario(outage, wall_horizon)),
            ..StreamingConfig::new(WIFI_MBPS, LTE_MBPS, kind, seed)
        });
        out.avg_bitrate
    });

    let mut s = String::from(
        "dyn_handover: streaming bitrate under periodic LTE blackouts\n\
         (1.7 Mbps WiFi + 8.6 Mbps LTE; LTE dark for the given duration\n\
          every 60 s; mean encoded bitrate in Mbps, higher is better)\n\n",
    );
    let mut rows = Vec::new();
    let per_cell = seeds as usize;
    for (di, &d) in ladder.iter().enumerate() {
        let mut row = vec![format!("{d}")];
        for ki in 0..KINDS.len() {
            let base = (di * KINDS.len() + ki) * per_cell;
            let mean = metrics::mean(&bitrates[base..base + per_cell]);
            row.push(format!("{mean:.3}"));
        }
        rows.push(row);
    }
    s.push_str(&render_table(&["outage_s", "default", "blest", "ecf"], &rows));
    let col_mean = |ki: usize| {
        let vals: Vec<f64> = (0..ladder.len())
            .flat_map(|di| {
                let base = (di * KINDS.len() + ki) * per_cell;
                bitrates[base..base + per_cell].to_vec()
            })
            .collect();
        metrics::mean(&vals)
    };
    s.push_str(&format!(
        "\nladder means: default={:.3}  blest={:.3}  ecf={:.3} Mbps\n",
        col_mean(0),
        col_mean(1),
        col_mean(2)
    ));
    s
}

/// `dyn_burstloss`: streaming throughput with Gilbert–Elliott bursty loss
/// on the fast (LTE) path — the cell-edge regime. Sweeps average loss at
/// a fixed burst length, then burst length at fixed average loss:
/// independent-loss results do not predict the bursty column.
pub fn dyn_burstloss(effort: Effort) -> String {
    let video = effort.video_secs();
    let seeds = effort.seeds();
    let loss_ladder: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.04];
    const MEAN_BURST: f64 = 8.0;
    let burst_ladder: [f64; 4] = [1.0, 4.0, 16.0, 64.0];
    const FIXED_LOSS: f64 = 0.01;

    // Interface 1 (fast LTE) carries the loss process from t=0.
    let lossy = |avg: f64, burst: f64| {
        if avg <= 0.0 {
            return Scenario::new();
        }
        Scenario::new().loss(
            Time::ZERO,
            1,
            LossModel::GilbertElliott(GilbertElliott::bursty(avg, burst)),
        )
    };

    let run = |dynamics: Scenario, kind: SchedulerKind, seed: u64| {
        run_streaming(&StreamingConfig {
            video_secs: video,
            scenario: Some(dynamics),
            ..StreamingConfig::new(WIFI_MBPS, LTE_MBPS, kind, seed)
        })
        .avg_throughput
    };

    let sweep_work: Vec<(f64, SchedulerKind, u64)> = loss_ladder
        .iter()
        .flat_map(|&l| {
            KINDS
                .iter()
                .flat_map(move |&k| (0..seeds).map(move |s| (l, k, 200 + s)))
        })
        .collect();
    let sweep = parallel_map(sweep_work, |(loss, kind, seed)| {
        run(lossy(loss, MEAN_BURST), kind, seed)
    });

    let burst_work: Vec<(f64, SchedulerKind, u64)> = burst_ladder
        .iter()
        .flat_map(|&bl| {
            KINDS
                .iter()
                .flat_map(move |&k| (0..seeds).map(move |s| (bl, k, 300 + s)))
        })
        .collect();
    let bursts = parallel_map(burst_work, |(burst, kind, seed)| {
        run(lossy(FIXED_LOSS, burst), kind, seed)
    });

    let per_cell = seeds as usize;
    let table = |values: &[f64], ladder_len: usize, label: &dyn Fn(usize) -> String| {
        let mut rows = Vec::new();
        for li in 0..ladder_len {
            let mut row = vec![label(li)];
            for ki in 0..KINDS.len() {
                let base = (li * KINDS.len() + ki) * per_cell;
                row.push(format!("{:.3}", metrics::mean(&values[base..base + per_cell])));
            }
            rows.push(row);
        }
        rows
    };

    let mut s = String::from(
        "dyn_burstloss: streaming throughput under bursty LTE loss\n\
         (1.7 Mbps WiFi + 8.6 Mbps LTE; Gilbert-Elliott two-state loss on\n\
          the LTE forward link; mean chunk throughput in Mbps)\n\n\
         Sweep 1: average loss at mean burst length 8 packets\n",
    );
    s.push_str(&render_table(
        &["avg_loss_%", "default", "blest", "ecf"],
        &table(&sweep, loss_ladder.len(), &|li| {
            format!("{:.1}", loss_ladder[li] * 100.0)
        }),
    ));
    s.push_str("\nSweep 2: burst length at fixed 1% average loss\n");
    s.push_str(&render_table(
        &["mean_burst_pkts", "default", "blest", "ecf"],
        &table(&bursts, burst_ladder.len(), &|li| {
            format!("{:.0}", burst_ladder[li])
        }),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handover_scenario_cycles_until_horizon() {
        let s = handover_scenario(10, 200);
        // Cycles at 30, 90, 150 (210 would overrun): 3 outages = 6 events.
        assert_eq!(s.compile().len(), 6);
        assert!(handover_scenario(0, 200).is_static());
    }

    #[test]
    fn dynamic_experiments_are_deterministic() {
        // Same effort ⇒ byte-identical report (the acceptance criterion
        // behind committing results/dyn_*.txt).
        assert_eq!(dyn_handover(Effort::Quick), dyn_handover(Effort::Quick));
    }
}
