//! # cosim — conservative-lookahead co-simulation of coupled populations
//!
//! PR 7's sharded sweeps only parallelize populations whose units are
//! link-disjoint: any shared path forces every unit touching it into one
//! monolithic engine. This module lifts that restriction for the common
//! "shared bottleneck" topology — many units whose private access legs all
//! contend for one aggregate uplink (e.g. a cell's LTE backhaul) — by
//! modeling the bottleneck as an explicit cross-shard coupling
//! ([`SharedBottleneck`]) instead of a literally shared queue.
//!
//! ## Why not share the queue itself?
//!
//! A droptail [`simnet::Link`] spanning two engines would need *zero*
//! lookahead: `enqueue` order determines arrivals and drops, and the
//! cross-layer scheduler snapshot samples `queued_bytes(now)`
//! synchronously, so either engine could affect the other at the current
//! instant. Conservative synchronization with a zero horizon deadlocks, so
//! literal sharing still collapses to one engine (reported, no longer
//! silent — see [`crate::sharding::run_sweep`]).
//!
//! ## The coupling model
//!
//! Each member of a [`SharedBottleneck`] keeps a *private* link (its own
//! queue, its own seeded jitter/loss stream — exactly the monolith's
//! link), and the bottleneck is expressed as rate contention: a
//! deterministic controller measures each member's offered load over a
//! lockstep window and re-shares the aggregate capacity equally among the
//! members that were active, applying the shares with
//! [`simnet::Link::set_rate_bps`] at the window boundary. The window is
//! the coupling's *conservative lookahead*:
//!
//! ```text
//! W = prop_delay + serialization floor of one full segment at capacity
//! ```
//!
//! computed exactly in integer nanoseconds ([`simnet::serialization_nanos`]
//! — the same Q32 math a live link uses), so no engine ever needs to see
//! another engine's state younger than one window: a send entering the
//! shared hop cannot influence a sibling's service before `W` elapses.
//! Engines advance event-by-event to each horizon `k·W` (window-barrier
//! lockstep — the builder's choice over null messages, since the horizon
//! is global and fixed), exchange per-member loads as timestamped
//! [`BoundaryMsg`]s ordered deterministically by `(time, seq)`, apply the
//! controller, and advance the global window.
//!
//! ## The bit-identical contract
//!
//! The merged [`UnitReport`] digest is identical to the monolithic run at
//! every shard count and worker count, because the monolith *is* the same
//! windowed system with one engine group: the controller runs on the same
//! schedule with the same inputs (per-member loads are private-link
//! functions of that member's own traffic, which PR 7's per-unit
//! extraction already made partition-invariant), and `set_rate_bps` is
//! link-local state applied at identical simulated times. Message order is
//! pinned by the `(time, seq)` sort, merge order by global unit index. A
//! zero-window coupling (`prop_delay == 0` *and* an effectively infinite
//! capacity) has no safe horizon: its members are unioned by the
//! partitioner and the population falls back to a collapsed single-engine
//! run — degenerate, but never a deadlock or a divergence.

use std::time::{Duration, Instant};

use mptcp::Event;
use simnet::{dur_nanos, serialization_nanos, EventQueue, RunOutcome, Time};
use tcp_model::{wire_size, MSS};
use telemetry::{Counter, TelemetryHandle};

use crate::common::{default_workers, Effort, ENV_WORKERS};
use crate::sharding::{
    browse_coupled_population, build_shard, digest_units, extract_reports, flush_load_balance,
    flush_wheel_stats, plan_shards, Population, ShardRun, SweepOptions, SweepReport, UnitReport,
};

/// An explicit cross-shard coupling: `members` are *global* path indices
/// whose private forward links contend for one aggregate `capacity_bps`.
///
/// Members stay private per unit — each keeps its own queue and seeded
/// stochastic streams — so units coupled only through a bottleneck still
/// partition into separate engine groups; the contention is resolved by
/// the windowed controller in this module.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedBottleneck {
    /// Global path indices of the contending member links.
    pub members: Vec<usize>,
    /// Aggregate capacity shared by all members, in bits per second. Also
    /// the rate an *idle* member is granted (optimistic start: a member
    /// alone on the bottleneck gets the full pipe until the next window).
    pub capacity_bps: u64,
    /// Propagation delay of the shared hop — the first term of the
    /// lookahead window.
    pub prop_delay: Duration,
}

impl SharedBottleneck {
    /// The coupling's conservative lookahead window in nanoseconds:
    /// propagation delay plus the serialization floor of one full wire
    /// segment at the aggregate capacity. Zero means no safe horizon
    /// exists and the coupling degenerates to a collapse (see the module
    /// docs).
    pub fn window_nanos(&self) -> u64 {
        dur_nanos(self.prop_delay)
            .saturating_add(serialization_nanos(self.capacity_bps, wire_size(MSS)))
    }
}

/// One boundary exchange: member `seq` (its global ordinal within the
/// coupling) offered `load` bytes during the window ending at `time`
/// nanoseconds. Rounds sort their messages by `(time, seq)` — a total
/// order, since ordinals are unique — so the controller consumes them in
/// the same sequence however many engine groups produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryMsg {
    /// Window-end timestamp, nanoseconds since simulation start.
    pub time: u64,
    /// Global member ordinal within the coupling.
    pub seq: u64,
    /// Bytes the member offered to its link during the window (drops
    /// included — demand, not throughput).
    pub load: u64,
}

/// One engine group plus its lockstep bookkeeping.
struct Group {
    run: ShardRun,
    /// Drained: no pending events, will never produce more.
    done: bool,
    /// Cumulative wall time across rounds.
    wall_ns: u64,
    /// Wall time of the last round (0 when skipped as done).
    round_wall_ns: u64,
}

impl Group {
    fn advance(&mut self, t: Time) {
        if self.done {
            self.round_wall_ns = 0;
            return;
        }
        let started = Instant::now();
        let outcome = self.run.tb.run_until(t);
        self.round_wall_ns = started.elapsed().as_nanos() as u64;
        self.wall_ns += self.round_wall_ns;
        self.done = matches!(outcome, RunOutcome::Drained);
    }
}

/// A coupling resolved against the engine groups: member ordinal →
/// (group index, group-local path index).
struct CouplingState {
    capacity_bps: u64,
    locs: Vec<(usize, usize)>,
}

/// A coupled population mid-flight: engine groups in lockstep plus the
/// window controller state. Most callers want [`run_coupled`] (or just
/// [`crate::sharding::run_sweep`], which dispatches here); the stepwise
/// API exists so tests can observe the run between windows — the
/// counting-allocator audit drives `step` directly.
pub struct CoupledRun {
    groups: Vec<Group>,
    couplings: Vec<CouplingState>,
    window_ns: u64,
    horizon_ns: u64,
    /// Next window index (1-based); window k ends at `k·window_ns`.
    k: u64,
    /// Simulated end of the last completed window.
    now_ns: u64,
    workers: usize,
    telemetry: TelemetryHandle,
    n_units: usize,
    finished: bool,
    /// Reused per-round message buffer (steady state allocates nothing).
    msgs: Vec<BoundaryMsg>,
    rounds: u64,
    boundary_msgs: u64,
    stall_ns: u64,
    worst_imbalance_permille: u64,
}

impl CoupledRun {
    /// Partition `pop` (couplings with a positive window do *not* union
    /// their members) and build one engine group per shard, ready to step.
    pub fn new(pop: &Population, opts: &SweepOptions) -> CoupledRun {
        let window_ns = pop
            .couplings
            .iter()
            .map(SharedBottleneck::window_nanos)
            .filter(|&w| w > 0)
            .min()
            .expect("CoupledRun needs at least one positive-window coupling");
        let shards = plan_shards(pop, opts.max_shards);
        let groups: Vec<Group> = shards
            .iter()
            .map(|idxs| Group {
                run: build_shard(pop, idxs, EventQueue::<Event>::default()),
                done: false,
                wall_ns: 0,
                round_wall_ns: 0,
            })
            .collect();
        // Resolve each member to its owning group once. A member no unit
        // uses lives in no group and drops out of the contention set.
        let locate = |g: usize| -> Option<(usize, usize)> {
            groups
                .iter()
                .enumerate()
                .find_map(|(gi, grp)| grp.run.globals.binary_search(&g).ok().map(|l| (gi, l)))
        };
        let couplings: Vec<CouplingState> = pop
            .couplings
            .iter()
            .filter(|c| c.window_nanos() > 0)
            .map(|c| CouplingState {
                capacity_bps: c.capacity_bps,
                locs: c.members.iter().filter_map(|&m| locate(m)).collect(),
            })
            .collect();
        let max_members = couplings.iter().map(|c| c.locs.len()).max().unwrap_or(0);
        CoupledRun {
            groups,
            couplings,
            window_ns,
            horizon_ns: pop.horizon.as_nanos(),
            k: 1,
            now_ns: 0,
            workers: opts
                .workers
                .unwrap_or_else(|| {
                    let fallback =
                        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
                    let env = std::env::var(ENV_WORKERS).ok();
                    default_workers(env.as_deref(), fallback)
                })
                .max(1),
            telemetry: opts.telemetry.clone(),
            n_units: pop.units.len(),
            finished: false,
            msgs: Vec::with_capacity(max_members),
            rounds: 0,
            boundary_msgs: 0,
            stall_ns: 0,
            worst_imbalance_permille: 0,
        }
    }

    /// Number of engine groups running in lockstep.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The global lockstep window in nanoseconds (minimum over couplings).
    pub fn window_nanos(&self) -> u64 {
        self.window_ns
    }

    /// Simulated end of the last completed window.
    pub fn now(&self) -> Time {
        Time::from_nanos(self.now_ns)
    }

    /// Events processed so far across every engine group.
    pub fn events_total(&self) -> u64 {
        self.groups.iter().map(|g| g.run.tb.events_processed()).sum()
    }

    /// Advance one lockstep window: run every live group to the horizon
    /// `min(k·W, horizon)`, exchange boundary loads, apply the contention
    /// controller, and advance `k`. Returns `false` once every group has
    /// drained or the horizon is reached (after which it is a no-op).
    pub fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        let t_ns = self.k.saturating_mul(self.window_ns).min(self.horizon_ns);
        let t = Time::from_nanos(t_ns);
        self.advance_all(t);
        self.account_round();

        let multi = self.groups.len() > 1;
        let mut all_idle = true;
        let CoupledRun { groups, couplings, msgs, .. } = self;
        for c in couplings.iter() {
            msgs.clear();
            for (ord, &(g, local)) in c.locs.iter().enumerate() {
                let load =
                    groups[g].run.tb.world_mut().paths[local].fwd.take_offered_bytes();
                msgs.push(BoundaryMsg { time: t_ns, seq: ord as u64, load });
            }
            // Deterministic round order: (time, seq) is a total order, so
            // the controller's input sequence is independent of which
            // group produced which message.
            msgs.sort_unstable_by_key(|m| (m.time, m.seq));
            let active = msgs.iter().filter(|m| m.load > 0).count() as u64;
            all_idle &= active == 0;
            let share = c
                .capacity_bps
                .checked_div(active)
                .map_or(c.capacity_bps, |s| s.max(1));
            for m in msgs.iter() {
                let (g, local) = c.locs[m.seq as usize];
                let rate = if m.load > 0 { share } else { c.capacity_bps };
                groups[g].run.tb.world_mut().paths[local].fwd.set_rate_bps(rate);
            }
            if multi {
                self.boundary_msgs += c.locs.len() as u64;
            }
        }
        self.rounds += 1;
        self.now_ns = t_ns;
        self.k += 1;
        if t_ns >= self.horizon_ns || self.groups.iter().all(|g| g.done) {
            self.finished = true;
        } else if all_idle {
            // Idle fast-forward across windows (DESIGN.md §14): this round
            // offered zero load on every coupling, so each member's rate
            // was just (re)set to the full capacity — another all-zero
            // round would re-apply the identical rates, a provable no-op.
            // Every window before the earliest pending event (lower-bounded
            // by the wheels' occupancy scan, never the true event time or
            // later) therefore contains no events for any group and no
            // controller effect; jump `k` past them instead of grinding
            // one empty barrier per window. Skipped rounds are exactly the
            // no-op rounds, so unit reports and digests are unchanged at
            // any group count — only the rounds/boundary-msgs telemetry
            // records fewer (all no-op) exchanges.
            let next_pending = self
                .groups
                .iter()
                .filter(|g| !g.done)
                .filter_map(|g| g.run.tb.next_event_time())
                .map(|t| t.as_nanos())
                .min();
            if let Some(e) = next_pending {
                self.k = e.min(self.horizon_ns).div_ceil(self.window_ns).max(self.k);
            }
        }
        !self.finished
    }

    fn advance_all(&mut self, t: Time) {
        let live = self.groups.iter().filter(|g| !g.done).count();
        if self.workers <= 1 || live <= 1 {
            for g in &mut self.groups {
                g.advance(t);
            }
        } else {
            // One scoped spawn wave per window: the implicit join IS the
            // window barrier. Group count is small (≤ shards), so the
            // spawn cost stays negligible against a window of simulation.
            let chunk = self.groups.len().div_ceil(self.workers);
            std::thread::scope(|s| {
                for ch in self.groups.chunks_mut(chunk) {
                    s.spawn(move || {
                        for g in ch {
                            g.advance(t);
                        }
                    });
                }
            });
        }
    }

    /// Fold the round's per-group wall times into the stall / imbalance
    /// accounting (only meaningful with >1 group).
    fn account_round(&mut self) {
        if self.groups.len() <= 1 {
            return;
        }
        let (mut max, mut min, mut sum, mut n) = (0u64, u64::MAX, 0u64, 0u64);
        for g in &self.groups {
            if g.round_wall_ns == 0 {
                continue;
            }
            max = max.max(g.round_wall_ns);
            min = min.min(g.round_wall_ns);
            sum += g.round_wall_ns;
            n += 1;
        }
        if n > 1 {
            // Every group waits at the barrier for the slowest one.
            self.stall_ns += n * max - sum;
            self.worst_imbalance_permille =
                self.worst_imbalance_permille.max(max.saturating_mul(1000) / min);
        }
    }

    /// Run any remaining windows, then extract and merge every group's
    /// unit reports in fixed global-unit order, flushing the sweep's
    /// load-balance and co-sim counters (sweep teardown).
    pub fn finish(mut self) -> SweepReport {
        while self.step() {}
        let mut units: Vec<Option<UnitReport>> = (0..self.n_units).map(|_| None).collect();
        let mut shard_events = Vec::with_capacity(self.groups.len());
        let mut shard_wall_ns = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            shard_events.push(g.run.tb.events_processed());
            shard_wall_ns.push(g.wall_ns);
            // Group engines carry shard-local telemetry (off); their wheel
            // diagnostics surface through the sweep-level handle here.
            flush_wheel_stats(&self.telemetry, g.run.tb.queue());
            for r in extract_reports(&g.run) {
                let slot = r.unit;
                assert!(units[slot].is_none(), "unit {slot} reported twice");
                units[slot] = Some(r);
            }
        }
        let units: Vec<UnitReport> =
            units.into_iter().map(|r| r.expect("every unit simulated")).collect();

        flush_load_balance(&self.telemetry, &shard_events, &shard_wall_ns);
        if self.telemetry.is_enabled() {
            self.telemetry.add(Counter::CosimRounds, self.rounds);
            self.telemetry.add(Counter::CosimBoundaryMsgs, self.boundary_msgs);
            self.telemetry.add(Counter::CosimStallNs, self.stall_ns);
            if self.worst_imbalance_permille > 0 {
                self.telemetry
                    .set_max(Counter::CosimRoundImbalancePermille, self.worst_imbalance_permille);
            }
        }
        SweepReport { digest: digest_units(&units), units, shard_events, shard_wall_ns }
    }
}

/// Run a coupled population to completion: lockstep windows over the
/// planned engine groups, merged per the usual sweep contract.
/// [`crate::sharding::run_sweep`] dispatches here whenever the population
/// has a positive-window coupling; `max_shards == 1` is the monolithic
/// reference (one group, same windowed semantics, hence the same digest).
pub fn run_coupled(pop: &Population, opts: &SweepOptions) -> SweepReport {
    CoupledRun::new(pop, opts).finish()
}

// ---------------------------------------------------------------------------
// The payoff experiment
// ---------------------------------------------------------------------------

fn median_us(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// Engine-group count measured in the `coupled_browse` experiment and the
/// `sharded/browse_coupled` bench. Groups this coarse amortize the
/// per-window barrier (one `run_until` entry per group per round) while
/// each group's working set stays cache-resident; per-unit groups
/// (`max_shards = 0`) pay the barrier ~200× as often for the same events.
pub const COUPLED_BENCH_GROUPS: usize = 8;

/// `coupled_browse`: the shared-bottleneck browse population that PR 7
/// could not shard at all, run monolithic vs co-simulated and compared
/// bit-for-bit. The report shows page-load stats, the lockstep window,
/// sync-round telemetry, and the events/s ratio.
pub fn coupled_browse(effort: Effort) -> String {
    let (pop, label) = match effort {
        Effort::Full => {
            (crate::sharding::browse_10k_coupled(1), "browse_10k_coupled (1667 units x 6 conns)")
        }
        Effort::Quick => (
            browse_coupled_population(1, 24, 6, 1.0, 50.0, ecf_core::SchedulerKind::Ecf),
            "browse_coupled quick (24 units x 6 conns)",
        ),
    };
    let coupling = &pop.couplings[0];
    let window = coupling.window_nanos();
    let capacity_mbps = coupling.capacity_bps as f64 / 1e6;

    let started = Instant::now();
    let mono = crate::sharding::run_sweep(
        &pop,
        &SweepOptions { max_shards: 1, workers: Some(1), ..Default::default() },
    );
    let mono_wall = started.elapsed().as_secs_f64();

    let tel = TelemetryHandle::enabled();
    let started = Instant::now();
    let cosim = crate::sharding::run_sweep(
        &pop,
        &SweepOptions {
            max_shards: COUPLED_BENCH_GROUPS,
            workers: Some(1),
            telemetry: tel.clone(),
        },
    );
    let cosim_wall = started.elapsed().as_secs_f64();

    let plt_us: Vec<u64> = cosim
        .units
        .iter()
        .filter_map(|u| u.page_load.map(|t| t.as_nanos() / 1_000))
        .collect();
    let loaded = plt_us.len();
    let mono_rate = mono.events_total() as f64 / mono_wall.max(1e-9);
    let cosim_rate = cosim.events_total() as f64 / cosim_wall.max(1e-9);

    let mut out = String::new();
    out.push_str("coupled_browse: shared-LTE-bottleneck population, monolith vs co-sim\n");
    out.push_str(&format!(
        "workload: {label}, shared LTE capacity {capacity_mbps:.0} Mbps, WiFi 1 Mbps/unit\n"
    ));
    out.push_str(&format!(
        "lookahead window: {:.3} ms ({:.0} ms prop + 1500 B serialization floor at \
         {capacity_mbps:.0} Mbps)\n",
        window as f64 / 1e6,
        coupling.prop_delay.as_secs_f64() * 1e3,
    ));
    out.push_str(&format!(
        "digests: monolith {:#018x}, co-sim {:#018x} ({})\n",
        mono.digest,
        cosim.digest,
        if mono.digest == cosim.digest { "bit-identical" } else { "MISMATCH" }
    ));
    out.push_str(&format!(
        "engine groups: {} co-simulated (monolith: 1); sync rounds {}, boundary msgs {}\n",
        cosim.shard_events.len(),
        tel.counter(Counter::CosimRounds),
        tel.counter(Counter::CosimBoundaryMsgs),
    ));
    out.push_str(&format!(
        "pages loaded: {loaded}/{} units, median PLT {:.3} s\n",
        cosim.units.len(),
        median_us(plt_us) as f64 / 1e6
    ));
    out.push_str(&format!(
        "throughput: monolith {:.2}M events/s, co-sim {:.2}M events/s ({:.1}x)\n",
        mono_rate / 1e6,
        cosim_rate / 1e6,
        cosim_rate / mono_rate.max(1e-9)
    ));
    assert_eq!(mono.digest, cosim.digest, "coupled co-sim diverged from the monolith");
    out
}
