//! `quic_web`: the cnn-like page over one multipath-QUIC connection vs six
//! MPTCP connections.
//!
//! The MPTCP browse workload (Figs 20/21) splits the page's 107 objects
//! over 6 parallel HTTP/1.1 connections because a single ordered byte
//! stream would head-of-line-block the whole page. QUIC removes that
//! constraint: here the *same* page loads as 107 concurrent streams on
//! *one* connection, with per-stream reassembly (`quic::QuicReceiver`)
//! keeping streams independent. Both transports place packets through the
//! identical scheduler seam, so the comparison isolates the transport
//! architecture: completion times, page-load time, and the reordering
//! (OOO-delay) tail for ECF vs minRTT (default) vs BLEST on both.

use ecf_core::SchedulerKind;
use metrics::{render_table, Cdf};
use mptcp::{ReqId, TransportApi, TransportApp};
use quic::{QuicTestbed, QuicTestbedConfig};
use simnet::Time;
use webload::PageModel;

use crate::common::{fmt_bw, parallel_map, run_browse, Effort};
use crate::web::CONFIGS;

/// The schedulers the comparison runs (minRTT is `Default`).
pub const QUIC_WEB_SCHEDULERS: [SchedulerKind; 3] =
    [SchedulerKind::Default, SchedulerKind::Ecf, SchedulerKind::Blest];

/// A browser that opens every page object as its own stream at t=0 — the
/// QUIC analogue of `webload::BrowserApp`'s 6-connection request fan-out.
pub struct OpenAllApp {
    sizes: Vec<u64>,
    done: usize,
    /// When the last object finished (the page-load time; requests start
    /// at t=0 so the instant *is* the duration).
    pub page_load_time: Option<Time>,
}

impl OpenAllApp {
    /// Load `page`, one stream per object.
    pub fn new(page: &PageModel) -> Self {
        OpenAllApp { sizes: page.object_sizes.clone(), done: 0, page_load_time: None }
    }

    /// Every object fully delivered?
    pub fn done(&self) -> bool {
        self.done == self.sizes.len()
    }
}

impl TransportApp for OpenAllApp {
    fn on_start(&mut self, _now: Time, api: &mut dyn TransportApi) {
        for &bytes in &self.sizes {
            api.request(0, bytes);
        }
    }

    fn on_response_complete(
        &mut self,
        now: Time,
        _conn: usize,
        _req: ReqId,
        _api: &mut dyn TransportApi,
    ) {
        self.done += 1;
        if self.done == self.sizes.len() {
            self.page_load_time = Some(now);
        }
    }
}

/// Run the quic browse workload: the same cnn-like page as [`run_browse`]
/// (page seed 2014), all 107 objects as streams on one connection.
pub fn run_quic_web(
    wifi: f64,
    lte: f64,
    scheduler: SchedulerKind,
    seed: u64,
) -> QuicTestbed<OpenAllApp> {
    let page = PageModel::cnn_like(2014);
    let cfg = QuicTestbedConfig::wifi_lte(wifi, lte, scheduler, seed);
    let mut tb = QuicTestbed::new(cfg, OpenAllApp::new(&page));
    tb.run_until(Time::from_secs(600));
    tb
}

fn runs_for(effort: Effort) -> u64 {
    match effort {
        Effort::Full => 3,
        Effort::Quick => 1,
    }
}

/// Per-(transport, scheduler) sample set for one bandwidth config.
struct TransportSamples {
    completions: Vec<f64>,
    ooo: Vec<f64>,
    plt: Vec<f64>,
}

fn mptcp_samples(wifi: f64, lte: f64, kind: SchedulerKind, effort: Effort) -> TransportSamples {
    let mut out = TransportSamples { completions: Vec::new(), ooo: Vec::new(), plt: Vec::new() };
    for seed in 0..runs_for(effort) {
        let tb = run_browse(wifi, lte, kind, 300 + seed);
        assert!(tb.app().done(), "mptcp page load must complete");
        out.completions.extend(tb.app().completion_times_secs());
        out.ooo.extend(tb.world().recorder.ooo_delays_secs());
        out.plt.push(tb.app().page_load_time.expect("page done").as_secs_f64());
    }
    out
}

fn quic_samples(wifi: f64, lte: f64, kind: SchedulerKind, effort: Effort) -> TransportSamples {
    let mut out = TransportSamples { completions: Vec::new(), ooo: Vec::new(), plt: Vec::new() };
    for seed in 0..runs_for(effort) {
        let tb = run_quic_web(wifi, lte, kind, 300 + seed);
        assert!(tb.app().done(), "quic page load must complete");
        out.completions.extend(
            tb.world()
                .recorder
                .completed_requests()
                .map(|r| r.completion_time().expect("completed").as_secs_f64()),
        );
        out.ooo.extend(tb.world().recorder.ooo_delays_secs());
        out.plt.push(tb.app().page_load_time.expect("page done").as_secs_f64());
    }
    out
}

/// The `quic_web` report: completion/OOO/page-load comparison of both
/// transports across the Fig 20/21 bandwidth configs.
pub fn quic_web(effort: Effort) -> String {
    let mut s = String::from(
        "quic_web: 107-object page — 1 MPQUIC connection (107 streams) vs\n\
         6 MPTCP connections, same packet schedulers on both transports\n\
         (expectation: QUIC's per-stream reassembly shrinks the OOO tail;\n\
         ECF narrows the heterogeneous-path completion gap on both)\n",
    );
    for &(w, l) in &CONFIGS {
        s.push_str(&format!("\n--- {} Mbps WiFi / {} Mbps LTE ---\n", fmt_bw(w), fmt_bw(l)));
        // One parallel job per (transport, scheduler) cell.
        let jobs: Vec<(bool, SchedulerKind)> = QUIC_WEB_SCHEDULERS
            .iter()
            .flat_map(|&k| [(false, k), (true, k)])
            .collect();
        let samples = parallel_map(jobs.clone(), |(is_quic, kind)| {
            if is_quic {
                quic_samples(w, l, kind, effort)
            } else {
                mptcp_samples(w, l, kind, effort)
            }
        });
        let mut rows = Vec::new();
        for ((is_quic, kind), sm) in jobs.iter().zip(&samples) {
            let cdf = Cdf::from_samples(sm.completions.clone());
            let ooo = Cdf::from_samples(sm.ooo.clone());
            rows.push(vec![
                if *is_quic { "quic" } else { "mptcp" }.to_string(),
                kind.label().to_string(),
                format!("{:.3}", cdf.mean()),
                format!("{:.3}", cdf.median()),
                format!("{:.3}", cdf.quantile(0.99)),
                format!("{:.3}", metrics::mean(&sm.plt)),
                format!("{:.4}", ooo.mean()),
                format!("{:.4}", ooo.quantile(0.99)),
            ]);
        }
        s.push_str(&render_table(
            &[
                "transport",
                "scheduler",
                "obj_mean_s",
                "obj_median_s",
                "obj_p99_s",
                "plt_s",
                "ooo_mean_s",
                "ooo_p99_s",
            ],
            &rows,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quic_page_load_completes_all_objects() {
        let tb = run_quic_web(5.0, 5.0, SchedulerKind::Ecf, 1);
        assert!(tb.app().done());
        assert_eq!(tb.world().recorder.requests.len(), 107);
        assert!(tb.world().recorder.requests.iter().all(|r| r.completed.is_some()));
        assert!(tb.app().page_load_time.unwrap().as_secs_f64() > 0.0);
    }
}
