//! # experiments — the paper's evaluation, end to end
//!
//! One entry per table and figure of *ECF: An MPTCP Path Scheduler to Manage
//! Heterogeneous Paths* (CoNEXT '17), each regenerating the corresponding
//! rows/series from the simulated testbed. Run them via the `repro` binary:
//!
//! ```text
//! cargo run -p experiments --release --bin repro -- fig9
//! cargo run -p experiments --release --bin repro -- all --quick
//! ```
//!
//! Reports are printed and also written to `results/<id>.txt`.
//!
//! Figures ported to the declarative experiment matrix (see [`expmatrix`]
//! and DESIGN.md §10) can also run from a spec file with content-addressed
//! result caching — a warm re-run executes zero cells:
//!
//! ```text
//! cargo run -p experiments --release --bin repro -- matrix crates/experiments/specs/fig16.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod cosim;
pub mod downloads;
pub mod dynamics;
pub mod expmatrix;
pub mod quicweb;
pub mod sharding;
pub mod streaming;
pub mod trace;
pub mod web;
pub mod wild;

pub use common::{
    default_workers, parallel_map, parallel_map_workers, run_browse, run_browse_n, run_streaming,
    run_wget, Effort, ENV_WORKERS,
    StreamingConfig, StreamingOutcome, BW_SET, MAX_WORKERS, VARIABLE_BW_SET,
};
pub use cosim::{run_coupled, BoundaryMsg, CoupledRun, SharedBottleneck, COUPLED_BENCH_GROUPS};
pub use expmatrix::{run_matrix, MatrixOptions, MatrixOutcome};
pub use quicweb::{quic_web, run_quic_web, OpenAllApp, QUIC_WEB_SCHEDULERS};
pub use sharding::{
    browse_10k, browse_10k_coupled, browse_1k, browse_1k_coupled, browse_coupled_population,
    browse_population,
    partition, plan_shards, run_balanced, run_sweep, PopConn, PopUnit, Population, SweepOptions,
    SweepReport, UnitReport,
};
pub use trace::{run_traced, TraceRun};

/// An experiment: id, paper artifact, and the function that regenerates it.
pub struct Experiment {
    /// Identifier used on the `repro` command line (e.g. "fig9").
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Generate the report.
    pub run: fn(Effort) -> String,
}

/// Every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "tab1", title: "Table 1: bit rates vs resolution", run: |_| streaming::tab1() },
        Experiment { id: "fig1", title: "Fig 1: ON-OFF download behaviour", run: streaming::fig1 },
        Experiment { id: "fig2", title: "Fig 2: bitrate ratio heatmap (default)", run: streaming::fig2 },
        Experiment { id: "fig3", title: "Fig 3: send-buffer occupancy trace", run: streaming::fig3 },
        Experiment { id: "fig5", title: "Fig 5: last-packet time differences", run: streaming::fig5 },
        Experiment { id: "fig6", title: "Fig 6: throughput w/ and w/o CWND reset", run: streaming::fig6 },
        Experiment { id: "fig7", title: "Figs 7 & 10: fast-subflow traffic fraction", run: streaming::fig7_fig10 },
        Experiment { id: "tab2", title: "Table 2: RTT vs regulated bandwidth", run: |_| streaming::tab2() },
        Experiment { id: "fig9", title: "Fig 9: bitrate ratio heatmaps, 4 schedulers", run: streaming::fig9 },
        Experiment { id: "fig10", title: "Figs 7 & 10: fast-subflow traffic fraction", run: streaming::fig7_fig10 },
        Experiment { id: "fig11", title: "Figs 11 & 12: CWND traces", run: streaming::fig11_fig12 },
        Experiment { id: "fig12", title: "Figs 11 & 12: CWND traces", run: streaming::fig11_fig12 },
        Experiment { id: "tab3", title: "Table 3: IW resets per scheduler", run: streaming::tab3 },
        Experiment { id: "fig13", title: "Fig 13: OOO delay CCDF (default)", run: streaming::fig13 },
        Experiment { id: "fig14", title: "Fig 14: OOO delay CCDF per scheduler", run: streaming::fig14 },
        Experiment { id: "fig15", title: "Fig 15: four-subflow bitrate ratios", run: streaming::fig15 },
        Experiment { id: "fig16", title: "Fig 16: random bandwidth scenarios", run: streaming::fig16 },
        Experiment { id: "fig17", title: "Fig 17: per-chunk throughput trace", run: streaming::fig17 },
        Experiment { id: "fig18", title: "Fig 18: download completion times", run: downloads::fig18 },
        Experiment { id: "fig19", title: "Fig 19: ECF/default completion ratio", run: downloads::fig19 },
        Experiment { id: "fig20", title: "Fig 20: web object completion CCDF", run: web::fig20 },
        Experiment { id: "fig21", title: "Fig 21: web OOO delay CCDF", run: web::fig21 },
        Experiment { id: "fig22", title: "Fig 22: wild streaming", run: wild::fig22 },
        Experiment { id: "fig23", title: "Fig 23 / Table 4: wild web browsing", run: wild::fig23_tab4 },
        Experiment { id: "tab4", title: "Fig 23 / Table 4: wild web browsing", run: wild::fig23_tab4 },
        Experiment { id: "ablation_beta", title: "Ablation: β sweep", run: ablations::ablation_beta },
        Experiment { id: "ablation_components", title: "Ablation: δ & 2nd inequality", run: ablations::ablation_components },
        Experiment { id: "ablation_cc", title: "Ablation: congestion controllers", run: ablations::ablation_cc },
        Experiment { id: "extension_sttf", title: "Extension: STTF vs ECF", run: ablations::extension_sttf },
        Experiment { id: "dyn_handover", title: "Dynamics: periodic LTE blackout ladder", run: dynamics::dyn_handover },
        Experiment { id: "dyn_burstloss", title: "Dynamics: bursty LTE loss sweep", run: dynamics::dyn_burstloss },
        Experiment { id: "quic_web", title: "QUIC: 107-stream MPQUIC page load vs 6-connection MPTCP", run: quicweb::quic_web },
        Experiment { id: "coupled_browse", title: "Co-sim: shared-bottleneck browse population, monolith vs lockstep engine groups", run: cosim::coupled_browse },
    ]
}

/// Look up one experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        for required in [
            "tab1", "tab2", "tab3", "tab4", "fig1", "fig2", "fig3", "fig5", "fig6", "fig7",
            "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "dyn_handover",
            "dyn_burstloss", "quic_web",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn find_resolves_ids() {
        assert!(find("fig9").is_some());
        assert!(find("nope").is_none());
    }
}
