//! "In the wild" experiments (§6): the paper drives a public-WiFi + LTE
//! phone against a Washington-DC cloud server, unregulated.
//!
//! Substitution (DESIGN.md): we synthesize wild paths from the paper's own
//! Fig 22(a) measurements — across nine runs the WiFi RTT spans ~60 ms to
//! ~1 s while LTE stays pinned near 70 ms — adding a slow random walk on the
//! WiFi delay and mild rate noise. Bandwidths are unshaped (several Mbps).

use std::time::Duration;

use dash::{DashApp, PlayerConfig};
use ecf_core::SchedulerKind;
use metrics::{render_table, Cdf};
use mptcp::{ConnConfig, ConnSpec, RecorderConfig, Testbed, TestbedConfig};
use scenario::Scenario;
use testkit::Rng;
use simnet::{PathConfig, Time};
use webload::{BrowserApp, PageModel};

use crate::common::Effort;

/// The nine runs' baseline WiFi RTTs, following Fig 22(a)'s sorted spread.
pub const WILD_WIFI_RTT_MS: [u64; 9] = [70, 80, 120, 180, 260, 380, 520, 700, 950];
/// LTE's stable wild RTT (Fig 22(a): ≈70 ms in every run).
pub const WILD_LTE_RTT_MS: u64 = 70;

/// Build the two wild paths + delay drift schedules for one run.
fn wild_testbed(
    run: usize,
    scheduler: SchedulerKind,
    seed: u64,
    horizon: Time,
) -> TestbedConfig {
    let mut rng = Rng::seed_from_u64(seed ^ (run as u64) << 8);
    // Town WiFi: weak and variable; LTE: solid — the paper's public-AP
    // vs AT&T contrast.
    let wifi_mbps = rng.gen_range(1.0..5.0);
    let lte_mbps = rng.gen_range(7.0..10.0);
    let wifi_rtt = Duration::from_millis(WILD_WIFI_RTT_MS[run % WILD_WIFI_RTT_MS.len()]);
    let mut wifi = PathConfig::custom("wifi", wifi_mbps, wifi_rtt / 2, 1_500_000);
    wifi.fwd.jitter_max = wifi_rtt / 8 + Duration::from_millis(2);
    let mut lte = PathConfig::custom(
        "lte",
        lte_mbps,
        Duration::from_millis(WILD_LTE_RTT_MS / 2),
        1_500_000,
    );
    lte.fwd.jitter_max = Duration::from_millis(5);

    // WiFi delay random walk: ±25% steps every ~5 s.
    let mut dynamics = Scenario::new();
    let mut t = Time::from_secs(5);
    let base_us = (wifi_rtt / 2).as_micros() as f64;
    let mut cur = base_us;
    while t < horizon {
        let step: f64 = rng.gen_range(-0.25..0.25);
        cur = (cur * (1.0 + step)).clamp(base_us * 0.5, base_us * 2.0);
        dynamics = dynamics.one_way_delay(t, 0, Duration::from_micros(cur as u64));
        t += Duration::from_secs(5);
    }

    TestbedConfig {
        paths: vec![wifi, lte],
        conns: vec![ConnSpec {
            cfg: ConnConfig::default(),
            scheduler,
            custom_scheduler: None,
            subflow_paths: vec![0, 1],
        }],
        seed,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: dynamics,
        telemetry: telemetry::TelemetryHandle::off(),
    }
}

/// Fig 22: wild streaming — per-run measured RTTs and throughput for the
/// default and ECF schedulers.
pub fn fig22(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 22: Streaming in the wild — 9 runs sorted by WiFi RTT\n\
         (paper: parity when RTTs are similar; ECF pulls ahead as WiFi RTT\n\
          diverges; overall +16% average throughput)\n\n",
    );
    let video = match effort {
        Effort::Full => 120.0,
        Effort::Quick => 45.0,
    };
    let results = crate::common::parallel_map((0..9usize).collect(), |run| {
        let per_sched = [SchedulerKind::Default, SchedulerKind::Ecf].map(|kind| {
            let horizon = Time::from_secs(video as u64 * 6 + 120);
            let cfg = wild_testbed(run, kind, 42 + run as u64, horizon);
            let player = PlayerConfig { video_secs: video, ..PlayerConfig::default() };
            let mut tb = Testbed::new(cfg, DashApp::new(player, 0));
            tb.run_until(horizon);
            let tp = tb.app().player.avg_throughput_mbps();
            let wifi_rtt = tb.world().sender(0).subflows[0].cc.rtt.srtt();
            let lte_rtt = tb.world().sender(0).subflows[1].cc.rtt.srtt();
            (tp, wifi_rtt.as_secs_f64() * 1e3, lte_rtt.as_secs_f64() * 1e3)
        });
        per_sched
    });
    let mut rows = Vec::new();
    let (mut sum_d, mut sum_e) = (0.0, 0.0);
    for (run, [(d_tp, d_wifi, d_lte), (e_tp, _, _)]) in results.iter().enumerate() {
        sum_d += d_tp;
        sum_e += e_tp;
        rows.push(vec![
            format!("{}", run + 1),
            format!("{d_wifi:.0}"),
            format!("{d_lte:.0}"),
            format!("{d_tp:.2}"),
            format!("{e_tp:.2}"),
        ]);
    }
    s.push_str(&render_table(
        &["run", "wifi_rtt_ms", "lte_rtt_ms", "default_Mbps", "ecf_Mbps"],
        &rows,
    ));
    s.push_str(&format!(
        "\nmeans: default={:.2} Mbps, ecf={:.2} Mbps, improvement={:.0}%\n",
        sum_d / 9.0,
        sum_e / 9.0,
        (sum_e / sum_d - 1.0) * 100.0
    ));
    s
}

/// Fig 23 + Table 4: wild Web browsing — object completion times and OOO
/// delay, default vs ECF.
pub fn fig23_tab4(effort: Effort) -> String {
    let runs = match effort {
        Effort::Full => 8usize,
        Effort::Quick => 2,
    };
    let mut s = String::from(
        "Fig 23 / Table 4: Web browsing in the wild (CNN-like page)\n\
         (paper: ECF 26% faster object completion, 71% lower OOO delay)\n\n",
    );
    let results = crate::common::parallel_map(
        (0..runs * 2).collect::<Vec<usize>>(),
        |job| {
            let run = job / 2;
            let kind = if job % 2 == 0 { SchedulerKind::Default } else { SchedulerKind::Ecf };
            // Wild web runs hit the mid-heterogeneity regime most often.
            let horizon = Time::from_secs(900);
            let mut cfg = wild_testbed(3 + run % 5, kind, 77 + run as u64, horizon);
            cfg.conns = (0..6)
                .map(|_| ConnSpec {
                    cfg: ConnConfig::default(),
                    scheduler: kind,
                    custom_scheduler: None,
                    subflow_paths: vec![0, 1],
                })
                .collect();
            let mut tb = Testbed::new(cfg, BrowserApp::new(PageModel::cnn_like(2014), 6));
            tb.run_until(horizon);
            (
                tb.app().completion_times_secs(),
                tb.world().recorder.ooo_delays_secs(),
            )
        },
    );
    let mut def_completions = Vec::new();
    let mut ecf_completions = Vec::new();
    let mut def_ooo = Vec::new();
    let mut ecf_ooo = Vec::new();
    for (job, (completions, ooo)) in results.into_iter().enumerate() {
        if job % 2 == 0 {
            def_completions.extend(completions);
            def_ooo.extend(ooo);
        } else {
            ecf_completions.extend(completions);
            ecf_ooo.extend(ooo);
        }
    }
    let dc = Cdf::from_samples(def_completions);
    let ec = Cdf::from_samples(ecf_completions);
    let doo = Cdf::from_samples(def_ooo);
    let eoo = Cdf::from_samples(ecf_ooo);
    let rows = vec![
        vec![
            "default".to_string(),
            format!("{:.3}", dc.mean()),
            format!("{:.3}", dc.quantile(0.999)),
            format!("{:.4}", doo.mean()),
        ],
        vec![
            "ecf".to_string(),
            format!("{:.3}", ec.mean()),
            format!("{:.3}", ec.quantile(0.999)),
            format!("{:.4}", eoo.mean()),
        ],
    ];
    s.push_str(&render_table(
        &["scheduler", "mean_completion_s", "p99.9_completion_s", "mean_ooo_s"],
        &rows,
    ));
    s.push_str(&format!(
        "\nECF improvement: completion {:.0}% shorter, OOO delay {:.0}% shorter\n",
        (1.0 - ec.mean() / dc.mean()) * 100.0,
        (1.0 - eoo.mean() / doo.mean()) * 100.0
    ));
    s.push_str("\nCompletion-time CCDF (x_s, P[T>x]):\nx\tdefault\tecf\n");
    for i in 0..=12 {
        let x = i as f64 * 0.5;
        s.push_str(&format!("{x:.1}\t{:.4}\t{:.4}\n", dc.ccdf_at(x), ec.ccdf_at(x)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wild_testbed_is_reproducible() {
        let h = Time::from_secs(60);
        let a = wild_testbed(3, SchedulerKind::Ecf, 9, h);
        let b = wild_testbed(3, SchedulerKind::Ecf, 9, h);
        assert_eq!(a.paths[0].fwd.rate_bps, b.paths[0].fwd.rate_bps);
        assert_eq!(a.scenario.compile(), b.scenario.compile());
        assert!(!a.scenario.is_static(), "wild runs must drift the WiFi delay");
        // Different run index → different WiFi RTT.
        let c = wild_testbed(8, SchedulerKind::Ecf, 9, h);
        assert!(c.paths[0].base_rtt() > a.paths[0].base_rtt());
    }

    #[test]
    fn wild_runs_span_the_rtt_range() {
        assert!(WILD_WIFI_RTT_MS.first().unwrap() < &100);
        assert!(WILD_WIFI_RTT_MS.last().unwrap() > &900);
        for w in WILD_WIFI_RTT_MS.windows(2) {
            assert!(w[0] < w[1], "runs must be sorted by WiFi RTT");
        }
    }
}
