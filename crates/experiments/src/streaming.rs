//! Streaming experiments: §3's motivation figures and §5.2/5.3's evaluation
//! — Figs 1–3, 5–7, 9–17 and Tables 1–3.

use ecf_core::SchedulerKind;
use metrics::{render_table, Cdf, Heatmap};
use mptcp::RecorderConfig;
use scenario::Scenario;
use simnet::Time;

use crate::common::{
    fmt_bw, parallel_map, run_streaming, secs, Effort, StreamingConfig, StreamingOutcome, BW_SET,
    VARIABLE_BW_SET,
};

/// Average the bitrate-vs-ideal ratio over seeds for one grid cell.
fn bitrate_ratio(wifi: f64, lte: f64, kind: SchedulerKind, effort: Effort) -> f64 {
    let outs: Vec<StreamingOutcome> = parallel_map(
        (0..effort.seeds()).collect(),
        |seed| {
            run_streaming(&StreamingConfig {
                video_secs: effort.video_secs(),
                ..StreamingConfig::new(wifi, lte, kind, 1000 + seed)
            })
        },
    );
    let ratios: Vec<f64> =
        outs.iter().map(|o| (o.avg_bitrate / o.ideal_bitrate).min(1.0)).collect();
    metrics::mean(&ratios)
}

/// Render one scheduler's 6×6 bitrate-ratio heatmap (rows = LTE, cols = WiFi,
/// exactly like Figs 2/9).
fn ratio_heatmap(kind: SchedulerKind, effort: Effort) -> Heatmap {
    let cells: Vec<(usize, usize)> = (0..BW_SET.len())
        .flat_map(|l| (0..BW_SET.len()).map(move |w| (l, w)))
        .collect();
    let values_flat = parallel_map(cells.clone(), |(l, w)| {
        bitrate_ratio(BW_SET[w], BW_SET[l], kind, effort)
    });
    let mut values = vec![vec![0.0; BW_SET.len()]; BW_SET.len()];
    for ((l, w), v) in cells.into_iter().zip(values_flat) {
        values[l][w] = v;
    }
    // Paper's heatmaps put 0.3 at the bottom; we print top-down, so reverse.
    values.reverse();
    let mut y_ticks: Vec<String> = BW_SET.iter().map(|&b| fmt_bw(b)).collect();
    y_ticks.reverse();
    Heatmap {
        x_label: "WiFi (Mbps)".into(),
        y_label: "LTE (Mbps)".into(),
        x_ticks: BW_SET.iter().map(|&b| fmt_bw(b)).collect(),
        y_ticks,
        values,
        lo: 0.0,
        hi: 1.0,
    }
}

/// Fig 2: ratio of measured vs ideal bit rate, default scheduler.
pub fn fig2(effort: Effort) -> String {
    let mut out = String::from(
        "Fig 2: Ratio of measured vs. ideal bit rate, default MPTCP scheduler\n\
         (darker is better; paper: dark diagonal, light heterogeneous corners)\n\n",
    );
    out.push_str(&ratio_heatmap(SchedulerKind::Default, effort).render());
    out
}

/// Fig 9: the headline heatmaps for default, ECF, DAPS, BLEST.
pub fn fig9(effort: Effort) -> String {
    let mut out = String::from(
        "Fig 9: Ratio of measured average bit rate vs. ideal average bit rate\n\
         (paper: ECF darkest everywhere; default/DAPS/BLEST light off-diagonal)\n",
    );
    for kind in SchedulerKind::paper_set() {
        out.push_str(&format!("\n--- ({}) ---\n", kind.label()));
        out.push_str(&ratio_heatmap(kind, effort).render());
    }
    out
}

/// Fig 1: example download progress trace (ON-OFF behaviour).
pub fn fig1(effort: Effort) -> String {
    let cfg = StreamingConfig {
        video_secs: effort.video_secs(),
        ..StreamingConfig::new(4.2, 4.2, SchedulerKind::Default, 7)
    };
    let out = run_streaming(&cfg);
    let mut s = String::from(
        "Fig 1: Example download behaviour (cumulative MB vs. time)\n\
         (paper: steep initial buffering, then staircase ON-OFF cycles)\n\n\
         time_s\tcumulative_MB\n",
    );
    for (t, mb) in &out.download_progress {
        s.push_str(&format!("{t:.2}\t{mb:.2}\n"));
    }
    s
}

/// Fig 3: per-subflow send-buffer occupancy trace at 0.3/8.6 Mbps.
pub fn fig3(effort: Effort) -> String {
    let cfg = StreamingConfig {
        video_secs: effort.video_secs(),
        recorder: RecorderConfig { sndbuf_traces: true, ..RecorderConfig::default() },
        ..StreamingConfig::new(0.3, 8.6, SchedulerKind::Default, 7)
    };
    let out = run_streaming(&cfg);
    let mut s = String::from(
        "Fig 3: Send-buffer occupancy (KB, incl. in-flight), 0.3 Mbps WiFi / 8.6 Mbps LTE\n\
         (paper: LTE empties quickly and sits idle while WiFi stays occupied)\n\n\
         time_s\twifi_KB\tlte_KB\n",
    );
    let wifi = out.sndbuf_traces[0].thin(200);
    let lte = &out.sndbuf_traces[1];
    for &(t, w) in &wifi.points {
        let l = lte.value_at(t).unwrap_or(0.0);
        s.push_str(&format!("{t:.1}\t{w:.1}\t{l:.1}\n"));
    }
    s
}

/// Fig 5: CDF of the time difference between last packets per download.
pub fn fig5(effort: Effort) -> String {
    let pairs = [(0.3, 8.6), (0.7, 8.6), (1.1, 8.6), (4.2, 8.6)];
    let mut s = String::from(
        "Fig 5: CDF of time difference between last packets (WiFi vs LTE), default\n\
         (paper: more heterogeneity -> larger gaps; 0.3-8.6 median ~1 s)\n\n",
    );
    let gaps_per_pair = parallel_map(pairs.to_vec(), |(w, l)| {
        let out = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            ..StreamingConfig::new(w, l, SchedulerKind::Default, 7)
        });
        out.last_packet_gaps
    });
    let mut rows = Vec::new();
    for (&(w, l), gaps) in pairs.iter().zip(&gaps_per_pair) {
        let cdf = Cdf::from_samples(gaps.clone());
        rows.push(vec![
            format!("{}-{}", fmt_bw(w), fmt_bw(l)),
            format!("{}", cdf.len()),
            format!("{:.3}", cdf.median()),
            format!("{:.3}", cdf.quantile(0.9)),
            format!("{:.3}", cdf.max()),
        ]);
    }
    s.push_str(&render_table(
        &["pair(Mbps)", "n", "median_s", "p90_s", "max_s"],
        &rows,
    ));
    s.push_str("\nCDF series (gap_s, P[gap<=x]) for 0.3-8.6:\n");
    let cdf = Cdf::from_samples(gaps_per_pair[0].clone());
    for (x, p) in cdf.cdf_series(2.5, 11) {
        s.push_str(&format!("{x:.2}\t{p:.3}\n"));
    }
    s
}

/// Fig 6: throughput with and without CWND conservation, default scheduler,
/// all 36 pairs, plus the ideal aggregate.
pub fn fig6(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 6: Streaming throughput w/ and w/o CWND reset (default scheduler)\n\
         (paper: disabling the reset helps but stays below the ideal)\n\n",
    );
    let pairs: Vec<(f64, f64)> = BW_SET
        .iter()
        .flat_map(|&w| BW_SET.iter().map(move |&l| (w, l)))
        .collect();
    let results = parallel_map(pairs.clone(), |(w, l)| {
        let with = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            ..StreamingConfig::new(w, l, SchedulerKind::Default, 5)
        });
        let without = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            cwnd_conservation: false,
            ..StreamingConfig::new(w, l, SchedulerKind::Default, 5)
        });
        (with.avg_throughput, without.avg_throughput)
    });
    let mut rows = Vec::new();
    for (&(w, l), &(with, without)) in pairs.iter().zip(&results) {
        rows.push(vec![
            format!("{}-{}", fmt_bw(w), fmt_bw(l)),
            format!("{with:.2}"),
            format!("{without:.2}"),
            format!("{:.2}", w + l),
        ]);
    }
    s.push_str(&render_table(
        &["wifi-lte", "w/_reset_Mbps", "w/o_reset_Mbps", "ideal_Mbps"],
        &rows,
    ));
    s
}

/// Figs 7 & 10: fraction of traffic on the fast subflow vs the ideal split.
pub fn fig7_fig10(effort: Effort) -> String {
    let mut s = String::from(
        "Figs 7 & 10: Fraction of traffic allocated to the fast subflow\n\
         (paper: default undershoots the ideal; ECF tracks it; BLEST between)\n\n",
    );
    let pairs: Vec<(f64, f64)> = BW_SET
        .iter()
        .flat_map(|&w| BW_SET.iter().map(move |&l| (w, l)))
        .collect();
    let kinds = [SchedulerKind::Default, SchedulerKind::Blest, SchedulerKind::Ecf];
    let work: Vec<((f64, f64), SchedulerKind)> = pairs
        .iter()
        .flat_map(|&p| kinds.iter().map(move |&k| (p, k)))
        .collect();
    let fractions = parallel_map(work.clone(), |((w, l), k)| {
        run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            ..StreamingConfig::new(w, l, k, 5)
        })
        .fast_fraction
    });
    let mut rows = Vec::new();
    for (i, &(w, l)) in pairs.iter().enumerate() {
        let base = i * kinds.len();
        let ideal = w.max(l) / (w + l);
        rows.push(vec![
            format!("{}-{}", fmt_bw(w), fmt_bw(l)),
            format!("{:.2}", fractions[base]),
            format!("{:.2}", fractions[base + 1]),
            format!("{:.2}", fractions[base + 2]),
            format!("{ideal:.2}"),
        ]);
    }
    s.push_str(&render_table(&["wifi-lte", "default", "blest", "ecf", "ideal"], &rows));
    s
}

/// Figs 11 & 12: WiFi and LTE CWND traces, all four schedulers, 0.3/8.6.
pub fn fig11_fig12(effort: Effort) -> String {
    let mut s = String::from(
        "Figs 11 & 12: CWND traces at 0.3 Mbps WiFi / 8.6 Mbps LTE\n\
         (paper: ECF keeps the LTE window high; default resets it constantly)\n\n",
    );
    let traces = parallel_map(SchedulerKind::paper_set().to_vec(), |kind| {
        let out = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            recorder: RecorderConfig { cwnd_traces: true, ..RecorderConfig::default() },
            ..StreamingConfig::new(0.3, 8.6, kind, 7)
        });
        (kind.label(), out.cwnd_traces)
    });
    for (iface, idx) in [("WiFi (Fig 11)", 0), ("LTE (Fig 12)", 1)] {
        s.push_str(&format!("--- {iface} cwnd (segments) ---\ntime_s"));
        for (label, _) in &traces {
            s.push_str(&format!("\t{label}"));
        }
        s.push('\n');
        let thinned: Vec<metrics::TimeSeries> =
            traces.iter().map(|(_, t)| t[idx].thin(60)).collect();
        for &(t, v0) in &thinned[0].points {
            s.push_str(&format!("{t:.1}\t{v0:.0}"));
            for series in &traces[1..] {
                let v = series.1[idx].value_at(t).unwrap_or(0.0);
                s.push_str(&format!("\t{v:.0}"));
            }
            s.push('\n');
        }
        // Summary: mean cwnd in the steady half of the run.
        s.push_str("mean(second half):");
        for (label, t) in &traces {
            let half = t[idx].points.len() / 2;
            let vals: Vec<f64> = t[idx].points[half..].iter().map(|&(_, v)| v).collect();
            s.push_str(&format!("  {label}={:.0}", metrics::mean(&vals)));
        }
        s.push_str("\n\n");
    }
    s
}

/// Table 3: number of initial-window resets on the fast (LTE) subflow.
pub fn tab3(effort: Effort) -> String {
    let rows = parallel_map(SchedulerKind::paper_set().to_vec(), |kind| {
        let out = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            ..StreamingConfig::new(0.3, 8.6, kind, 7)
        });
        vec![kind.label().to_string(), out.fast_iw_resets.to_string()]
    });
    let mut s = String::from(
        "Table 3: # of IW resets on the fast subflow, 0.3 Mbps WiFi / 8.6 Mbps LTE\n\
         (paper: default 486, DAPS 92, BLEST 382, ECF 16 over a 1332 s video —\n\
          shape: ECF lowest by an order of magnitude)\n\n",
    );
    s.push_str(&render_table(&["scheduler", "iw_resets"], &rows));
    s
}

/// Fig 13: OOO-delay CCDF for the default scheduler across pairs.
pub fn fig13(effort: Effort) -> String {
    let pairs = [(0.3, 8.6), (0.7, 8.6), (1.1, 8.6), (4.2, 8.6)];
    let mut s = String::from(
        "Fig 13: Out-of-order delay CCDF, default scheduler\n\
         (paper: heavier heterogeneity -> heavier tail; 0.3-8.6 median ~1 s)\n\n\
         delay_s",
    );
    for &(w, l) in &pairs {
        s.push_str(&format!("\t{}-{}", fmt_bw(w), fmt_bw(l)));
    }
    s.push('\n');
    let cdfs = parallel_map(pairs.to_vec(), |(w, l)| {
        let out = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            ..StreamingConfig::new(w, l, SchedulerKind::Default, 7)
        });
        Cdf::from_samples(out.ooo_delays)
    });
    for i in 0..=14 {
        let x = i as f64 * 0.1;
        s.push_str(&format!("{x:.1}"));
        for cdf in &cdfs {
            s.push_str(&format!("\t{:.4}", cdf.ccdf_at(x)));
        }
        s.push('\n');
    }
    s
}

/// Fig 14: OOO-delay CCDF per scheduler at two heterogeneity levels.
pub fn fig14(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 14: Out-of-order delay CCDF per scheduler\n\
         (paper: under heterogeneity ECF's tail is smallest; near-parity when symmetric)\n",
    );
    for (w, l) in [(0.3, 8.6), (4.2, 8.6)] {
        s.push_str(&format!("\n--- {}-{} Mbps ---\ndelay_s", fmt_bw(w), fmt_bw(l)));
        for kind in SchedulerKind::paper_set() {
            s.push_str(&format!("\t{}", kind.label()));
        }
        s.push('\n');
        let cdfs = parallel_map(SchedulerKind::paper_set().to_vec(), |kind| {
            let out = run_streaming(&StreamingConfig {
                video_secs: effort.video_secs(),
                ..StreamingConfig::new(w, l, kind, 7)
            });
            Cdf::from_samples(out.ooo_delays)
        });
        for i in 0..=14 {
            let x = i as f64 * 0.1;
            s.push_str(&format!("{x:.1}"));
            for cdf in &cdfs {
                s.push_str(&format!("\t{:.4}", cdf.ccdf_at(x)));
            }
            s.push('\n');
        }
        s.push_str("mean_s:");
        for (kind, cdf) in SchedulerKind::paper_set().iter().zip(&cdfs) {
            s.push_str(&format!("  {}={:.3}", kind.label(), cdf.mean()));
        }
        s.push('\n');
    }
    s
}

/// Fig 15: four subflows (two per interface), default vs ECF.
pub fn fig15(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 15: Bit-rate ratio with 4 subflows (2/interface), 0.3 Mbps WiFi\n\
         (paper: ECF keeps mitigating heterogeneity with more subflows)\n\n",
    );
    let work: Vec<(SchedulerKind, f64)> = [SchedulerKind::Default, SchedulerKind::Ecf]
        .iter()
        .flat_map(|&k| BW_SET.iter().map(move |&l| (k, l)))
        .collect();
    let ratios = parallel_map(work.clone(), |(kind, lte)| {
        let out = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            subflows_per_interface: 2,
            ..StreamingConfig::new(0.3, lte, kind, 7)
        });
        (out.avg_bitrate / out.ideal_bitrate).min(1.0)
    });
    let mut rows = Vec::new();
    for (i, kind) in ["default", "ecf"].iter().enumerate() {
        let mut cells = vec![kind.to_string()];
        for j in 0..BW_SET.len() {
            cells.push(format!("{:.2}", ratios[i * BW_SET.len() + j]));
        }
        rows.push(cells);
    }
    let mut header = vec!["sched\\lte"];
    let ticks: Vec<String> = BW_SET.iter().map(|&b| fmt_bw(b)).collect();
    header.extend(ticks.iter().map(String::as_str));
    s.push_str(&render_table(&header, &rows));
    s
}

/// Fig 16: average throughput under random bandwidth changes, 10 scenarios.
pub fn fig16(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 16: Streaming throughput under random bandwidth changes (mean interval 40 s)\n\
         (paper: ECF highest in every scenario; BLEST ~default)\n\n",
    );
    let kinds = [SchedulerKind::Default, SchedulerKind::Blest, SchedulerKind::Ecf];
    let horizon = Time::from_secs((effort.video_secs() * 4.0) as u64 + 300);
    let work: Vec<(u64, SchedulerKind)> =
        (1..=10u64).flat_map(|sc| kinds.iter().map(move |&k| (sc, k))).collect();
    let tps = parallel_map(work.clone(), |(scenario, kind)| {
        // Interface-space scenario: WiFi (0) and LTE (1) each walk the
        // §5.3 random-rate process under their historical seeds.
        let dynamics = Scenario::new()
            .random_rates(0, scenario * 2, secs(40), &VARIABLE_BW_SET, horizon)
            .random_rates(1, scenario * 2 + 1, secs(40), &VARIABLE_BW_SET, horizon);
        let out = run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            scenario: Some(dynamics),
            // Start mid-range; the schedules take over immediately.
            ..StreamingConfig::new(1.7, 1.7, kind, scenario)
        });
        out.avg_throughput
    });
    let mut rows = Vec::new();
    for sc in 0..10 {
        rows.push(vec![
            format!("{}", sc + 1),
            format!("{:.2}", tps[sc * 3]),
            format!("{:.2}", tps[sc * 3 + 1]),
            format!("{:.2}", tps[sc * 3 + 2]),
        ]);
    }
    s.push_str(&render_table(&["scenario", "default", "blest", "ecf"], &rows));
    let mean = |k: usize| {
        metrics::mean(&(0..10).map(|sc| tps[sc * 3 + k]).collect::<Vec<_>>())
    };
    s.push_str(&format!(
        "\nmeans: default={:.2}  blest={:.2}  ecf={:.2} Mbps\n",
        mean(0),
        mean(1),
        mean(2)
    ));
    s
}

/// Fig 17: per-chunk throughput trace for one random scenario (#6).
pub fn fig17(effort: Effort) -> String {
    let horizon = Time::from_secs((effort.video_secs() * 4.0) as u64 + 300);
    let traces = parallel_map(vec![SchedulerKind::Default, SchedulerKind::Ecf], |kind| {
        let dynamics = Scenario::new()
            .random_rates(0, 12, secs(40), &VARIABLE_BW_SET, horizon)
            .random_rates(1, 13, secs(40), &VARIABLE_BW_SET, horizon);
        run_streaming(&StreamingConfig {
            video_secs: effort.video_secs(),
            scenario: Some(dynamics),
            ..StreamingConfig::new(1.7, 1.7, kind, 6)
        })
        .chunk_throughputs
    });
    let mut s = String::from(
        "Fig 17: Per-chunk throughput, random scenario 6 (default vs ECF)\n\
         (paper: ECF matches or beats default on every chunk, up to 2x)\n\n\
         chunk\tdefault_Mbps\tecf_Mbps\n",
    );
    for (i, (d, e)) in traces[0].iter().zip(&traces[1]).enumerate() {
        s.push_str(&format!("{i}\t{:.2}\t{:.2}\n", d.1, e.1));
    }
    s
}

/// Table 1: the bit-rate ladder (constants check).
pub fn tab1() -> String {
    let mut rows = Vec::new();
    for (res, rate) in dash::RESOLUTIONS.iter().zip(dash::BITRATE_LADDER_MBPS.iter()) {
        rows.push(vec![res.to_string(), format!("{rate:.2}")]);
    }
    let mut s = String::from("Table 1: Video bit rates vs. resolution\n\n");
    s.push_str(&render_table(&["resolution", "bitrate_Mbps"], &rows));
    s
}

/// Table 2: average RTT per regulated bandwidth, measured with a saturating
/// bulk flow per interface.
pub fn tab2() -> String {
    let work: Vec<(usize, f64)> = BW_SET
        .iter()
        .enumerate()
        .flat_map(|(i, &bw)| [(i * 2, bw), (i * 2 + 1, bw)])
        .collect();
    let rtts = parallel_map(work, |(slot, bw)| {
        // Saturate one path with a single-path bulk download and read sRTT.
        let is_lte = slot % 2 == 1;
        let (wifi, lte) = if is_lte { (0.1, bw) } else { (bw, 0.1) };
        let sub = usize::from(is_lte);
        let cfg = mptcp::TestbedConfig::wifi_lte(
            wifi,
            lte,
            SchedulerKind::SinglePath(sub),
            9,
        );
        let mut tb = mptcp::Testbed::new(cfg, webload::WgetApp::new(2 * 1024 * 1024));
        tb.run_until(Time::from_secs(240));
        tb.world().sender(0).subflows[sub].cc.rtt.srtt().as_secs_f64() * 1e3
    });
    let mut rows = vec![
        vec!["WiFi RTT(ms)".to_string()],
        vec!["LTE RTT(ms)".to_string()],
    ];
    for i in 0..BW_SET.len() {
        rows[0].push(format!("{:.0}", rtts[i * 2]));
        rows[1].push(format!("{:.0}", rtts[i * 2 + 1]));
    }
    let mut header = vec!["Bandwidth(Mbps)"];
    let ticks: Vec<String> = BW_SET.iter().map(|&b| fmt_bw(b)).collect();
    header.extend(ticks.iter().map(String::as_str));
    let mut s = String::from(
        "Table 2: Avg RTT under bandwidth regulation (bulk-saturated path)\n\
         (paper: WiFi 969..40 ms, LTE 858..105 ms as rate grows; shape = RTT\n\
          falls with rate, LTE above WiFi at equal rate)\n\n",
    );
    s.push_str(&render_table(&header, &rows));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Effort = Effort::Quick;

    #[test]
    fn tab1_lists_six_rungs() {
        let t = tab1();
        assert!(t.contains("1080p"));
        assert!(t.contains("8.47"));
        assert_eq!(t.lines().count(), 4 + 6);
    }

    #[test]
    fn fig1_produces_monotone_progress() {
        let s = fig1(QUICK);
        let points: Vec<f64> = s
            .lines()
            .skip(4)
            .filter_map(|l| l.split('\t').nth(1)?.parse().ok())
            .collect();
        assert!(points.len() >= 5);
        for w in points.windows(2) {
            assert!(w[1] >= w[0], "progress went backwards");
        }
    }

    #[test]
    fn tab3_shows_ecf_with_fewest_resets() {
        let t = tab3(QUICK);
        // Parse the table rows: label then count.
        let mut counts = std::collections::HashMap::new();
        for line in t.lines().skip(6) {
            let mut parts = line.split_whitespace();
            if let (Some(name), Some(n)) = (parts.next(), parts.next()) {
                if let Ok(n) = n.parse::<u64>() {
                    counts.insert(name.to_string(), n);
                }
            }
        }
        let ecf = counts["ecf"];
        let def = counts["default"];
        assert!(
            ecf <= def,
            "ECF must not reset the fast subflow more than default ({ecf} vs {def})"
        );
    }
}
