//! Shared experiment plumbing: the paper's parameter sets, workload runners,
//! and a small thread fan-out for embarrassingly parallel sweeps.

use std::time::Duration;

use dash::{DashApp, PlayerConfig};
use ecf_core::SchedulerKind;
use mptcp::{ConnConfig, ConnSpec, RecorderConfig, Testbed, TestbedConfig};
use scenario::{Action, ControlEvent, Process, Scenario};
use simnet::{PathConfig, Time};
use webload::{BrowserApp, PageModel, WgetApp};

/// The paper's §3.1 regulated bandwidth set (Mbps), one step above each
/// Table 1 representation.
pub const BW_SET: [f64; 6] = [0.3, 0.7, 1.1, 1.7, 4.2, 8.6];

/// §5.3's random-change rate set.
pub const VARIABLE_BW_SET: [f64; 5] = [0.3, 1.1, 1.7, 4.2, 8.6];

/// Effort level: `Full` sizes runs for the report harness; `Quick` for
/// benches and smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Report quality: longer videos, multiple seeds.
    Full,
    /// Benchmark/smoke quality: short videos, one seed.
    Quick,
}

impl Effort {
    /// Simulated video duration for streaming runs. Full effort approaches
    /// the paper's 1332 s sessions; Quick keeps benches snappy.
    pub fn video_secs(self) -> f64 {
        match self {
            Effort::Full => 600.0,
            Effort::Quick => 60.0,
        }
    }

    /// Seeds per configuration (the paper averages 5 testbed runs).
    pub fn seeds(self) -> u64 {
        match self {
            Effort::Full => 5,
            Effort::Quick => 1,
        }
    }
}

/// Environment variable overriding [`parallel_map`]'s worker count, so CI
/// boxes and laptops can pin parallelism reproducibly. Explicit
/// [`parallel_map_workers`] calls are never overridden.
pub const ENV_WORKERS: &str = "TESTKIT_WORKERS";

/// Maximum worker count accepted from [`ENV_WORKERS`].
pub const MAX_WORKERS: usize = 256;

/// Resolve the default worker count: [`ENV_WORKERS`] if set and parseable
/// (clamped to `1..=`[`MAX_WORKERS`]), else `fallback`. Unparseable values
/// are ignored rather than fatal — a bench box with a stale variable should
/// run, not die.
pub fn default_workers(env: Option<&str>, fallback: usize) -> usize {
    match env.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(w) => w.clamp(1, MAX_WORKERS),
        None => fallback,
    }
}

/// Map `f` over `items` on up to `available_parallelism` threads (or the
/// [`ENV_WORKERS`] override), preserving order. Runs are independent
/// simulations, so this is safe and near-linear.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let fallback = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let env = std::env::var(ENV_WORKERS).ok();
    parallel_map_workers(items, f, default_workers(env.as_deref(), fallback))
}

/// [`parallel_map`] with an explicit worker count (tests force multiple
/// workers on single-core machines).
///
/// Work is claimed lock-free: the only shared hot word is an atomic work
/// index bumped with `fetch_add`, so workers never serialize on a queue
/// mutex. Each input slot is taken exactly once and each output slot
/// written exactly once by the worker that claimed that index, so the
/// per-slot mutexes (needed only to satisfy safe Rust's aliasing rules)
/// are uncontended. `f` runs with no lock held: a panicking item poisons
/// nothing, the other workers drain the remaining items, and the panic
/// resurfaces from `thread::scope` on join — no deadlock.
pub fn parallel_map_workers<T, R, F>(items: Vec<T>, f: F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    if n <= 1 || workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let t = inputs[idx]
                    .lock()
                    .expect("input slot")
                    .take()
                    .expect("index claimed exactly once");
                let r = f(t);
                *outputs[idx].lock().expect("output slot") = Some(r);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot")
                .expect("worker filled every slot")
        })
        .collect()
}

/// One streaming run's configuration.
#[derive(Clone)]
pub struct StreamingConfig {
    /// WiFi shaped rate, Mbps.
    pub wifi_mbps: f64,
    /// LTE shaped rate, Mbps.
    pub lte_mbps: f64,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Coupled congestion controller (defaults to LIA, the Linux default).
    pub cc: mptcp::CcKind,
    /// Video duration (seconds of content).
    pub video_secs: f64,
    /// Run seed.
    pub seed: u64,
    /// Trace collection.
    pub recorder: RecorderConfig,
    /// Apply idle restart + cwnd validation (Fig 6 toggles this off).
    pub cwnd_conservation: bool,
    /// Subflows per interface (1 = the usual 2-subflow setup; 2 = Fig 15's
    /// four subflows, each shaped to half the interface rate).
    pub subflows_per_interface: usize,
    /// Optional network dynamics, written in *interface* space: path 0 is
    /// the WiFi interface, path 1 LTE. [`run_streaming`] expands it to the
    /// actual subflow paths (splitting rates across subflows when
    /// `subflows_per_interface > 1`).
    pub scenario: Option<Scenario>,
    /// Telemetry sink threaded into the testbed (off by default).
    pub telemetry: telemetry::TelemetryHandle,
}

impl StreamingConfig {
    /// A standard two-subflow streaming run.
    pub fn new(wifi: f64, lte: f64, scheduler: SchedulerKind, seed: u64) -> Self {
        StreamingConfig {
            wifi_mbps: wifi,
            lte_mbps: lte,
            scheduler,
            cc: mptcp::CcKind::default(),
            video_secs: 180.0,
            seed,
            recorder: RecorderConfig::default(),
            cwnd_conservation: true,
            subflows_per_interface: 1,
            scenario: None,
            telemetry: telemetry::TelemetryHandle::off(),
        }
    }
}

/// Everything the streaming figures need from one run.
pub struct StreamingOutcome {
    /// Mean encoded bit rate over the downloaded chunks, Mbps.
    pub avg_bitrate: f64,
    /// Mean per-chunk download throughput, Mbps.
    pub avg_throughput: f64,
    /// The paper's ideal average bit rate for this pair.
    pub ideal_bitrate: f64,
    /// Fraction of sent segments that rode the higher-bandwidth interface.
    pub fast_fraction: f64,
    /// Initial-window resets (idle + RTO) of the *faster* interface's
    /// subflow(s) — Table 3's metric.
    pub fast_iw_resets: u64,
    /// Per-segment out-of-order delays, seconds.
    pub ooo_delays: Vec<f64>,
    /// Per-request gap between last packets on the two interfaces, seconds
    /// (Fig 5).
    pub last_packet_gaps: Vec<f64>,
    /// Per-chunk `(start_time_s, throughput_mbps)` (Fig 17).
    pub chunk_throughputs: Vec<(f64, f64)>,
    /// Per-chunk `(finish_time_s, cumulative_megabytes)` (Fig 1).
    pub download_progress: Vec<(f64, f64)>,
    /// CWND traces `[subflow]` if recorded (Figs 11/12).
    pub cwnd_traces: Vec<metrics::TimeSeries>,
    /// Send-buffer occupancy traces `[subflow]` if recorded (Fig 3).
    pub sndbuf_traces: Vec<metrics::TimeSeries>,
    /// Engine events processed by the run (determinism + throughput metric).
    pub events_processed: u64,
}

/// Run one DASH streaming session and collect the figure inputs.
pub fn run_streaming(cfg: &StreamingConfig) -> StreamingOutcome {
    let per_if = cfg.subflows_per_interface.max(1);
    let mut paths = Vec::new();
    for _ in 0..per_if {
        paths.push(PathConfig::wifi(cfg.wifi_mbps / per_if as f64));
    }
    for _ in 0..per_if {
        paths.push(PathConfig::lte(cfg.lte_mbps / per_if as f64));
    }
    let mut conn_cfg = ConnConfig::default();
    conn_cfg.tcp.idle_reset = cfg.cwnd_conservation;
    conn_cfg.cc = cfg.cc;

    let scenario = match &cfg.scenario {
        Some(s) => expand_interface_scenario(s, per_if),
        None => Scenario::default(),
    };

    let tb_cfg = TestbedConfig {
        paths,
        conns: vec![ConnSpec {
            cfg: conn_cfg,
            scheduler: cfg.scheduler,
            custom_scheduler: None,
            subflow_paths: (0..2 * per_if).collect(),
        }],
        seed: cfg.seed,
        path_seeds: None,
        recorder: cfg.recorder,
        scenario,
        telemetry: cfg.telemetry.clone(),
    };
    let player = PlayerConfig { video_secs: cfg.video_secs, ..PlayerConfig::default() };
    let mut tb = Testbed::new(tb_cfg, DashApp::new(player, 0));
    // Generous horizon: the slowest pairs stream far below real time.
    tb.run_until(Time::from_secs((cfg.video_secs * 30.0) as u64 + 300));

    let world = tb.world();
    let sender = world.sender(0);
    let wifi_segs: u64 =
        (0..per_if).map(|s| sender.subflows[s].stats().segs_sent).sum();
    let lte_segs: u64 =
        (per_if..2 * per_if).map(|s| sender.subflows[s].stats().segs_sent).sum();
    let (fast_segs, slow_segs, fast_range) = if cfg.lte_mbps >= cfg.wifi_mbps {
        (lte_segs, wifi_segs, per_if..2 * per_if)
    } else {
        (wifi_segs, lte_segs, 0..per_if)
    };
    let fast_iw_resets =
        fast_range.map(|s| sender.subflows[s].cc.stats().iw_resets()).sum();

    let player = &tb.app().player;
    let mut cumulative_mb = 0.0;
    let download_progress = player
        .history
        .iter()
        .map(|c| {
            cumulative_mb += c.bytes as f64 / 1e6;
            (c.finished.as_secs_f64(), cumulative_mb)
        })
        .collect();

    StreamingOutcome {
        avg_bitrate: player.avg_bitrate_mbps(),
        avg_throughput: player.avg_throughput_mbps(),
        ideal_bitrate: dash::ideal_avg_bitrate_mbps(cfg.wifi_mbps + cfg.lte_mbps),
        fast_fraction: fast_segs as f64 / (fast_segs + slow_segs).max(1) as f64,
        fast_iw_resets,
        ooo_delays: world.recorder.ooo_delays_secs(),
        last_packet_gaps: world
            .recorder
            .completed_requests()
            .filter_map(|r| r.last_packet_gap())
            .map(|d| d.as_secs_f64())
            .collect(),
        chunk_throughputs: player
            .history
            .iter()
            .map(|c| (c.started.as_secs_f64(), c.throughput_mbps()))
            .collect(),
        download_progress,
        cwnd_traces: world.recorder.cwnd.first().cloned().unwrap_or_default(),
        sndbuf_traces: world.recorder.sndbuf.first().cloned().unwrap_or_default(),
        events_processed: tb.events_processed(),
    }
}

/// Expand an interface-space scenario (path 0 = WiFi, 1 = LTE) onto the
/// actual subflow paths: interface `i` maps to paths `i*per_if..(i+1)*per_if`
/// and rate actions are split evenly across the interface's subflows, so the
/// interface-level bandwidth matches the scenario regardless of topology.
fn expand_interface_scenario(s: &Scenario, per_if: usize) -> Scenario {
    if per_if == 1 {
        return s.clone();
    }
    let mut out = Scenario::default();
    for ev in &s.events {
        for k in 0..per_if {
            let action = match ev.action {
                Action::RateBps(bps) => Action::RateBps(bps / per_if as u64),
                other => other,
            };
            out.events.push(ControlEvent { at: ev.at, path: ev.path * per_if + k, action });
        }
    }
    for p in &s.processes {
        match p {
            Process::RandomRates { path, seed, mean_interval, rates_mbps, horizon } => {
                for k in 0..per_if {
                    out.processes.push(Process::RandomRates {
                        path: path * per_if + k,
                        seed: *seed,
                        mean_interval: *mean_interval,
                        rates_mbps: rates_mbps.iter().map(|r| r / per_if as f64).collect(),
                        horizon: *horizon,
                    });
                }
            }
        }
    }
    out
}

/// One `wget`-style download; returns completion seconds and the testbed.
pub fn run_wget(
    wifi: f64,
    lte: f64,
    scheduler: SchedulerKind,
    bytes: u64,
    seed: u64,
) -> (f64, Testbed<WgetApp>) {
    let cfg = TestbedConfig::wifi_lte(wifi, lte, scheduler, seed);
    let mut tb = Testbed::new(cfg, WgetApp::new(bytes));
    tb.run_until(Time::from_secs(300));
    let secs = tb
        .app()
        .completed_at
        .map(|t| t.as_secs_f64())
        .unwrap_or(f64::NAN);
    (secs, tb)
}

/// One browser page-load over six parallel connections. Returns the testbed
/// (object completion times and OOO delays live in the app/recorder).
pub fn run_browse(
    wifi: f64,
    lte: f64,
    scheduler: SchedulerKind,
    seed: u64,
) -> Testbed<BrowserApp> {
    run_browse_n(wifi, lte, scheduler, seed, 6)
}

/// [`run_browse`] generalized to `n_conns` parallel connections sharing the
/// same two paths — the many-connection scaling shape (one engine, many
/// interleaved flows) the `browse_24conn` benchmark tracks. `n_conns = 6`
/// is exactly the classic browse run.
pub fn run_browse_n(
    wifi: f64,
    lte: f64,
    scheduler: SchedulerKind,
    seed: u64,
    n_conns: usize,
) -> Testbed<BrowserApp> {
    let conns = (0..n_conns)
        .map(|_| ConnSpec {
            cfg: ConnConfig::default(),
            scheduler,
            custom_scheduler: None,
            subflow_paths: vec![0, 1],
        })
        .collect();
    let cfg = TestbedConfig {
        paths: vec![PathConfig::wifi(wifi), PathConfig::lte(lte)],
        conns,
        seed,
        path_seeds: None,
        recorder: RecorderConfig::default(),
        scenario: Scenario::default(),
        telemetry: telemetry::TelemetryHandle::off(),
    };
    // The page content is fixed across runs/schedulers (seed 2014).
    let mut tb = Testbed::new(cfg, BrowserApp::new(PageModel::cnn_like(2014), n_conns));
    tb.run_until(Time::from_secs(600));
    tb
}

/// Format a bandwidth as the paper writes it ("0.3", "8.6").
pub fn fmt_bw(mbps: f64) -> String {
    format!("{mbps:.1}")
}

/// Duration helper for schedule construction.
pub fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workers_clamps_and_falls_back() {
        assert_eq!(default_workers(None, 4), 4);
        assert_eq!(default_workers(Some("8"), 4), 8);
        assert_eq!(default_workers(Some(" 2 "), 4), 2);
        // Out-of-range values clamp; garbage falls back.
        assert_eq!(default_workers(Some("0"), 4), 1);
        assert_eq!(default_workers(Some("99999"), 4), MAX_WORKERS);
        assert_eq!(default_workers(Some("many"), 4), 4);
        assert_eq!(default_workers(Some(""), 4), 4);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_small_inputs() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_preserves_order_with_forced_workers() {
        // Force real concurrency even on single-core CI machines, where
        // available_parallelism would take the serial path.
        for workers in [2, 4, 8] {
            let out = parallel_map_workers((0..257).collect::<Vec<_>>(), |x| x * 3, workers);
            assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_workers_exceeding_items_is_fine() {
        let out = parallel_map_workers(vec![1, 2, 3], |x| x + 10, 16);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn parallel_map_panic_propagates_without_deadlock() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};

        // One poisoned item; the scope must join (not hang), the panic must
        // resurface, and the surviving workers must still drain the queue.
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_workers((0..64usize).collect::<Vec<_>>(), |x| {
                if x == 13 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            }, 4)
        }));
        assert!(result.is_err(), "worker panic must propagate to the caller");
        assert_eq!(done.load(Ordering::Relaxed), 63, "other items still ran");
    }

    #[test]
    fn streaming_outcome_is_complete() {
        let cfg = StreamingConfig {
            video_secs: 30.0,
            ..StreamingConfig::new(4.2, 4.2, SchedulerKind::Ecf, 1)
        };
        let out = run_streaming(&cfg);
        assert!(out.avg_bitrate > 0.0);
        assert!(out.avg_throughput > 0.0);
        assert_eq!(out.ideal_bitrate, 8.4);
        assert!((0.0..=1.0).contains(&out.fast_fraction));
        assert_eq!(out.chunk_throughputs.len(), 6);
        assert_eq!(out.download_progress.len(), 6);
        assert!(!out.ooo_delays.is_empty());
    }

    #[test]
    fn four_subflow_topology_runs() {
        let cfg = StreamingConfig {
            video_secs: 30.0,
            subflows_per_interface: 2,
            ..StreamingConfig::new(0.3, 4.2, SchedulerKind::Ecf, 2)
        };
        let out = run_streaming(&cfg);
        assert!(out.avg_bitrate > 0.0);
    }

    #[test]
    fn wget_runner_completes() {
        let (secs, _tb) = run_wget(1.0, 5.0, SchedulerKind::Default, 256 * 1024, 3);
        assert!(secs.is_finite() && secs > 0.0);
    }
}
