//! Ablations beyond the paper's figures, regenerating its design-choice
//! claims: the β hysteresis sweep ("other values yield similar results",
//! §5.1), the δ variability margin, and the second inequality of Algorithm 1.

use ecf_core::{EcfConfig, SchedulerKind};
use metrics::render_table;

use crate::common::{parallel_map, run_streaming, Effort, StreamingConfig};

fn ecf_variant(cfg: EcfConfig) -> SchedulerKind {
    SchedulerKind::EcfWith(cfg)
}

fn bitrate_with(kind: SchedulerKind, effort: Effort, seed: u64) -> f64 {
    run_streaming(&StreamingConfig {
        video_secs: effort.video_secs(),
        ..StreamingConfig::new(0.3, 8.6, kind, seed)
    })
    .avg_bitrate
}

/// β sweep: the paper fixes β = 0.25 and reports other values behave
/// similarly; we regenerate that claim at the most heterogeneous pair.
pub fn ablation_beta(effort: Effort) -> String {
    let betas = [0.0, 0.1, 0.25, 0.5, 1.0];
    let bitrates = parallel_map(betas.to_vec(), |beta| {
        bitrate_with(ecf_variant(EcfConfig { beta, ..EcfConfig::default() }), effort, 7)
    });
    let mut rows = Vec::new();
    for (beta, br) in betas.iter().zip(&bitrates) {
        rows.push(vec![format!("{beta:.2}"), format!("{br:.2}")]);
    }
    let mut s = String::from(
        "Ablation: ECF hysteresis β at 0.3/8.6 Mbps\n\
         (paper claim: results are insensitive to β)\n\n",
    );
    s.push_str(&render_table(&["beta", "avg_bitrate_Mbps"], &rows));
    let spread = bitrates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - bitrates.iter().cloned().fold(f64::INFINITY, f64::min);
    s.push_str(&format!("\nspread across β values: {spread:.2} Mbps\n"));
    s
}

/// δ margin and second-inequality ablations.
pub fn ablation_components(effort: Effort) -> String {
    let variants: Vec<(&str, SchedulerKind)> = vec![
        ("full ECF", SchedulerKind::Ecf),
        (
            "no delta margin",
            ecf_variant(EcfConfig { use_delta: false, ..EcfConfig::default() }),
        ),
        (
            "no second inequality",
            ecf_variant(EcfConfig { use_second_inequality: false, ..EcfConfig::default() }),
        ),
        ("default (reference)", SchedulerKind::Default),
    ];
    let bitrates = parallel_map(variants.clone(), |(_, kind)| {
        let xs: Vec<f64> =
            (0..effort.seeds()).map(|s| bitrate_with(kind, effort, 7 + s)).collect();
        metrics::mean(&xs)
    });
    let mut rows = Vec::new();
    for ((name, _), br) in variants.iter().zip(&bitrates) {
        rows.push(vec![name.to_string(), format!("{br:.2}")]);
    }
    let mut s = String::from(
        "Ablation: ECF components at 0.3/8.6 Mbps\n\
         (each variant should sit between full ECF and the default)\n\n",
    );
    s.push_str(&render_table(&["variant", "avg_bitrate_Mbps"], &rows));
    s
}

/// Congestion-control sensitivity: the paper notes the degradation (and the
/// fix) appear regardless of coupled controller; we sweep Reno/LIA/OLIA.
pub fn ablation_cc(effort: Effort) -> String {
    use mptcp::CcKind;
    let kinds = [CcKind::Reno, CcKind::Lia, CcKind::Olia];
    let work: Vec<(CcKind, SchedulerKind)> = kinds
        .iter()
        .flat_map(|&cc| {
            [SchedulerKind::Default, SchedulerKind::Ecf].map(move |sched| (cc, sched))
        })
        .collect();
    let bitrates = parallel_map(work.clone(), |(cc, sched)| {
        let mut cfg = StreamingConfig::new(0.3, 8.6, sched, 7);
        cfg.video_secs = effort.video_secs();
        // Thread the CC kind through the testbed config.
        let conn_cfg = mptcp::ConnConfig { cc, ..mptcp::ConnConfig::default() };
        run_streaming_with_conn(&cfg, conn_cfg)
    });
    let mut rows = Vec::new();
    for (i, cc) in ["reno", "lia", "olia"].iter().enumerate() {
        rows.push(vec![
            cc.to_string(),
            format!("{:.2}", bitrates[i * 2]),
            format!("{:.2}", bitrates[i * 2 + 1]),
        ]);
    }
    let mut s = String::from(
        "Ablation: congestion controller sensitivity at 0.3/8.6 Mbps\n\
         (paper §3.1: degradation appears regardless of the controller;\n\
          ECF should beat default under each)\n\n",
    );
    s.push_str(&render_table(&["cc", "default_Mbps", "ecf_Mbps"], &rows));
    s
}

/// Extension: ECF vs STTF (Hurtig et al.) — the other published
/// completion-time-aware scheduler — across heterogeneity levels.
pub fn extension_sttf(effort: Effort) -> String {
    let pairs = [(0.3, 8.6), (1.1, 8.6), (4.2, 4.2), (8.6, 8.6)];
    let work: Vec<((f64, f64), SchedulerKind)> = pairs
        .iter()
        .flat_map(|&p| {
            [SchedulerKind::Default, SchedulerKind::Sttf, SchedulerKind::Ecf]
                .map(move |k| (p, k))
        })
        .collect();
    let bitrates = parallel_map(work, |((w, l), kind)| {
        let xs: Vec<f64> = (0..effort.seeds())
            .map(|s| {
                run_streaming(&StreamingConfig {
                    video_secs: effort.video_secs(),
                    ..StreamingConfig::new(w, l, kind, 7 + s)
                })
                .avg_bitrate
            })
            .collect();
        metrics::mean(&xs)
    });
    let mut rows = Vec::new();
    for (i, &(w, l)) in pairs.iter().enumerate() {
        rows.push(vec![
            format!("{w}-{l}"),
            format!("{:.2}", bitrates[i * 3]),
            format!("{:.2}", bitrates[i * 3 + 1]),
            format!("{:.2}", bitrates[i * 3 + 2]),
        ]);
    }
    let mut s = String::from(
        "Extension: STTF (Hurtig et al. 2018) vs ECF on streaming\n\
         (STTF reasons per segment; ECF about the whole backlog — expect STTF\n\
          between the default and ECF under heterogeneity)\n\n",
    );
    s.push_str(&render_table(&["wifi-lte", "default", "sttf", "ecf"], &rows));
    s
}

/// Streaming run with an explicit connection config (CC ablation helper).
fn run_streaming_with_conn(cfg: &StreamingConfig, conn_cfg: mptcp::ConnConfig) -> f64 {
    use dash::{DashApp, PlayerConfig};
    use mptcp::{ConnSpec, Testbed, TestbedConfig};
    use scenario::Scenario;
    use simnet::{PathConfig, Time};
    let tb_cfg = TestbedConfig {
        paths: vec![PathConfig::wifi(cfg.wifi_mbps), PathConfig::lte(cfg.lte_mbps)],
        conns: vec![ConnSpec {
            cfg: conn_cfg,
            scheduler: cfg.scheduler,
            custom_scheduler: None,
            subflow_paths: vec![0, 1],
        }],
        seed: cfg.seed,
        path_seeds: None,
        recorder: cfg.recorder,
        scenario: Scenario::default(),
        telemetry: telemetry::TelemetryHandle::off(),
    };
    let player = PlayerConfig { video_secs: cfg.video_secs, ..PlayerConfig::default() };
    let mut tb = Testbed::new(tb_cfg, DashApp::new(player, 0));
    tb.run_until(Time::from_secs((cfg.video_secs * 30.0) as u64 + 300));
    tb.app().player.avg_bitrate_mbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_report_covers_all_values() {
        // Structure-only check at minimum effort is still a real run; keep
        // it cheap by reusing Quick.
        let s = ablation_beta(Effort::Quick);
        for beta in ["0.00", "0.10", "0.25", "0.50", "1.00"] {
            assert!(s.contains(beta), "missing β={beta}");
        }
    }
}
