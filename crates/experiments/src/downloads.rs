//! Simple-download experiments (§5.4): Figs 18 and 19.

use ecf_core::SchedulerKind;
use metrics::{render_table, Heatmap};

use crate::common::{parallel_map, run_wget, Effort};

/// File sizes the paper sweeps (128 KB – 1 MB shown in Figs 18/19).
pub const SIZES: [(u64, &str); 4] = [
    (128 * 1024, "128KB"),
    (256 * 1024, "256KB"),
    (512 * 1024, "512KB"),
    (1024 * 1024, "1MB"),
];

fn seeds_for(effort: Effort) -> u64 {
    match effort {
        // The paper averages 30 runs; jitter is our only run-to-run noise,
        // and the runs are cheap, so mirror that.
        Effort::Full => 15,
        Effort::Quick => 2,
    }
}

fn mean_completion(
    wifi: f64,
    lte: f64,
    kind: SchedulerKind,
    bytes: u64,
    effort: Effort,
) -> (f64, f64) {
    let times: Vec<f64> = (0..seeds_for(effort))
        .map(|s| run_wget(wifi, lte, kind, bytes, 100 + s).0)
        .collect();
    (metrics::mean(&times), metrics::stddev(&times))
}

/// Fig 18: average completion time, WiFi 1 Mbps, LTE 1–10 Mbps, four sizes,
/// all four schedulers.
pub fn fig18(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 18: Average download completion time (s), WiFi 1 Mbps, LTE 1-10 Mbps\n\
         (paper: schedulers converge for small files; ECF <= default for larger\n\
          files under heterogeneity; DAPS often worst)\n",
    );
    let ltes: Vec<f64> = (1..=10).map(f64::from).collect();
    for &(bytes, label) in &SIZES {
        s.push_str(&format!("\n--- {label} ---\n"));
        let work: Vec<(f64, SchedulerKind)> = ltes
            .iter()
            .flat_map(|&l| SchedulerKind::paper_set().map(move |k| (l, k)))
            .collect();
        let means =
            parallel_map(work, |(l, k)| mean_completion(1.0, l, k, bytes, effort).0);
        let mut rows = Vec::new();
        for (i, &lte) in ltes.iter().enumerate() {
            let base = i * 4;
            rows.push(vec![
                format!("1-{lte:.0}"),
                format!("{:.2}", means[base]),
                format!("{:.2}", means[base + 2]),
                format!("{:.2}", means[base + 3]),
                format!("{:.2}", means[base + 1]),
            ]);
        }
        s.push_str(&render_table(
            &["wifi-lte", "default", "daps", "blest", "ecf"],
            &rows,
        ));
    }
    s
}

/// Fig 19: ECF completion time normalized by the default scheduler's across
/// the full 1–10 × 1–10 Mbps grid. Values ≤ 1 everywhere is the paper's
/// "never worse" claim; < 1 in the heterogeneous corners.
pub fn fig19(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 19: ECF completion time / default completion time\n\
         (paper: 1.0 on the diagonal and for small files; down to ~0.8 under\n\
          heterogeneity; never above 1)\n",
    );
    // The full 10x10 grid at Full effort; a coarser grid when Quick.
    let grid: Vec<f64> = match effort {
        Effort::Full => (1..=10).map(f64::from).collect(),
        Effort::Quick => vec![1.0, 4.0, 10.0],
    };
    for &(bytes, label) in &SIZES {
        s.push_str(&format!("\n--- {label} ---\n"));
        let cells: Vec<(usize, usize)> = (0..grid.len())
            .flat_map(|l| (0..grid.len()).map(move |w| (l, w)))
            .collect();
        let ratios = parallel_map(cells.clone(), |(l, w)| {
            let (d_mean, d_sd) =
                mean_completion(grid[w], grid[l], SchedulerKind::Default, bytes, effort);
            let (e_mean, e_sd) =
                mean_completion(grid[w], grid[l], SchedulerKind::Ecf, bytes, effort);
            // The paper plots 1.0 whenever the difference is inside one
            // standard deviation.
            if (d_mean - e_mean).abs() <= d_sd.max(e_sd) {
                1.0
            } else {
                e_mean / d_mean
            }
        });
        let mut values = vec![vec![0.0; grid.len()]; grid.len()];
        for ((l, w), r) in cells.into_iter().zip(ratios) {
            values[l][w] = r;
        }
        values.reverse();
        let mut y_ticks: Vec<String> = grid.iter().map(|g| format!("{g:.0}")).collect();
        y_ticks.reverse();
        let hm = Heatmap {
            x_label: "WiFi (Mbps)".into(),
            y_label: "LTE (Mbps)".into(),
            x_ticks: grid.iter().map(|g| format!("{g:.0}")).collect(),
            y_ticks,
            values: values.clone(),
            lo: 0.7,
            hi: 1.3,
        };
        s.push_str(&hm.render());
        let worst = values
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        s.push_str(&format!("max ratio (should stay ~<= 1): {worst:.2}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_time_decreases_with_more_lte() {
        let slow = mean_completion(1.0, 1.0, SchedulerKind::Ecf, 512 * 1024, Effort::Quick).0;
        let fast = mean_completion(1.0, 10.0, SchedulerKind::Ecf, 512 * 1024, Effort::Quick).0;
        assert!(fast < slow, "more bandwidth must not slow downloads: {fast} vs {slow}");
    }

    #[test]
    fn ecf_not_worse_than_default_on_hetero_1mb() {
        let (d, _) = mean_completion(1.0, 10.0, SchedulerKind::Default, 1024 * 1024, Effort::Quick);
        let (e, _) = mean_completion(1.0, 10.0, SchedulerKind::Ecf, 1024 * 1024, Effort::Quick);
        assert!(e <= d * 1.15, "ECF {e}s vs default {d}s");
    }
}
