//! Cell execution: map a resolved cell config onto the shared workload
//! runners and extract a JSON result.
//!
//! This is the only bridge between spec vocabulary and simulator types, so
//! it is deliberately strict: unknown schedulers, congestion controllers,
//! scenario kinds, or workloads are errors, not silent defaults — a typo'd
//! spec must fail loudly instead of caching a wrong-but-plausible result.
//!
//! The scenario construction reproduces the legacy figure code exactly
//! (same horizon formulas, same lossy-path index, same seed wiring); the
//! equivalence suite in `tests/matrix.rs` holds this bridge to
//! byte-identical figure output against the pre-matrix code paths.

use std::collections::BTreeMap;

use ecf_core::SchedulerKind;
use mptcp::{CcKind, RecorderConfig};
use scenario::{GilbertElliott, LossModel, Scenario};
use simnet::Time;
use testkit::json::Value;

use crate::common::{run_streaming, secs, StreamingConfig, VARIABLE_BW_SET};
use crate::dynamics::handover_scenario;

/// Execute one cell, returning its result document:
///
/// ```json
/// { "scalars": { "avg_bitrate": .., "avg_throughput": .., "ideal_bitrate": ..,
///                "fast_fraction": .., "fast_iw_resets": .., "events_processed": .. },
///   "series":  { "chunk_throughputs": [[t, mbps], ...],
///                "sndbuf_rows": ["t\twifi\tlte", ...] } }   // when recorded
/// ```
pub fn execute(cfg: &Value) -> Result<Value, String> {
    match str_field(cfg, "workload")? {
        "streaming" => streaming_cell(cfg),
        "quic_web" => quic_web_cell(cfg),
        other => Err(format!("unknown workload {other:?}")),
    }
}

/// One `quic_web` cell: the cnn-like page on *both* transports (one MPQUIC
/// connection with 107 streams vs six MPTCP connections) for one
/// scheduler/bandwidth/seed point, so every cached result is already a
/// paired comparison.
fn quic_web_cell(cfg: &Value) -> Result<Value, String> {
    let wifi = num_field(cfg, "wifi_mbps")?;
    let lte = num_field(cfg, "lte_mbps")?;
    let seed = num_field(cfg, "seed")? as u64;
    let scheduler = parse_scheduler(str_field(cfg, "scheduler")?)?;

    let mut scalars = BTreeMap::new();
    {
        let tb = crate::common::run_browse(wifi, lte, scheduler, seed);
        if !tb.app().done() {
            return Err("mptcp page load did not complete".to_string());
        }
        let cdf = metrics::Cdf::from_samples(tb.app().completion_times_secs());
        let ooo = metrics::Cdf::from_samples(tb.world().recorder.ooo_delays_secs());
        let plt = tb.app().page_load_time.expect("page done").as_secs_f64();
        scalars.insert("mptcp_obj_mean_s".to_string(), Value::Number(cdf.mean()));
        scalars.insert("mptcp_obj_p99_s".to_string(), Value::Number(cdf.quantile(0.99)));
        scalars.insert("mptcp_plt_s".to_string(), Value::Number(plt));
        scalars.insert("mptcp_ooo_p99_s".to_string(), Value::Number(ooo.quantile(0.99)));
        scalars.insert(
            "mptcp_events".to_string(),
            Value::Number(tb.events_processed() as f64),
        );
    }
    {
        let tb = crate::quicweb::run_quic_web(wifi, lte, scheduler, seed);
        if !tb.app().done() {
            return Err("quic page load did not complete".to_string());
        }
        let completions: Vec<f64> = tb
            .world()
            .recorder
            .completed_requests()
            .map(|r| r.completion_time().expect("completed").as_secs_f64())
            .collect();
        let cdf = metrics::Cdf::from_samples(completions);
        let ooo = metrics::Cdf::from_samples(tb.world().recorder.ooo_delays_secs());
        let plt = tb.app().page_load_time.expect("page done").as_secs_f64();
        scalars.insert("quic_obj_mean_s".to_string(), Value::Number(cdf.mean()));
        scalars.insert("quic_obj_p99_s".to_string(), Value::Number(cdf.quantile(0.99)));
        scalars.insert("quic_plt_s".to_string(), Value::Number(plt));
        scalars.insert("quic_ooo_p99_s".to_string(), Value::Number(ooo.quantile(0.99)));
        scalars.insert(
            "quic_events".to_string(),
            Value::Number(tb.events_processed() as f64),
        );
    }

    let mut result = BTreeMap::new();
    result.insert("scalars".to_string(), Value::Object(scalars));
    result.insert("series".to_string(), Value::Object(BTreeMap::new()));
    Ok(Value::Object(result))
}

fn streaming_cell(cfg: &Value) -> Result<Value, String> {
    let wifi = num_field(cfg, "wifi_mbps")?;
    let lte = num_field(cfg, "lte_mbps")?;
    let video_secs = num_field(cfg, "video_secs")?;
    let seed = num_field(cfg, "seed")? as u64;
    let scheduler = parse_scheduler(str_field(cfg, "scheduler")?)?;
    let record_sndbuf = cfg
        .get("record_sndbuf")
        .map(|v| v.as_bool().ok_or("\"record_sndbuf\" must be a bool"))
        .transpose()?
        .unwrap_or(false);

    let mut run_cfg = StreamingConfig::new(wifi, lte, scheduler, seed);
    run_cfg.video_secs = video_secs;
    if let Some(cc) = cfg.get("cc") {
        run_cfg.cc = parse_cc(cc.as_str().ok_or("\"cc\" must be a string")?)?;
    }
    if let Some(v) = cfg.get("cwnd_conservation") {
        run_cfg.cwnd_conservation =
            v.as_bool().ok_or("\"cwnd_conservation\" must be a bool")?;
    }
    if let Some(v) = cfg.get("subflows_per_interface") {
        run_cfg.subflows_per_interface =
            v.as_f64().ok_or("\"subflows_per_interface\" must be a number")? as usize;
    }
    if record_sndbuf {
        run_cfg.recorder = RecorderConfig { sndbuf_traces: true, ..RecorderConfig::default() };
    }
    run_cfg.scenario = build_scenario(cfg, video_secs)?;

    let out = run_streaming(&run_cfg);

    let mut scalars = BTreeMap::new();
    let mut put = |k: &str, v: f64| {
        scalars.insert(k.to_string(), Value::Number(v));
    };
    put("avg_bitrate", out.avg_bitrate);
    put("avg_throughput", out.avg_throughput);
    put("ideal_bitrate", out.ideal_bitrate);
    put("fast_fraction", out.fast_fraction);
    put("fast_iw_resets", out.fast_iw_resets as f64);
    put("events_processed", out.events_processed as f64);

    let mut series = BTreeMap::new();
    series.insert(
        "chunk_throughputs".to_string(),
        Value::Array(
            out.chunk_throughputs
                .iter()
                .map(|&(t, v)| Value::Array(vec![Value::Number(t), Value::Number(v)]))
                .collect(),
        ),
    );
    if record_sndbuf {
        // Pre-render Fig 3's rows here: the thinning/lookup pipeline stays
        // beside the recorder types, and the cached form is already the
        // exact figure text (floats can round-trip, but keeping the cache
        // in render space removes the question entirely).
        if out.sndbuf_traces.len() < 2 {
            return Err("sndbuf recording produced fewer than 2 traces".to_string());
        }
        let wifi = out.sndbuf_traces[0].thin(200);
        let lte = &out.sndbuf_traces[1];
        let rows = wifi
            .points
            .iter()
            .map(|&(t, w)| {
                let l = lte.value_at(t).unwrap_or(0.0);
                Value::String(format!("{t:.1}\t{w:.1}\t{l:.1}"))
            })
            .collect();
        series.insert("sndbuf_rows".to_string(), Value::Array(rows));
    }

    let mut result = BTreeMap::new();
    result.insert("scalars".to_string(), Value::Object(scalars));
    result.insert("series".to_string(), Value::Object(series));
    Ok(Value::Object(result))
}

/// Build the run's scenario. `None` when the config names neither a
/// scenario nor a loss process (matching the legacy static runs); an
/// explicit `{"kind": "static"}` yields `Some(empty)` exactly like the
/// legacy ladder code's zero rung.
fn build_scenario(cfg: &Value, video_secs: f64) -> Result<Option<Scenario>, String> {
    let scenario_doc = cfg.get("scenario");
    let loss_doc = cfg.get("loss");
    if scenario_doc.is_none() && loss_doc.is_none() {
        return Ok(None);
    }

    let mut s = match scenario_doc {
        None => Scenario::new(),
        Some(doc) => match str_field(doc, "kind")? {
            "static" => Scenario::new(),
            "handover" => {
                // Same cycle generation as dyn_handover: outages every
                // 60 s from t=30 s up to the run_streaming wall horizon.
                let outage = num_field(doc, "outage_secs")? as u64;
                let wall_horizon = (video_secs * 30.0) as u64 + 300;
                handover_scenario(outage, wall_horizon)
            }
            "random_rates" => {
                // §5.3's random-walk process on both interfaces, with the
                // fig16/fig17 horizon formula.
                let wifi_seed = num_field(doc, "wifi_seed")? as u64;
                let lte_seed = num_field(doc, "lte_seed")? as u64;
                let interval = num_field(doc, "mean_interval_secs")? as u64;
                let horizon = Time::from_secs((video_secs * 4.0) as u64 + 300);
                Scenario::new()
                    .random_rates(0, wifi_seed, secs(interval), &VARIABLE_BW_SET, horizon)
                    .random_rates(1, lte_seed, secs(interval), &VARIABLE_BW_SET, horizon)
            }
            other => return Err(format!("unknown scenario kind {other:?}")),
        },
    };

    if let Some(doc) = loss_doc {
        // Gilbert–Elliott loss on the fast (LTE) interface from t=0, the
        // dyn_burstloss regime; zero average loss means no loss process.
        let avg = num_field(doc, "avg")?;
        let burst = num_field(doc, "mean_burst")?;
        if avg > 0.0 {
            s = s.loss(
                Time::ZERO,
                1,
                LossModel::GilbertElliott(GilbertElliott::bursty(avg, burst)),
            );
        }
    }
    Ok(Some(s))
}

fn parse_scheduler(name: &str) -> Result<SchedulerKind, String> {
    Ok(match name {
        "default" => SchedulerKind::Default,
        "ecf" => SchedulerKind::Ecf,
        "daps" => SchedulerKind::Daps,
        "blest" => SchedulerKind::Blest,
        "sttf" => SchedulerKind::Sttf,
        "round_robin" => SchedulerKind::RoundRobin,
        other => return Err(format!("unknown scheduler {other:?}")),
    })
}

fn parse_cc(name: &str) -> Result<CcKind, String> {
    Ok(match name {
        "reno" => CcKind::Reno,
        "lia" => CcKind::Lia,
        "olia" => CcKind::Olia,
        other => return Err(format!("unknown cc {other:?}")),
    })
}

fn str_field<'v>(doc: &'v Value, key: &str) -> Result<&'v str, String> {
    doc.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("cell config needs a string {key:?}"))
}

fn num_field(doc: &Value, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("cell config needs a number {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::json;

    #[test]
    fn minimal_streaming_cell_runs() {
        let cfg = json::parse(
            r#"{"workload": "streaming", "wifi_mbps": 4.2, "lte_mbps": 4.2,
                "scheduler": "ecf", "video_secs": 30, "seed": 1}"#,
        )
        .unwrap();
        let result = execute(&cfg).unwrap();
        let scalars = result.get("scalars").unwrap();
        assert!(scalars.get("avg_bitrate").and_then(Value::as_f64).unwrap() > 0.0);
        assert_eq!(
            scalars.get("ideal_bitrate").and_then(Value::as_f64),
            Some(8.4)
        );
        let chunks = result
            .get("series")
            .and_then(|s| s.get("chunk_throughputs"))
            .and_then(Value::as_array)
            .unwrap();
        assert!(!chunks.is_empty());
    }

    #[test]
    fn typos_fail_loudly() {
        let base = r#"{"workload": "streaming", "wifi_mbps": 1.0, "lte_mbps": 2.0,
                       "scheduler": "ecf", "video_secs": 30, "seed": 1}"#;
        let bad_sched = base.replace("\"ecf\"", "\"ecff\"");
        assert!(execute(&json::parse(&bad_sched).unwrap())
            .unwrap_err()
            .contains("unknown scheduler"));
        let bad_workload = base.replace("streaming", "browsing");
        assert!(execute(&json::parse(&bad_workload).unwrap())
            .unwrap_err()
            .contains("unknown workload"));
        let bad_cc = base.replace("\"seed\": 1", "\"seed\": 1, \"cc\": \"cubic\"");
        assert!(execute(&json::parse(&bad_cc).unwrap())
            .unwrap_err()
            .contains("unknown cc"));
        let bad_kind = base
            .replace("\"seed\": 1", "\"seed\": 1, \"scenario\": {\"kind\": \"warp\"}");
        assert!(execute(&json::parse(&bad_kind).unwrap())
            .unwrap_err()
            .contains("unknown scenario kind"));
    }

    #[test]
    fn scenario_is_none_only_for_pure_static_cells() {
        let plain = json::parse(
            r#"{"workload": "streaming", "wifi_mbps": 1.0, "lte_mbps": 2.0,
                "scheduler": "ecf", "video_secs": 30, "seed": 1}"#,
        )
        .unwrap();
        assert!(build_scenario(&plain, 30.0).unwrap().is_none());
        let loss = json::parse(r#"{"loss": {"avg": 0.01, "mean_burst": 8}}"#).unwrap();
        let s = build_scenario(&loss, 30.0).unwrap().unwrap();
        assert!(!s.is_static());
        // Zero average loss: Some(empty), exactly the legacy zero rung.
        let zero = json::parse(r#"{"loss": {"avg": 0.0, "mean_burst": 8}}"#).unwrap();
        assert!(build_scenario(&zero, 30.0).unwrap().unwrap().is_static());
    }
}
