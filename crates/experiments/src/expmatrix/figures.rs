//! Figure assembly: fold cached + fresh cell results into report text.
//!
//! Renderers consume results by cell index in the fixed expansion order
//! (never by completion order) and read grid coordinates from the spec's
//! [`BlockShape`]s, so the same renderer serves any ladder size the spec
//! resolves to. The ported figures (`fig3`, `fig16`, `fig17`,
//! `dyn_handover`, `dyn_burstloss`) keep the legacy headers, column
//! formats, and float summation order verbatim — the equivalence tests
//! compare their output byte-for-byte against the pre-matrix code paths.

use metrics::render_table;
use testkit::json::Value;

use super::spec::{BlockShape, Expansion, Spec};

/// Render the spec's figure from the per-cell results.
pub fn render(spec: &Spec, exp: &Expansion, results: &[Value]) -> Result<String, String> {
    if results.len() != exp.cells.len() {
        return Err(format!(
            "figure {}: {} results for {} cells",
            spec.figure,
            results.len(),
            exp.cells.len()
        ));
    }
    match spec.figure.as_str() {
        "fig3" => fig3(exp, results),
        "fig16" => fig16(exp, results),
        "fig17" => fig17(exp, results),
        "dyn_handover" => dyn_handover(exp, results),
        "dyn_burstloss" => dyn_burstloss(exp, results),
        "quic_web" => quic_web(exp, results),
        "generic" => generic(spec, exp, results),
        other => Err(format!("unknown figure renderer {other:?}")),
    }
}

/// One scalar out of a cell result.
fn scalar(results: &[Value], i: usize, key: &str) -> Result<f64, String> {
    results
        .get(i)
        .and_then(|r| r.get("scalars"))
        .and_then(|s| s.get(key))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("cell {i}: result lacks scalar {key:?}"))
}

/// One numeric field out of a cell's *config* (for row labels).
fn config_num(exp: &Expansion, i: usize, path: &[&str]) -> Result<f64, String> {
    let mut v = &exp.cells[i].config;
    for key in path {
        v = v
            .get(key)
            .ok_or_else(|| format!("cell {i}: config lacks {}", path.join(".")))?;
    }
    v.as_f64().ok_or_else(|| format!("cell {i}: {} is not a number", path.join(".")))
}

/// The single block of a single-block spec, with its axis rank checked.
fn sole_block<'e>(exp: &'e Expansion, figure: &str, axes: usize) -> Result<&'e BlockShape, String> {
    if exp.blocks.len() != 1 || exp.blocks[0].axis_lens.len() != axes {
        return Err(format!(
            "{figure} expects one block with {axes} axes, got {:?}",
            exp.blocks.iter().map(|b| b.axis_lens.clone()).collect::<Vec<_>>()
        ));
    }
    Ok(&exp.blocks[0])
}

/// Fig 3: the single sndbuf-trace cell; rows were pre-rendered by the
/// cell executor.
fn fig3(exp: &Expansion, results: &[Value]) -> Result<String, String> {
    if exp.cells.len() != 1 {
        return Err(format!("fig3 expects exactly 1 cell, got {}", exp.cells.len()));
    }
    let rows = results[0]
        .get("series")
        .and_then(|s| s.get("sndbuf_rows"))
        .and_then(Value::as_array)
        .ok_or("fig3: result lacks series.sndbuf_rows")?;
    let mut s = String::from(
        "Fig 3: Send-buffer occupancy (KB, incl. in-flight), 0.3 Mbps WiFi / 8.6 Mbps LTE\n\
         (paper: LTE empties quickly and sits idle while WiFi stays occupied)\n\n\
         time_s\twifi_KB\tlte_KB\n",
    );
    for row in rows {
        let row = row.as_str().ok_or("fig3: sndbuf_rows entry is not a string")?;
        s.push_str(row);
        s.push('\n');
    }
    Ok(s)
}

/// Fig 16: scenario × scheduler grid of average throughputs.
fn fig16(exp: &Expansion, results: &[Value]) -> Result<String, String> {
    let block = sole_block(exp, "fig16", 2)?;
    let (n_sc, n_k) = (block.axis_lens[0], block.axis_lens[1]);
    let tps: Vec<f64> = (0..block.len)
        .map(|i| scalar(results, block.start + i, "avg_throughput"))
        .collect::<Result<_, _>>()?;
    let mut s = String::from(
        "Fig 16: Streaming throughput under random bandwidth changes (mean interval 40 s)\n\
         (paper: ECF highest in every scenario; BLEST ~default)\n\n",
    );
    let mut rows = Vec::new();
    for sc in 0..n_sc {
        let mut row = vec![format!("{}", sc + 1)];
        for k in 0..n_k {
            row.push(format!("{:.2}", tps[sc * n_k + k]));
        }
        rows.push(row);
    }
    s.push_str(&render_table(&["scenario", "default", "blest", "ecf"], &rows));
    let mean = |k: usize| {
        metrics::mean(&(0..n_sc).map(|sc| tps[sc * n_k + k]).collect::<Vec<_>>())
    };
    s.push_str(&format!(
        "\nmeans: default={:.2}  blest={:.2}  ecf={:.2} Mbps\n",
        mean(0),
        mean(1),
        mean(2)
    ));
    Ok(s)
}

/// Fig 17: the two chunk-throughput traces (default, ECF) zipped.
fn fig17(exp: &Expansion, results: &[Value]) -> Result<String, String> {
    if exp.cells.len() != 2 {
        return Err(format!("fig17 expects exactly 2 cells, got {}", exp.cells.len()));
    }
    let trace = |i: usize| -> Result<Vec<f64>, String> {
        results[i]
            .get("series")
            .and_then(|s| s.get("chunk_throughputs"))
            .and_then(Value::as_array)
            .ok_or_else(|| format!("fig17: cell {i} lacks series.chunk_throughputs"))?
            .iter()
            .map(|p| {
                p.as_array()
                    .and_then(|xy| xy.get(1))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("fig17: cell {i} has a malformed chunk point"))
            })
            .collect()
    };
    let (default, ecf) = (trace(0)?, trace(1)?);
    let mut s = String::from(
        "Fig 17: Per-chunk throughput, random scenario 6 (default vs ECF)\n\
         (paper: ECF matches or beats default on every chunk, up to 2x)\n\n\
         chunk\tdefault_Mbps\tecf_Mbps\n",
    );
    for (i, (d, e)) in default.iter().zip(&ecf).enumerate() {
        s.push_str(&format!("{i}\t{d:.2}\t{e:.2}\n"));
    }
    Ok(s)
}

/// dyn_handover: outage-ladder × scheduler table plus ladder means.
fn dyn_handover(exp: &Expansion, results: &[Value]) -> Result<String, String> {
    let block = sole_block(exp, "dyn_handover", 2)?;
    let (n_d, n_k, per_cell) = (block.axis_lens[0], block.axis_lens[1], block.seeds);
    let bitrates: Vec<f64> = (0..block.len)
        .map(|i| scalar(results, block.start + i, "avg_bitrate"))
        .collect::<Result<_, _>>()?;
    let mut s = String::from(
        "dyn_handover: streaming bitrate under periodic LTE blackouts\n\
         (1.7 Mbps WiFi + 8.6 Mbps LTE; LTE dark for the given duration\n\
          every 60 s; mean encoded bitrate in Mbps, higher is better)\n\n",
    );
    let mut rows = Vec::new();
    for di in 0..n_d {
        let first = block.start + di * n_k * per_cell;
        let d = config_num(exp, first, &["scenario", "outage_secs"])? as u64;
        let mut row = vec![format!("{d}")];
        for ki in 0..n_k {
            let base = (di * n_k + ki) * per_cell;
            row.push(format!("{:.3}", metrics::mean(&bitrates[base..base + per_cell])));
        }
        rows.push(row);
    }
    s.push_str(&render_table(&["outage_s", "default", "blest", "ecf"], &rows));
    let col_mean = |ki: usize| {
        let vals: Vec<f64> = (0..n_d)
            .flat_map(|di| {
                let base = (di * n_k + ki) * per_cell;
                bitrates[base..base + per_cell].to_vec()
            })
            .collect();
        metrics::mean(&vals)
    };
    s.push_str(&format!(
        "\nladder means: default={:.3}  blest={:.3}  ecf={:.3} Mbps\n",
        col_mean(0),
        col_mean(1),
        col_mean(2)
    ));
    Ok(s)
}

/// dyn_burstloss: the two loss sweeps (average loss, then burst length).
fn dyn_burstloss(exp: &Expansion, results: &[Value]) -> Result<String, String> {
    if exp.blocks.len() != 2 {
        return Err(format!("dyn_burstloss expects 2 blocks, got {}", exp.blocks.len()));
    }
    let sweep = |block: &BlockShape| -> Result<Vec<f64>, String> {
        (0..block.len)
            .map(|i| scalar(results, block.start + i, "avg_throughput"))
            .collect()
    };
    let table = |block: &BlockShape,
                 values: &[f64],
                 label: &dyn Fn(usize) -> Result<String, String>|
     -> Result<Vec<Vec<String>>, String> {
        let (n_l, n_k, per_cell) = (block.axis_lens[0], block.axis_lens[1], block.seeds);
        let mut rows = Vec::new();
        for li in 0..n_l {
            let mut row = vec![label(li)?];
            for ki in 0..n_k {
                let base = (li * n_k + ki) * per_cell;
                row.push(format!("{:.3}", metrics::mean(&values[base..base + per_cell])));
            }
            rows.push(row);
        }
        Ok(rows)
    };
    let rung = |block: &BlockShape, li: usize| {
        block.start + li * block.axis_lens[1] * block.seeds
    };

    let (loss_block, burst_block) = (&exp.blocks[0], &exp.blocks[1]);
    let mut s = String::from(
        "dyn_burstloss: streaming throughput under bursty LTE loss\n\
         (1.7 Mbps WiFi + 8.6 Mbps LTE; Gilbert-Elliott two-state loss on\n\
          the LTE forward link; mean chunk throughput in Mbps)\n\n\
         Sweep 1: average loss at mean burst length 8 packets\n",
    );
    s.push_str(&render_table(
        &["avg_loss_%", "default", "blest", "ecf"],
        &table(loss_block, &sweep(loss_block)?, &|li| {
            let avg = config_num(exp, rung(loss_block, li), &["loss", "avg"])?;
            Ok(format!("{:.1}", avg * 100.0))
        })?,
    ));
    s.push_str("\nSweep 2: burst length at fixed 1% average loss\n");
    s.push_str(&render_table(
        &["mean_burst_pkts", "default", "blest", "ecf"],
        &table(burst_block, &sweep(burst_block)?, &|li| {
            let burst = config_num(exp, rung(burst_block, li), &["loss", "mean_burst"])?;
            Ok(format!("{burst:.0}"))
        })?,
    ));
    Ok(s)
}

/// quic_web: bandwidth-config × scheduler grid; every cell already carries
/// both transports, so each grid point renders as a paired row.
fn quic_web(exp: &Expansion, results: &[Value]) -> Result<String, String> {
    let block = sole_block(exp, "quic_web", 2)?;
    let (n_cfg, n_k, per_cell) = (block.axis_lens[0], block.axis_lens[1], block.seeds);
    let mut s = String::from(
        "quic_web: 107-object page, 1 MPQUIC connection (107 streams) vs\n\
         6 MPTCP connections, same packet scheduler on both transports\n\
         (page-load time and per-object p99 in seconds; OOO p99 is the\n\
          reordering tail — per-stream reassembly should shrink it)\n",
    );
    for ci in 0..n_cfg {
        let first = block.start + ci * n_k * per_cell;
        let wifi = config_num(exp, first, &["wifi_mbps"])?;
        let lte = config_num(exp, first, &["lte_mbps"])?;
        s.push_str(&format!("\n--- {wifi:.1} Mbps WiFi / {lte:.1} Mbps LTE ---\n"));
        let mut rows = Vec::new();
        for ki in 0..n_k {
            let base = block.start + (ci * n_k + ki) * per_cell;
            let sched = exp.cells[base]
                .config
                .get("scheduler")
                .and_then(Value::as_str)
                .unwrap_or("-")
                .to_string();
            let mean_of = |key: &str| -> Result<f64, String> {
                let vals: Vec<f64> = (0..per_cell)
                    .map(|si| scalar(results, base + si, key))
                    .collect::<Result<_, _>>()?;
                Ok(metrics::mean(&vals))
            };
            rows.push(vec![
                sched,
                format!("{:.3}", mean_of("mptcp_plt_s")?),
                format!("{:.3}", mean_of("quic_plt_s")?),
                format!("{:.3}", mean_of("mptcp_obj_p99_s")?),
                format!("{:.3}", mean_of("quic_obj_p99_s")?),
                format!("{:.4}", mean_of("mptcp_ooo_p99_s")?),
                format!("{:.4}", mean_of("quic_ooo_p99_s")?),
            ]);
        }
        s.push_str(&render_table(
            &[
                "scheduler",
                "mptcp_plt_s",
                "quic_plt_s",
                "mptcp_p99_s",
                "quic_p99_s",
                "mptcp_ooo_p99",
                "quic_ooo_p99",
            ],
            &rows,
        ));
    }
    Ok(s)
}

/// Fallback renderer for new specs: one row per cell with its headline
/// scalars, in expansion order. Deterministic, shape-agnostic.
fn generic(spec: &Spec, exp: &Expansion, results: &[Value]) -> Result<String, String> {
    let mut s = format!("{}: {} cells\n", spec.name, exp.cells.len());
    s.push_str("cell\tscheduler\tcc\tseed\tavg_bitrate\tavg_throughput\n");
    for i in 0..exp.cells.len() {
        let cfg = &exp.cells[i].config;
        let label = |key: &str| {
            cfg.get(key).and_then(Value::as_str).unwrap_or("-").to_string()
        };
        let seed = config_num(exp, i, &["seed"])? as u64;
        s.push_str(&format!(
            "{i}\t{}\t{}\t{seed}\t{:.3}\t{:.3}\n",
            label("scheduler"),
            label("cc"),
            scalar(results, i, "avg_bitrate")?,
            scalar(results, i, "avg_throughput")?,
        ));
    }
    Ok(s)
}
