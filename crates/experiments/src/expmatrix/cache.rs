//! On-disk result cache, content-addressed by cell-key digest.
//!
//! One JSON file per cell, named `<hex16-digest>.json`, holding:
//!
//! ```json
//! { "schema": 1,
//!   "key": { "cell": {...}, "contract": {...} },
//!   "result": {...},
//!   "result_digest": "a1b2c3d4e5f60789" }
//! ```
//!
//! The cache trusts nothing it reads back. A load re-verifies, in order:
//! the file parses, the entry schema matches, the stored key's canonical
//! digest equals the filename digest (so a renamed or hand-edited entry
//! can't masquerade), the stored key equals the probe key byte-for-byte
//! (defense against digest collisions), and the stored result's canonical
//! digest matches `result_digest` (so truncation or bit-rot inside the
//! result is caught). Any failure is [`Lookup::Invalid`] — treated as a
//! miss, never a panic — and the next store overwrites the bad entry.
//!
//! Stores write to a temp file in the same directory and rename into
//! place, so concurrent readers only ever see whole entries.

use std::path::{Path, PathBuf};

use testkit::digest::{canonical_digest, hex16};
use testkit::json::{self, canonical, Value};

use super::CACHE_SCHEMA;

/// Outcome of probing the cache for one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A validated entry; the payload is the cell's cached result.
    Hit(Value),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed verification (corrupt, truncated, or
    /// written by a different layout); callers treat it as a miss.
    Invalid,
}

/// A cache directory. Cheap to construct; the directory is created lazily
/// on the first store.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// A cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache { dir: dir.into() }
    }

    /// Path of the entry for a digest.
    pub fn entry_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{}.json", hex16(digest)))
    }

    /// Probe for a cell's result, verifying the entry end to end.
    pub fn load(&self, digest: u64, key: &Value) -> Lookup {
        let path = self.entry_path(digest);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable (permissions, I/O error): unusable entry.
            Err(_) => return Lookup::Invalid,
        };
        match verify_entry(&text, digest, key) {
            Some(result) => Lookup::Hit(result),
            None => Lookup::Invalid,
        }
    }

    /// Store a cell's result, creating the cache directory if needed.
    pub fn store(&self, digest: u64, key: &Value, result: &Value) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("create {}: {e}", self.dir.display()))?;
        let mut entry = std::collections::BTreeMap::new();
        entry.insert("schema".to_string(), Value::Number(CACHE_SCHEMA));
        entry.insert("key".to_string(), key.clone());
        entry.insert("result".to_string(), result.clone());
        entry.insert(
            "result_digest".to_string(),
            Value::String(hex16(canonical_digest(result))),
        );
        let text = canonical(&Value::Object(entry));

        let path = self.entry_path(digest);
        let tmp = tmp_path(&path);
        std::fs::write(&tmp, text.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("rename {}: {e}", path.display()))?;
        Ok(())
    }
}

/// Sibling temp path for atomic-rename stores.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Full verification chain; `None` on any mismatch.
fn verify_entry(text: &str, digest: u64, key: &Value) -> Option<Value> {
    let entry = json::parse(text).ok()?;
    if entry.get("schema").and_then(Value::as_f64) != Some(CACHE_SCHEMA) {
        return None;
    }
    let stored_key = entry.get("key")?;
    if canonical_digest(stored_key) != digest || stored_key != key {
        return None;
    }
    let result = entry.get("result")?;
    let declared = entry.get("result_digest").and_then(Value::as_str)?;
    if hex16(canonical_digest(result)) != declared {
        return None;
    }
    Some(result.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("expmatrix-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (u64, Value, Value) {
        let key = json::parse(r#"{"cell":{"seed":1},"contract":{"v":1}}"#).unwrap();
        let digest = canonical_digest(&key);
        let result = json::parse(r#"{"scalars":{"avg":2.5}}"#).unwrap();
        (digest, key, result)
    }

    #[test]
    fn roundtrip_and_miss() {
        let dir = scratch("roundtrip");
        let cache = Cache::new(&dir);
        let (digest, key, result) = sample();
        assert_eq!(cache.load(digest, &key), Lookup::Miss);
        cache.store(digest, &key, &result).unwrap();
        assert_eq!(cache.load(digest, &key), Lookup::Hit(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_invalid_not_panic() {
        let dir = scratch("truncate");
        let cache = Cache::new(&dir);
        let (digest, key, result) = sample();
        cache.store(digest, &key, &result).unwrap();
        let path = cache.entry_path(digest);
        let text = std::fs::read_to_string(&path).unwrap();
        for cut in [0, 1, text.len() / 2, text.len() - 1] {
            std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            assert_eq!(cache.load(digest, &key), Lookup::Invalid, "cut at {cut}");
        }
        // Re-store repairs the entry.
        cache.store(digest, &key, &result).unwrap();
        assert_eq!(cache.load(digest, &key), Lookup::Hit(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_result_is_invalid() {
        let dir = scratch("tamper");
        let cache = Cache::new(&dir);
        let (digest, key, result) = sample();
        cache.store(digest, &key, &result).unwrap();
        let path = cache.entry_path(digest);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("2.5", "9.9")).unwrap();
        assert_eq!(cache.load(digest, &key), Lookup::Invalid);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_under_wrong_digest_is_invalid() {
        // A key collision (or a renamed file) must not serve a foreign
        // result: the stored key is compared in full.
        let dir = scratch("collide");
        let cache = Cache::new(&dir);
        let (digest, key, result) = sample();
        cache.store(digest, &key, &result).unwrap();
        let other_key = json::parse(r#"{"cell":{"seed":2},"contract":{"v":1}}"#).unwrap();
        let other_digest = canonical_digest(&other_key);
        std::fs::rename(cache.entry_path(digest), cache.entry_path(other_digest)).unwrap();
        assert_eq!(cache.load(other_digest, &other_key), Lookup::Invalid);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
