//! Experiment specs: JSON schema, effort resolution, and deterministic
//! expansion into cells.
//!
//! A spec is a JSON document (parsed with `testkit::json`):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "name": "dyn_burstloss",
//!   "figure": "dyn_burstloss",
//!   "base": { "workload": "streaming", "wifi_mbps": 1.7, "lte_mbps": 8.6,
//!             "video_secs": {"full": 600, "quick": 60} },
//!   "blocks": [
//!     { "axes": [
//!         {"key": "loss", "values": [ {"loss": {...}}, ... ]},
//!         {"key": "scheduler", "values": ["default", "blest", "ecf"]}
//!       ],
//!       "seeds": {"base": 200, "count": {"full": 5, "quick": 1}} }
//!   ]
//! }
//! ```
//!
//! * Any node of the form `{"full": X, "quick": Y}` is an *effort switch*
//!   resolved during expansion, so one spec serves both report and smoke
//!   sizing while the digested cell configs contain only concrete values.
//! * A block expands as nested loops over its axes in declaration order
//!   (first axis outermost) with the seed loop innermost — exactly the
//!   iteration order of the legacy sweep code it replaces.
//! * An axis value that is an object is merged into the cell config
//!   (letting one axis set several keys, e.g. a scenario with its seeds);
//!   any other value is stored under the axis `key`.
//! * Blocks concatenate in order. The resulting cell list *is* the merge
//!   order: figures consume results by cell index, never by completion
//!   order, which is what makes output independent of sharding.

use std::collections::BTreeMap;

use testkit::digest::canonical_digest;
use testkit::json::{self, Value};

use super::contract;
use crate::common::Effort;

/// A parsed (but not yet expanded) experiment spec.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Spec name; also the results file stem (`results/<name>.txt`).
    pub name: String,
    /// Figure renderer id (see [`super::figures`]).
    pub figure: String,
    /// The whole document, for expansion.
    pub doc: Value,
}

impl Spec {
    /// Parse a spec document.
    pub fn from_json(text: &str) -> Result<Spec, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(Value::as_f64);
        if schema != Some(1.0) {
            return Err(format!("spec schema must be 1, got {schema:?}"));
        }
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or("spec needs a string \"name\"")?
            .to_string();
        let figure = doc
            .get("figure")
            .and_then(Value::as_str)
            .ok_or("spec needs a string \"figure\"")?
            .to_string();
        if doc.get("blocks").and_then(Value::as_array).is_none() {
            return Err("spec needs an array \"blocks\"".to_string());
        }
        Ok(Spec { name, figure, doc })
    }

    /// Load a spec from a file, prefixing errors with the path.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Spec, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Spec::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// One expanded grid point: a concrete, effort-resolved run config, its
/// full cache key (config + contract), and the key's digest.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The resolved run configuration (what [`super::cells::execute`] runs).
    pub config: Value,
    /// `{"cell": config, "contract": ...}` — the digested key material.
    pub key: Value,
    /// FNV-1a64 over the canonical serialization of `key`.
    pub digest: u64,
}

/// The shape of one expanded block, for figure renderers that need to map
/// the flat cell list back onto grid coordinates.
#[derive(Debug, Clone)]
pub struct BlockShape {
    /// Index of the block's first cell in the flat list.
    pub start: usize,
    /// Number of cells in the block.
    pub len: usize,
    /// Length of each axis, in declaration order (outermost first).
    pub axis_lens: Vec<usize>,
    /// Seeds per grid point (the innermost stride); 1 when the block has
    /// no seed loop.
    pub seeds: usize,
}

/// A fully expanded spec: cells in merge order plus per-block shapes.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Every cell, in the fixed merge order.
    pub cells: Vec<Cell>,
    /// One entry per spec block.
    pub blocks: Vec<BlockShape>,
}

/// Is this object an effort switch (`{"full": .., "quick": ..}`)?
fn effort_branch(m: &BTreeMap<String, Value>, effort: Effort) -> Option<&Value> {
    if m.len() == 2 && m.contains_key("full") && m.contains_key("quick") {
        Some(match effort {
            Effort::Full => &m["full"],
            Effort::Quick => &m["quick"],
        })
    } else {
        None
    }
}

/// Recursively resolve effort switches, leaving everything else intact.
fn resolve(v: &Value, effort: Effort) -> Value {
    match v {
        Value::Object(m) => {
            if let Some(branch) = effort_branch(m, effort) {
                return resolve(branch, effort);
            }
            Value::Object(
                m.iter().map(|(k, val)| (k.clone(), resolve(val, effort))).collect(),
            )
        }
        Value::Array(items) => {
            Value::Array(items.iter().map(|x| resolve(x, effort)).collect())
        }
        other => other.clone(),
    }
}

/// Merge `frag` (must be an object) into `into`, overwriting keys.
fn merge(into: &mut BTreeMap<String, Value>, frag: &Value) -> Result<(), String> {
    let obj = frag.as_object().ok_or("merge fragment must be an object")?;
    for (k, v) in obj {
        into.insert(k.clone(), v.clone());
    }
    Ok(())
}

/// Expand a spec at the given effort into its deterministic cell list.
pub fn expand(spec: &Spec, effort: Effort) -> Result<Expansion, String> {
    let contract = contract();
    let base = match spec.doc.get("base") {
        Some(b) => resolve(b, effort),
        None => Value::Object(BTreeMap::new()),
    };
    let base = base.as_object().ok_or("\"base\" must be an object")?.clone();

    let mut cells = Vec::new();
    let mut blocks = Vec::new();
    let block_docs = spec.doc.get("blocks").and_then(Value::as_array).unwrap_or(&[]);
    for (bi, block) in block_docs.iter().enumerate() {
        let err = |m: String| format!("blocks[{bi}]: {m}");
        let mut block_base = base.clone();
        if let Some(frag) = block.get("base") {
            merge(&mut block_base, &resolve(frag, effort)).map_err(err)?;
        }

        // Axes: (key, resolved values) in declaration order.
        let mut axes: Vec<(String, Vec<Value>)> = Vec::new();
        if let Some(axis_docs) = block.get("axes") {
            let axis_docs =
                axis_docs.as_array().ok_or_else(|| err("\"axes\" must be an array".into()))?;
            for (ai, axis) in axis_docs.iter().enumerate() {
                let key = axis
                    .get("key")
                    .and_then(Value::as_str)
                    .ok_or_else(|| err(format!("axes[{ai}] needs a string \"key\"")))?
                    .to_string();
                let values = resolve(
                    axis.get("values")
                        .ok_or_else(|| err(format!("axes[{ai}] needs \"values\"")))?,
                    effort,
                );
                let values = values
                    .as_array()
                    .ok_or_else(|| err(format!("axes[{ai}].values must resolve to an array")))?
                    .to_vec();
                if values.is_empty() {
                    return Err(err(format!("axes[{ai}].values is empty")));
                }
                axes.push((key, values));
            }
        }

        // Seeds: optional innermost loop.
        let seeds: Vec<Option<u64>> = match block.get("seeds") {
            None => vec![None],
            Some(s) => {
                let s = resolve(s, effort);
                let base = s
                    .get("base")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| err("\"seeds\" needs a number \"base\"".into()))?;
                let count = s
                    .get("count")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| err("\"seeds\" needs a number \"count\"".into()))?;
                if base < 0.0 || base.fract() != 0.0 || count < 1.0 || count.fract() != 0.0 {
                    return Err(err("\"seeds\" base/count must be non-negative integers".into()));
                }
                (0..count as u64).map(|i| Some(base as u64 + i)).collect()
            }
        };

        let start = cells.len();
        // Odometer over axes (first axis outermost), seeds innermost.
        let axis_lens: Vec<usize> = axes.iter().map(|(_, v)| v.len()).collect();
        let grid_points: usize = axis_lens.iter().product::<usize>().max(1);
        for point in 0..grid_points {
            // Decompose `point` into per-axis indices, first axis slowest.
            let mut idx = vec![0usize; axes.len()];
            let mut rem = point;
            for a in (0..axes.len()).rev() {
                idx[a] = rem % axis_lens[a];
                rem /= axis_lens[a];
            }
            for &seed in &seeds {
                let mut cfg = block_base.clone();
                for (a, (key, values)) in axes.iter().enumerate() {
                    let v = &values[idx[a]];
                    match v {
                        Value::Object(_) => merge(&mut cfg, v).map_err(&err)?,
                        other => {
                            cfg.insert(key.clone(), other.clone());
                        }
                    }
                }
                if let Some(seed) = seed {
                    cfg.insert("seed".to_string(), Value::Number(seed as f64));
                }
                if !cfg.contains_key("seed") {
                    return Err(err(
                        "cell has no \"seed\" (add a seeds block or seed-bearing axis)".into(),
                    ));
                }
                let config = Value::Object(cfg);
                let mut key = BTreeMap::new();
                key.insert("cell".to_string(), config.clone());
                key.insert("contract".to_string(), contract.clone());
                let key = Value::Object(key);
                let digest = canonical_digest(&key);
                cells.push(Cell { config, key, digest });
            }
        }
        blocks.push(BlockShape {
            start,
            len: cells.len() - start,
            axis_lens,
            seeds: seeds.len(),
        });
    }
    if cells.is_empty() {
        return Err("spec expanded to zero cells".to_string());
    }
    Ok(Expansion { cells, blocks })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"{
        "schema": 1, "name": "t", "figure": "generic",
        "base": {"workload": "streaming", "wifi_mbps": 1.0, "lte_mbps": 2.0,
                 "video_secs": {"full": 100, "quick": 10}},
        "blocks": [
            {"axes": [
                {"key": "scheduler", "values": ["default", "ecf"]},
                {"key": "cc", "values": {"full": ["lia", "olia", "reno"],
                                          "quick": ["lia"]}}
             ],
             "seeds": {"base": 40, "count": {"full": 3, "quick": 2}}}
        ]
    }"#;

    #[test]
    fn expansion_order_is_axes_then_seeds() {
        let spec = Spec::from_json(TINY).unwrap();
        let exp = expand(&spec, Effort::Quick).unwrap();
        assert_eq!(exp.cells.len(), 4); // 2 scheds × 1 cc × 2 seeds
        let get = |i: usize, k: &str| exp.cells[i].config.get(k).cloned().unwrap();
        assert_eq!(get(0, "scheduler"), Value::String("default".into()));
        assert_eq!(get(0, "seed"), Value::Number(40.0));
        assert_eq!(get(1, "seed"), Value::Number(41.0));
        assert_eq!(get(2, "scheduler"), Value::String("ecf".into()));
        // Effort switch resolved into concrete numbers.
        assert_eq!(get(0, "video_secs"), Value::Number(10.0));
        let shape = &exp.blocks[0];
        assert_eq!((shape.start, shape.len), (0, 4));
        assert_eq!(shape.axis_lens, vec![2, 1]);
        assert_eq!(shape.seeds, 2);
    }

    #[test]
    fn full_effort_widens_the_grid() {
        let spec = Spec::from_json(TINY).unwrap();
        let exp = expand(&spec, Effort::Full).unwrap();
        assert_eq!(exp.cells.len(), 2 * 3 * 3);
        assert_eq!(
            exp.cells[0].config.get("video_secs"),
            Some(&Value::Number(100.0))
        );
    }

    #[test]
    fn digests_are_unique_per_cell_and_stable() {
        let spec = Spec::from_json(TINY).unwrap();
        let a = expand(&spec, Effort::Full).unwrap();
        let b = expand(&spec, Effort::Full).unwrap();
        let da: Vec<u64> = a.cells.iter().map(|c| c.digest).collect();
        let db: Vec<u64> = b.cells.iter().map(|c| c.digest).collect();
        assert_eq!(da, db, "expansion must be deterministic");
        let mut uniq = da.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), da.len(), "cells must have distinct digests");
        // Quick and Full cells never share keys (video_secs differs).
        let q = expand(&spec, Effort::Quick).unwrap();
        assert!(q.cells.iter().all(|c| !da.contains(&c.digest)));
    }

    #[test]
    fn object_axis_values_merge_keys() {
        let spec = Spec::from_json(
            r#"{"schema": 1, "name": "m", "figure": "generic",
                "base": {"workload": "streaming"},
                "blocks": [{"axes": [{"key": "scenario", "values": [
                    {"seed": 3, "scenario": {"kind": "static"}},
                    {"seed": 4, "scenario": {"kind": "static"}}
                ]}]}]}"#,
        )
        .unwrap();
        let exp = expand(&spec, Effort::Quick).unwrap();
        assert_eq!(exp.cells.len(), 2);
        assert_eq!(exp.cells[1].config.get("seed"), Some(&Value::Number(4.0)));
        assert!(exp.cells[0].config.get("scenario").is_some());
    }

    #[test]
    fn missing_seed_is_an_error() {
        let spec = Spec::from_json(
            r#"{"schema": 1, "name": "m", "figure": "generic",
                "base": {}, "blocks": [{"axes": [{"key": "x", "values": [1]}]}]}"#,
        )
        .unwrap();
        let err = expand(&spec, Effort::Quick).unwrap_err();
        assert!(err.contains("seed"), "unexpected error: {err}");
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        assert!(Spec::from_json("{}").unwrap_err().contains("schema"));
        assert!(Spec::from_json(r#"{"schema": 1, "name": "x"}"#)
            .unwrap_err()
            .contains("figure"));
        assert!(Spec::from_json(r#"{"schema": 1, "name": "x", "figure": "y"}"#)
            .unwrap_err()
            .contains("blocks"));
        assert!(Spec::from_file("/nonexistent/spec.json")
            .unwrap_err()
            .contains("/nonexistent/spec.json"));
    }
}
