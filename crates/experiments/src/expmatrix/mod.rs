//! # expmatrix — declarative experiment matrix with content-addressed caching
//!
//! Every paper figure is a scheduler × bandwidth × seed grid, and the grid
//! only grows as new scheduler families and congestion controllers land.
//! This module turns a figure from imperative sweep code into data: a JSON
//! *spec* (axes over scheduler, CC, loss model, scenario, bandwidth pair,
//! seeds) expands deterministically into *cells*, each cell is one seeded
//! simulation run, and each cell's extracted result is cached on disk keyed
//! by a digest of its canonicalized config plus an engine-version contract.
//! A re-run executes only invalidated cells and assembles the figure from
//! cached + fresh results in a fixed merge order, so the output is
//! byte-identical regardless of cache state or shard interleaving.
//!
//! Pipeline (all deterministic):
//!
//! ```text
//! spec.json ──expand(effort)──▶ [Cell] ──digest──▶ cache probe
//!                                  │                 │hit: load result
//!                                  │miss: execute on parallel_map shards
//!                                  ▼                 ▼
//!                            results in expansion order ──▶ figure text
//! ```
//!
//! ## Cache key contract
//!
//! `digest = FNV-1a64(canonical_json({"cell": config, "contract": C}))`
//! where `C` names the cache/result schema versions and the engine's
//! golden digests ([`ENGINE_CONTRACT`] — the same constants the golden
//! regression tests pin). Canonical JSON (sorted keys, no whitespace,
//! shortest round-tripping numbers) makes the digest invariant under spec
//! reformatting while any value-level change — one seed, one rate, one
//! scheduler — produces a new key. Changing the simulator's seeded
//! behavior forces the golden constants to be regenerated, which rolls the
//! contract and invalidates every cached cell at once: the cache can never
//! serve results from a different engine.
//!
//! Entries are verified on load (entry schema, full key comparison, and a
//! digest re-check over the stored result); corrupt or truncated entries
//! are treated as misses and re-executed, never trusted and never a panic.

pub mod cache;
pub mod cells;
pub mod figures;
pub mod spec;

use std::path::PathBuf;

use telemetry::{Counter, TelemetryHandle};
use testkit::digest;
use testkit::json::Value;

pub use cache::{Cache, Lookup};
pub use spec::{expand, Cell, Expansion, Spec};

use crate::common::Effort;

/// Cache entry layout version; bump when the entry file format changes.
pub const CACHE_SCHEMA: f64 = 1.0;

/// Result extraction version; bump when [`cells`] extracts different or
/// differently-shaped observables (invalidates every cached cell).
pub const RESULT_SCHEMA: f64 = 1.0;

/// The engine's behavioral contract: the golden digests of fully seeded
/// reference runs, byte-identical since the PR 2 capture. The golden
/// regression tests (`tests/golden.rs`) assert the live engine still
/// produces exactly these, and the cache key includes them — so a change
/// to seeded engine behavior both fails the goldens and, once the
/// constants are deliberately regenerated, invalidates the result cache.
pub const ENGINE_CONTRACT: [(&str, u64); 4] = [
    ("streaming_seed_1", 0xceec_95c6_d6bb_212a),
    ("streaming_seed_2", 0x8fcd_014e_b130_7ff9),
    ("streaming_seed_2014", 0x8536_e9cb_b2eb_e94a),
    ("browse_seed_1", 0x0087_b015_cafe_1e60),
];

/// The code-relevant contract object folded into every cache key.
pub fn contract() -> Value {
    let mut engine = std::collections::BTreeMap::new();
    for (name, d) in ENGINE_CONTRACT {
        engine.insert(name.to_string(), Value::String(digest::hex16(d)));
    }
    let mut m = std::collections::BTreeMap::new();
    m.insert("cache_schema".to_string(), Value::Number(CACHE_SCHEMA));
    m.insert("result_schema".to_string(), Value::Number(RESULT_SCHEMA));
    m.insert("engine".to_string(), Value::Object(engine));
    Value::Object(m)
}

/// How to run a matrix.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Sizing of each cell's run (same semantics as the legacy harness).
    pub effort: Effort,
    /// Cache directory (created on first store).
    pub cache_dir: PathBuf,
    /// Ignore cache contents and re-execute every cell (results are still
    /// stored, refreshing the cache).
    pub force: bool,
    /// Probe the cache and report cell counts without executing anything.
    pub dry_run: bool,
    /// Explicit shard count for executing misses; `None` uses one shard
    /// per available core. Output is identical for every value (the
    /// shard-determinism contract).
    pub workers: Option<usize>,
    /// Sink for hit/miss/invalidation counters.
    pub telemetry: TelemetryHandle,
}

impl MatrixOptions {
    /// Full-effort options with the given cache directory.
    pub fn new(cache_dir: impl Into<PathBuf>) -> MatrixOptions {
        MatrixOptions {
            effort: Effort::Full,
            cache_dir: cache_dir.into(),
            force: false,
            dry_run: false,
            workers: None,
            telemetry: TelemetryHandle::off(),
        }
    }
}

/// What one matrix run did.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// The spec's name.
    pub name: String,
    /// Rendered figure (empty for dry runs).
    pub report: String,
    /// Total cells after expansion.
    pub cells: usize,
    /// Cells served from a validated cache entry.
    pub hits: usize,
    /// Cells with no usable cache entry (includes `invalid`).
    pub misses: usize,
    /// Entries found on disk but rejected by the digest re-check.
    pub invalid: usize,
    /// Cells actually executed this run (0 on a fully warm run).
    pub executed: usize,
}

impl MatrixOutcome {
    /// One-line human summary (`repro` prints this to stderr; the dry-run
    /// report builds on it).
    pub fn summary(&self) -> String {
        format!(
            "matrix {}: {} cells — {} hits, {} misses ({} invalid), executed {}",
            self.name, self.cells, self.hits, self.misses, self.invalid, self.executed
        )
    }
}

/// Expand, probe the cache, execute what's missing, and assemble the
/// figure. The returned report is byte-identical for a given (spec,
/// effort) regardless of cache state, `force`, or shard count.
pub fn run_matrix(spec: &Spec, opts: &MatrixOptions) -> Result<MatrixOutcome, String> {
    let exp = expand(spec, opts.effort)?;
    let cache = Cache::new(&opts.cache_dir);

    // Probe phase: one slot per cell, filled from cache where allowed.
    let mut results: Vec<Option<Value>> = Vec::with_capacity(exp.cells.len());
    let mut hits = 0usize;
    let mut invalid = 0usize;
    for cell in &exp.cells {
        if opts.force {
            results.push(None);
            continue;
        }
        match cache.load(cell.digest, &cell.key) {
            Lookup::Hit(v) => {
                hits += 1;
                results.push(Some(v));
            }
            Lookup::Miss => results.push(None),
            Lookup::Invalid => {
                invalid += 1;
                results.push(None);
            }
        }
    }
    let misses = exp.cells.len() - hits;
    opts.telemetry.add(Counter::MatrixCacheHits, hits as u64);
    opts.telemetry.add(Counter::MatrixCacheMisses, misses as u64);
    opts.telemetry.add(Counter::MatrixCacheInvalid, invalid as u64);

    let mut outcome = MatrixOutcome {
        name: spec.name.clone(),
        report: String::new(),
        cells: exp.cells.len(),
        hits,
        misses,
        invalid,
        executed: 0,
    };
    if opts.dry_run {
        outcome.report = format!(
            "{} (dry run: would execute {} of {} cells)\n",
            outcome.summary(),
            misses,
            exp.cells.len()
        );
        return Ok(outcome);
    }

    // Execute phase: misses only, sharded across cores. Results land back
    // in their cell's slot, so assembly order is the expansion order no
    // matter how shards interleave.
    let miss_idx: Vec<usize> =
        (0..exp.cells.len()).filter(|&i| results[i].is_none()).collect();
    outcome.executed = miss_idx.len();
    let run_one = |i: usize| cells::execute(&exp.cells[i].config);
    // Matrix cells are independent runs — exactly the shape a population
    // shard is — so they ride the sweep executor: same worker override,
    // same load-balance accounting.
    let fresh: Vec<Result<Value, String>> =
        crate::sharding::run_balanced(miss_idx.clone(), run_one, opts.workers, &opts.telemetry);
    for (i, r) in miss_idx.into_iter().zip(fresh) {
        let r = r.map_err(|e| format!("cell {i}: {e}"))?;
        cache.store(exp.cells[i].digest, &exp.cells[i].key, &r)?;
        results[i] = Some(r);
    }

    let results: Vec<Value> = results.into_iter().map(|r| r.expect("slot filled")).collect();
    outcome.report = figures::render(spec, &exp, &results)?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_is_stable_and_canonical() {
        // The contract must serialize identically across calls (it is part
        // of every cache key).
        let a = testkit::json::canonical(&contract());
        let b = testkit::json::canonical(&contract());
        assert_eq!(a, b);
        for (name, _) in ENGINE_CONTRACT {
            assert!(a.contains(name), "contract lacks {name}");
        }
        assert!(a.contains("result_schema"));
    }

    #[test]
    fn summary_mentions_every_count() {
        let o = MatrixOutcome {
            name: "x".into(),
            report: String::new(),
            cells: 9,
            hits: 4,
            misses: 5,
            invalid: 2,
            executed: 5,
        };
        let s = o.summary();
        for needle in ["9 cells", "4 hits", "5 misses", "2 invalid", "executed 5"] {
            assert!(s.contains(needle), "summary lacks {needle}: {s}");
        }
    }
}
