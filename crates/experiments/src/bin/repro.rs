//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <id> [--quick] [--no-save]   one experiment (fig9, tab3, ...)
//! repro all [--quick] [--no-save]    everything, in paper order
//! repro list                         show available ids
//! repro matrix <spec.json> [--quick] [--no-save] [--force] [--dry-run]
//!              [--cache-dir DIR]     declarative experiment matrix
//! repro sweep [--coupled] [--units N] [--shards N] [--workers N] [--seed N]
//!                                    sharded browse population sweep;
//!                                    --coupled adds a shared LTE bottleneck
//!                                    (lockstep co-sim) and prints its
//!                                    window/round/boundary telemetry
//! repro --trace out.jsonl [--quick] [--scenario dyn.json] [--seed N]
//!                                    traced canonical run (0.3/8.6, ECF)
//! ```
//!
//! Reports go to stdout and `results/<id>.txt`; `--no-save` skips the
//! file so smoke runs don't overwrite committed full-effort results.
//!
//! `matrix` expands a spec (see `crates/experiments/specs/`) into cells,
//! serves unchanged cells from the content-addressed cache (default
//! `.expcache/`), executes only the rest, and assembles the figure in a
//! fixed merge order — output is byte-identical whatever the cache state.
//! `--force` re-executes everything (refreshing the cache); `--dry-run`
//! reports cell counts and cache hits without running anything.
//!
//! `--trace` runs the paper's most heterogeneous streaming pair with
//! telemetry enabled and writes every scheduler decision (with its inputs
//! and which rule fired) plus transport/network lifecycle events as JSONL.
//! `--scenario` layers network dynamics from a JSON file (schema:
//! `scenario::Scenario::from_json`) onto the traced run.

use std::io::Write;

use experiments::{find, registry, run_traced, Effort};
use scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let save = !args.iter().any(|a| a == "--no-save");
    let effort = if quick { Effort::Quick } else { Effort::Full };

    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        })
    };

    if let Some(trace_path) = flag_value("--trace") {
        let scenario = flag_value("--scenario").map(|file| {
            Scenario::from_json_file(&file).unwrap_or_else(|err| {
                eprintln!("bad scenario: {err}");
                std::process::exit(2);
            })
        });
        let seed = flag_value("--seed").map_or(1, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--seed needs an integer, got '{s}'");
                std::process::exit(2);
            })
        });
        run_trace(&trace_path, effort, scenario, seed);
        return;
    }

    let target = args.iter().find(|a| !a.starts_with("--")).cloned();

    if target.as_deref() == Some("matrix") {
        let spec_path = args
            .iter()
            .skip_while(|a| a.as_str() != "matrix")
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("usage: repro matrix <spec.json> [--quick] [--force] [--dry-run]");
                std::process::exit(2);
            });
        let mut opts = experiments::MatrixOptions::new(
            flag_value("--cache-dir").unwrap_or_else(|| ".expcache".to_string()),
        );
        opts.effort = effort;
        opts.force = args.iter().any(|a| a == "--force");
        opts.dry_run = args.iter().any(|a| a == "--dry-run");
        run_matrix_cmd(spec_path, opts, save);
        return;
    }

    if target.as_deref() == Some("sweep") {
        let num = |name: &str, default: usize| -> usize {
            flag_value(name).map_or(default, |s| {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("{name} needs an integer, got '{s}'");
                    std::process::exit(2);
                })
            })
        };
        run_sweep_cmd(
            num("--units", if quick { 20 } else { 167 }),
            num("--shards", 0),
            flag_value("--workers").map(|_| num("--workers", 1)).filter(|&w| w > 0),
            num("--seed", 1) as u64,
            args.iter().any(|a| a == "--coupled"),
        );
        return;
    }

    match target.as_deref() {
        None | Some("list") => {
            println!("available experiments:\n");
            for e in registry() {
                println!("  {:<22} {}", e.id, e.title);
            }
            println!("\nusage: repro <id>|all [--quick] | repro --trace <out.jsonl>");
        }
        Some("all") => {
            // Dedup aliases (fig7/fig10 etc. share a generator).
            let mut seen = std::collections::HashSet::new();
            for e in registry() {
                if !seen.insert(e.run as usize) {
                    continue;
                }
                run_one(&e, effort, save);
            }
        }
        Some(id) => match find(id) {
            Some(e) => run_one(&e, effort, save),
            None => {
                eprintln!("unknown experiment '{id}'; try `repro list`");
                std::process::exit(1);
            }
        },
    }
}

fn run_one(e: &experiments::Experiment, effort: Effort, save: bool) {
    let started = std::time::Instant::now();
    eprintln!("== running {} ({}) ==", e.id, e.title);
    let report = (e.run)(effort);
    println!("{report}");
    eprintln!("== {} done in {:.1}s ==\n", e.id, started.elapsed().as_secs_f64());
    if !save {
        return;
    }
    if let Err(err) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::File::create(format!("results/{}.txt", e.id)))
        .and_then(|mut f| f.write_all(report.as_bytes()))
    {
        eprintln!("warning: could not write results/{}.txt: {err}", e.id);
    }
}

fn run_matrix_cmd(spec_path: &str, opts: experiments::MatrixOptions, save: bool) {
    let started = std::time::Instant::now();
    let spec = experiments::expmatrix::Spec::from_file(spec_path).unwrap_or_else(|err| {
        eprintln!("bad spec: {err}");
        std::process::exit(2);
    });
    eprintln!("== matrix {} ({}) ==", spec.name, spec_path);
    let outcome = experiments::run_matrix(&spec, &opts).unwrap_or_else(|err| {
        eprintln!("matrix failed: {err}");
        std::process::exit(1);
    });
    eprintln!("{}", outcome.summary());
    if opts.dry_run {
        print!("{}", outcome.report);
        return;
    }
    println!("{}", outcome.report);
    eprintln!(
        "== {} done in {:.1}s ==\n",
        spec.name,
        started.elapsed().as_secs_f64()
    );
    if !save {
        return;
    }
    if let Err(err) = std::fs::create_dir_all("results").and_then(|_| {
        std::fs::write(format!("results/{}.txt", spec.name), outcome.report.as_bytes())
    }) {
        eprintln!("warning: could not write results/{}.txt: {err}", spec.name);
    }
}

fn run_sweep_cmd(
    units: usize,
    max_shards: usize,
    workers: Option<usize>,
    seed: u64,
    coupled: bool,
) {
    use experiments::{browse_coupled_population, browse_population, run_sweep, SweepOptions};
    use telemetry::Counter;
    let pop = if coupled {
        browse_coupled_population(seed, units, 6, 1.0, 50.0, ecf_core::SchedulerKind::Ecf)
    } else {
        browse_population(seed, units, 6, 1.0, 10.0, ecf_core::SchedulerKind::Ecf)
    };
    let n_conns: usize = pop.units.iter().map(|u| u.conns.len()).sum();
    eprintln!(
        "== sweep{}: {units} units, {n_conns} conns, {} paths, seed {seed} ==",
        if coupled { " (coupled)" } else { "" },
        pop.paths.len()
    );
    // Always enabled: the wheel flushes its fast-forward / batching
    // counters into this handle at testbed teardown, and seeing them is
    // half the point of this command. The ring-emit overhead taints the
    // events/s line slightly; BENCH.json is the perf source of truth.
    let tel = telemetry::TelemetryHandle::enabled();
    let started = std::time::Instant::now();
    let report = run_sweep(&pop, &SweepOptions { max_shards, workers, telemetry: tel.clone() });
    let wall = started.elapsed().as_secs_f64();
    let events = report.events_total();
    let loaded = report.units.iter().filter(|u| u.page_load.is_some()).count();
    println!("shards:      {}", report.shard_events.len());
    if coupled {
        println!(
            "window:      {:.3} ms lookahead",
            pop.couplings[0].window_nanos() as f64 / 1e6
        );
        println!("sync rounds: {}", tel.counter(Counter::CosimRounds));
        println!("boundary:    {} msgs", tel.counter(Counter::CosimBoundaryMsgs));
        println!(
            "stall:       {:.1} ms barrier wait",
            tel.counter(Counter::CosimStallNs) as f64 / 1e6
        );
    }
    println!("events:      {events}");
    println!("events/s:    {:.0}", events as f64 / wall.max(1e-9));
    println!(
        "idle ff:     {} jumps, {:.1} ms skipped",
        tel.counter(Counter::FfJumps),
        tel.counter(Counter::FfSkippedNs) as f64 / 1e6
    );
    println!(
        "batching:    {} batched deliveries, longest batch {}",
        tel.counter(Counter::BatchDeliveries),
        tel.counter(Counter::BatchMaxLen)
    );
    println!("pages done:  {loaded}/{units}");
    println!("digest:      {}", testkit::digest::hex16(report.digest));
    eprintln!("== sweep done in {wall:.1}s ==");
}

fn run_trace(path: &str, effort: Effort, scenario: Option<Scenario>, seed: u64) {
    let started = std::time::Instant::now();
    eprintln!("== traced run: 0.3/8.6 Mbps, ECF, seed {seed} ==");
    let t = run_traced(effort, scenario, seed);
    if let Err(err) = std::fs::write(path, &t.jsonl) {
        eprintln!("could not write {path}: {err}");
        std::process::exit(1);
    }
    print!("{}", t.digest);
    if t.overflow > 0 {
        eprintln!(
            "note: ring wrapped — {} oldest events dropped, {} kept",
            t.overflow, t.captured
        );
    }
    eprintln!(
        "== wrote {} events to {path} in {:.1}s ==",
        t.captured,
        started.elapsed().as_secs_f64()
    );
}
