//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <id> [--quick] [--no-save]   one experiment (fig9, tab3, ...)
//! repro all [--quick] [--no-save]    everything, in paper order
//! repro list                         show available ids
//! ```
//!
//! Reports go to stdout and `results/<id>.txt`; `--no-save` skips the
//! file so smoke runs don't overwrite committed full-effort results.

use std::io::Write;

use experiments::{find, registry, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let save = !args.iter().any(|a| a == "--no-save");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let target = args.iter().find(|a| !a.starts_with("--")).cloned();

    match target.as_deref() {
        None | Some("list") => {
            println!("available experiments:\n");
            for e in registry() {
                println!("  {:<22} {}", e.id, e.title);
            }
            println!("\nusage: repro <id>|all [--quick]");
        }
        Some("all") => {
            // Dedup aliases (fig7/fig10 etc. share a generator).
            let mut seen = std::collections::HashSet::new();
            for e in registry() {
                if !seen.insert(e.run as usize) {
                    continue;
                }
                run_one(&e, effort, save);
            }
        }
        Some(id) => match find(id) {
            Some(e) => run_one(&e, effort, save),
            None => {
                eprintln!("unknown experiment '{id}'; try `repro list`");
                std::process::exit(1);
            }
        },
    }
}

fn run_one(e: &experiments::Experiment, effort: Effort, save: bool) {
    let started = std::time::Instant::now();
    eprintln!("== running {} ({}) ==", e.id, e.title);
    let report = (e.run)(effort);
    println!("{report}");
    eprintln!("== {} done in {:.1}s ==\n", e.id, started.elapsed().as_secs_f64());
    if !save {
        return;
    }
    if let Err(err) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::File::create(format!("results/{}.txt", e.id)))
        .and_then(|mut f| f.write_all(report.as_bytes()))
    {
        eprintln!("warning: could not write results/{}.txt: {err}", e.id);
    }
}
