//! Traced runs: the `repro --trace` path.
//!
//! Runs the paper's canonical heterogeneous streaming session (0.3 Mbps
//! WiFi and 8.6 Mbps LTE, ECF) with an enabled
//! [`telemetry::TelemetryHandle`] and
//! exports the full decision/lifecycle event log as JSONL plus a counter
//! digest. The run is deterministic: the same seed (and scenario) yields a
//! byte-identical trace, so traces can be diffed across commits.

use ecf_core::SchedulerKind;
use scenario::Scenario;
use telemetry::{export, TelemetryHandle};

use crate::common::{run_streaming, Effort, StreamingConfig};

/// Everything a traced run produces.
pub struct TraceRun {
    /// One JSON object per captured event, newline-terminated.
    pub jsonl: String,
    /// Human-readable counter digest (one `name=value` per line).
    pub digest: String,
    /// Events lost to ring wraparound (0 unless the run outgrew the buffer).
    pub overflow: u64,
    /// Events captured in the ring.
    pub captured: usize,
}

/// Run the canonical 0.3/8.6 ECF streaming session with telemetry on.
///
/// `scenario` layers extra network dynamics (in interface space: path 0 =
/// WiFi, path 1 = LTE) on top of the static shaped rates — this is how
/// `repro --trace out.jsonl --scenario dyn.json` replays a measured trace.
pub fn run_traced(effort: Effort, scenario: Option<Scenario>, seed: u64) -> TraceRun {
    let tel = TelemetryHandle::enabled();
    let cfg = StreamingConfig {
        video_secs: match effort {
            Effort::Full => 180.0,
            Effort::Quick => 30.0,
        },
        scenario,
        telemetry: tel.clone(),
        ..StreamingConfig::new(0.3, 8.6, SchedulerKind::Ecf, seed)
    };
    run_streaming(&cfg);

    let events = tel.events();
    let jsonl = export::to_jsonl(&events);
    let mut digest = String::new();
    for (name, value) in tel.counters() {
        digest.push_str(&format!("{name}={value}\n"));
    }
    digest.push_str(&format!("events_captured={}\n", events.len()));
    digest.push_str(&format!("events_overflowed={}\n", tel.overflow()));
    TraceRun { jsonl, digest, overflow: tel.overflow(), captured: events.len() }
}

#[cfg(test)]
mod tests {
    use ecf_core::{Decision, Why};
    use telemetry::EventKind;

    use super::*;

    /// Same seed ⇒ byte-identical JSONL: the trace is a stable artifact
    /// (ISSUE 4 acceptance). Uses two fresh runs, not a cached string.
    #[test]
    fn same_seed_traces_are_byte_identical() {
        let a = run_traced(Effort::Quick, None, 11);
        let b = run_traced(Effort::Quick, None, 11);
        assert!(!a.jsonl.is_empty());
        assert_eq!(a.jsonl, b.jsonl, "trace must be deterministic");
        assert_eq!(a.digest, b.digest);
        // A different seed must actually change the trace, or the equality
        // above proves nothing.
        let c = run_traced(Effort::Quick, None, 12);
        assert_ne!(a.jsonl, c.jsonl);
    }

    /// Fig 3's mechanism, checked from the decision log at 0.3/8.6. The
    /// paper's pathology is the *LTE-idle window*: the default scheduler
    /// ships each chunk's tail onto bufferbloated WiFi, then LTE sits idle
    /// behind head-of-line blocking. ECF's fix is to *wait* at exactly those
    /// moments. So in an ECF trace:
    ///
    /// * waits must exist, and at each one the lowest-sRTT subflow — LTE,
    ///   once 0.3 Mbps WiFi bufferbloats past it — is cwnd-limited while the
    ///   declined WiFi candidate has window space (deliberate idling);
    /// * waits must skew to chunk *tails*: the backlog `k` at wait events is
    ///   clearly below the backlog at an average decision;
    /// * the logged inequality terms must re-derive the verdict;
    /// * and across the run WiFi must end up carrying only a small minority
    ///   of segments — the slow path stays nearly idle because of those waits.
    #[test]
    fn fig3_ecf_waits_cover_the_lte_idle_window() {
        let tel = TelemetryHandle::enabled();
        let cfg = StreamingConfig {
            video_secs: 30.0,
            telemetry: tel.clone(),
            ..StreamingConfig::new(0.3, 8.6, SchedulerKind::Ecf, 1)
        };
        let out = run_streaming(&cfg);

        let mut wait_ks = Vec::new();
        let mut all_ks = Vec::new();
        for ev in tel.events() {
            let EventKind::SchedDecision(d) = ev.kind else { continue };
            all_ks.push(d.queued_pkts);
            let Why::EcfWait(terms) = d.why else { continue };
            wait_ks.push(d.queued_pkts);
            assert_eq!(d.decision, Decision::Wait);

            let paths = &d.paths[..d.n_paths as usize];
            let fast = paths
                .iter()
                .filter(|p| p.usable)
                .min_by_key(|p| p.srtt_us)
                .expect("wait implies a usable path");
            assert_eq!(fast.path, 1, "at 0.3/8.6 the fast-by-sRTT subflow is LTE");
            assert!(
                fast.inflight >= fast.cwnd,
                "waited although the fast subflow had space: {d:?}"
            );
            assert!(
                paths.iter().any(|p| p.usable && p.inflight < p.cwnd),
                "waited with no usable alternative (should be blocked): {d:?}"
            );

            // The logged terms must re-derive the verdict: both inequalities
            // held, with a non-negative δ margin folded in.
            assert!(terms.wait_for_fast_s < terms.threshold_s, "{terms:?}");
            assert!(terms.slow_time_s >= terms.slow_floor_s, "{terms:?}");
            assert!(terms.delta_s >= 0.0);
        }
        let waits = wait_ks.len();
        assert!(waits > 50, "0.3/8.6 must trigger ECF waiting, got {waits}");
        let median = |v: &mut Vec<u32>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let (wait_med, all_med) = (median(&mut wait_ks), median(&mut all_ks));
        assert!(
            wait_med * 2 < all_med,
            "waits should cluster at chunk tails: median k {wait_med} vs {all_med}"
        );
        assert!(
            out.fast_fraction > 0.8,
            "waiting should keep WiFi nearly idle, fast fraction {}",
            out.fast_fraction
        );
        assert!(tel.counter(telemetry::Counter::WaitDecisions) >= waits as u64);
    }

    /// The canonical traced run must contain decisions from every event
    /// category the streaming path can produce, with ECF provenance.
    #[test]
    fn trace_has_decisions_with_provenance() {
        let t = run_traced(Effort::Quick, None, 11);
        let lines: Vec<&str> = t.jsonl.lines().collect();
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not a JSON object: {l}");
        }
        let decisions =
            lines.iter().filter(|l| l.contains("\"ev\":\"sched_decision\"")).count();
        assert!(decisions > 100, "expected a rich decision log, got {decisions}");
        assert!(
            t.jsonl.contains("\"sched\":\"ecf\""),
            "decisions must name the scheduler"
        );
        assert!(t.jsonl.contains("\"srtt_us\""), "decisions must carry path inputs");
        assert!(t.digest.contains("decisions="));
    }
}
