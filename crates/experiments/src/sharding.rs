//! Sharded multi-engine sweeps: many-connection populations partitioned by
//! link-connectivity into independent per-core simulation shards.
//!
//! Connections that never share a link cannot interact — no queue they both
//! occupy, no scheduler that sees both — so a population of browse units
//! splits into connectivity components that simulate independently. This is
//! the classic parallel-DES decomposition: each shard is a complete
//! [`Testbed`] over its own slice of the path/connection universe, shards
//! run on the lock-free [`parallel_map`] fan-out, and their per-unit metrics
//! merge back in fixed global order.
//!
//! The contract (DESIGN.md §11) is *bit-identical equivalence*: the merged
//! result of a sharded sweep equals the monolithic single-engine run of the
//! same population, at any shard count and any worker count. Three design
//! decisions carry that guarantee:
//!
//! 1. **Partitioning** is a union-find over global path indices; every
//!    connection of a unit and every path it touches land in one component,
//!    and a component is never split across shards.
//! 2. **Seed derivation** is keyed by *global* path index: shard testbeds
//!    receive explicit [`TestbedConfig::path_seeds`] equal to the seeds the
//!    monolith derives ([`simnet::path_seed`], the one canonical helper),
//!    so link jitter/loss streams are identical regardless of where a path
//!    lands.
//! 3. **Extraction is per-unit**: request streams are filtered per
//!    connection and OOO pools kept per connection
//!    ([`mptcp::RecorderConfig::ooo_per_conn`]), so merged observables are
//!    invariant to how unrelated units interleave inside an engine.
//!    Engine-global artifacts (event counts, `ReqId` values) are reported
//!    but excluded from the equivalence digest.

use std::sync::Mutex;
use std::time::Instant;

use ecf_core::SchedulerKind;
use mptcp::{ConnConfig, ConnSpec, Event, RecorderConfig, RequestRecord, Testbed, TestbedConfig};
use scenario::Scenario;
use simnet::{EventQueue, PathConfig, Time};
use telemetry::{Counter, TelemetryHandle};
use testkit::digest::Fnv1a;
use webload::{BrowserApp, ObjectRecord, PageModel};

use crate::common::{parallel_map, parallel_map_workers};
use crate::cosim::{self, SharedBottleneck};

/// One connection of a population unit. Paths are *global* indices into
/// [`Population::paths`].
#[derive(Debug, Clone)]
pub struct PopConn {
    /// Transport parameters.
    pub cfg: ConnConfig,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Global path index per subflow; index 0 is the primary.
    pub subflow_paths: Vec<usize>,
}

/// One unit of a population: a browser fetching its own page over its own
/// connections (a "user"). Units sharing any path are co-scheduled into the
/// same shard; units with disjoint paths may simulate anywhere.
#[derive(Debug, Clone)]
pub struct PopUnit {
    /// The unit's connections.
    pub conns: Vec<PopConn>,
    /// The page this unit fetches.
    pub page: PageModel,
}

/// A many-connection workload: the closed-world input of a sweep.
#[derive(Debug, Clone)]
pub struct Population {
    /// Every physical path, globally indexed.
    pub paths: Vec<PathConfig>,
    /// The units.
    pub units: Vec<PopUnit>,
    /// Master seed; per-path seeds derive from it by global path index.
    pub seed: u64,
    /// Simulation horizon per shard (engines usually drain earlier).
    pub horizon: Time,
    /// Explicit shared bottlenecks: member paths stay private per unit
    /// but contend for aggregate capacity through the windowed co-sim
    /// controller ([`crate::cosim`]). A coupling with a positive lookahead
    /// window lets its units span engine groups; a zero-window coupling
    /// unions them (collapse — see [`partition`]).
    pub couplings: Vec<SharedBottleneck>,
    /// Population-level network dynamics on the global clock, addressed
    /// by *global* path index. Each shard receives the events for its own
    /// paths via [`Scenario::retarget`]; events for foreign paths act only
    /// on state the shard does not own, so dropping them preserves the
    /// digest contract (proven by the scenario equality tests).
    pub scenario: Scenario,
    /// Recorder configuration for every shard engine. Must keep
    /// `ooo_per_conn` semantics consistent across runs being compared:
    /// the digest covers whatever pools this config produces.
    pub recorder: RecorderConfig,
}

/// A browse population: `n_units` users, each with a private WiFi + LTE
/// path pair and `conns_per_unit` parallel connections fetching a
/// per-unit CNN-like page. `browse_population(seed, 167, 6, ..)` is the
/// ~1k-connection sweep; `1667` units the ~10k one.
pub fn browse_population(
    master_seed: u64,
    n_units: usize,
    conns_per_unit: usize,
    wifi_mbps: f64,
    lte_mbps: f64,
    scheduler: SchedulerKind,
) -> Population {
    let mut paths = Vec::with_capacity(2 * n_units);
    let mut units = Vec::with_capacity(n_units);
    for u in 0..n_units {
        let wifi = paths.len();
        paths.push(PathConfig::wifi(wifi_mbps));
        let lte = paths.len();
        paths.push(PathConfig::lte(lte_mbps));
        // Each user fetches their own page variant, fixed by unit index so
        // the population is identical however it is sharded.
        let page_seed = master_seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let conns = (0..conns_per_unit)
            .map(|_| PopConn {
                cfg: ConnConfig::default(),
                scheduler,
                subflow_paths: vec![wifi, lte],
            })
            .collect();
        units.push(PopUnit { conns, page: PageModel::cnn_like(page_seed) });
    }
    Population {
        paths,
        units,
        seed: master_seed,
        horizon: Time::from_secs(600),
        couplings: Vec::new(),
        scenario: Scenario::new(),
        recorder: RecorderConfig { ooo_per_conn: true, ..RecorderConfig::default() },
    }
}

/// The standard ~1k-connection browse population (167 units × 6 conns).
pub fn browse_1k(seed: u64) -> Population {
    browse_population(seed, 167, 6, 1.0, 10.0, SchedulerKind::Ecf)
}

/// The standard ~10k-connection browse population (1667 units × 6 conns).
pub fn browse_10k(seed: u64) -> Population {
    browse_population(seed, 1667, 6, 1.0, 10.0, SchedulerKind::Ecf)
}

/// A browse population whose per-unit LTE legs all contend for one shared
/// bottleneck of `lte_capacity_mbps` aggregate (each leg also *starts* at
/// the full capacity — the controller's optimistic idle grant). WiFi stays
/// private per unit. Before co-simulation this topology collapsed to a
/// single engine; now the units span engine groups coupled through the
/// bottleneck's lookahead window.
pub fn browse_coupled_population(
    master_seed: u64,
    n_units: usize,
    conns_per_unit: usize,
    wifi_mbps: f64,
    lte_capacity_mbps: f64,
    scheduler: SchedulerKind,
) -> Population {
    let mut pop = browse_population(
        master_seed,
        n_units,
        conns_per_unit,
        wifi_mbps,
        lte_capacity_mbps,
        scheduler,
    );
    // LTE legs sit at odd global indices (see `browse_population`).
    let members: Vec<usize> = (0..n_units).map(|u| 2 * u + 1).collect();
    pop.couplings.push(SharedBottleneck {
        members,
        capacity_bps: (lte_capacity_mbps * 1e6) as u64,
        prop_delay: simnet::LTE_ONE_WAY,
    });
    pop
}

/// The ~1k-connection coupled browse population: 167 units × 6 conns
/// contending on a common 50 Mbps LTE uplink (private 1 Mbps WiFi each).
pub fn browse_1k_coupled(seed: u64) -> Population {
    browse_coupled_population(seed, 167, 6, 1.0, 50.0, SchedulerKind::Ecf)
}

/// The ~10k-connection coupled browse population: 1667 units × 6 conns on
/// a common 500 Mbps LTE backhaul. The benchmark scale — big enough that
/// the monolithic engine's working set falls out of cache while each
/// co-simulated group stays resident.
pub fn browse_10k_coupled(seed: u64) -> Population {
    browse_coupled_population(seed, 1667, 6, 1.0, 500.0, SchedulerKind::Ecf)
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/// Union-find over `n` items, path-halving + union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Split a population into connectivity components: unit indices grouped so
/// that any two units sharing a path (directly or transitively) are in the
/// same group. Components are ordered by their smallest unit index, units
/// ascending within each — a deterministic function of the population alone.
///
/// Couplings with a *positive* lookahead window do **not** union their
/// members — that is the whole point of co-simulation: coupled units keep
/// separate components and the window controller bridges them. A coupling
/// whose window is zero (no propagation delay and an effectively infinite
/// capacity) has no safe horizon, so its members are unioned and the
/// population degrades to the collapsed single-engine run.
pub fn partition(pop: &Population) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(pop.paths.len());
    for c in &pop.couplings {
        if c.window_nanos() == 0 {
            for w in c.members.windows(2) {
                assert!(w[1] < pop.paths.len(), "coupling member {} out of range", w[1]);
                uf.union(w[0] as u32, w[1] as u32);
            }
        }
    }
    for unit in &pop.units {
        // All paths of a unit are one component: its conns share app state
        // (one browser queue), so the unit itself is indivisible.
        let mut first: Option<usize> = None;
        for conn in &unit.conns {
            for &p in &conn.subflow_paths {
                assert!(p < pop.paths.len(), "path index {p} out of range");
                match first {
                    None => first = Some(p),
                    Some(f) => uf.union(f as u32, p as u32),
                }
            }
        }
    }
    // Components keyed by root path; units assigned via their first path.
    let mut comp_of_root: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    for (u, unit) in pop.units.iter().enumerate() {
        let p = unit.conns.first().and_then(|c| c.subflow_paths.first()).copied();
        let root = uf.find(p.expect("unit with no paths") as u32);
        let slot = *comp_of_root.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[slot].push(u);
    }
    // Unit iteration order already yields components by smallest unit index
    // and units ascending within each.
    components
}

/// Bin components into at most `max_shards` shards round-robin (0 =
/// unlimited, one shard per component), units sorted ascending within each
/// shard. Deterministic given (population, max_shards); independent of
/// worker count by construction.
pub fn plan_shards(pop: &Population, max_shards: usize) -> Vec<Vec<usize>> {
    let components = partition(pop);
    let bins = if max_shards == 0 {
        components.len()
    } else {
        components.len().min(max_shards)
    }
    .max(1);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); bins];
    for (i, comp) in components.into_iter().enumerate() {
        shards[i % bins].extend(comp);
    }
    for s in &mut shards {
        s.sort_unstable();
    }
    shards.retain(|s| !s.is_empty());
    shards
}

// ---------------------------------------------------------------------------
// Per-unit observables
// ---------------------------------------------------------------------------

/// One request's shard-invariant summary (everything from
/// [`RequestRecord`] except the engine-global `ReqId`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReqSummary {
    /// Connection index *within the unit* (0-based).
    pub conn: usize,
    /// Requested bytes.
    pub bytes: u64,
    /// Response size in segments.
    pub segs: u64,
    /// First/last dsn of the response (per-connection dsn space).
    pub first_dsn: u64,
    /// See `first_dsn`.
    pub last_dsn: u64,
    /// Issue time.
    pub issued: Time,
    /// Server arrival, if the GET got through.
    pub server_arrival: Option<Time>,
    /// Completion, if delivered in order.
    pub completed: Option<Time>,
    /// Per subflow: last data arrival for this response.
    pub last_arrival_per_sub: Vec<Option<Time>>,
    /// Per subflow: data segments of this response that arrived on it.
    pub arrivals_per_sub: Vec<u64>,
}

impl ReqSummary {
    fn from_record(r: &RequestRecord, conn_local: usize) -> Self {
        ReqSummary {
            conn: conn_local,
            bytes: r.bytes,
            segs: r.segs,
            first_dsn: r.first_dsn,
            last_dsn: r.last_dsn,
            issued: r.issued,
            server_arrival: r.server_arrival,
            completed: r.completed,
            last_arrival_per_sub: r.last_arrival_per_sub.clone(),
            arrivals_per_sub: r.arrivals_per_sub.clone(),
        }
    }
}

/// Everything one unit produced, independent of which engine ran it.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitReport {
    /// Global unit index.
    pub unit: usize,
    /// Object download records, in the unit's completion order.
    pub objects: Vec<ObjectRecord>,
    /// Page load time, if the page finished inside the horizon.
    pub page_load: Option<Time>,
    /// The unit's requests, in issue order.
    pub requests: Vec<ReqSummary>,
    /// OOO delays (µs) per unit-local connection.
    pub ooo_us_per_conn: Vec<Vec<u64>>,
}

fn fold_opt_time(h: &mut Fnv1a, t: Option<Time>) {
    match t {
        Some(t) => {
            h.write_u64(1);
            h.write_u64(t.as_nanos());
        }
        None => h.write_u64(0),
    }
}

/// Fold one unit report into an equivalence digest. Every field that must
/// be bit-identical between monolith and shards is included; engine-global
/// artifacts are structurally absent from [`UnitReport`].
pub fn fold_unit(h: &mut Fnv1a, r: &UnitReport) {
    h.write_u64(r.unit as u64);
    h.write_u64(r.objects.len() as u64);
    for o in &r.objects {
        h.write_u64(o.index as u64);
        h.write_u64(o.bytes);
        h.write_u64(o.started.as_nanos());
        h.write_u64(o.finished.as_nanos());
    }
    fold_opt_time(h, r.page_load);
    h.write_u64(r.requests.len() as u64);
    for q in &r.requests {
        h.write_u64(q.conn as u64);
        h.write_u64(q.bytes);
        h.write_u64(q.segs);
        h.write_u64(q.first_dsn);
        h.write_u64(q.last_dsn);
        h.write_u64(q.issued.as_nanos());
        fold_opt_time(h, q.server_arrival);
        fold_opt_time(h, q.completed);
        h.write_u64(q.last_arrival_per_sub.len() as u64);
        for &t in &q.last_arrival_per_sub {
            fold_opt_time(h, t);
        }
        for &n in &q.arrivals_per_sub {
            h.write_u64(n);
        }
    }
    h.write_u64(r.ooo_us_per_conn.len() as u64);
    for pool in &r.ooo_us_per_conn {
        h.write_u64(pool.len() as u64);
        for &us in pool {
            h.write_u64(us);
        }
    }
}

/// Digest a full set of unit reports (assumed in global unit order).
pub fn digest_units(units: &[UnitReport]) -> u64 {
    let mut h = Fnv1a::new();
    for r in units {
        fold_unit(&mut h, r);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// The population application (one engine, many browsers)
// ---------------------------------------------------------------------------

/// Composes one [`BrowserApp`] per unit inside a single testbed, routing
/// completions to the unit owning the connection.
pub(crate) struct PopulationApp {
    units: Vec<BrowserApp>,
    /// Engine-local connection index → slot in `units`.
    owner: Vec<usize>,
}

impl mptcp::Application for PopulationApp {
    fn on_start(&mut self, now: Time, api: &mut mptcp::Api<'_>) {
        // Units in ascending global order: the issue order of the monolith
        // restricted to any subset is the subset's own issue order, which
        // is what makes per-unit extraction shard-invariant.
        for unit in &mut self.units {
            unit.on_start(now, api);
        }
    }

    fn on_response_complete(
        &mut self,
        now: Time,
        conn: mptcp::ConnId,
        req: mptcp::ReqId,
        api: &mut mptcp::Api<'_>,
    ) {
        self.units[self.owner[conn]].on_response_complete(now, conn, req, api);
    }
}

// ---------------------------------------------------------------------------
// Shard execution
// ---------------------------------------------------------------------------

/// What one shard run produced.
struct ShardOutcome {
    reports: Vec<UnitReport>,
    events: u64,
}

/// One shard's engine plus the metadata needed to extract per-unit
/// reports. Built by [`build_shard`]; the plain sweep runs it straight to
/// the horizon, the co-sim driver steps it window by window.
pub(crate) struct ShardRun {
    /// The shard engine.
    pub(crate) tb: Testbed<PopulationApp>,
    /// Global unit indices simulated here, ascending.
    unit_idxs: Vec<usize>,
    /// Per unit: (engine-local base connection index, connection count).
    conn_ranges: Vec<(usize, usize)>,
    /// Global path indices of this shard's local path universe, ascending
    /// (local index `i` is `globals[i]`).
    pub(crate) globals: Vec<usize>,
}

/// Build the units in `unit_idxs` (ascending global indices) into one
/// engine, recycling `queue`, without running it.
pub(crate) fn build_shard(
    pop: &Population,
    unit_idxs: &[usize],
    queue: EventQueue<Event>,
) -> ShardRun {
    // Local path universe: global indices used by this shard, ascending.
    let mut globals: Vec<usize> = unit_idxs
        .iter()
        .flat_map(|&u| pop.units[u].conns.iter().flat_map(|c| c.subflow_paths.iter().copied()))
        .collect();
    globals.sort_unstable();
    globals.dedup();
    let local_of = |g: usize| globals.binary_search(&g).expect("path in shard universe");

    // Seeds keyed by GLOBAL index — the monolith's derivation, verbatim.
    let path_seeds: Vec<u64> =
        globals.iter().map(|&g| simnet::path_seed(pop.seed, g)).collect();
    let paths: Vec<PathConfig> = globals.iter().map(|&g| pop.paths[g].clone()).collect();

    let mut conns: Vec<ConnSpec> = Vec::new();
    let mut apps: Vec<BrowserApp> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for (slot, &u) in unit_idxs.iter().enumerate() {
        let unit = &pop.units[u];
        let base = conns.len();
        for pc in &unit.conns {
            conns.push(ConnSpec {
                cfg: pc.cfg,
                scheduler: pc.scheduler,
                custom_scheduler: None,
                subflow_paths: pc.subflow_paths.iter().map(|&g| local_of(g)).collect(),
            });
            owner.push(slot);
        }
        apps.push(BrowserApp::with_conn_base(unit.page.clone(), unit.conns.len(), base));
    }
    let conn_ranges: Vec<(usize, usize)> = {
        let mut out = Vec::with_capacity(unit_idxs.len());
        let mut base = 0;
        for &u in unit_idxs {
            let n = pop.units[u].conns.len();
            out.push((base, n));
            base += n;
        }
        out
    };

    // The population scenario speaks global path indices on the global
    // clock; this shard keeps the events for its own paths, remapped to
    // local indices with order preserved.
    let scenario = if pop.scenario.is_static() {
        Scenario::default()
    } else {
        pop.scenario.retarget(|g| globals.binary_search(&g).ok())
    };

    let cfg = TestbedConfig {
        paths,
        conns,
        seed: pop.seed,
        path_seeds: Some(path_seeds),
        recorder: pop.recorder,
        scenario,
        // Shard-internal telemetry stays off: conn/path ids are shard-local
        // and would mislead a merged trace. Sweep-level load-balance
        // counters are flushed by `run_sweep` instead.
        telemetry: TelemetryHandle::off(),
    };
    let tb = Testbed::new_with_queue(cfg, PopulationApp { units: apps, owner }, queue);
    ShardRun { tb, unit_idxs: unit_idxs.to_vec(), conn_ranges, globals }
}

/// Extract per-unit reports from a (finished) shard engine.
pub(crate) fn extract_reports(run: &ShardRun) -> Vec<UnitReport> {
    let world = run.tb.world();
    run.unit_idxs
        .iter()
        .zip(&run.conn_ranges)
        .enumerate()
        .map(|(slot, (&u, &(base, n)))| {
            let app = &run.tb.app().units[slot];
            UnitReport {
                unit: u,
                objects: app.objects.clone(),
                page_load: app.page_load_time,
                requests: world
                    .recorder
                    .requests
                    .iter()
                    .filter(|r| (base..base + n).contains(&r.conn))
                    .map(|r| ReqSummary::from_record(r, r.conn - base))
                    .collect(),
                ooo_us_per_conn: (base..base + n)
                    .map(|c| {
                        world.recorder.ooo_delays_us_per_conn.get(c).cloned().unwrap_or_default()
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Run the units in `unit_idxs` (ascending global indices) as one engine,
/// recycling `queue`. Returns per-unit reports and the recovered queue.
fn run_shard(
    pop: &Population,
    unit_idxs: &[usize],
    queue: EventQueue<Event>,
) -> (ShardOutcome, EventQueue<Event>) {
    let mut run = build_shard(pop, unit_idxs, queue);
    run.tb.run_until(pop.horizon);
    let reports = extract_reports(&run);
    let events = run.tb.events_processed();
    (ShardOutcome { reports, events }, run.tb.into_queue())
}

// ---------------------------------------------------------------------------
// The sweep driver
// ---------------------------------------------------------------------------

/// How to run a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Maximum shard count: 1 = monolithic single engine, 0 = one shard per
    /// connectivity component. The merged result is identical for every
    /// value (the equivalence contract).
    pub max_shards: usize,
    /// Explicit worker count; `None` uses [`parallel_map`]'s default
    /// (available cores, `TESTKIT_WORKERS` override). Results are identical
    /// for every value.
    pub workers: Option<usize>,
    /// Sink for the per-sweep load-balance counters.
    pub telemetry: TelemetryHandle,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { max_shards: 0, workers: None, telemetry: TelemetryHandle::off() }
    }
}

/// A sweep's merged result.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-unit reports in global unit order — the equivalence surface.
    pub units: Vec<UnitReport>,
    /// FNV-1a digest over `units` ([`digest_units`]): bit-identical across
    /// shard counts and worker counts.
    pub digest: u64,
    /// Engine events per shard, in shard order (diagnostic; *not* part of
    /// the digest — a monolith counts one `AppStart`, k shards count k).
    pub shard_events: Vec<u64>,
    /// Wall nanoseconds per shard, in shard order (diagnostic).
    pub shard_wall_ns: Vec<u64>,
}

impl SweepReport {
    /// Total engine events across shards.
    pub fn events_total(&self) -> u64 {
        self.shard_events.iter().sum()
    }
}

/// Flush one shard queue's fast-forward / batch-delivery totals into the
/// sweep-level telemetry sink. Sums across shards except `batch_max_len`,
/// which is a high-water mark.
pub(crate) fn flush_wheel_stats(tel: &TelemetryHandle, queue: &EventQueue<Event>) {
    if !tel.is_enabled() {
        return;
    }
    tel.add(Counter::FfJumps, queue.ff_jumps());
    tel.add(Counter::FfSkippedNs, queue.ff_skipped_ns());
    tel.add(Counter::BatchDeliveries, queue.batch_deliveries());
    tel.set_max(Counter::BatchMaxLen, queue.batch_max_len());
}

/// Flush per-sweep load-balance counters: totals summed, imbalance ratios
/// (max/min, permille) kept as running maxima across sweeps.
pub(crate) fn flush_load_balance(tel: &TelemetryHandle, events: &[u64], wall_ns: &[u64]) {
    if !tel.is_enabled() || events.is_empty() {
        return;
    }
    tel.add(Counter::ShardRuns, events.len() as u64);
    tel.add(Counter::ShardEvents, events.iter().sum());
    tel.add(Counter::ShardWallNs, wall_ns.iter().sum());
    let permille = |vals: &[u64]| -> Option<u64> {
        let max = *vals.iter().max()?;
        let min = *vals.iter().min()?;
        max.saturating_mul(1000).checked_div(min)
    };
    if let Some(p) = permille(events) {
        tel.set_max(Counter::ShardEventsImbalancePermille, p);
    }
    if let Some(p) = permille(wall_ns) {
        tel.set_max(Counter::ShardWallImbalancePermille, p);
    }
}

/// Run a population, sharded per `opts`, and merge deterministically.
///
/// `max_shards = 1` is the monolithic reference run; any other value
/// produces the same [`SweepReport::digest`]. Shard workers recycle engine
/// allocations (event-queue slabs) through a shared pool, so a sweep of
/// many small shards performs one warm-up per shard worker, not per shard.
///
/// Populations with a positive-window coupling dispatch to the co-sim
/// lockstep driver ([`cosim::run_coupled`]); populations that cannot shard
/// at all (literal path sharing, zero-window couplings) run collapsed on
/// one engine, and that collapse is *reported* — a `shard_collapses`
/// telemetry tick plus a log line naming the reason — instead of silent.
pub fn run_sweep(pop: &Population, opts: &SweepOptions) -> SweepReport {
    let shards = plan_shards(pop, opts.max_shards);
    if shards.len() == 1 && pop.units.len() > 1 && opts.max_shards != 1 {
        let reason = if pop
            .couplings
            .iter()
            .any(|c| c.members.len() > 1 && c.window_nanos() == 0)
        {
            "zero-lookahead coupling (no safe horizon)"
        } else {
            "units literally share a path"
        };
        eprintln!(
            "sharding: population of {} units collapsed to one engine: {reason}",
            pop.units.len()
        );
        if opts.telemetry.is_enabled() {
            opts.telemetry.add(Counter::ShardCollapses, 1);
        }
    }
    if pop.couplings.iter().any(|c| c.window_nanos() > 0) {
        return cosim::run_coupled(pop, opts);
    }
    let pool: Mutex<Vec<EventQueue<Event>>> = Mutex::new(Vec::new());

    let run_one = |unit_idxs: Vec<usize>| {
        let queue = pool.lock().expect("queue pool").pop().unwrap_or_default();
        let started = Instant::now();
        let (out, queue) = run_shard(pop, &unit_idxs, queue);
        let wall_ns = started.elapsed().as_nanos() as u64;
        // The shard's own telemetry handle is off (ids are shard-local),
        // but the wheel's fast-forward / batching totals are id-free, so
        // they aggregate meaningfully at the sweep level. The recovered
        // queue still carries this shard's counters — `new_with_queue`
        // resets them on reuse, so there is no double counting.
        flush_wheel_stats(&opts.telemetry, &queue);
        pool.lock().expect("queue pool").push(queue);
        (out, wall_ns)
    };
    let outcomes: Vec<(ShardOutcome, u64)> = match opts.workers {
        Some(w) => parallel_map_workers(shards, run_one, w),
        None => parallel_map(shards, run_one),
    };

    // Merge in fixed shard order; unit reports land in global unit order.
    let mut units: Vec<Option<UnitReport>> = (0..pop.units.len()).map(|_| None).collect();
    let mut shard_events = Vec::with_capacity(outcomes.len());
    let mut shard_wall_ns = Vec::with_capacity(outcomes.len());
    for (out, wall_ns) in outcomes {
        shard_events.push(out.events);
        shard_wall_ns.push(wall_ns);
        for r in out.reports {
            let slot = r.unit;
            assert!(units[slot].is_none(), "unit {slot} reported twice");
            units[slot] = Some(r);
        }
    }
    let units: Vec<UnitReport> =
        units.into_iter().map(|r| r.expect("every unit simulated")).collect();

    flush_load_balance(&opts.telemetry, &shard_events, &shard_wall_ns);
    SweepReport { digest: digest_units(&units), units, shard_events, shard_wall_ns }
}

/// Map `f` over independent work items with the sweep executor's load
/// accounting: per-item wall time feeds the same shard load-balance
/// counters a population sweep flushes. This is the path `repro matrix`
/// cell execution rides, so the experiment matrix inherits the sharded
/// engine plumbing (worker override, balance telemetry) without owning any
/// of it.
pub fn run_balanced<T, R, F>(
    items: Vec<T>,
    f: F,
    workers: Option<usize>,
    tel: &TelemetryHandle,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let timed = |t: T| {
        let started = Instant::now();
        let r = f(t);
        (r, started.elapsed().as_nanos() as u64)
    };
    let out: Vec<(R, u64)> = match workers {
        Some(w) => parallel_map_workers(items, timed, w),
        None => parallel_map(items, timed),
    };
    let (results, wall_ns): (Vec<R>, Vec<u64>) = out.into_iter().unzip();
    if tel.is_enabled() && !wall_ns.is_empty() {
        tel.add(Counter::ShardRuns, wall_ns.len() as u64);
        tel.add(Counter::ShardWallNs, wall_ns.iter().sum());
        let max = *wall_ns.iter().max().expect("non-empty");
        let min = *wall_ns.iter().min().expect("non-empty");
        if let Some(p) = max.saturating_mul(1000).checked_div(min) {
            tel.set_max(Counter::ShardWallImbalancePermille, p);
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small population for fast tests: tiny pages, few units.
    fn tiny_pop(seed: u64, n_units: usize) -> Population {
        let mut pop = browse_population(seed, n_units, 2, 1.0, 10.0, SchedulerKind::Ecf);
        for (u, unit) in pop.units.iter_mut().enumerate() {
            unit.page = PageModel::lognormal(seed ^ u as u64, 8, 8192.0, 1.6, 200, 40_000);
        }
        pop
    }

    #[test]
    fn partition_keeps_path_sharers_together() {
        let mut pop = tiny_pop(1, 4);
        // Make unit 3 share unit 0's WiFi path: transitively one component.
        pop.units[3].conns[0].subflow_paths = vec![0, 7];
        let comps = partition(&pop);
        assert_eq!(comps, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn partition_shared_bottleneck_cannot_shard() {
        let mut pop = tiny_pop(1, 3);
        // Everyone rides path 0 as primary — the shared-bottleneck case.
        for unit in &mut pop.units {
            for conn in &mut unit.conns {
                conn.subflow_paths[0] = 0;
            }
        }
        let comps = partition(&pop);
        assert_eq!(comps.len(), 1, "shared link must collapse to one component");
        assert_eq!(plan_shards(&pop, 8).len(), 1);
    }

    #[test]
    fn plan_shards_round_robins_components() {
        let pop = tiny_pop(1, 5);
        let shards = plan_shards(&pop, 2);
        assert_eq!(shards, vec![vec![0, 2, 4], vec![1, 3]]);
        // Unlimited: one shard per component.
        assert_eq!(plan_shards(&pop, 0).len(), 5);
        // Monolith: everything in one engine.
        assert_eq!(plan_shards(&pop, 1), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn sharded_sweep_equals_monolith() {
        let pop = tiny_pop(42, 4);
        let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
        for max_shards in [2, 0] {
            let sharded =
                run_sweep(&pop, &SweepOptions { max_shards, ..Default::default() });
            assert_eq!(sharded.digest, mono.digest, "max_shards={max_shards}");
            assert_eq!(sharded.units, mono.units, "max_shards={max_shards}");
        }
        // Every unit finished its page inside the horizon.
        assert!(mono.units.iter().all(|u| u.page_load.is_some()));
        assert!(!mono.units.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_the_merge() {
        let pop = tiny_pop(7, 3);
        let base = run_sweep(
            &pop,
            &SweepOptions { max_shards: 0, workers: Some(1), ..Default::default() },
        );
        for workers in [2, 8] {
            let alt = run_sweep(
                &pop,
                &SweepOptions { max_shards: 0, workers: Some(workers), ..Default::default() },
            );
            assert_eq!(alt.digest, base.digest, "workers={workers}");
        }
    }

    #[test]
    fn load_balance_counters_flush() {
        let tel = TelemetryHandle::enabled();
        let pop = tiny_pop(3, 3);
        let report = run_sweep(
            &pop,
            &SweepOptions { max_shards: 0, workers: Some(2), telemetry: tel.clone() },
        );
        assert_eq!(tel.counter(Counter::ShardRuns), 3);
        assert_eq!(tel.counter(Counter::ShardEvents), report.events_total());
        assert!(tel.counter(Counter::ShardWallNs) > 0);
        assert!(tel.counter(Counter::ShardEventsImbalancePermille) >= 1000);
    }

    #[test]
    fn run_balanced_preserves_order_and_accounts() {
        let tel = TelemetryHandle::enabled();
        let out = run_balanced((0..20).collect::<Vec<i32>>(), |x| x * 2, Some(4), &tel);
        assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(tel.counter(Counter::ShardRuns), 20);
    }
}
