//! Web-browsing experiments (§5.5): Figs 20 and 21 — per-object completion
//! times and out-of-order delay over six parallel persistent connections.

use ecf_core::SchedulerKind;
use metrics::{render_table, Cdf};

use crate::common::{fmt_bw, parallel_map, run_browse, Effort};

/// The three bandwidth configurations of Figs 20/21.
pub const CONFIGS: [(f64, f64); 3] = [(5.0, 5.0), (1.0, 5.0), (1.0, 10.0)];

fn runs_for(effort: Effort) -> u64 {
    match effort {
        Effort::Full => 3,
        Effort::Quick => 1,
    }
}

/// Collect object completion times and OOO delays for one scheduler/config.
fn browse_samples(
    wifi: f64,
    lte: f64,
    kind: SchedulerKind,
    effort: Effort,
) -> (Vec<f64>, Vec<f64>) {
    let per_seed = parallel_map((0..runs_for(effort)).collect(), |seed| {
        let tb = run_browse(wifi, lte, kind, 300 + seed);
        assert!(tb.app().done(), "page load must complete");
        (
            tb.app().completion_times_secs(),
            tb.world().recorder.ooo_delays_secs(),
        )
    });
    let mut completions = Vec::new();
    let mut ooo = Vec::new();
    for (c, o) in per_seed {
        completions.extend(c);
        ooo.extend(o);
    }
    (completions, ooo)
}

/// Fig 20: CCDF of individual object download completion times.
pub fn fig20(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 20: Web object download completion time CCDF (107-object page,\n\
         6 parallel MPTCP connections)\n\
         (paper: parity at 5-5; ECF clearly fastest at 1-5 and 1-10)\n",
    );
    for &(w, l) in &CONFIGS {
        s.push_str(&format!("\n--- {} Mbps WiFi / {} Mbps LTE ---\n", fmt_bw(w), fmt_bw(l)));
        let cdfs = parallel_map(SchedulerKind::paper_set().to_vec(), |kind| {
            let (completions, _) = browse_samples(w, l, kind, effort);
            Cdf::from_samples(completions)
        });
        let mut rows = Vec::new();
        for (kind, cdf) in SchedulerKind::paper_set().iter().zip(&cdfs) {
            rows.push(vec![
                kind.label().to_string(),
                format!("{:.3}", cdf.mean()),
                format!("{:.3}", cdf.median()),
                format!("{:.3}", cdf.quantile(0.99)),
                format!("{:.3}", cdf.max()),
            ]);
        }
        s.push_str(&render_table(
            &["scheduler", "mean_s", "median_s", "p99_s", "max_s"],
            &rows,
        ));
        s.push_str("\nCCDF series (x_s, P[T>x]):\nx");
        for kind in SchedulerKind::paper_set() {
            s.push_str(&format!("\t{}", kind.label()));
        }
        s.push('\n');
        for i in 0..=10 {
            let x = i as f64 * 0.2;
            s.push_str(&format!("{x:.1}"));
            for cdf in &cdfs {
                s.push_str(&format!("\t{:.4}", cdf.ccdf_at(x)));
            }
            s.push('\n');
        }
    }
    s
}

/// Fig 21: CCDF of out-of-order delays during Web browsing.
pub fn fig21(effort: Effort) -> String {
    let mut s = String::from(
        "Fig 21: Out-of-order delay CCDF, Web browsing\n\
         (paper: ECF's reordering tail smallest under heterogeneity)\n",
    );
    for &(w, l) in &CONFIGS {
        s.push_str(&format!("\n--- {} Mbps WiFi / {} Mbps LTE ---\n", fmt_bw(w), fmt_bw(l)));
        let cdfs = parallel_map(SchedulerKind::paper_set().to_vec(), |kind| {
            let (_, ooo) = browse_samples(w, l, kind, effort);
            Cdf::from_samples(ooo)
        });
        let mut rows = Vec::new();
        for (kind, cdf) in SchedulerKind::paper_set().iter().zip(&cdfs) {
            rows.push(vec![
                kind.label().to_string(),
                format!("{:.4}", cdf.mean()),
                format!("{:.4}", cdf.quantile(0.99)),
                format!("{:.4}", cdf.max()),
            ]);
        }
        s.push_str(&render_table(&["scheduler", "mean_s", "p99_s", "max_s"], &rows));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browse_samples_full_page() {
        let (completions, ooo) = browse_samples(5.0, 5.0, SchedulerKind::Default, Effort::Quick);
        assert_eq!(completions.len(), 107);
        assert!(!ooo.is_empty());
        assert!(completions.iter().all(|&t| t > 0.0));
    }
}
