//! Steady-state allocation audit for the co-simulation lockstep loop.
//!
//! PR 5 pinned the single-engine deliver loop at zero steady-state heap
//! allocations; the co-sim layer must not regress that. Once a coupled run
//! is warmed up, each lockstep window is: advance every engine group
//! (`run_until` on recycled slabs), read each member's offered bytes,
//! sort the reused boundary-message buffer, and apply rate shares — none
//! of which may touch the allocator. This audit drives [`CoupledRun`]
//! window by window through its stepwise API on the sequential
//! (`workers = 1`) path, which is the zero-alloc contract; the threaded
//! path spawns a scope per window by design.
//!
//! Same rules as the single-engine audit (`tests/alloc.rs`): its own
//! integration-test binary so no sibling test pollutes the counter, and
//! the recorder's OOO-delay trace off (it appends one entry per delivered
//! segment by design).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ecf_core::SchedulerKind;
use experiments::{browse_coupled_population, CoupledRun, SweepOptions};
use mptcp::RecorderConfig;
use simnet::Time;
use webload::PageModel;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_lockstep_loop_allocates_nothing() {
    // Two units, one connection each, their LTE legs coupled through a
    // shared 50 Mbps bottleneck. One giant fixed-size object per unit
    // keeps both engines in full flight well past t = 30 s, so the
    // measurement window sees only the hot loop: every request (the sole
    // per-request allocation) is issued during warm-up.
    let mut pop = browse_coupled_population(3, 2, 1, 1.0, 50.0, SchedulerKind::Ecf);
    pop.recorder = RecorderConfig { ooo_delays: false, ..RecorderConfig::default() };
    pop.horizon = Time::from_secs(40);
    for (u, unit) in pop.units.iter_mut().enumerate() {
        unit.page =
            PageModel::lognormal(3 ^ u as u64, 1, 2e8, 0.0, 200_000_000, 200_000_000);
    }

    let mut run = CoupledRun::new(
        &pop,
        &SweepOptions { max_shards: 0, workers: Some(1), ..Default::default() },
    );
    assert_eq!(run.n_groups(), 2, "the coupled units must span two engine groups");

    while run.now() < Time::from_secs(10) {
        assert!(run.step(), "run drained during warm-up; workload mis-sized");
    }
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let events_before = run.events_total();

    while run.now() < Time::from_secs(30) {
        assert!(run.step(), "run drained mid-measurement; workload mis-sized");
    }

    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let events = run.events_total() - events_before;
    assert!(
        events > 20_000,
        "steady-state window processed only {events} events; workload mis-sized"
    );
    assert_eq!(
        allocs, 0,
        "co-sim lockstep loop allocated {allocs} times over {events} events"
    );
}
