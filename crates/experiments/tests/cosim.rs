//! Co-simulation equivalence: a population with a *forced shared
//! bottleneck* — the topology PR 7 could only run collapsed on one engine
//! — must now span engine groups in conservative-lookahead lockstep and
//! still merge to a result bit-identical to the monolithic run, at every
//! shard count and every worker count (DESIGN.md §13). Degenerate
//! couplings (zero lookahead window) must fall back to the collapsed
//! single-engine run: reported, terminating, never diverging.

use std::time::Duration;

use ecf_core::SchedulerKind;
use experiments::{
    browse_coupled_population, partition, plan_shards, run_sweep, CoupledRun, Population,
    SweepOptions,
};
use simnet::Time;
use telemetry::{Counter, TelemetryHandle};
use testkit::prop::{any_u64, check, choice};
use webload::PageModel;

/// A small coupled population with tiny pages so each property case stays
/// cheap: every leg's LTE contends for one shared bottleneck.
fn small_coupled(
    seed: u64,
    n_units: usize,
    conns_per_unit: usize,
    capacity_mbps: f64,
    prop_delay: Duration,
) -> Population {
    let mut pop = browse_coupled_population(
        seed,
        n_units,
        conns_per_unit,
        1.0,
        capacity_mbps,
        SchedulerKind::Ecf,
    );
    pop.couplings[0].prop_delay = prop_delay;
    for (u, unit) in pop.units.iter_mut().enumerate() {
        unit.page = PageModel::lognormal(seed ^ u as u64, 6, 8192.0, 1.6, 200, 30_000);
    }
    pop
}

#[test]
fn prop_cosim_merge_is_bit_identical_to_monolith() {
    // (seed, units, conns/unit, capacity, prop delay, max_shards 1..=8):
    // the monolith is max_shards = 1 (one engine group, same windowed
    // semantics); every other shard count must merge to the same digest
    // AND the same field-for-field unit reports. Zero propagation delay is
    // included: the serialization floor alone must carry the lookahead.
    check(
        18,
        (
            any_u64(),
            2_usize..=5,
            1_usize..=2,
            choice(&[2.0_f64, 10.0, 50.0]),
            choice(&[0_u64, 10, 30]),
            2_usize..=8,
        ),
        |(seed, units, conns, capacity, prop_ms, k)| {
            let pop = small_coupled(seed, units, conns, capacity, Duration::from_millis(prop_ms));
            assert!(pop.couplings[0].window_nanos() > 0, "coupling must have a safe horizon");
            let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
            let sharded = run_sweep(&pop, &SweepOptions { max_shards: k, ..Default::default() });
            assert!(
                sharded.shard_events.len() >= 2,
                "coupled population must actually span engines at max_shards={k}"
            );
            assert_eq!(
                sharded.digest, mono.digest,
                "digest diverged at max_shards={k} for seed {seed}"
            );
            assert_eq!(sharded.units, mono.units, "unit reports diverged at max_shards={k}");
        },
    );
}

#[test]
fn worker_count_is_invisible_in_the_cosim_merge() {
    let pop = small_coupled(0xC0, 6, 2, 10.0, Duration::from_millis(30));
    let reference = run_sweep(
        &pop,
        &SweepOptions { max_shards: 0, workers: Some(1), ..Default::default() },
    );
    assert_eq!(reference.shard_events.len(), 6, "one engine group per unit expected");
    for workers in [2, 8] {
        let run = run_sweep(
            &pop,
            &SweepOptions { max_shards: 0, workers: Some(workers), ..Default::default() },
        );
        assert_eq!(run.digest, reference.digest, "workers={workers}");
        assert_eq!(run.units, reference.units, "workers={workers}");
    }
}

#[test]
fn cosim_counters_flush_at_teardown() {
    let pop = small_coupled(7, 4, 1, 10.0, Duration::from_millis(30));
    let tel = TelemetryHandle::enabled();
    let run = run_sweep(
        &pop,
        &SweepOptions { max_shards: 0, workers: Some(2), telemetry: tel.clone() },
    );
    let rounds = tel.counter(Counter::CosimRounds);
    assert!(rounds > 0, "lockstep windows must be counted");
    // One message per coupling member per round, every member in use.
    assert_eq!(tel.counter(Counter::CosimBoundaryMsgs), rounds * 4);
    // Load-balance accounting rides along as in plain sweeps.
    assert_eq!(tel.counter(Counter::ShardRuns), 4);
    assert_eq!(tel.counter(Counter::ShardEvents), run.events_total());
    assert!(tel.counter(Counter::ShardWallNs) > 0);

    // The monolithic reference exchanges nothing across boundaries.
    let tel_mono = TelemetryHandle::enabled();
    run_sweep(
        &pop,
        &SweepOptions { max_shards: 1, workers: Some(1), telemetry: tel_mono.clone() },
    );
    assert!(tel_mono.counter(Counter::CosimRounds) > 0);
    assert_eq!(tel_mono.counter(Counter::CosimBoundaryMsgs), 0);
    assert_eq!(tel_mono.counter(Counter::CosimStallNs), 0);
}

#[test]
fn degenerate_zero_window_coupling_collapses_never_deadlocks() {
    // No propagation delay AND an effectively infinite capacity: the
    // serialization floor is zero, so no safe horizon exists. The
    // partitioner must union the members (collapse), the run must
    // terminate, and the result must equal the explicit monolith.
    let mut pop = small_coupled(11, 4, 1, 10.0, Duration::ZERO);
    pop.couplings[0].capacity_bps = u64::MAX;
    assert_eq!(pop.couplings[0].window_nanos(), 0);
    assert_eq!(partition(&pop).len(), 1, "zero-window coupling must union its members");
    assert_eq!(plan_shards(&pop, 8).len(), 1);

    let tel = TelemetryHandle::enabled();
    let sharded = run_sweep(
        &pop,
        &SweepOptions { max_shards: 8, workers: Some(2), telemetry: tel.clone() },
    );
    let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
    assert_eq!(sharded.digest, mono.digest);
    assert_eq!(sharded.units, mono.units);
    assert_eq!(sharded.shard_events.len(), 1, "must have run collapsed");
    // The collapse is reported, not silent.
    assert_eq!(tel.counter(Counter::ShardCollapses), 1);
    assert_eq!(tel.counter(Counter::CosimRounds), 0, "no lockstep loop after collapse");
}

#[test]
fn population_scenario_matches_monolith_uncoupled() {
    // Population-level dynamics on the global clock: rate steps, an
    // outage, and burst loss aimed at *global* path indices must re-target
    // per shard and still merge bit-identically.
    let mut pop = experiments::browse_population(21, 5, 2, 1.0, 10.0, SchedulerKind::Ecf);
    for (u, unit) in pop.units.iter_mut().enumerate() {
        unit.page = PageModel::lognormal(21 ^ u as u64, 6, 8192.0, 1.6, 200, 30_000);
    }
    pop.scenario = pop
        .scenario
        .clone()
        .rate_mbps(Time::from_millis(300), 3, 2.0) // unit 1's LTE
        .rate_mbps(Time::from_millis(900), 3, 10.0)
        .outage(4, Time::from_millis(200), Time::from_millis(700)) // unit 2's WiFi
        .loss(
            Time::ZERO,
            7,
            scenario::LossModel::Bernoulli(0.02), // unit 3's LTE
        );
    let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
    for max_shards in [2, 3, 0] {
        let sharded = run_sweep(&pop, &SweepOptions { max_shards, ..Default::default() });
        assert_eq!(sharded.digest, mono.digest, "max_shards={max_shards}");
        assert_eq!(sharded.units, mono.units, "max_shards={max_shards}");
    }
    // The dynamics were not dropped outright: the outage must delay unit
    // 2's WiFi-path traffic relative to a static run.
    let mut still = pop.clone();
    still.scenario = scenario::Scenario::new();
    let baseline = run_sweep(&still, &SweepOptions { max_shards: 1, ..Default::default() });
    assert_ne!(mono.digest, baseline.digest, "scenario must change the run");
}

#[test]
fn population_scenario_matches_monolith_coupled() {
    let mut pop = small_coupled(33, 4, 1, 10.0, Duration::from_millis(30));
    pop.scenario = pop
        .scenario
        .clone()
        .rate_mbps(Time::from_millis(250), 0, 0.5) // unit 0's WiFi
        .outage(2, Time::from_millis(100), Time::from_millis(600)); // unit 1's WiFi
    let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
    for max_shards in [2, 0] {
        let sharded = run_sweep(&pop, &SweepOptions { max_shards, ..Default::default() });
        assert!(sharded.shard_events.len() >= 2);
        assert_eq!(sharded.digest, mono.digest, "max_shards={max_shards}");
        assert_eq!(sharded.units, mono.units, "max_shards={max_shards}");
    }
}

#[test]
fn stepwise_driver_reports_progress() {
    let pop = small_coupled(5, 3, 1, 10.0, Duration::from_millis(30));
    let mut run = CoupledRun::new(&pop, &SweepOptions { max_shards: 0, workers: Some(1), ..Default::default() });
    assert_eq!(run.n_groups(), 3);
    assert!(run.window_nanos() > 0);
    assert_eq!(run.now(), Time::ZERO);
    assert!(run.step(), "a fresh coupled run has work to do");
    assert_eq!(run.now().as_nanos(), run.window_nanos());
    let report = run.finish();
    let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
    assert_eq!(report.digest, mono.digest);
}
