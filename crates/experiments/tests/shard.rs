//! Shard-vs-monolith equivalence: the sweep contract (DESIGN.md §11) says a
//! sharded population run merges to a result *bit-identical* to the
//! monolithic single-engine run, at every shard count and every worker
//! count. The property test explores random populations and shard counts;
//! the golden test pins the standard ~1k-connection browse sweep digest so
//! a seeded-behavior change cannot slip through as "still self-consistent".

use ecf_core::SchedulerKind;
use experiments::{browse_1k, browse_population, run_sweep, Population, SweepOptions};
use testkit::prop::{any_u64, check};
use webload::PageModel;

/// The standard browse_1k population, seed 1: digest of the merged per-unit
/// reports. Pinned here (not in `ENGINE_CONTRACT`) so adding the sweep does
/// not invalidate existing matrix caches; regenerate with
/// `repro sweep --units 167 --seed 1` after a deliberate engine change.
const BROWSE_1K_SEED_1: u64 = 0x111c_1778_5569_441a;

/// A small population with tiny pages so each property case stays cheap:
/// unit count, connections per unit and page shape all derive from the
/// case's seed material.
fn small_pop(seed: u64, n_units: usize, conns_per_unit: usize) -> Population {
    let mut pop = browse_population(seed, n_units, conns_per_unit, 1.0, 10.0, SchedulerKind::Ecf);
    for (u, unit) in pop.units.iter_mut().enumerate() {
        unit.page = PageModel::lognormal(seed ^ u as u64, 6, 8192.0, 1.6, 200, 30_000);
    }
    pop
}

#[test]
fn prop_shard_merge_is_bit_identical_to_monolith() {
    // (seed, units, conns/unit, max_shards 1..=8): the monolith is
    // max_shards = 1; every other shard count must merge to the same
    // digest AND the same field-for-field unit reports.
    check(24, (any_u64(), 2_usize..=6, 1_usize..=3, 1_usize..=8), |(seed, units, conns, k)| {
        let pop = small_pop(seed, units, conns);
        let mono = run_sweep(&pop, &SweepOptions { max_shards: 1, ..Default::default() });
        let sharded = run_sweep(&pop, &SweepOptions { max_shards: k, ..Default::default() });
        assert_eq!(
            sharded.digest, mono.digest,
            "digest diverged at max_shards={k} for seed {seed}"
        );
        assert_eq!(sharded.units, mono.units, "unit reports diverged at max_shards={k}");
    });
}

#[test]
fn worker_count_is_invisible_in_the_merge() {
    let pop = small_pop(0xECF, 12, 2);
    let reference = run_sweep(
        &pop,
        &SweepOptions { max_shards: 0, workers: Some(1), ..Default::default() },
    );
    assert_eq!(reference.shard_events.len(), 12, "one shard per unit expected");
    for workers in [2, 8] {
        let run = run_sweep(
            &pop,
            &SweepOptions { max_shards: 0, workers: Some(workers), ..Default::default() },
        );
        assert_eq!(run.digest, reference.digest, "workers={workers}");
        assert_eq!(run.units, reference.units, "workers={workers}");
    }
}

#[test]
fn browse_1k_sweep_digest_is_golden() {
    let pop = browse_1k(1);
    let n_conns: usize = pop.units.iter().map(|u| u.conns.len()).sum();
    assert_eq!(n_conns, 1002);
    let report = run_sweep(&pop, &SweepOptions::default());
    assert!(report.units.iter().all(|u| u.page_load.is_some()), "every page must finish");
    assert_eq!(
        report.digest, BROWSE_1K_SEED_1,
        "browse_1k seed-1 sweep digest moved: seeded engine behavior changed \
         (got {:#018x})",
        report.digest
    );
}
