//! Property tests for the experiment-matrix cache key.
//!
//! The cache-correctness argument rests on two digest properties:
//!
//! 1. **Format invariance** — the digest sees canonical JSON, so key
//!    reordering and whitespace changes in a spec (or a cache entry) never
//!    change a cell's identity.
//! 2. **Value sensitivity** — mutating any single field of a cell config
//!    (any leaf: a seed, a rate, a scheduler name, a nested scenario
//!    parameter) always produces a different cache key, so no stale result
//!    can be served for a changed configuration.
//!
//! Inputs are generated from primitives and assembled in the property body,
//! so failures shrink toward a minimal config and mutation.

use std::collections::BTreeMap;

use testkit::digest::canonical_digest;
use testkit::json::{self, canonical, Value};
use testkit::prop::{check, choice};

/// Assemble a plausible cell config from primitive knobs. The exact
/// semantics don't matter to the digest; the *shape* (nested objects,
/// mixed value types) does.
fn build_config(
    wifi: f64,
    lte: f64,
    seed: u64,
    scheduler: &str,
    cc: &str,
    outage: u64,
    record: bool,
) -> Value {
    let mut scenario = BTreeMap::new();
    scenario.insert("kind".to_string(), Value::String("handover".into()));
    scenario.insert("outage_secs".to_string(), Value::Number(outage as f64));
    let mut m = BTreeMap::new();
    m.insert("workload".to_string(), Value::String("streaming".into()));
    m.insert("wifi_mbps".to_string(), Value::Number(wifi));
    m.insert("lte_mbps".to_string(), Value::Number(lte));
    m.insert("seed".to_string(), Value::Number(seed as f64));
    m.insert("scheduler".to_string(), Value::String(scheduler.into()));
    m.insert("cc".to_string(), Value::String(cc.into()));
    m.insert("scenario".to_string(), Value::Object(scenario));
    m.insert("record_sndbuf".to_string(), Value::Bool(record));
    Value::Object(m)
}

/// Re-serialize `v` with rotated key order and pseudo-random whitespace —
/// a format-preserving, value-preserving rewrite of the document.
fn pad(salt: &mut u64, out: &mut String) {
    *salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    match (*salt >> 33) % 4 {
        0 => {}
        1 => out.push(' '),
        2 => out.push_str("  "),
        _ => out.push_str("\n\t"),
    }
}

fn scramble(v: &Value, salt: &mut u64, out: &mut String) {
    match v {
        Value::Object(m) => {
            out.push('{');
            let keys: Vec<&String> = m.keys().collect();
            let rot = if keys.is_empty() { 0 } else { (*salt as usize) % keys.len() };
            for (i, idx) in (0..keys.len()).map(|i| (i + rot) % keys.len()).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(salt, out);
                // Keys in our configs never need escaping.
                out.push_str(&format!("\"{}\"", keys[idx]));
                pad(salt, out);
                out.push(':');
                pad(salt, out);
                scramble(&m[keys[idx]], salt, out);
            }
            pad(salt, out);
            out.push('}');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(salt, out);
                scramble(item, salt, out);
            }
            pad(salt, out);
            out.push(']');
        }
        leaf => out.push_str(&canonical(leaf)),
    }
}

/// Every leaf path in the document (objects/arrays recursed, scalars kept).
fn leaf_paths(v: &Value, prefix: Vec<String>, out: &mut Vec<Vec<String>>) {
    match v {
        Value::Object(m) => {
            for (k, val) in m {
                let mut p = prefix.clone();
                p.push(k.clone());
                leaf_paths(val, p, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let mut p = prefix.clone();
                p.push(i.to_string());
                leaf_paths(item, p, out);
            }
        }
        _ => out.push(prefix),
    }
}

/// Mutate the leaf at `path` into a guaranteed-different value.
fn mutate_at(v: &mut Value, path: &[String]) {
    match v {
        Value::Object(m) => {
            let inner = m.get_mut(&path[0]).expect("path exists");
            if path.len() == 1 {
                *inner = mutate_leaf(inner);
            } else {
                mutate_at(inner, &path[1..]);
            }
        }
        Value::Array(items) => {
            let idx: usize = path[0].parse().expect("array index");
            if path.len() == 1 {
                items[idx] = mutate_leaf(&items[idx]);
            } else {
                mutate_at(&mut items[idx], &path[1..]);
            }
        }
        _ => unreachable!("path descends through containers"),
    }
}

fn mutate_leaf(v: &Value) -> Value {
    match v {
        Value::Number(n) => Value::Number(if n.is_finite() { n + 1.0 } else { 0.0 }),
        Value::String(s) => Value::String(format!("{s}x")),
        Value::Bool(b) => Value::Bool(!b),
        Value::Null => Value::Bool(true),
        _ => unreachable!("leaves are scalars"),
    }
}

const SCHEDULERS: [&str; 4] = ["default", "ecf", "blest", "daps"];
const CCS: [&str; 3] = ["lia", "olia", "reno"];

#[test]
fn digest_is_invariant_under_key_order_and_whitespace() {
    check(
        256,
        (
            0.1_f64..10.0,
            0.1_f64..10.0,
            0_u64..1_000_000,
            choice(&SCHEDULERS),
            choice(&CCS),
            (0_u64..120, testkit::prop::any_u64()),
        ),
        |(wifi, lte, seed, sched, cc, (outage, salt))| {
            let cfg = build_config(wifi, lte, seed, sched, cc, outage, salt % 2 == 0);
            let mut text = String::new();
            let mut s = salt;
            scramble(&cfg, &mut s, &mut text);
            let reparsed = json::parse(&text)
                .unwrap_or_else(|e| panic!("scrambled form must stay valid JSON: {e}\n{text}"));
            assert_eq!(
                canonical(&cfg),
                canonical(&reparsed),
                "canonical form changed under rewrite"
            );
            assert_eq!(
                canonical_digest(&cfg),
                canonical_digest(&reparsed),
                "digest changed under key reordering/whitespace"
            );
        },
    );
}

#[test]
fn digest_changes_for_every_single_field_mutation() {
    check(
        256,
        (
            0.1_f64..10.0,
            0.1_f64..10.0,
            0_u64..1_000_000,
            choice(&SCHEDULERS),
            choice(&CCS),
            (0_u64..120, 0_usize..1024),
        ),
        |(wifi, lte, seed, sched, cc, (outage, pick))| {
            let cfg = build_config(wifi, lte, seed, sched, cc, outage, pick % 2 == 0);
            let mut paths = Vec::new();
            leaf_paths(&cfg, Vec::new(), &mut paths);
            assert!(!paths.is_empty());
            let path = &paths[pick % paths.len()];
            let mut mutated = cfg.clone();
            mutate_at(&mut mutated, path);
            assert_ne!(cfg, mutated, "mutation at {path:?} was a no-op");
            assert_ne!(
                canonical_digest(&cfg),
                canonical_digest(&mutated),
                "digest identical after mutating {path:?}"
            );
        },
    );
}

#[test]
fn digest_separates_every_leaf_mutation_exhaustively() {
    // The property above samples; this pins the full cross-product for one
    // representative config: every leaf mutated, every digest distinct from
    // the original *and* from each other (no two mutations collide).
    let cfg = build_config(1.7, 8.6, 42, "ecf", "lia", 10, true);
    let mut paths = Vec::new();
    leaf_paths(&cfg, Vec::new(), &mut paths);
    let mut digests = vec![canonical_digest(&cfg)];
    for path in &paths {
        let mut mutated = cfg.clone();
        mutate_at(&mut mutated, path);
        digests.push(canonical_digest(&mutated));
    }
    let n = digests.len();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), n, "some mutations collided");
}
