//! Steady-state allocation audit for the deliver loop.
//!
//! PR 5's contract is that once a run is warmed up — connections
//! established, windows opened, the event wheel and link queues grown to
//! their working set — the pop-event/handle/schedule loop performs **zero**
//! heap allocations. Segments recycle through the slab arena, wheel nodes
//! through the queue's free list, and every scratch buffer is reused, so
//! the only allocator traffic a long sweep should see is startup growth.
//!
//! This test pins that contract with a counting `#[global_allocator]`: warm
//! a bulk download for ten simulated seconds, then run twenty more and
//! assert the allocation count did not move. It lives in its own
//! integration-test binary so no sibling test can pollute the counter.
//!
//! The recorder's OOO-delay trace is switched off: it appends one entry per
//! delivered segment by design (a measurement buffer, not hot-loop state),
//! which is exactly the kind of unbounded growth this audit must exclude.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mptcp::{RecorderConfig, Testbed, TestbedConfig};
use simnet::Time;
use webload::WgetApp;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn wget_cfg() -> TestbedConfig {
    let mut cfg = TestbedConfig::wifi_lte(8.6, 9.6, ecf_core::SchedulerKind::Ecf, 7);
    cfg.recorder = RecorderConfig {
        ooo_delays: false,
        ..RecorderConfig::default()
    };
    cfg
}

#[test]
fn steady_state_deliver_loop_allocates_nothing() {
    // Big enough that the download is still in full flight at t = 30 s.
    let mut tb = Testbed::new(wget_cfg(), WgetApp::new(200 * 1024 * 1024));

    tb.run_until(Time::from_secs(10));
    let events_before = tb.events_processed();
    let batched_before = tb.batched_deliveries();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);

    tb.run_until(Time::from_secs(30));

    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let events = tb.events_processed() - events_before;
    let batched = tb.batched_deliveries() - batched_before;

    // Make sure the window actually exercised the hot loop: twenty seconds
    // of a ~18 Mbps aggregate download is tens of thousands of deliveries,
    // ACKs, and timers.
    assert!(
        events > 20_000,
        "steady-state window processed only {events} events; workload mis-sized"
    );
    // ... including the batched claim path: a full-flight bulk download on
    // FIFO links must dispatch some deliveries inline, or this audit has
    // silently stopped covering the batching fast path.
    assert!(
        batched > 0,
        "steady-state window dispatched no batched deliveries; audit no \
         longer covers the claim path"
    );
    assert_eq!(
        allocs, 0,
        "steady-state deliver loop allocated {allocs} times over {events} events"
    );

    // Second run on the recycled event queue — the shard-worker reuse path
    // (`Testbed::into_queue` → `new_with_queue`). The recovered slab must
    // (a) cut the warm-up's allocator traffic against the cold run above
    // and (b) reach the same zero-allocation steady state.
    let queue = tb.into_queue();
    let cold_start = ALLOCS.load(Ordering::Relaxed);
    let mut tb = Testbed::new_with_queue(wget_cfg(), WgetApp::new(200 * 1024 * 1024), queue);
    tb.run_until(Time::from_secs(10));
    let warm_allocs = ALLOCS.load(Ordering::Relaxed) - cold_start;
    assert!(
        warm_allocs < allocs_before / 2,
        "recycled-queue warm-up allocated {warm_allocs} times, \
         not clearly cheaper than the cold run's {allocs_before}"
    );

    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let events_before = tb.events_processed();
    tb.run_until(Time::from_secs(30));
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let events = tb.events_processed() - events_before;
    assert!(events > 20_000, "recycled run processed only {events} events");
    assert_eq!(
        allocs, 0,
        "recycled-queue steady state allocated {allocs} times over {events} events"
    );
}
