//! Golden-digest regression tests for the simulator hot path.
//!
//! Each test replays a fully seeded workload and folds every
//! timing-sensitive observable (request lifecycles, out-of-order delays,
//! per-chunk throughputs, events processed) into one FNV-1a digest. The
//! expected values were captured before the O(1) link-delivery-queue
//! refactor landed; the refactored engine must keep every seeded outcome
//! bit-identical, because heap entries carry the exact same `(time, seq)`
//! keys as the old per-packet scheduling (see DESIGN.md, "Event
//! coalescing on FIFO links").
//!
//! The expected values live in [`experiments::expmatrix::ENGINE_CONTRACT`]
//! because they do double duty: the experiment matrix folds them into
//! every cache key, so the change that fails these tests also invalidates
//! every cached cell result once the constants are regenerated.
//!
//! If one of these digests changes, the event ordering of the simulator
//! changed — that is a correctness bug unless a PR deliberately changes
//! the simulation model itself (in which case regenerate the constants
//! with `cargo test -p experiments --test golden -- --nocapture` after
//! reviewing why every downstream figure is allowed to move).

use ecf_core::SchedulerKind;
use experiments::expmatrix::ENGINE_CONTRACT;
use experiments::{run_browse, run_streaming, StreamingConfig};
use scenario::Scenario;
use testkit::digest::Fnv1a;

/// Expected digest for one contract entry.
fn golden(name: &str) -> u64 {
    ENGINE_CONTRACT
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("ENGINE_CONTRACT lacks {name}"))
        .1
}

/// Digest every deterministic observable of one streaming run.
fn streaming_digest(seed: u64) -> u64 {
    streaming_digest_with(seed, None)
}

fn streaming_digest_with(seed: u64, scenario: Option<Scenario>) -> u64 {
    let out = run_streaming(&StreamingConfig {
        video_secs: 30.0,
        scenario,
        ..StreamingConfig::new(0.3, 8.6, SchedulerKind::Ecf, seed)
    });
    let mut d = Fnv1a::new();
    d.write_u64(out.events_processed);
    d.write_f64(out.avg_bitrate);
    d.write_f64(out.avg_throughput);
    d.write_f64(out.fast_fraction);
    d.write_u64(out.fast_iw_resets);
    for &x in &out.ooo_delays {
        d.write_f64(x);
    }
    for &x in &out.last_packet_gaps {
        d.write_f64(x);
    }
    for &(t, v) in &out.chunk_throughputs {
        d.write_f64(t);
        d.write_f64(v);
    }
    for &(t, v) in &out.download_progress {
        d.write_f64(t);
        d.write_f64(v);
    }
    d.finish()
}

/// Digest a six-connection browse run: request lifecycles, pooled OOO
/// delays, and the exact number of engine events processed.
fn browse_digest(seed: u64) -> u64 {
    let tb = run_browse(0.3, 8.6, SchedulerKind::Ecf, seed);
    let mut d = Fnv1a::new();
    d.write_u64(tb.events_processed());
    let rec = &tb.world().recorder;
    for r in &rec.requests {
        d.write_u64(r.bytes);
        d.write_u64(r.issued.as_nanos());
        d.write_u64(r.server_arrival.map_or(u64::MAX, |t| t.as_nanos()));
        d.write_u64(r.completed.map_or(u64::MAX, |t| t.as_nanos()));
        for a in &r.last_arrival_per_sub {
            d.write_u64(a.map_or(u64::MAX, |t| t.as_nanos()));
        }
        for &n in &r.arrivals_per_sub {
            d.write_u64(n);
        }
    }
    for &us in &rec.ooo_delays_us {
        d.write_u64(us);
    }
    d.finish()
}

#[test]
fn streaming_seed_1_is_bit_identical() {
    let d = streaming_digest(1);
    println!("streaming seed 1 digest: {d:#018x}");
    assert_eq!(d, golden("streaming_seed_1"));
}

#[test]
fn streaming_seed_2_is_bit_identical() {
    let d = streaming_digest(2);
    println!("streaming seed 2 digest: {d:#018x}");
    assert_eq!(d, golden("streaming_seed_2"));
}

#[test]
fn streaming_seed_2014_is_bit_identical() {
    let d = streaming_digest(2014);
    println!("streaming seed 2014 digest: {d:#018x}");
    assert_eq!(d, golden("streaming_seed_2014"));
}

#[test]
fn explicit_static_scenario_leaves_digest_unchanged() {
    // Wiring an all-static `Scenario` through the testbed must compile to
    // zero control events and therefore the exact event stream — same
    // `(time, seq)` keys, same digest — as passing no scenario at all.
    let s = Scenario::new();
    assert!(s.is_static());
    assert_eq!(streaming_digest_with(1, Some(s)), golden("streaming_seed_1"));
}

#[test]
fn browse_seed_1_is_bit_identical() {
    let d = browse_digest(1);
    println!("browse seed 1 digest: {d:#018x}");
    assert_eq!(d, golden("browse_seed_1"));
}

/// The scheduler seam extracted into `mptcp::transport` (`SchedDriver`,
/// the transport traits, and the cross-layer queue-depth sample) must be
/// value-neutral for MPTCP: all four contract digests, re-asserted in one
/// place so drift in the seam fails atomically with a name that says what
/// moved. `mptcp::transport`'s module docs point here.
#[test]
fn transport_refactor_guard() {
    assert_eq!(streaming_digest(1), golden("streaming_seed_1"));
    assert_eq!(streaming_digest(2), golden("streaming_seed_2"));
    assert_eq!(streaming_digest(2014), golden("streaming_seed_2014"));
    assert_eq!(browse_digest(1), golden("browse_seed_1"));
}
