//! Golden-digest regression tests for the simulator hot path.
//!
//! Each test replays a fully seeded workload and folds every
//! timing-sensitive observable (request lifecycles, out-of-order delays,
//! per-chunk throughputs, events processed) into one FNV-1a digest. The
//! expected values were captured before the O(1) link-delivery-queue
//! refactor landed; the refactored engine must keep every seeded outcome
//! bit-identical, because heap entries carry the exact same `(time, seq)`
//! keys as the old per-packet scheduling (see DESIGN.md, "Event
//! coalescing on FIFO links").
//!
//! If one of these digests changes, the event ordering of the simulator
//! changed — that is a correctness bug unless a PR deliberately changes
//! the simulation model itself (in which case regenerate the constants
//! with `cargo test -p experiments --test golden -- --nocapture` after
//! reviewing why every downstream figure is allowed to move).

use ecf_core::SchedulerKind;
use experiments::{run_browse, run_streaming, StreamingConfig};
use scenario::Scenario;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one u64 into an FNV-1a accumulator, byte by byte.
fn fold(acc: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *acc ^= u64::from(b);
        *acc = acc.wrapping_mul(FNV_PRIME);
    }
}

fn fold_f64(acc: &mut u64, x: f64) {
    fold(acc, x.to_bits());
}

/// Digest every deterministic observable of one streaming run.
fn streaming_digest(seed: u64) -> u64 {
    streaming_digest_with(seed, None)
}

fn streaming_digest_with(seed: u64, scenario: Option<Scenario>) -> u64 {
    let out = run_streaming(&StreamingConfig {
        video_secs: 30.0,
        scenario,
        ..StreamingConfig::new(0.3, 8.6, SchedulerKind::Ecf, seed)
    });
    let mut d = FNV_OFFSET;
    fold(&mut d, out.events_processed);
    fold_f64(&mut d, out.avg_bitrate);
    fold_f64(&mut d, out.avg_throughput);
    fold_f64(&mut d, out.fast_fraction);
    fold(&mut d, out.fast_iw_resets);
    for &x in &out.ooo_delays {
        fold_f64(&mut d, x);
    }
    for &x in &out.last_packet_gaps {
        fold_f64(&mut d, x);
    }
    for &(t, v) in &out.chunk_throughputs {
        fold_f64(&mut d, t);
        fold_f64(&mut d, v);
    }
    for &(t, v) in &out.download_progress {
        fold_f64(&mut d, t);
        fold_f64(&mut d, v);
    }
    d
}

/// Digest a six-connection browse run: request lifecycles, pooled OOO
/// delays, and the exact number of engine events processed.
fn browse_digest(seed: u64) -> u64 {
    let tb = run_browse(0.3, 8.6, SchedulerKind::Ecf, seed);
    let mut d = FNV_OFFSET;
    fold(&mut d, tb.events_processed());
    let rec = &tb.world().recorder;
    for r in &rec.requests {
        fold(&mut d, r.bytes);
        fold(&mut d, r.issued.as_nanos());
        fold(&mut d, r.server_arrival.map_or(u64::MAX, |t| t.as_nanos()));
        fold(&mut d, r.completed.map_or(u64::MAX, |t| t.as_nanos()));
        for a in &r.last_arrival_per_sub {
            fold(&mut d, a.map_or(u64::MAX, |t| t.as_nanos()));
        }
        for &n in &r.arrivals_per_sub {
            fold(&mut d, n);
        }
    }
    for &us in &rec.ooo_delays_us {
        fold(&mut d, us);
    }
    d
}

#[test]
fn streaming_seed_1_is_bit_identical() {
    let d = streaming_digest(1);
    println!("streaming seed 1 digest: {d:#018x}");
    assert_eq!(d, GOLDEN_STREAMING_SEED_1);
}

#[test]
fn streaming_seed_2_is_bit_identical() {
    let d = streaming_digest(2);
    println!("streaming seed 2 digest: {d:#018x}");
    assert_eq!(d, GOLDEN_STREAMING_SEED_2);
}

#[test]
fn streaming_seed_2014_is_bit_identical() {
    let d = streaming_digest(2014);
    println!("streaming seed 2014 digest: {d:#018x}");
    assert_eq!(d, GOLDEN_STREAMING_SEED_2014);
}

#[test]
fn explicit_static_scenario_leaves_digest_unchanged() {
    // Wiring an all-static `Scenario` through the testbed must compile to
    // zero control events and therefore the exact event stream — same
    // `(time, seq)` keys, same digest — as passing no scenario at all.
    let s = Scenario::new();
    assert!(s.is_static());
    assert_eq!(streaming_digest_with(1, Some(s)), GOLDEN_STREAMING_SEED_1);
}

#[test]
fn browse_seed_1_is_bit_identical() {
    let d = browse_digest(1);
    println!("browse seed 1 digest: {d:#018x}");
    assert_eq!(d, GOLDEN_BROWSE_SEED_1);
}

/// Captured on the pre-refactor all-heap scheduler (PR 1 tree).
const GOLDEN_STREAMING_SEED_1: u64 = 0xceec_95c6_d6bb_212a;
const GOLDEN_STREAMING_SEED_2: u64 = 0x8fcd_014e_b130_7ff9;
const GOLDEN_STREAMING_SEED_2014: u64 = 0x8536_e9cb_b2eb_e94a;
const GOLDEN_BROWSE_SEED_1: u64 = 0x0087_b015_cafe_1e60;
