//! The experiment-matrix equivalence suite: the ported specs reproduce the
//! legacy figure code byte-for-byte, caching never changes output, merge
//! order is independent of shard count, and corrupt cache entries are
//! contained.
//!
//! Everything runs at `Effort::Quick`; the matrix and the legacy harness
//! are the *same parameterized code path* at both efforts (only ladder
//! sizes and seed counts change), so Quick equivalence carries to the
//! committed full-effort results.

use std::path::PathBuf;

use experiments::expmatrix::{self, Lookup, MatrixOptions, Spec};
use experiments::{dynamics, streaming, Effort};
use telemetry::{Counter, TelemetryHandle};
use testkit::digest::canonical_digest;

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("specs/{name}.json"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("expmatrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_opts(cache_dir: &PathBuf) -> MatrixOptions {
    let mut opts = MatrixOptions::new(cache_dir);
    opts.effort = Effort::Quick;
    opts
}

/// Cold run, warm run, and `--force` run of one spec must agree with each
/// other and with the legacy generator, and the warm run must execute
/// nothing.
fn assert_equivalent(name: &str, legacy: &str) {
    let dir = scratch(name);
    let spec = Spec::from_file(spec_path(name)).unwrap();
    let opts = quick_opts(&dir);

    let cold = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(cold.executed, cold.cells, "{name}: cold run must execute everything");
    assert_eq!(cold.hits, 0, "{name}: cold run can't hit an empty cache");
    assert_eq!(cold.report, legacy, "{name}: matrix output != legacy output");

    let warm = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(warm.executed, 0, "{name}: warm run must execute nothing");
    assert_eq!(warm.hits, warm.cells, "{name}: warm run must be 100% hits");
    assert_eq!(warm.report, cold.report, "{name}: warm output differs from cold");

    let mut forced = quick_opts(&dir);
    forced.force = true;
    let force = expmatrix::run_matrix(&spec, &forced).unwrap();
    assert_eq!(force.executed, force.cells, "{name}: --force must re-execute");
    assert_eq!(force.report, cold.report, "{name}: forced output differs from cold");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn matrix_dyn_burstloss_matches_legacy() {
    assert_equivalent("dyn_burstloss", &dynamics::dyn_burstloss(Effort::Quick));
}

#[test]
fn matrix_dyn_handover_matches_legacy() {
    assert_equivalent("dyn_handover", &dynamics::dyn_handover(Effort::Quick));
}

#[test]
fn matrix_fig3_matches_legacy() {
    assert_equivalent("fig3", &streaming::fig3(Effort::Quick));
}

#[test]
fn matrix_fig16_matches_legacy() {
    assert_equivalent("fig16", &streaming::fig16(Effort::Quick));
}

#[test]
fn matrix_fig17_matches_legacy() {
    assert_equivalent("fig17", &streaming::fig17(Effort::Quick));
}

#[test]
fn shard_count_never_changes_output_or_digests() {
    let spec = Spec::from_file(spec_path("smoke")).unwrap();
    let baseline_exp = expmatrix::expand(&spec, Effort::Quick).unwrap();
    let baseline_digests: Vec<u64> =
        baseline_exp.cells.iter().map(|c| c.digest).collect();

    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        // Fresh cache per worker count: every run executes every cell, so
        // any shard-order leakage into the merge would show up.
        let dir = scratch(&format!("shards-{workers}"));
        let mut opts = quick_opts(&dir);
        opts.workers = Some(workers);
        let outcome = expmatrix::run_matrix(&spec, &opts).unwrap();
        assert_eq!(outcome.executed, outcome.cells);

        let exp = expmatrix::expand(&spec, Effort::Quick).unwrap();
        let digests: Vec<u64> = exp.cells.iter().map(|c| c.digest).collect();
        assert_eq!(
            digests, baseline_digests,
            "per-cell digests changed at {workers} workers"
        );
        reports.push(outcome.report);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(reports[0], reports[1], "1-thread vs 2-thread output differs");
    assert_eq!(reports[0], reports[2], "1-thread vs 8-thread output differs");
}

#[test]
fn truncated_cache_entry_is_a_counted_miss_and_gets_repaired() {
    let dir = scratch("corrupt");
    let spec = Spec::from_file(spec_path("fig17")).unwrap();
    let opts = quick_opts(&dir);
    let cold = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(cold.cells, 2);

    // Truncate one entry in place (a crash mid-write, bit-rot, a partial
    // copy — the hygiene cases).
    let exp = expmatrix::expand(&spec, Effort::Quick).unwrap();
    let victim = expmatrix::Cache::new(&dir).entry_path(exp.cells[0].digest);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let mut opts = quick_opts(&dir);
    opts.telemetry = TelemetryHandle::enabled();
    let repaired = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(repaired.invalid, 1, "truncation must be detected");
    assert_eq!(repaired.hits, 1, "the intact entry must still hit");
    assert_eq!(repaired.executed, 1, "only the corrupt cell re-executes");
    assert_eq!(repaired.report, cold.report, "output must not change");
    assert_eq!(opts.telemetry.counter(Counter::MatrixCacheHits), 1);
    assert_eq!(opts.telemetry.counter(Counter::MatrixCacheMisses), 1);
    assert_eq!(opts.telemetry.counter(Counter::MatrixCacheInvalid), 1);

    // The re-execution rewrote the entry: a third run is fully warm.
    let warm = expmatrix::run_matrix(&spec, &quick_opts(&dir)).unwrap();
    assert_eq!(warm.executed, 0);
    assert_eq!(warm.report, cold.report);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dry_run_probes_without_executing() {
    let dir = scratch("dry");
    let spec = Spec::from_file(spec_path("smoke")).unwrap();
    let mut opts = quick_opts(&dir);
    opts.dry_run = true;
    let dry = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(dry.executed, 0);
    assert_eq!(dry.misses, dry.cells);
    assert!(dry.report.contains("dry run"), "report: {}", dry.report);
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "dry run must not write cache entries"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quick_and_full_cells_never_share_cache_keys() {
    // Effort resolution happens before digesting, so a Quick run can never
    // poison a Full figure (and vice versa).
    let spec = Spec::from_file(spec_path("dyn_burstloss")).unwrap();
    let quick = expmatrix::expand(&spec, Effort::Quick).unwrap();
    let full = expmatrix::expand(&spec, Effort::Full).unwrap();
    let quick_digests: std::collections::HashSet<u64> =
        quick.cells.iter().map(|c| c.digest).collect();
    assert!(full.cells.iter().all(|c| !quick_digests.contains(&c.digest)));
    assert_eq!(quick.cells.len(), 27);
    assert_eq!(full.cells.len(), (5 + 4) * 3 * 5);
}

#[test]
fn engine_contract_changes_invalidate_cached_cells() {
    // Simulate an engine-behavior change by probing with a key whose
    // contract differs: the stored entry must be rejected, not served.
    let dir = scratch("contract");
    let cache = expmatrix::Cache::new(&dir);
    let spec = Spec::from_file(spec_path("smoke")).unwrap();
    let exp = expmatrix::expand(&spec, Effort::Quick).unwrap();
    let cell = &exp.cells[0];
    let result = testkit::json::parse(r#"{"scalars":{"avg_bitrate":1.0}}"#).unwrap();
    cache.store(cell.digest, &cell.key, &result).unwrap();
    assert_eq!(cache.load(cell.digest, &cell.key), Lookup::Hit(result));

    let mut new_key = cell.key.clone();
    if let testkit::json::Value::Object(m) = &mut new_key {
        m.insert(
            "contract".to_string(),
            testkit::json::Value::String("next-engine".into()),
        );
    }
    let new_digest = canonical_digest(&new_key);
    assert_ne!(new_digest, cell.digest, "contract must be part of the key");
    assert_eq!(
        cache.load(new_digest, &new_key),
        Lookup::Miss,
        "a new contract addresses a different entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
