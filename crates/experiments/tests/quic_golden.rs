//! Golden-digest regression tests for the multipath-QUIC testbed, plus the
//! cold==warm byte-identity check for the `quic_web` experiment matrix.
//!
//! The pinned digests are deliberately kept **out** of
//! [`experiments::expmatrix::ENGINE_CONTRACT`]: that contract is folded
//! into every matrix cache key, and the quic model is a *consumer* of the
//! engine, not part of it — re-tuning the quic transport must not
//! invalidate every cached MPTCP streaming cell. The quic digests live
//! here instead, pinned with the same regeneration workflow
//! (`cargo test -p experiments --test quic_golden -- --nocapture`).

use ecf_core::SchedulerKind;
use experiments::expmatrix::{self, MatrixOptions, Spec};
use experiments::{run_quic_web, Effort};
use testkit::digest::Fnv1a;

/// Expected digests of the quic browse run at 0.3/8.6 Mbps with ECF —
/// the heterogeneous-path shape every other golden uses.
const QUIC_WEB_GOLDEN: [(u64, u64); 3] = [
    (1, 0xb7f9_ea63_e85e_1127),
    (2, 0x8c81_a219_39d4_ec30),
    (2014, 0x9de2_0bea_5f14_b9b5),
];

/// Digest every deterministic observable of one quic page load: engine
/// event count, full request lifecycles (with per-path arrival stats), and
/// the pooled out-of-order delays.
fn quic_web_digest(seed: u64) -> u64 {
    let tb = run_quic_web(0.3, 8.6, SchedulerKind::Ecf, seed);
    let mut d = Fnv1a::new();
    d.write_u64(tb.events_processed());
    let rec = &tb.world().recorder;
    for r in &rec.requests {
        d.write_u64(r.bytes);
        d.write_u64(r.issued.as_nanos());
        d.write_u64(r.server_arrival.map_or(u64::MAX, |t| t.as_nanos()));
        d.write_u64(r.completed.map_or(u64::MAX, |t| t.as_nanos()));
        for a in &r.last_arrival_per_sub {
            d.write_u64(a.map_or(u64::MAX, |t| t.as_nanos()));
        }
        for &n in &r.arrivals_per_sub {
            d.write_u64(n);
        }
    }
    for &us in &rec.ooo_delays_us {
        d.write_u64(us);
    }
    d.finish()
}

fn golden(seed: u64) -> u64 {
    QUIC_WEB_GOLDEN
        .iter()
        .find(|(s, _)| *s == seed)
        .unwrap_or_else(|| panic!("no quic_web golden for seed {seed}"))
        .1
}

#[test]
fn quic_web_seed_1_is_bit_identical() {
    let d = quic_web_digest(1);
    println!("quic_web seed 1 digest: {d:#018x}");
    assert_eq!(d, golden(1));
}

#[test]
fn quic_web_seed_2_is_bit_identical() {
    let d = quic_web_digest(2);
    println!("quic_web seed 2 digest: {d:#018x}");
    assert_eq!(d, golden(2));
}

#[test]
fn quic_web_seed_2014_is_bit_identical() {
    let d = quic_web_digest(2014);
    println!("quic_web seed 2014 digest: {d:#018x}");
    assert_eq!(d, golden(2014));
}

/// The `quic_web` matrix spec must be byte-identical between a cold run
/// (every cell executed) and a warm run (every cell from cache).
#[test]
fn quic_web_matrix_cold_equals_warm() {
    let dir = std::env::temp_dir()
        .join(format!("expmatrix-quicweb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("specs/quic_web.json");
    let spec = Spec::from_file(spec_path).unwrap();
    let mut opts = MatrixOptions::new(&dir);
    opts.effort = Effort::Quick;

    let cold = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(cold.executed, cold.cells, "cold run must execute everything");
    assert_eq!(cold.hits, 0);

    let warm = expmatrix::run_matrix(&spec, &opts).unwrap();
    assert_eq!(warm.executed, 0, "warm run must execute nothing");
    assert_eq!(warm.hits, warm.cells, "warm run must be 100% hits");
    assert_eq!(warm.report, cold.report, "cold and warm output must be byte-identical");
    assert!(cold.report.contains("quic_plt_s"), "report must carry the comparison");

    let _ = std::fs::remove_dir_all(&dir);
}
