//! Single-object download (the paper's `wget` workload, §5.4): one MPTCP
//! connection, one GET, measure completion time.

use mptcp::{Api, Application, ConnId, ReqId};
use simnet::Time;

/// Downloads one object of a fixed size on connection 0 and stops.
pub struct WgetApp {
    bytes: u64,
    /// Set when the download completes.
    pub completed_at: Option<Time>,
    req: Option<ReqId>,
}

impl WgetApp {
    /// Download `bytes` once.
    pub fn new(bytes: u64) -> Self {
        WgetApp { bytes, completed_at: None, req: None }
    }

    /// The request id, once issued.
    pub fn request_id(&self) -> Option<ReqId> {
        self.req
    }
}

impl Application for WgetApp {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        self.req = Some(api.request(0, self.bytes));
    }

    fn on_response_complete(&mut self, now: Time, _conn: ConnId, req: ReqId, _api: &mut Api<'_>) {
        debug_assert_eq!(Some(req), self.req);
        self.completed_at = Some(now);
    }
}

/// Downloads a list of objects back-to-back on one persistent connection
/// (idle gaps optional) — the repeated-GET pattern §5.5 builds on.
pub struct SequentialApp {
    sizes: Vec<u64>,
    /// Pause inserted between completing one object and requesting the next.
    gap: std::time::Duration,
    next: usize,
    /// Completion time per object, in order.
    pub completions: Vec<Time>,
}

impl SequentialApp {
    /// Download `sizes` in order with `gap` idle time between objects.
    pub fn new(sizes: Vec<u64>, gap: std::time::Duration) -> Self {
        SequentialApp { sizes, gap, next: 0, completions: Vec::new() }
    }

    /// True when every object finished.
    pub fn done(&self) -> bool {
        self.completions.len() == self.sizes.len()
    }

    fn issue(&mut self, api: &mut Api<'_>) {
        if self.next < self.sizes.len() {
            api.request(0, self.sizes[self.next]);
            self.next += 1;
        }
    }
}

impl Application for SequentialApp {
    fn on_start(&mut self, _now: Time, api: &mut Api<'_>) {
        self.issue(api);
    }

    fn on_response_complete(&mut self, now: Time, _c: ConnId, _r: ReqId, api: &mut Api<'_>) {
        self.completions.push(now);
        if self.gap.is_zero() {
            self.issue(api);
        } else if self.next < self.sizes.len() {
            api.set_timer(now + self.gap, 0);
        }
    }

    fn on_timer(&mut self, _now: Time, _token: u64, api: &mut Api<'_>) {
        self.issue(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecf_core::SchedulerKind;
    use mptcp::{Testbed, TestbedConfig};
    use std::time::Duration;

    #[test]
    fn wget_completes_and_reports_time() {
        let cfg = TestbedConfig::wifi_lte(1.0, 5.0, SchedulerKind::Default, 1);
        let mut tb = Testbed::new(cfg, WgetApp::new(512 * 1024));
        tb.run_until(Time::from_secs(60));
        let t = tb.app().completed_at.expect("download finishes");
        // 512 KB over ≤6 Mbps aggregate: at least 0.7 s, at most a few s.
        let secs = t.as_secs_f64();
        assert!((0.5..10.0).contains(&secs), "took {secs}s");
    }

    #[test]
    fn sequential_with_gaps_idles_the_connection() {
        // Gaps longer than the RTO force idle restarts on the fast subflow —
        // the precondition for the paper's Web-browsing findings.
        let cfg = TestbedConfig::wifi_lte(0.3, 8.6, SchedulerKind::Default, 2);
        let sizes = vec![256 * 1024; 5];
        let mut tb = Testbed::new(cfg, SequentialApp::new(sizes, Duration::from_secs(2)));
        tb.run_until(Time::from_secs(120));
        assert!(tb.app().done());
        let resets: u64 = (0..2)
            .map(|s| tb.world().sender(0).subflows[s].cc.stats().idle_resets)
            .sum();
        assert!(resets > 0, "expected idle CWND resets with 2 s gaps");
    }

    #[test]
    fn back_to_back_no_gap() {
        let cfg = TestbedConfig::wifi_lte(2.0, 2.0, SchedulerKind::Ecf, 3);
        let mut tb = Testbed::new(
            cfg,
            SequentialApp::new(vec![64 * 1024, 128 * 1024], Duration::ZERO),
        );
        tb.run_until(Time::from_secs(60));
        assert!(tb.app().done());
        assert!(tb.app().completions[0] < tb.app().completions[1]);
    }
}
