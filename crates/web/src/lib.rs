//! # webload — HTTP workload models
//!
//! The paper's two non-video workloads:
//!
//! * [`WgetApp`] / [`SequentialApp`] — single-object and repeated downloads
//!   over a persistent connection (§5.4),
//! * [`PageModel`] + [`BrowserApp`] — a CNN-like 107-object page over six
//!   parallel persistent MPTCP connections (§5.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod download;
mod page;

pub use download::{SequentialApp, WgetApp};
pub use page::{BrowserApp, ObjectRecord, PageModel};
