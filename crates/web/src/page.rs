//! Web-page workload (§5.5): a CNN-front-page-like object mix fetched over
//! six parallel persistent MPTCP connections, the way the paper's Android
//! browser does.
//!
//! The paper serves a 2014 snapshot of cnn.com with 107 objects. The exact
//! object sizes are not published, so [`PageModel::cnn_like`] draws a
//! deterministic log-normal mix (median ≈ 8 KB, σ ≈ 1.6, clipped to
//! [200 B, 1.2 MB]) whose total lands in the 3–4 MB a 2014 news front page
//! measured. The distribution is fixed by seed, so every scheduler fetches
//! the *same* page (documented substitution in DESIGN.md).

use mptcp::{Api, Application, ConnId, ReqId};
use testkit::Rng;
use simnet::Time;

/// A static page: an ordered list of object sizes.
#[derive(Debug, Clone)]
pub struct PageModel {
    /// Object payload sizes in bytes.
    pub object_sizes: Vec<u64>,
}

impl PageModel {
    /// The paper's page: 107 objects, log-normal size mix, fixed by `seed`.
    pub fn cnn_like(seed: u64) -> Self {
        Self::lognormal(seed, 107, 8192.0, 1.6, 200, 1_200_000)
    }

    /// A log-normal page with explicit parameters.
    pub fn lognormal(
        seed: u64,
        objects: usize,
        median_bytes: f64,
        sigma: f64,
        min_bytes: u64,
        max_bytes: u64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mu = median_bytes.ln();
        let object_sizes = (0..objects)
            .map(|_| {
                // Box-Muller standard normal from two uniforms.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let size = (mu + sigma * z).exp();
                (size as u64).clamp(min_bytes, max_bytes)
            })
            .collect();
        PageModel { object_sizes }
    }

    /// Total page weight in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.object_sizes.iter().sum()
    }
}

/// Per-object download record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Index in the page's object list.
    pub index: usize,
    /// Payload size.
    pub bytes: u64,
    /// When the GET was issued.
    pub started: Time,
    /// When the response completed.
    pub finished: Time,
}

impl ObjectRecord {
    /// Download completion time for this object.
    pub fn completion_secs(&self) -> f64 {
        self.finished.since(self.started).as_secs_f64()
    }
}

/// A browser fetching a [`PageModel`] over `n_conns` parallel persistent
/// connections: each connection pulls the next unfetched object as soon as
/// its current one completes (HTTP/1.1, no pipelining).
pub struct BrowserApp {
    page: PageModel,
    n_conns: usize,
    /// First connection id this browser owns: it issues on connections
    /// `conn_base..conn_base + n_conns`. Zero for a standalone browser; a
    /// population harness gives each unit's browser its own id range so
    /// many browsers can share one testbed.
    conn_base: usize,
    next_object: usize,
    /// In-flight request → object index.
    pending: Vec<(ReqId, usize, Time)>,
    /// Completed object records.
    pub objects: Vec<ObjectRecord>,
    /// When the last object completed.
    pub page_load_time: Option<Time>,
}

impl BrowserApp {
    /// Fetch `page` over connections `0..n_conns`.
    pub fn new(page: PageModel, n_conns: usize) -> Self {
        Self::with_conn_base(page, n_conns, 0)
    }

    /// Fetch `page` over connections `conn_base..conn_base + n_conns` —
    /// the composition constructor for multi-unit populations.
    pub fn with_conn_base(page: PageModel, n_conns: usize, conn_base: usize) -> Self {
        assert!(n_conns >= 1);
        BrowserApp {
            page,
            n_conns,
            conn_base,
            next_object: 0,
            pending: Vec::new(),
            objects: Vec::new(),
            page_load_time: None,
        }
    }

    /// True once every object has been fetched.
    pub fn done(&self) -> bool {
        self.page_load_time.is_some()
    }

    /// Completion times (seconds) of all fetched objects — the Fig 20/23
    /// sample set.
    pub fn completion_times_secs(&self) -> Vec<f64> {
        self.objects.iter().map(ObjectRecord::completion_secs).collect()
    }

    fn issue_next(&mut self, now: Time, conn: ConnId, api: &mut Api<'_>) {
        if self.next_object >= self.page.object_sizes.len() {
            return;
        }
        let idx = self.next_object;
        self.next_object += 1;
        let req = api.request(conn, self.page.object_sizes[idx]);
        self.pending.push((req, idx, now));
    }
}

impl Application for BrowserApp {
    fn on_start(&mut self, now: Time, api: &mut Api<'_>) {
        for conn in self.conn_base..self.conn_base + self.n_conns {
            self.issue_next(now, conn, api);
        }
    }

    fn on_response_complete(&mut self, now: Time, conn: ConnId, req: ReqId, api: &mut Api<'_>) {
        let pos = self
            .pending
            .iter()
            .position(|&(r, _, _)| r == req)
            .expect("completion for unknown request");
        let (_, index, started) = self.pending.swap_remove(pos);
        self.objects.push(ObjectRecord {
            index,
            bytes: self.page.object_sizes[index],
            started,
            finished: now,
        });
        if self.objects.len() == self.page.object_sizes.len() {
            self.page_load_time = Some(now);
        } else {
            self.issue_next(now, conn, api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecf_core::SchedulerKind;
    use mptcp::{ConnConfig, ConnSpec, RecorderConfig, Testbed, TestbedConfig};
    use scenario::Scenario;
    use simnet::PathConfig;

    #[test]
    fn page_model_is_deterministic_and_plausible() {
        let a = PageModel::cnn_like(1);
        let b = PageModel::cnn_like(1);
        assert_eq!(a.object_sizes, b.object_sizes);
        assert_eq!(a.object_sizes.len(), 107);
        let total = a.total_bytes();
        assert!(
            (1_500_000..8_000_000).contains(&total),
            "page weight {total} outside news-page range"
        );
        assert_ne!(PageModel::cnn_like(2).object_sizes, a.object_sizes);
    }

    #[test]
    fn lognormal_respects_clipping() {
        let p = PageModel::lognormal(3, 1000, 8192.0, 2.5, 500, 50_000);
        assert!(p.object_sizes.iter().all(|&s| (500..=50_000).contains(&s)));
    }

    fn browse(kind: SchedulerKind, wifi: f64, lte: f64, seed: u64) -> Testbed<BrowserApp> {
        let conns = (0..6)
            .map(|_| ConnSpec {
                cfg: ConnConfig::default(),
                scheduler: kind,
                custom_scheduler: None,
                subflow_paths: vec![0, 1],
            })
            .collect();
        let cfg = TestbedConfig {
            paths: vec![PathConfig::wifi(wifi), PathConfig::lte(lte)],
            conns,
            seed,
            path_seeds: None,
            recorder: RecorderConfig::default(),
            scenario: Scenario::default(),
            telemetry: Default::default(),
        };
        let mut tb = Testbed::new(cfg, BrowserApp::new(PageModel::cnn_like(77), 6));
        tb.run_until(Time::from_secs(300));
        tb
    }

    #[test]
    fn full_page_fetch_completes() {
        let tb = browse(SchedulerKind::Default, 5.0, 5.0, 1);
        assert!(tb.app().done());
        assert_eq!(tb.app().objects.len(), 107);
        // Six connections actually used.
        assert!(tb.world().conn_count() == 6);
    }

    #[test]
    fn object_completions_recorded_per_object() {
        let tb = browse(SchedulerKind::Ecf, 1.0, 10.0, 2);
        let times = tb.app().completion_times_secs();
        assert_eq!(times.len(), 107);
        assert!(times.iter().all(|&t| t > 0.0));
    }
}
