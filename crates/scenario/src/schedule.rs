//! Time-varying bandwidth schedules.
//!
//! Section 5.3 of the paper varies the two interfaces' shaped rates at
//! exponentially distributed intervals (mean 40 s), drawing each new rate
//! uniformly from a fixed set. [`RateSchedule::random`] regenerates exactly
//! that process from a seed, so "scenario 6" is a stable, nameable object.

use std::time::Duration;

use simnet::Time;
use testkit::Rng;

/// A piecewise-constant bandwidth plan for one link.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    /// `(when, new rate in bps)`, strictly increasing in time. The rate before
    /// the first entry is whatever the link was configured with.
    pub changes: Vec<(Time, u64)>,
}

impl RateSchedule {
    /// A schedule with no changes.
    pub fn constant() -> Self {
        RateSchedule { changes: Vec::new() }
    }

    /// The paper's §5.3 process: change points at exponentially distributed
    /// intervals with the given mean, each new rate drawn uniformly from
    /// `rates_mbps`, covering `[0, horizon]`.
    pub fn random(seed: u64, mean_interval: Duration, rates_mbps: &[f64], horizon: Time) -> Self {
        assert!(!rates_mbps.is_empty(), "need at least one candidate rate");
        let mut rng = Rng::seed_from_u64(seed);
        let mut changes = Vec::new();
        let mut t = Time::ZERO;
        loop {
            // Inverse-transform sample of Exp(1/mean).
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = Duration::from_secs_f64(-u.ln() * mean_interval.as_secs_f64());
            t += gap;
            if t > horizon {
                break;
            }
            let mbps = rates_mbps[rng.gen_range(0..rates_mbps.len())];
            changes.push((t, (mbps * 1e6) as u64));
        }
        RateSchedule { changes }
    }

    /// The rate in effect at `t`, or `None` if no change has occurred yet.
    pub fn rate_at(&self, t: Time) -> Option<u64> {
        self.changes.iter().take_while(|&&(when, _)| when <= t).last().map(|&(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = RateSchedule::constant();
        assert_eq!(s.rate_at(Time::from_secs(100)), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mk = |seed| {
            RateSchedule::random(
                seed,
                Duration::from_secs(40),
                &[0.3, 1.1, 1.7, 4.2, 8.6],
                Time::from_secs(600),
            )
        };
        assert_eq!(mk(6), mk(6));
        assert_ne!(mk(6), mk(7));
    }

    #[test]
    fn random_changes_are_sorted_and_bounded() {
        let s = RateSchedule::random(
            3,
            Duration::from_secs(40),
            &[0.3, 8.6],
            Time::from_secs(600),
        );
        for w in s.changes.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(t, r) in &s.changes {
            assert!(t <= Time::from_secs(600));
            assert!(r == 300_000 || r == 8_600_000);
        }
    }

    #[test]
    fn mean_interval_roughly_respected() {
        // Over a long horizon the number of change points ≈ horizon / mean.
        let s = RateSchedule::random(
            11,
            Duration::from_secs(40),
            &[1.0],
            Time::from_secs(40_000),
        );
        let n = s.changes.len() as f64;
        assert!((700.0..1300.0).contains(&n), "n={n}");
    }

    #[test]
    fn rate_at_picks_latest_change() {
        let s = RateSchedule {
            changes: vec![
                (Time::from_secs(10), 100),
                (Time::from_secs(20), 200),
            ],
        };
        assert_eq!(s.rate_at(Time::from_secs(5)), None);
        assert_eq!(s.rate_at(Time::from_secs(10)), Some(100));
        assert_eq!(s.rate_at(Time::from_secs(25)), Some(200));
    }
}
