//! # scenario — deterministic network dynamics & fault injection
//!
//! The paper's most interesting regimes are *dynamic*: §5.3 varies the two
//! interfaces' shaped rates mid-stream, the in-the-wild runs drift RTTs,
//! and handover kills a radio outright. This crate turns those regimes
//! into first-class, seed-replayable objects instead of ad-hoc event
//! plumbing scattered across examples and experiments.
//!
//! A [`Scenario`] is a declarative description of everything that happens
//! to the network over a run:
//!
//! * **Scripted events** ([`ControlEvent`]) — "at t=20s, path 0 goes
//!   down", "at t=45s, path 1's forward rate becomes 2 Mbps", "from t=0,
//!   path 1 suffers 1% bursty loss". Each pairs a [`Time`], a path index,
//!   and an [`Action`].
//! * **Stochastic processes** ([`Process`]) — generators with their own
//!   seeds that expand into scripted events at compile time, e.g. the
//!   paper's §5.3 exponential-interval rate walk.
//!
//! Consumers call [`Scenario::compile`] once at setup to obtain the full
//! time-sorted event list and schedule it into their event loop (the
//! `mptcp` testbed does exactly this). Nothing here touches the
//! simulator's per-packet hot path: impairments are applied *to* links at
//! event times, and the link itself keeps its zero-loss/zero-jitter fast
//! path whenever the active model cannot drop.
//!
//! ## Determinism contract
//!
//! Compilation is a pure function of the scenario value: processes draw
//! from [`testkit::Rng`] seeded only by their own `seed` field, and the
//! final sort is stable (ties keep insertion order). The same `Scenario`
//! therefore always produces the same event list, and a testbed run is a
//! pure function of (config, scenario, seed).
//!
//! Scenarios can also be loaded from JSON traces via
//! [`Scenario::from_json`], so measured rate/delay traces can be replayed
//! without recompiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod schedule;

use std::time::Duration;

pub use schedule::RateSchedule;
pub use simnet::{GilbertElliott, LossModel};
use simnet::Time;
use testkit::json::{self, Value};

/// What a [`ControlEvent`] does to its path when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Set the forward (shaped) link rate in bits per second.
    RateBps(u64),
    /// Set the one-way propagation delay (both directions).
    OneWayDelay(Duration),
    /// Bring the path up (`true`) or down (`false`).
    PathUp(bool),
    /// Swap the forward link's random-loss process.
    Loss(LossModel),
}

/// One scripted change: at `at`, apply `action` to path `path`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlEvent {
    /// When the change takes effect.
    pub at: Time,
    /// Index of the affected path.
    pub path: usize,
    /// The change itself.
    pub action: Action,
}

/// A seeded stochastic generator that expands into scripted events.
#[derive(Debug, Clone, PartialEq)]
pub enum Process {
    /// The paper's §5.3 bandwidth walk: change points at exponentially
    /// distributed intervals, each new rate drawn uniformly from a set.
    /// Expands via [`RateSchedule::random`], so a given seed names the
    /// same trajectory everywhere.
    RandomRates {
        /// Path whose forward rate varies.
        path: usize,
        /// Seed of the process' private RNG.
        seed: u64,
        /// Mean of the exponential inter-change interval.
        mean_interval: Duration,
        /// Candidate rates in Mbps, drawn uniformly.
        rates_mbps: Vec<f64>,
        /// No change points are generated after this time.
        horizon: Time,
    },
}

impl Process {
    fn expand(&self, out: &mut Vec<ControlEvent>) {
        match self {
            Process::RandomRates { path, seed, mean_interval, rates_mbps, horizon } => {
                let sched = RateSchedule::random(*seed, *mean_interval, rates_mbps, *horizon);
                out.extend(sched.changes.iter().map(|&(at, bps)| ControlEvent {
                    at,
                    path: *path,
                    action: Action::RateBps(bps),
                }));
            }
        }
    }
}

/// A declarative plan of network dynamics for one run. An empty (default)
/// scenario means a fully static network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    /// Scripted events, in any order; [`Scenario::compile`] sorts them.
    pub events: Vec<ControlEvent>,
    /// Stochastic processes expanded at compile time.
    pub processes: Vec<Process>,
}

impl Scenario {
    /// A scenario with no dynamics at all.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// True when compiling would produce no events (static network).
    pub fn is_static(&self) -> bool {
        self.events.is_empty() && self.processes.is_empty()
    }

    /// Add a forward-rate change (bits per second) at `at`.
    pub fn rate_bps(mut self, at: Time, path: usize, bps: u64) -> Self {
        self.events.push(ControlEvent { at, path, action: Action::RateBps(bps) });
        self
    }

    /// Add a forward-rate change in Mbps at `at`.
    pub fn rate_mbps(self, at: Time, path: usize, mbps: f64) -> Self {
        self.rate_bps(at, path, (mbps * 1e6) as u64)
    }

    /// Add a one-way propagation-delay change at `at`.
    pub fn one_way_delay(mut self, at: Time, path: usize, delay: Duration) -> Self {
        self.events.push(ControlEvent { at, path, action: Action::OneWayDelay(delay) });
        self
    }

    /// Take `path` down at `at` (radio loss / blackout start).
    pub fn path_down(mut self, at: Time, path: usize) -> Self {
        self.events.push(ControlEvent { at, path, action: Action::PathUp(false) });
        self
    }

    /// Bring `path` back up at `at` (blackout end).
    pub fn path_up(mut self, at: Time, path: usize) -> Self {
        self.events.push(ControlEvent { at, path, action: Action::PathUp(true) });
        self
    }

    /// A blackout: `path` is down during `[from, until)`.
    pub fn outage(self, path: usize, from: Time, until: Time) -> Self {
        assert!(from < until, "outage must end after it starts");
        self.path_down(from, path).path_up(until, path)
    }

    /// Install a random-loss process on `path`'s forward link at `at`.
    pub fn loss(mut self, at: Time, path: usize, model: LossModel) -> Self {
        self.events.push(ControlEvent { at, path, action: Action::Loss(model) });
        self
    }

    /// Replay a piecewise-constant rate plan on `path`.
    pub fn rate_trace(mut self, path: usize, sched: &RateSchedule) -> Self {
        self.events.extend(sched.changes.iter().map(|&(at, bps)| ControlEvent {
            at,
            path,
            action: Action::RateBps(bps),
        }));
        self
    }

    /// Attach the §5.3 random-rate process to `path` (see
    /// [`Process::RandomRates`]).
    pub fn random_rates(
        mut self,
        path: usize,
        seed: u64,
        mean_interval: Duration,
        rates_mbps: &[f64],
        horizon: Time,
    ) -> Self {
        self.processes.push(Process::RandomRates {
            path,
            seed,
            mean_interval,
            rates_mbps: rates_mbps.to_vec(),
            horizon,
        });
        self
    }

    /// Re-target a population-level scenario (written against *global*
    /// path indices) onto one shard's local index space. `map` returns
    /// the local index for a global one, or `None` when the path lives
    /// on another shard — those events/processes are dropped entirely.
    ///
    /// Order is preserved, so a retargeted scenario compiles to the same
    /// relative (time, insertion) sequence as the monolith restricted to
    /// the surviving paths — the property the sharded-digest contract
    /// leans on (DESIGN.md §13).
    pub fn retarget(&self, map: impl Fn(usize) -> Option<usize>) -> Scenario {
        let events = self
            .events
            .iter()
            .filter_map(|ev| map(ev.path).map(|path| ControlEvent { path, ..*ev }))
            .collect();
        let processes = self
            .processes
            .iter()
            .filter_map(|p| match p {
                Process::RandomRates { path, seed, mean_interval, rates_mbps, horizon } => {
                    map(*path).map(|path| Process::RandomRates {
                        path,
                        seed: *seed,
                        mean_interval: *mean_interval,
                        rates_mbps: rates_mbps.clone(),
                        horizon: *horizon,
                    })
                }
            })
            .collect();
        Scenario { events, processes }
    }

    /// Expand all processes and return every event sorted by time. The
    /// sort is stable: same-time events fire in insertion order (scripted
    /// events before process expansions).
    pub fn compile(&self) -> Vec<ControlEvent> {
        let mut out = self.events.clone();
        for p in &self.processes {
            p.expand(&mut out);
        }
        out.sort_by_key(|e| e.at);
        out
    }

    /// Load a scenario from a JSON trace. Schema:
    ///
    /// ```json
    /// {
    ///   "events": [
    ///     {"at_ms": 20000, "path": 0, "action": "path_down"},
    ///     {"at_ms": 60000, "path": 0, "action": "path_up"},
    ///     {"at_ms": 1000,  "path": 1, "action": "rate_mbps", "value": 4.2},
    ///     {"at_ms": 1000,  "path": 1, "action": "one_way_delay_ms", "value": 30},
    ///     {"at_ms": 0,     "path": 1, "action": "loss_bernoulli", "value": 0.01},
    ///     {"at_ms": 0,     "path": 1, "action": "loss_bursty",
    ///      "avg_loss": 0.01, "mean_burst_pkts": 8},
    ///     {"at_ms": 5000,  "path": 1, "action": "loss_off"}
    ///   ],
    ///   "processes": [
    ///     {"kind": "random_rates", "path": 0, "seed": 12,
    ///      "mean_interval_s": 40, "rates_mbps": [0.3, 8.6], "horizon_s": 600}
    ///   ]
    /// }
    /// ```
    ///
    /// Both top-level keys are optional. Errors carry enough context to
    /// point at the offending entry.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let mut s = Scenario::default();
        if let Some(events) = doc.get("events") {
            let events = events.as_array().ok_or("\"events\" must be an array")?;
            for (i, ev) in events.iter().enumerate() {
                s.events.push(parse_event(ev).map_err(|e| format!("events[{i}]: {e}"))?);
            }
        }
        if let Some(procs) = doc.get("processes") {
            let procs = procs.as_array().ok_or("\"processes\" must be an array")?;
            for (i, p) in procs.iter().enumerate() {
                s.processes.push(parse_process(p).map_err(|e| format!("processes[{i}]: {e}"))?);
            }
        }
        Ok(s)
    }

    /// Load a scenario from a JSON trace file (see [`Scenario::from_json`]
    /// for the schema). Read and parse errors are prefixed with the path so
    /// callers can surface them verbatim.
    pub fn from_json_file(path: impl AsRef<std::path::Path>) -> Result<Scenario, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Scenario::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing number \"{key}\""))
}

fn field_usize(v: &Value, key: &str) -> Result<usize, String> {
    let n = field_f64(v, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("\"{key}\" must be a non-negative integer"));
    }
    Ok(n as usize)
}

fn parse_event(v: &Value) -> Result<ControlEvent, String> {
    let at = Time::from_micros((field_f64(v, "at_ms")? * 1e3) as u64);
    let path = field_usize(v, "path")?;
    let action = v.get("action").and_then(Value::as_str).ok_or("missing \"action\"")?;
    let action = match action {
        "path_down" => Action::PathUp(false),
        "path_up" => Action::PathUp(true),
        "rate_mbps" => Action::RateBps((field_f64(v, "value")? * 1e6) as u64),
        "rate_bps" => Action::RateBps(field_f64(v, "value")? as u64),
        "one_way_delay_ms" => {
            Action::OneWayDelay(Duration::from_micros((field_f64(v, "value")? * 1e3) as u64))
        }
        "loss_off" => Action::Loss(LossModel::None),
        "loss_bernoulli" => Action::Loss(LossModel::Bernoulli(field_f64(v, "value")?)),
        "loss_bursty" => Action::Loss(LossModel::GilbertElliott(GilbertElliott::bursty(
            field_f64(v, "avg_loss")?,
            field_f64(v, "mean_burst_pkts")?,
        ))),
        other => return Err(format!("unknown action \"{other}\"")),
    };
    Ok(ControlEvent { at, path, action })
}

fn parse_process(v: &Value) -> Result<Process, String> {
    let kind = v.get("kind").and_then(Value::as_str).ok_or("missing \"kind\"")?;
    match kind {
        "random_rates" => {
            let rates = v
                .get("rates_mbps")
                .and_then(Value::as_array)
                .ok_or("missing array \"rates_mbps\"")?
                .iter()
                .map(|r| r.as_f64().ok_or_else(|| "non-number in \"rates_mbps\"".to_string()))
                .collect::<Result<Vec<f64>, String>>()?;
            Ok(Process::RandomRates {
                path: field_usize(v, "path")?,
                seed: field_f64(v, "seed")? as u64,
                mean_interval: Duration::from_secs_f64(field_f64(v, "mean_interval_s")?),
                rates_mbps: rates,
                horizon: Time::from_micros((field_f64(v, "horizon_s")? * 1e6) as u64),
            })
        }
        other => Err(format!("unknown process kind \"{other}\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scenario_is_static() {
        let s = Scenario::default();
        assert!(s.is_static());
        assert!(s.compile().is_empty());
    }

    #[test]
    fn compile_sorts_by_time_stably() {
        let s = Scenario::new()
            .rate_mbps(Time::from_secs(10), 1, 2.0)
            .path_down(Time::from_secs(5), 0)
            .loss(Time::from_secs(5), 1, LossModel::Bernoulli(0.01));
        let evs = s.compile();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at, Time::from_secs(5));
        assert_eq!(evs[0].action, Action::PathUp(false)); // insertion order kept
        assert_eq!(evs[1].action, Action::Loss(LossModel::Bernoulli(0.01)));
        assert_eq!(evs[2].at, Time::from_secs(10));
    }

    #[test]
    fn outage_is_down_then_up() {
        let evs =
            Scenario::new().outage(0, Time::from_secs(20), Time::from_secs(60)).compile();
        assert_eq!(
            evs,
            vec![
                ControlEvent { at: Time::from_secs(20), path: 0, action: Action::PathUp(false) },
                ControlEvent { at: Time::from_secs(60), path: 0, action: Action::PathUp(true) },
            ]
        );
    }

    /// The process expansion must reproduce `RateSchedule::random` exactly
    /// — that is what makes "fig16 scenario 6" a stable name.
    #[test]
    fn random_rates_process_matches_rate_schedule() {
        let mean = Duration::from_secs(40);
        let rates = [0.3, 1.1, 8.6];
        let horizon = Time::from_secs(600);
        let direct = RateSchedule::random(7, mean, &rates, horizon);
        let evs = Scenario::new().random_rates(1, 7, mean, &rates, horizon).compile();
        assert_eq!(evs.len(), direct.changes.len());
        for (ev, &(at, bps)) in evs.iter().zip(&direct.changes) {
            assert_eq!(ev.at, at);
            assert_eq!(ev.path, 1);
            assert_eq!(ev.action, Action::RateBps(bps));
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let mk = || {
            Scenario::new()
                .random_rates(0, 3, Duration::from_secs(40), &[0.3, 8.6], Time::from_secs(600))
                .outage(1, Time::from_secs(100), Time::from_secs(130))
        };
        assert_eq!(mk().compile(), mk().compile());
    }

    #[test]
    fn retarget_filters_and_remaps_preserving_order() {
        let s = Scenario::new()
            .rate_mbps(Time::from_secs(1), 4, 2.0)
            .outage(2, Time::from_secs(5), Time::from_secs(6))
            .loss(Time::from_secs(1), 7, LossModel::Bernoulli(0.01))
            .random_rates(4, 9, Duration::from_secs(40), &[0.3, 8.6], Time::from_secs(60))
            .random_rates(7, 9, Duration::from_secs(40), &[0.3, 8.6], Time::from_secs(60));
        // Shard owns global paths {4, 2} as locals {0, 1}.
        let local = s.retarget(|g| match g {
            4 => Some(0),
            2 => Some(1),
            _ => None,
        });
        assert_eq!(local.events.len(), 3);
        assert_eq!(local.events[0].path, 0);
        assert_eq!(local.events[0].action, Action::RateBps(2_000_000));
        assert_eq!(local.events[1].path, 1);
        assert_eq!(local.events[1].action, Action::PathUp(false));
        assert_eq!(local.events[2].path, 1);
        assert_eq!(local.events[2].action, Action::PathUp(true));
        assert_eq!(local.processes.len(), 1);
        match &local.processes[0] {
            Process::RandomRates { path, seed, .. } => {
                assert_eq!(*path, 0);
                assert_eq!(*seed, 9); // process seed survives the remap
            }
        }
        // Identity retarget is a no-op.
        assert_eq!(s.retarget(Some), s);
    }

    #[test]
    fn json_round_trip_covers_all_actions() {
        let text = r#"{
            "events": [
                {"at_ms": 20000, "path": 0, "action": "path_down"},
                {"at_ms": 60000, "path": 0, "action": "path_up"},
                {"at_ms": 1000, "path": 1, "action": "rate_mbps", "value": 4.2},
                {"at_ms": 1500, "path": 1, "action": "rate_bps", "value": 250000},
                {"at_ms": 2000, "path": 1, "action": "one_way_delay_ms", "value": 30},
                {"at_ms": 0, "path": 1, "action": "loss_bernoulli", "value": 0.01},
                {"at_ms": 100, "path": 1, "action": "loss_bursty",
                 "avg_loss": 0.02, "mean_burst_pkts": 8},
                {"at_ms": 5000, "path": 1, "action": "loss_off"}
            ],
            "processes": [
                {"kind": "random_rates", "path": 0, "seed": 12,
                 "mean_interval_s": 40, "rates_mbps": [0.3, 8.6], "horizon_s": 600}
            ]
        }"#;
        let s = Scenario::from_json(text).unwrap();
        assert_eq!(s.events.len(), 8);
        assert_eq!(s.processes.len(), 1);
        assert_eq!(s.events[0].at, Time::from_secs(20));
        assert_eq!(s.events[0].action, Action::PathUp(false));
        assert_eq!(s.events[2].action, Action::RateBps(4_200_000));
        assert_eq!(s.events[3].action, Action::RateBps(250_000));
        assert_eq!(
            s.events[4].action,
            Action::OneWayDelay(Duration::from_millis(30))
        );
        assert_eq!(s.events[5].action, Action::Loss(LossModel::Bernoulli(0.01)));
        assert!(matches!(s.events[6].action, Action::Loss(LossModel::GilbertElliott(_))));
        assert_eq!(s.events[7].action, Action::Loss(LossModel::None));
        let equivalent = Scenario::new().random_rates(
            0,
            12,
            Duration::from_secs(40),
            &[0.3, 8.6],
            Time::from_secs(600),
        );
        assert_eq!(s.processes, equivalent.processes);
    }

    #[test]
    fn json_file_errors_carry_the_path() {
        let err = Scenario::from_json_file("/nonexistent/scenario.json").unwrap_err();
        assert!(err.contains("/nonexistent/scenario.json"), "{err}");
        let dir = std::env::temp_dir().join("scenario_from_json_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, r#"{"events": [{"path": 0, "action": "warp"}]}"#).unwrap();
        let err = Scenario::from_json_file(&bad).unwrap_err();
        assert!(err.contains("bad.json") && err.contains("events[0]"), "{err}");
        let good = dir.join("good.json");
        std::fs::write(&good, r#"{"events": [{"at_ms": 1, "path": 0, "action": "path_down"}]}"#)
            .unwrap();
        let s = Scenario::from_json_file(&good).unwrap();
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn json_errors_name_the_offender() {
        let err = Scenario::from_json(
            r#"{"events": [{"at_ms": 0, "path": 0, "action": "warp"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("events[0]"), "{err}");
        assert!(err.contains("warp"), "{err}");
        let err =
            Scenario::from_json(r#"{"events": [{"path": 0, "action": "path_up"}]}"#).unwrap_err();
        assert!(err.contains("at_ms"), "{err}");
    }
}
