//! STTF — Shortest Transfer Time First (Hurtig et al., "Low-Latency
//! Scheduling in MPTCP", ToN 2018). Not part of the paper's comparison set,
//! included as an extension: it is the other published completion-time-aware
//! scheduler, and contrasts nicely with ECF.
//!
//! STTF estimates, per path, when the *next* segment would finish if placed
//! there — queueing behind the path's in-flight backlog — and picks the
//! minimum, waiting for that path if its window is currently full. Unlike
//! ECF it reasons per segment rather than about the whole remaining backlog
//! `k`, so it keeps low per-packet latency but misses ECF's "don't start
//! what the fast path could finish" insight for chunked transfers.

use crate::types::{secs, Decision, SchedInput, Scheduler};

/// The STTF scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sttf;

impl Sttf {
    /// A fresh STTF instance.
    pub fn new() -> Self {
        Sttf
    }

    /// Estimated delivery time of one more segment on this path: half an
    /// RTT of propagation plus one window-round per `cwnd` segments of
    /// backlog ahead of it.
    fn estimate(p: &crate::types::PathSnapshot) -> f64 {
        let rtt = secs(p.srtt).max(1e-6);
        let cwnd = f64::from(p.cwnd.max(1));
        let backlog_rounds = (f64::from(p.inflight) + 1.0) / cwnd;
        rtt * (0.5 + backlog_rounds)
    }
}

impl Scheduler for Sttf {
    fn name(&self) -> &'static str {
        "sttf"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        self.select_explained(input).0
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        let usable = input.paths.iter().filter(|p| p.usable);
        let best = usable.min_by(|a, b| {
            Self::estimate(a)
                .partial_cmp(&Self::estimate(b))
                .expect("estimates are finite")
                .then(a.id.cmp(&b.id))
        });
        match best {
            Some(p) if p.has_space() => {
                (Decision::Send(p.id), crate::Why::SttfBest { estimate_s: Self::estimate(p) })
            }
            Some(p) => {
                // The best path is full; sending elsewhere would finish later
                // by construction, so wait for it — unless nothing could send
                // anyway.
                if input.paths.iter().any(|q| q.has_space()) {
                    (Decision::Wait, crate::Why::SttfWaitBest { estimate_s: Self::estimate(p) })
                } else {
                    (Decision::Blocked, crate::Why::NoCapacity)
                }
            }
            None => (Decision::Blocked, crate::Why::NoCapacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::testutil::path;
    use crate::types::PathId;

    fn inp<'a>(paths: &'a [crate::types::PathSnapshot]) -> SchedInput<'a> {
        SchedInput { paths, queued_pkts: 50, send_window_free_pkts: 1 << 20 }
    }

    #[test]
    fn prefers_empty_fast_path() {
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 0)];
        assert_eq!(Sttf::new().select(&inp(&paths)), Decision::Send(PathId(0)));
    }

    #[test]
    fn backlog_shifts_the_estimate() {
        // Fast path with a deep backlog: est = 10ms·(0.5 + 10/10) = 15 ms...
        // still beats the slow path's 100ms·0.5 = 50+ ms — but once the fast
        // backlog is extreme relative to cwnd, the slow path wins.
        let paths = [path(0, 10, 2, 9), path(1, 100, 10, 0)];
        // est_fast = 10·(0.5 + 10/2) = 55 ms ; est_slow = 100·(0.5+0.1) = 60.
        assert_eq!(Sttf::new().select(&inp(&paths)), Decision::Wait); // fast full but best
        let paths = [path(0, 10, 2, 12), path(1, 100, 10, 0)];
        // est_fast = 10·(0.5+6.5) = 70 ms > 60 → slow path chosen and free.
        assert_eq!(Sttf::new().select(&inp(&paths)), Decision::Send(PathId(1)));
    }

    #[test]
    fn waits_for_best_full_path() {
        let paths = [path(0, 10, 10, 10), path(1, 1000, 10, 0)];
        // est_fast = 10·(0.5+1.1) = 16 ms « est_slow = 550 ms → wait for fast.
        assert_eq!(Sttf::new().select(&inp(&paths)), Decision::Wait);
    }

    #[test]
    fn blocked_when_nothing_usable() {
        let mut a = path(0, 10, 10, 10);
        let b = path(1, 100, 10, 10);
        assert_eq!(Sttf::new().select(&inp(&[a, b])), Decision::Blocked);
        a.usable = false;
        assert_eq!(Sttf::new().select(&inp(&[a])), Decision::Blocked);
    }
}
