//! DAPS — Delay-Aware Packet Scheduling (Kuhn et al., IEEE ICC 2014), the
//! paper's second published comparator.
//!
//! DAPS aims for in-order arrival by spreading segments over paths in
//! proportion to the inverse of their RTTs ("assigns traffic to each subflow
//! inversely proportional to RTT", paper §5.1), and *holds* a segment for
//! its designated path when that path's window is full (the precomputed
//! schedule is what achieves in-order arrival). It is bandwidth-blind: two
//! paths with similar RTTs but very different shaped rates receive similar
//! shares, which is why the paper finds DAPS the weakest scheduler — it
//! keeps committing traffic to slow paths and stalls behind them.
//!
//! We realize the allocation with deterministic deficit counters (a weighted
//! round-robin): each scheduled segment deposits one segment's worth of
//! credit split by weight 1/RTT, and the available path with the largest
//! accumulated credit sends and is debited.

use crate::types::{secs, Decision, SchedInput, Scheduler};

/// The DAPS scheduler.
#[derive(Debug, Clone, Default)]
pub struct Daps {
    /// Deficit credit per path id (indexed by `PathId.0`).
    credits: Vec<f64>,
}

impl Daps {
    /// A fresh DAPS instance.
    pub fn new() -> Self {
        Daps::default()
    }

    fn credit(&mut self, id: usize) -> &mut f64 {
        if self.credits.len() <= id {
            self.credits.resize(id + 1, 0.0);
        }
        &mut self.credits[id]
    }
}

impl Daps {
    /// The DAPS rule with full provenance; `select` and `select_explained`
    /// both run through here.
    fn decide(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        let usable: Vec<_> = input.paths.iter().filter(|p| p.usable).collect();
        if usable.is_empty() || !usable.iter().any(|p| p.has_space()) {
            return (Decision::Blocked, crate::Why::NoCapacity);
        }

        // Deposit one segment of credit, split ∝ 1/RTT over usable paths.
        let total_w: f64 = usable.iter().map(|p| 1.0 / secs(p.srtt).max(1e-6)).sum();
        for p in &usable {
            let w = (1.0 / secs(p.srtt).max(1e-6)) / total_w;
            *self.credit(p.id.0) += w;
        }

        // The most-owed path is the *designated* one for this segment. DAPS
        // schedules for in-order arrival, so if the designated path has no
        // window space the segment waits for it rather than diverting — the
        // head-of-line behaviour that makes DAPS fragile on heterogeneous
        // paths (and that the paper measures as the weakest scheduler).
        let chosen = usable
            .iter()
            .max_by(|a, b| {
                let ca = self.credits[a.id.0];
                let cb = self.credits[b.id.0];
                ca.partial_cmp(&cb).expect("credits are finite").then(b.id.cmp(&a.id))
            })
            .expect("usable is non-empty");
        if !chosen.has_space() {
            let id = chosen.id;
            // Roll back this call's deposit so waiting does not inflate the
            // designated path's debt.
            for p in &usable {
                let w = (1.0 / secs(p.srtt).max(1e-6)) / total_w;
                *self.credit(p.id.0) -= w;
            }
            let credit = self.credits[id.0];
            return (Decision::Wait, crate::Why::DapsHold { credit });
        }
        let id = chosen.id;
        *self.credit(id.0) -= 1.0;
        let credit = self.credits[id.0];
        (Decision::Send(id), crate::Why::DapsDesignated { credit })
    }
}

impl Scheduler for Daps {
    fn name(&self) -> &'static str {
        "daps"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        self.decide(input).0
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        self.decide(input)
    }

    fn reset(&mut self) {
        self.credits.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::testutil::path;
    use crate::types::{PathId, PathSnapshot};

    fn inp<'a>(paths: &'a [PathSnapshot]) -> SchedInput<'a> {
        SchedInput { paths, queued_pkts: 100, send_window_free_pkts: 1 << 20 }
    }

    /// Run n selections and count how many land on each of two paths.
    fn split(paths: &[PathSnapshot], n: usize) -> (usize, usize) {
        let mut daps = Daps::new();
        let (mut a, mut b) = (0, 0);
        for _ in 0..n {
            match daps.select(&inp(paths)) {
                Decision::Send(PathId(0)) => a += 1,
                Decision::Send(PathId(1)) => b += 1,
                d => panic!("unexpected {d:?}"),
            }
        }
        (a, b)
    }

    #[test]
    fn splits_inverse_to_rtt() {
        // RTTs 10 ms vs 40 ms → weights 0.8 / 0.2.
        let paths = [path(0, 10, 1000, 0), path(1, 40, 1000, 0)];
        let (a, b) = split(&paths, 1000);
        assert!((790..=810).contains(&a), "a={a}");
        assert!((190..=210).contains(&b), "b={b}");
    }

    #[test]
    fn equal_rtts_split_evenly() {
        let paths = [path(0, 20, 1000, 0), path(1, 20, 1000, 0)];
        let (a, b) = split(&paths, 1000);
        assert!((a as i64 - b as i64).abs() <= 2, "a={a} b={b}");
    }

    #[test]
    fn bandwidth_blind() {
        // Identical RTTs, wildly different windows (i.e. bandwidths): DAPS
        // still splits ~50/50 — the defect the paper demonstrates.
        let paths = [path(0, 20, 100, 0), path(1, 20, 4, 0)];
        let mut daps = Daps::new();
        let (mut a, mut b) = (0, 0);
        for _ in 0..100 {
            match daps.select(&inp(&paths)) {
                Decision::Send(PathId(0)) => a += 1,
                Decision::Send(PathId(1)) => b += 1,
                _ => {}
            }
        }
        assert!((40..=60).contains(&b), "slow path got {b} of 100");
        let _ = a;
    }

    #[test]
    fn waits_for_designated_path_when_full() {
        // The 10 ms path is designated first (largest weight); with it full,
        // DAPS holds the segment for it instead of diverting to the slow
        // path — and the rolled-back credits keep the designation stable.
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let mut daps = Daps::new();
        for _ in 0..100 {
            assert_eq!(daps.select(&inp(&paths)), Decision::Wait);
        }
    }

    #[test]
    fn slow_path_sends_when_designated() {
        // Both free: after ~10 sends the slow path's credit tops and it gets
        // its segment even though the fast path also has space.
        let paths = [path(0, 10, 1000, 0), path(1, 100, 1000, 0)];
        let mut daps = Daps::new();
        let mut saw_slow = false;
        for _ in 0..30 {
            if daps.select(&inp(&paths)) == Decision::Send(PathId(1)) {
                saw_slow = true;
            }
        }
        assert!(saw_slow);
    }

    #[test]
    fn blocked_when_all_full() {
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 10)];
        assert_eq!(Daps::new().select(&inp(&paths)), Decision::Blocked);
    }

    #[test]
    fn reset_clears_credit_debt() {
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 0)];
        let mut daps = Daps::new();
        for _ in 0..500 {
            daps.select(&inp(&paths));
        }
        daps.reset();
        assert!(daps.credits.is_empty());
    }
}
