//! BLEST — BLocking ESTimation-based scheduler (Ferlin et al., IFIP
//! Networking 2016), one of the paper's two published comparators.
//!
//! BLEST targets *sender-side head-of-line blocking*: when the MPTCP
//! connection-level send window is mostly occupied by segments in flight on a
//! slow subflow, the window can fill and stall the fast subflow. Before
//! placing a segment on the slow path, BLEST estimates how much the fast path
//! could transmit during one slow-path RTT; if that projected amount no
//! longer fits into the remaining send window, sending on the slow path now
//! is predicted to block, and BLEST waits instead.
//!
//! The difference to ECF (paper §5.1): BLEST reasons about *send-window
//! space* and out-of-order avoidance, ECF about the *amount of queued data*
//! and completion time. With roomy windows BLEST rarely waits, which is why
//! the paper finds it only slightly better than the default scheduler.

use crate::types::{secs, Decision, SchedInput, Scheduler};

/// Configuration for [`Blest`].
#[derive(Debug, Clone, Copy)]
pub struct BlestConfig {
    /// Initial value of the adaptive scale factor λ.
    pub lambda0: f64,
    /// Additive increase applied to λ on each observed send-window stall.
    pub lambda_step: f64,
    /// Multiplicative decay of the λ *excess* applied per decision, slowly
    /// relaxing back toward 1 when blocking stops.
    pub lambda_decay: f64,
}

impl Default for BlestConfig {
    fn default() -> Self {
        BlestConfig { lambda0: 1.0, lambda_step: 0.1, lambda_decay: 0.999 }
    }
}

/// The BLEST scheduler.
#[derive(Debug, Clone)]
pub struct Blest {
    cfg: BlestConfig,
    lambda: f64,
}

impl Default for Blest {
    fn default() -> Self {
        Self::new()
    }
}

impl Blest {
    /// BLEST with default parameters.
    pub fn new() -> Self {
        Self::with_config(BlestConfig::default())
    }

    /// BLEST with explicit parameters.
    pub fn with_config(cfg: BlestConfig) -> Self {
        Blest { cfg, lambda: cfg.lambda0 }
    }

    /// Current adaptive scale factor (diagnostic).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Blest {
    /// The BLEST rule with full provenance; `select` and `select_explained`
    /// both run through here.
    fn decide(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        // Relax λ toward 1.
        self.lambda = 1.0 + (self.lambda - 1.0) * self.cfg.lambda_decay;

        let Some(xf) = input.fastest() else {
            return (Decision::Blocked, crate::Why::NoCapacity);
        };
        if xf.has_space() {
            return (Decision::Send(xf.id), crate::Why::FastestFree);
        }
        let Some(xs) = input.fastest_available() else {
            return (Decision::Blocked, crate::Why::NoCapacity);
        };

        // Segments the fast subflow could send during one slow-path RTT:
        // X window rounds with congestion-avoidance growth of one segment per
        // round — X·(cwnd_f + (X−1)/2), per the BLEST paper.
        let rtt_f = secs(xf.srtt).max(1e-9);
        let rtt_s = secs(xs.srtt);
        let rounds = (rtt_s / rtt_f).max(1.0);
        let fast_during_slow_rtt = rounds * (f64::from(xf.cwnd.max(1)) + (rounds - 1.0) / 2.0);

        // If that projection (scaled by λ) exceeds what is left of the
        // connection-level send window, a segment parked on the slow path is
        // predicted to cause blocking → wait for the fast path.
        let projected_pkts = fast_during_slow_rtt * self.lambda;
        if projected_pkts > input.send_window_free_pkts as f64 {
            return (Decision::Wait, crate::Why::BlestWait { projected_pkts, lambda: self.lambda });
        }
        (Decision::Send(xs.id), crate::Why::BlestFits { projected_pkts, lambda: self.lambda })
    }
}

impl Scheduler for Blest {
    fn name(&self) -> &'static str {
        "blest"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        self.decide(input).0
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        self.decide(input)
    }

    fn on_window_blocked(&mut self) {
        self.lambda += self.cfg.lambda_step;
    }

    fn reset(&mut self) {
        self.lambda = self.cfg.lambda0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::testutil::path;
    use crate::types::{PathId, PathSnapshot};

    fn inp<'a>(paths: &'a [PathSnapshot], window_free: u64) -> SchedInput<'a> {
        SchedInput { paths, queued_pkts: 100, send_window_free_pkts: window_free }
    }

    #[test]
    fn fast_path_used_when_available() {
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 0)];
        assert_eq!(Blest::new().select(&inp(&paths, 1000)), Decision::Send(PathId(0)));
    }

    #[test]
    fn waits_when_window_tight() {
        // Fast full; during 100 ms the 10 ms path sends ≈ 10·(10+4.5) = 145
        // segments — far more than the 50 free slots → predicted blocking.
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        assert_eq!(Blest::new().select(&inp(&paths, 50)), Decision::Wait);
    }

    #[test]
    fn sends_on_slow_when_window_roomy() {
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        assert_eq!(Blest::new().select(&inp(&paths, 100_000)), Decision::Send(PathId(1)));
    }

    #[test]
    fn lambda_adapts_on_blocking() {
        let mut b = Blest::new();
        let l0 = b.lambda();
        b.on_window_blocked();
        b.on_window_blocked();
        assert!(b.lambda() > l0 + 0.19);
        // Borderline window: 10·(10+4.5)=145 < 150 free → send without λ
        // inflation, wait with it.
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        assert_eq!(Blest::new().select(&inp(&paths, 150)), Decision::Send(PathId(1)));
        assert_eq!(b.select(&inp(&paths, 150)), Decision::Wait);
    }

    #[test]
    fn lambda_decays_back() {
        let mut b = Blest::new();
        for _ in 0..10 {
            b.on_window_blocked();
        }
        let inflated = b.lambda();
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 0)];
        for _ in 0..5_000 {
            b.select(&inp(&paths, 1000));
        }
        assert!(b.lambda() < inflated * 0.2 + 1.0);
        b.reset();
        assert_eq!(b.lambda(), 1.0);
    }

    #[test]
    fn blocked_when_all_full() {
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 10)];
        assert_eq!(Blest::new().select(&inp(&paths, 1000)), Decision::Blocked);
    }
}
