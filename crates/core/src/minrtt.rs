//! The default MPTCP scheduler: lowest-RTT path with available window space.
//!
//! This is the baseline the paper evaluates against (its §2.1): among the
//! subflows with congestion-window space, pick the one with the smallest
//! smoothed RTT. It never waits — if the fastest path is full it immediately
//! spills onto the next-fastest available path, which is exactly the
//! behaviour that under-utilizes fast paths under heterogeneity.

use crate::types::{Decision, SchedInput, Scheduler};

/// The default minRTT scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinRtt;

impl MinRtt {
    /// Construct the default scheduler.
    pub fn new() -> Self {
        MinRtt
    }
}

impl Scheduler for MinRtt {
    fn name(&self) -> &'static str {
        "default"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        match input.fastest_available() {
            Some(p) => Decision::Send(p.id),
            None => Decision::Blocked,
        }
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        match input.fastest_available() {
            Some(p) => (Decision::Send(p.id), crate::Why::FastestAvailable),
            None => (Decision::Blocked, crate::Why::NoCapacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::testutil::path;
    use crate::types::PathId;

    fn inp<'a>(paths: &'a [crate::types::PathSnapshot]) -> SchedInput<'a> {
        SchedInput { paths, queued_pkts: 10, send_window_free_pkts: 1 << 20 }
    }

    #[test]
    fn picks_lowest_rtt_with_space() {
        let paths = [path(0, 50, 10, 0), path(1, 10, 10, 0)];
        assert_eq!(MinRtt::new().select(&inp(&paths)), Decision::Send(PathId(1)));
    }

    #[test]
    fn spills_to_second_fastest_when_full() {
        let paths = [path(0, 10, 10, 10), path(1, 50, 10, 2)];
        assert_eq!(MinRtt::new().select(&inp(&paths)), Decision::Send(PathId(1)));
    }

    #[test]
    fn blocked_when_all_full() {
        let paths = [path(0, 10, 10, 10), path(1, 50, 10, 10)];
        assert_eq!(MinRtt::new().select(&inp(&paths)), Decision::Blocked);
    }

    #[test]
    fn skips_unusable_paths() {
        let mut fast = path(0, 10, 10, 0);
        fast.usable = false;
        let paths = [fast, path(1, 50, 10, 0)];
        assert_eq!(MinRtt::new().select(&inp(&paths)), Decision::Send(PathId(1)));
    }

    #[test]
    fn never_waits() {
        // Unlike ECF, minRTT has no waiting state: any available path is used.
        let paths = [path(0, 10, 10, 10), path(1, 500, 10, 0)];
        assert_eq!(MinRtt::new().select(&inp(&paths)), Decision::Send(PathId(1)));
    }
}
