//! Additional schedulers beyond the paper's comparison set, useful as
//! baselines and sanity probes in the experiments:
//!
//! * [`RoundRobin`] — classic alternation, ignores path quality entirely;
//! * [`SinglePath`] — pin all traffic to one path (the "WiFi-only" /
//!   "LTE-only" single-path TCP baselines the ideal-throughput comparisons
//!   are built from).

use crate::types::{Decision, PathId, SchedInput, Scheduler};

/// Strict round-robin over usable paths with window space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl RoundRobin {
    fn decide(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        let n = input.paths.len();
        if n == 0 {
            return (Decision::Blocked, crate::Why::NoCapacity);
        }
        for off in 0..n {
            let idx = (self.next + off) % n;
            if input.paths[idx].has_space() {
                self.next = (idx + 1) % n;
                return (Decision::Send(input.paths[idx].id), crate::Why::RoundRobinTurn);
            }
        }
        (Decision::Blocked, crate::Why::NoCapacity)
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        self.decide(input).0
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        self.decide(input)
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

/// Send everything on one fixed path; block if it has no space.
#[derive(Debug, Clone, Copy)]
pub struct SinglePath {
    /// The pinned path.
    pub path: PathId,
}

impl SinglePath {
    /// Pin to `path`.
    pub fn new(path: PathId) -> Self {
        SinglePath { path }
    }
}

impl Scheduler for SinglePath {
    fn name(&self) -> &'static str {
        "single"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        match input.paths.iter().find(|p| p.id == self.path) {
            Some(p) if p.has_space() => Decision::Send(p.id),
            _ => Decision::Blocked,
        }
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        match self.select(input) {
            Decision::Send(id) => (Decision::Send(id), crate::Why::Pinned),
            d => (d, crate::Why::NoCapacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::testutil::path;

    #[test]
    fn round_robin_alternates() {
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 0)];
        let inp = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 100 };
        let mut rr = RoundRobin::new();
        let seq: Vec<Decision> = (0..4).map(|_| rr.select(&inp)).collect();
        assert_eq!(
            seq,
            vec![
                Decision::Send(PathId(0)),
                Decision::Send(PathId(1)),
                Decision::Send(PathId(0)),
                Decision::Send(PathId(1)),
            ]
        );
    }

    #[test]
    fn round_robin_skips_full_paths() {
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let inp = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 100 };
        let mut rr = RoundRobin::new();
        assert_eq!(rr.select(&inp), Decision::Send(PathId(1)));
        assert_eq!(rr.select(&inp), Decision::Send(PathId(1)));
    }

    #[test]
    fn round_robin_empty_blocks() {
        let inp = SchedInput { paths: &[], queued_pkts: 10, send_window_free_pkts: 100 };
        assert_eq!(RoundRobin::new().select(&inp), Decision::Blocked);
    }

    #[test]
    fn single_path_pins() {
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 0)];
        let inp = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 100 };
        let mut sp = SinglePath::new(PathId(1));
        assert_eq!(sp.select(&inp), Decision::Send(PathId(1)));
    }

    #[test]
    fn single_path_blocks_when_pinned_full() {
        let paths = [path(0, 10, 10, 0), path(1, 100, 10, 10)];
        let inp = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 100 };
        let mut sp = SinglePath::new(PathId(1));
        assert_eq!(sp.select(&inp), Decision::Blocked);
        let mut missing = SinglePath::new(PathId(9));
        assert_eq!(missing.select(&inp), Decision::Blocked);
    }
}
