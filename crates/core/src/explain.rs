//! Decision provenance: *why* a scheduler chose what it chose.
//!
//! The paper's claims are mechanistic — ECF wins because it idles the slow
//! subflow at precise moments — so a throughput number alone cannot confirm
//! the mechanism. [`Why`] is the typed record a scheduler attaches to each
//! [`crate::Decision`]: which inequality fired, with what numeric terms, or
//! which waiting state held. The `telemetry` crate embeds it verbatim in
//! `SchedDecision` events, so a trace of a run is a complete decision log.
//!
//! Schedulers report provenance through
//! [`Scheduler::select_explained`](crate::Scheduler::select_explained); the
//! default implementation returns [`Why::Unspecified`], so third-party
//! schedulers compile unchanged and still get fully populated decision
//! events (inputs + verdict) for free.

/// The numeric terms of ECF's two inequalities at one decision, in seconds.
///
/// Inequality 1 (wait pays off): `wait_for_fast < threshold`, i.e.
/// `(1 + k/cwnd_F)·rtt_F < (1 + β?)·(rtt_S + δ)`.
/// Inequality 2 (the slow path really is slow): `slow_time ≥ slow_floor`,
/// i.e. `ceil(k/cwnd_S)·rtt_S ≥ 2·rtt_F + δ`.
///
/// `delta_s` is the δ = max(σ_F, σ_S) variability margin *as computed by the
/// scheduler* — consumers must read it from here rather than recomputing it
/// from the path snapshots (the `ablation_delta` configuration zeroes it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EcfTerms {
    /// LHS of inequality 1: `(1 + k/cwnd_F)·rtt_F`.
    pub wait_for_fast_s: f64,
    /// RHS of inequality 1: `(1 + β?)·(rtt_S + δ)`.
    pub threshold_s: f64,
    /// LHS of inequality 2: `ceil(k/cwnd_S)·rtt_S`.
    pub slow_time_s: f64,
    /// RHS of inequality 2: `2·rtt_F + δ`.
    pub slow_floor_s: f64,
    /// The δ margin the scheduler actually used (0 when disabled).
    pub delta_s: f64,
    /// True when the β hysteresis bonus was applied (already waiting).
    pub beta_applied: bool,
}

/// Scheduler-specific provenance for one decision.
///
/// Every variant names the *rule* that produced the verdict; rule-specific
/// numeric inputs ride along so a trace consumer can re-check the
/// arithmetic without re-running the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Why {
    /// The scheduler did not report provenance (default for third-party
    /// implementations that only implement `select`).
    Unspecified,
    /// The lowest-sRTT usable path had window space, so there was nothing
    /// to decide (ECF's and BLEST's trivial case).
    FastestFree,
    /// minRTT's rule: the lowest-sRTT path *among those with space*.
    FastestAvailable,
    /// No usable path had congestion-window space.
    NoCapacity,
    /// ECF waits: inequality 1 held and inequality 2 confirmed that the
    /// slow path would finish later than the ≥ 2·RTT_F floor.
    EcfWait(EcfTerms),
    /// ECF sends on the slow path because inequality 2 failed: the slow
    /// path finishes soon enough that waiting buys nothing.
    EcfSecondInequalitySend(EcfTerms),
    /// ECF sends on the slow path because inequality 1 failed: the backlog
    /// is large enough that the slow path's extra bandwidth wins. Clears
    /// the waiting hysteresis.
    EcfBacklogSend(EcfTerms),
    /// BLEST waits: the fast path's projected transmission during one
    /// slow-path RTT (scaled by λ) no longer fits the free send window.
    BlestWait {
        /// Segments the fast path could move in one slow RTT, λ-scaled.
        projected_pkts: f64,
        /// Current adaptive scale factor λ.
        lambda: f64,
    },
    /// BLEST sends on the slow path: the projection fits the window.
    BlestFits {
        /// Segments the fast path could move in one slow RTT, λ-scaled.
        projected_pkts: f64,
        /// Current adaptive scale factor λ.
        lambda: f64,
    },
    /// DAPS sends on the path holding the largest deficit credit.
    DapsDesignated {
        /// The chosen path's credit after this segment's deposit.
        credit: f64,
    },
    /// DAPS holds the segment for its designated path (window full there).
    DapsHold {
        /// The designated path's credit (deposit rolled back).
        credit: f64,
    },
    /// STTF sends on the path with the minimum estimated delivery time.
    SttfBest {
        /// The winning estimate, seconds.
        estimate_s: f64,
    },
    /// STTF waits for the minimum-estimate path whose window is full.
    SttfWaitBest {
        /// The winning (but window-full) estimate, seconds.
        estimate_s: f64,
    },
    /// Round-robin: it was simply this path's turn.
    RoundRobinTurn,
    /// Single-path: traffic is pinned here.
    Pinned,
}

impl Why {
    /// Stable lowercase label for reports and trace files.
    pub fn label(&self) -> &'static str {
        match self {
            Why::Unspecified => "unspecified",
            Why::FastestFree => "fastest_free",
            Why::FastestAvailable => "fastest_available",
            Why::NoCapacity => "no_capacity",
            Why::EcfWait(_) => "ecf_wait",
            Why::EcfSecondInequalitySend(_) => "ecf_second_ineq_send",
            Why::EcfBacklogSend(_) => "ecf_backlog_send",
            Why::BlestWait { .. } => "blest_wait",
            Why::BlestFits { .. } => "blest_fits",
            Why::DapsDesignated { .. } => "daps_designated",
            Why::DapsHold { .. } => "daps_hold",
            Why::SttfBest { .. } => "sttf_best",
            Why::SttfWaitBest { .. } => "sttf_wait_best",
            Why::RoundRobinTurn => "rr_turn",
            Why::Pinned => "pinned",
        }
    }

    /// The ECF inequality terms, when this is an ECF-rule decision.
    pub fn ecf_terms(&self) -> Option<&EcfTerms> {
        match self {
            Why::EcfWait(t) | Why::EcfSecondInequalitySend(t) | Why::EcfBacklogSend(t) => {
                Some(t)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let all = [
            Why::Unspecified,
            Why::FastestFree,
            Why::FastestAvailable,
            Why::NoCapacity,
            Why::EcfWait(EcfTerms::default()),
            Why::EcfSecondInequalitySend(EcfTerms::default()),
            Why::EcfBacklogSend(EcfTerms::default()),
            Why::BlestWait { projected_pkts: 0.0, lambda: 1.0 },
            Why::BlestFits { projected_pkts: 0.0, lambda: 1.0 },
            Why::DapsDesignated { credit: 0.0 },
            Why::DapsHold { credit: 0.0 },
            Why::SttfBest { estimate_s: 0.0 },
            Why::SttfWaitBest { estimate_s: 0.0 },
            Why::RoundRobinTurn,
            Why::Pinned,
        ];
        let mut labels: Vec<&str> = all.iter().map(|w| w.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn ecf_terms_accessor() {
        let t = EcfTerms { delta_s: 0.5, ..EcfTerms::default() };
        assert_eq!(Why::EcfWait(t).ecf_terms().unwrap().delta_s, 0.5);
        assert!(Why::FastestFree.ecf_terms().is_none());
    }
}
