//! Scheduler-facing types.
//!
//! These are deliberately transport-agnostic: nothing here references the
//! simulator or the MPTCP model, so the schedulers are portable to any
//! multipath transport (e.g. a multipath QUIC stack) that can produce a
//! [`PathSnapshot`] per path.

use std::time::Duration;

/// Identifies one path (subflow) within a connection. Values are small dense
/// indices assigned by the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub usize);

/// Everything a scheduler may know about one path at decision time.
///
/// All fields mirror state a real MPTCP sender has on hand: smoothed RTT and
/// its deviation from the RTT estimator, the congestion window and bytes in
/// flight (in whole segments), and slow-start phase.
#[derive(Debug, Clone, Copy)]
pub struct PathSnapshot {
    /// Which path this is.
    pub id: PathId,
    /// Smoothed round-trip time estimate.
    pub srtt: Duration,
    /// RTT deviation estimate (the σ in ECF's δ = max(σf, σs) margin).
    pub rtt_dev: Duration,
    /// Congestion window, in segments.
    pub cwnd: u32,
    /// Unacknowledged segments currently in flight.
    pub inflight: u32,
    /// True while the path's congestion controller is in slow start.
    pub in_slow_start: bool,
    /// False when the path must not be used (not established, dead, ...).
    pub usable: bool,
    /// Bytes sitting in the path's bottleneck (droptail) queue, as sampled
    /// by the transport just before scheduling. A cross-layer signal no
    /// in-paper scheduler reads — exposed for QAware-style device-queue
    /// scheduling; 0 when the transport has no such visibility.
    pub queue_bytes: u64,
}

impl PathSnapshot {
    /// True when the transport could place one more segment on this path.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.usable && self.inflight < self.cwnd
    }
}

/// The decision context for scheduling one segment.
#[derive(Debug, Clone, Copy)]
pub struct SchedInput<'a> {
    /// Snapshots of all paths of the connection, in stable id order.
    pub paths: &'a [PathSnapshot],
    /// `k`: segments sitting in the connection-level send buffer that have
    /// not yet been assigned to any subflow (the quantity ECF reasons about).
    pub queued_pkts: u64,
    /// Free space, in segments, in the connection-level send window
    /// (min of peer receive window and send buffer). BLEST reasons about
    /// this.
    pub send_window_free_pkts: u64,
}

impl<'a> SchedInput<'a> {
    /// The usable path with the smallest sRTT, regardless of window space.
    pub fn fastest(&self) -> Option<&PathSnapshot> {
        self.paths.iter().filter(|p| p.usable).min_by_key(|p| p.srtt)
    }

    /// The path with the smallest sRTT *among those with window space* —
    /// the choice of the default minRTT scheduler.
    pub fn fastest_available(&self) -> Option<&PathSnapshot> {
        self.paths.iter().filter(|p| p.has_space()).min_by_key(|p| p.srtt)
    }
}

/// A scheduler's verdict for one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Send the segment on this path now.
    Send(PathId),
    /// Capacity exists on some path, but the scheduler declines to use it and
    /// waits for a better path to free up (ECF/BLEST waiting states). The
    /// transport re-polls on the next ACK or timer.
    Wait,
    /// No usable path has congestion-window space; nothing can be sent.
    Blocked,
}

/// A multipath packet scheduler.
///
/// `select` is called once per segment the transport wants to place. The
/// scheduler may keep internal state (hysteresis bits, deficit counters);
/// feedback hooks let the transport report events some schedulers adapt to.
///
/// `Send` is required so whole engines (which own their schedulers) can
/// migrate across lockstep worker threads in co-simulated sweeps; scheduler
/// state is plain data, so this costs implementors nothing.
pub trait Scheduler: Send {
    /// Stable short name used in reports ("default", "ecf", ...).
    fn name(&self) -> &'static str;

    /// Decide where the next segment goes.
    fn select(&mut self, input: &SchedInput<'_>) -> Decision;

    /// Like [`Scheduler::select`], additionally reporting *why* the verdict
    /// was reached (see [`crate::Why`]). The transport calls this variant
    /// when telemetry is enabled; the two must be behaviourally identical
    /// for the same input and internal state.
    ///
    /// The default implementation delegates to `select` and reports
    /// [`crate::Why::Unspecified`], so third-party schedulers keep working
    /// and still produce decision events carrying the full inputs.
    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, crate::Why) {
        (self.select(input), crate::Why::Unspecified)
    }

    /// The transport observed a connection-level send-window stall
    /// (head-of-line blocking). BLEST adapts its scale factor on this.
    fn on_window_blocked(&mut self) {}

    /// Reset per-connection state (new connection reusing the scheduler).
    fn reset(&mut self) {}
}

/// Convert a `Duration` to f64 seconds for decision arithmetic.
#[inline]
pub(crate) fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Shorthand snapshot constructor for scheduler unit tests.
    pub fn path(id: usize, srtt_ms: u64, cwnd: u32, inflight: u32) -> PathSnapshot {
        PathSnapshot {
            id: PathId(id),
            srtt: Duration::from_millis(srtt_ms),
            rtt_dev: Duration::ZERO,
            cwnd,
            inflight,
            in_slow_start: false,
            usable: true,
            queue_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::path;
    use super::*;

    #[test]
    fn has_space_logic() {
        let mut p = path(0, 10, 10, 9);
        assert!(p.has_space());
        p.inflight = 10;
        assert!(!p.has_space());
        p.inflight = 5;
        p.usable = false;
        assert!(!p.has_space());
    }

    #[test]
    fn fastest_ignores_space_but_not_usable() {
        let mut fast = path(0, 10, 10, 10); // full
        let slow = path(1, 100, 10, 0);
        let input = [fast, slow];
        let inp = SchedInput { paths: &input, queued_pkts: 1, send_window_free_pkts: 100 };
        assert_eq!(inp.fastest().unwrap().id, PathId(0));
        assert_eq!(inp.fastest_available().unwrap().id, PathId(1));

        fast.usable = false;
        let input = [fast, slow];
        let inp = SchedInput { paths: &input, queued_pkts: 1, send_window_free_pkts: 100 };
        assert_eq!(inp.fastest().unwrap().id, PathId(1));
    }

    #[test]
    fn no_paths_no_fastest() {
        let inp = SchedInput { paths: &[], queued_pkts: 0, send_window_free_pkts: 0 };
        assert!(inp.fastest().is_none());
        assert!(inp.fastest_available().is_none());
    }
}
