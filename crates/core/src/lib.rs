//! # ecf-core — multipath packet schedulers
//!
//! The primary contribution of *"ECF: An MPTCP Path Scheduler to Manage
//! Heterogeneous Paths"* (Lim et al., CoNEXT 2017), plus every scheduler the
//! paper compares against, implemented from scratch:
//!
//! | Scheduler | Idea | Source |
//! |---|---|---|
//! | [`MinRtt`]  | lowest-RTT path with window space (MPTCP default) | RFC 6824 Linux impl |
//! | [`Ecf`]     | wait for the fast path when that finishes sooner  | this paper, Alg. 1 |
//! | [`Blest`]   | wait when the slow path would stall the send window | Ferlin et al. 2016 |
//! | [`Daps`]    | split traffic ∝ 1/RTT | Kuhn et al. 2014 |
//! | [`Sttf`]    | per-segment shortest-transfer-time (extension) | Hurtig et al. 2018 |
//! | [`RoundRobin`], [`SinglePath`] | extra baselines | — |
//!
//! The crate is **transport-agnostic**: schedulers consume a
//! [`PathSnapshot`] per subflow (sRTT, RTT deviation, CWND, in-flight) and the
//! connection-level backlog, and return a [`Decision`]. Nothing here depends
//! on the simulator, so the same code can schedule a real multipath
//! transport (e.g. multipath QUIC).
//!
//! ```
//! use ecf_core::{Ecf, Scheduler, SchedInput, PathSnapshot, PathId, Decision};
//! use std::time::Duration;
//!
//! let wifi = PathSnapshot {
//!     id: PathId(0), srtt: Duration::from_millis(10),
//!     rtt_dev: Duration::from_millis(1), cwnd: 10, inflight: 10,
//!     in_slow_start: false, usable: true, queue_bytes: 0,
//! };
//! let lte = PathSnapshot { id: PathId(1), srtt: Duration::from_millis(100), ..wifi };
//! let lte = PathSnapshot { inflight: 0, ..lte };
//!
//! // One straggler packet left: ECF holds it for the (full) fast path
//! // instead of burning 100 ms on the slow one.
//! let mut ecf = Ecf::new();
//! let input = [wifi, lte];
//! let decision = ecf.select(&SchedInput {
//!     paths: &input, queued_pkts: 1, send_window_free_pkts: 1000,
//! });
//! assert_eq!(decision, Decision::Wait);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blest;
mod daps;
mod ecf;
mod explain;
mod extras;
mod kind;
mod minrtt;
mod sttf;
mod types;

pub use blest::{Blest, BlestConfig};
pub use daps::Daps;
pub use ecf::{delta_margin, Ecf, EcfConfig, DEFAULT_BETA};
pub use explain::{EcfTerms, Why};
pub use extras::{RoundRobin, SinglePath};
pub use kind::SchedulerKind;
pub use minrtt::MinRtt;
pub use sttf::Sttf;
pub use types::{Decision, PathId, PathSnapshot, SchedInput, Scheduler};
