//! ECF — Earliest Completion First (the paper's contribution, Algorithm 1).
//!
//! The default minRTT scheduler falls back to a slower path the moment the
//! fastest path's window is full. ECF instead asks: *given the `k` segments
//! still queued, would waiting for the fast path complete the transfer sooner
//! than using the slow path right now?* If so it idles rather than committing
//! bytes to the slow path — keeping the fast path busy across request
//! boundaries and avoiding the idle-timeout CWND resets the paper identifies
//! as the root cause of fast-path under-utilization.

use std::time::Duration;

use crate::explain::{EcfTerms, Why};
use crate::types::{secs, Decision, SchedInput, Scheduler};

/// Default hysteresis factor β; the paper sets 0.25 throughout its evaluation
/// and reports other values behave similarly (we regenerate that claim in the
/// `ablation_beta` experiment).
pub const DEFAULT_BETA: f64 = 0.25;

/// Configuration knobs for [`Ecf`]. The defaults reproduce the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcfConfig {
    /// Hysteresis factor β applied to the waiting threshold once waiting.
    pub beta: f64,
    /// Include the δ = max(σf, σs) variability margin. Disabling this is the
    /// `ablation_delta` experiment, not a paper mode.
    pub use_delta: bool,
    /// Apply the second inequality (k/CWNDs)·RTTs ≥ 2·RTTf + δ that guards
    /// against waiting when the slow path would finish quickly anyway.
    /// Disabling this is the `ablation_second_ineq` experiment.
    pub use_second_inequality: bool,
}

impl Default for EcfConfig {
    fn default() -> Self {
        EcfConfig { beta: DEFAULT_BETA, use_delta: true, use_second_inequality: true }
    }
}

/// The ECF scheduler. See the module docs and the paper's Algorithm 1.
#[derive(Debug, Clone, Default)]
pub struct Ecf {
    cfg: EcfConfig,
    /// The `waiting` hysteresis bit from Algorithm 1: set while we have
    /// decided to hold segments back for the fast subflow.
    waiting: bool,
}

impl Ecf {
    /// ECF with the paper's parameters (β = 0.25).
    pub fn new() -> Self {
        Self::default()
    }

    /// ECF with explicit configuration (ablations, β sweeps).
    pub fn with_config(cfg: EcfConfig) -> Self {
        Ecf { cfg, waiting: false }
    }

    /// Whether the scheduler is currently holding back for the fast subflow
    /// — Algorithm 1's `waiting` hysteresis bit.
    ///
    /// Semantics across the wait→send transition:
    ///
    /// * The bit is **set** the moment a `select` call returns
    ///   [`Decision::Wait`] (both inequalities held) and stays set across
    ///   subsequent `Wait` verdicts; while set, the first inequality's
    ///   threshold gains the `(1 + β)` bonus, so leaving the waiting state
    ///   requires the backlog to grow past a *higher* bar than entering it.
    /// * The bit is **cleared** when the first inequality fails and ECF
    ///   sends on the slow path ([`Why::EcfBacklogSend`]) — the backlog got
    ///   big enough that both pipes should run — and by [`Ecf::reset`].
    /// * The bit is **unchanged** by fast-path sends
    ///   ([`Why::FastestFree`]): a momentarily free fast subflow does not
    ///   mean the tail-holding episode is over. It is also unchanged by a
    ///   second-inequality send ([`Why::EcfSecondInequalitySend`]): that
    ///   rule fires when the slow path is nearly as fast as waiting, which
    ///   does not contradict the decision to keep favouring the fast path.
    /// * `Blocked` verdicts (no usable path at all) leave it untouched.
    ///
    /// See `waiting_bit_across_transitions` in this module's tests for the
    /// executable version of this contract.
    pub fn is_waiting(&self) -> bool {
        self.waiting
    }

    /// Algorithm 1 with full provenance: the single implementation both
    /// [`Scheduler::select`] and [`Scheduler::select_explained`] call.
    fn decide(&mut self, input: &SchedInput<'_>) -> (Decision, Why) {
        // Fastest subflow by sRTT, regardless of window space.
        let Some(xf) = input.fastest() else {
            return (Decision::Blocked, Why::NoCapacity);
        };
        if xf.has_space() {
            // Algorithm 1: the fast subflow is available — just use it.
            return (Decision::Send(xf.id), Why::FastestFree);
        }
        // Fast subflow is cwnd-limited. The candidate is whatever the default
        // scheduler would pick among the remaining paths.
        let Some(xs) = input.fastest_available() else {
            return (Decision::Blocked, Why::NoCapacity);
        };

        let k = input.queued_pkts.max(1) as f64;
        let rtt_f = secs(xf.srtt);
        let rtt_s = secs(xs.srtt);
        let cwnd_f = f64::from(xf.cwnd.max(1));
        let cwnd_s = f64::from(xs.cwnd.max(1));
        let delta = if self.cfg.use_delta {
            secs(xf.rtt_dev.max(xs.rtt_dev))
        } else {
            0.0
        };

        // (1 + k/CWNDf)·RTTf: wait one RTTf for the window to open, then
        // k/CWNDf rounds of transfer.
        let wait_for_fast = (1.0 + k / cwnd_f) * rtt_f;
        let beta_applied = self.waiting;
        let beta = if beta_applied { self.cfg.beta } else { 0.0 };
        let threshold = (1.0 + beta) * (rtt_s + delta);
        // The second inequality's terms: segments transfer in whole
        // windows, hence the ceil on the round count (this also matches the
        // paper's worked 11-packet example, where k=1 on the slow path
        // costs a full RTTs).
        let slow_time = (k / cwnd_s).ceil().max(1.0) * rtt_s;
        let terms = EcfTerms {
            wait_for_fast_s: wait_for_fast,
            threshold_s: threshold,
            slow_time_s: slow_time,
            slow_floor_s: 2.0 * rtt_f + delta,
            delta_s: delta,
            beta_applied,
        };

        if wait_for_fast < threshold {
            // Waiting for the fast subflow is predicted to complete earlier
            // than handing this segment to xs. The second inequality insists
            // that xs really would be slower than the ≥ 2·RTTf floor of the
            // waiting option.
            if !self.cfg.use_second_inequality || slow_time >= terms.slow_floor_s {
                self.waiting = true;
                return (Decision::Wait, Why::EcfWait(terms));
            }
            return (Decision::Send(xs.id), Why::EcfSecondInequalitySend(terms));
        }
        // Plenty of backlog: using the extra bandwidth of xs shortens the
        // completion time. Clear the hysteresis bit.
        self.waiting = false;
        (Decision::Send(xs.id), Why::EcfBacklogSend(terms))
    }
}

impl Scheduler for Ecf {
    fn name(&self) -> &'static str {
        "ecf"
    }

    fn select(&mut self, input: &SchedInput<'_>) -> Decision {
        self.decide(input).0
    }

    fn select_explained(&mut self, input: &SchedInput<'_>) -> (Decision, Why) {
        self.decide(input)
    }

    fn reset(&mut self) {
        self.waiting = false;
    }
}

/// δ margin helper exposed for tests and documentation: max of the two paths'
/// RTT deviations.
///
/// Trace consumers should *not* call this to reconstruct the margin a
/// decision used: the δ the scheduler actually applied (zero under the
/// `ablation_delta` configuration) is carried in the decision's
/// [`EcfTerms::delta_s`], via [`Scheduler::select_explained`].
pub fn delta_margin(dev_f: Duration, dev_s: Duration) -> Duration {
    dev_f.max(dev_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::testutil::path;
    use crate::types::{PathId, PathSnapshot};

    fn input<'a>(paths: &'a [PathSnapshot], k: u64) -> SchedInput<'a> {
        SchedInput { paths, queued_pkts: k, send_window_free_pkts: 1 << 20 }
    }

    #[test]
    fn uses_fast_path_when_available() {
        let paths = [path(0, 10, 10, 3), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&paths, 50)), Decision::Send(PathId(0)));
    }

    #[test]
    fn paper_example_waits_for_fast_path() {
        // The §3.2 motivating example: RTTs 10 ms vs 100 ms, both cwnd 10,
        // 11 packets to send. After the fast path absorbs 10, k=1 remains and
        // the fast window is full. Waiting costs ≈20 ms; the slow path costs
        // 100 ms. ECF must wait.
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&paths, 1)), Decision::Wait);
        assert!(ecf.is_waiting());
    }

    #[test]
    fn large_backlog_uses_slow_path() {
        // Enough queued data to keep both pipes busy: first inequality fails
        // ((1 + 200/10)·10ms = 210ms ≥ 100ms), so ECF uses the slow path.
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&paths, 200)), Decision::Send(PathId(1)));
        assert!(!ecf.is_waiting());
    }

    #[test]
    fn second_inequality_prevents_pointless_waiting() {
        // Slow path barely slower: rtt_s = 30 ms vs rtt_f = 20 ms, k small.
        // First inequality: (1 + 1/10)·20 = 22 < 30 → would wait, but the
        // slow path finishes in 30 ms < 2·20 = 40 ms, so ECF sends on it.
        let paths = [path(0, 20, 10, 10), path(1, 30, 10, 0)];
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&paths, 1)), Decision::Send(PathId(1)));
    }

    #[test]
    fn hysteresis_beta_keeps_waiting() {
        // Construct a borderline case that only passes the first inequality
        // with the waiting-state β bonus.
        let paths = [path(0, 48, 10, 10), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        // k=11: (1 + 11/10)·48 = 100.8 ≥ 100 → not waiting without β.
        assert_eq!(ecf.select(&input(&paths, 11)), Decision::Send(PathId(1)));
        // Enter waiting with a smaller backlog...
        assert_eq!(ecf.select(&input(&paths, 1)), Decision::Wait);
        // ...now the same k=11 call stays waiting: threshold is 1.25·100 = 125.
        assert_eq!(ecf.select(&input(&paths, 11)), Decision::Wait);
    }

    #[test]
    fn delta_margin_widens_threshold() {
        // k=16: without δ, (1 + 16/10)·40 = 104 ≥ 100 → send on slow.
        // With δ = 30 ms deviation: 104 < 130 and the second inequality holds
        // (ceil(16/10)·100 = 200 ≥ 2·40 + 30), so ECF waits.
        let mut fast = path(0, 40, 10, 10);
        let slow = path(1, 100, 10, 0);
        fast.rtt_dev = Duration::from_millis(30);

        let paths = [fast, slow];
        let mut with_delta = Ecf::new();
        assert_eq!(with_delta.select(&input(&paths, 16)), Decision::Wait);

        let mut without = Ecf::with_config(EcfConfig {
            use_delta: false,
            ..EcfConfig::default()
        });
        assert_eq!(without.select(&input(&paths, 16)), Decision::Send(PathId(1)));
    }

    #[test]
    fn blocked_when_nothing_usable() {
        let mut a = path(0, 10, 10, 10);
        let mut b = path(1, 100, 10, 10);
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&[a, b], 5)), Decision::Blocked);
        a.usable = false;
        b.usable = false;
        assert_eq!(ecf.select(&input(&[a, b], 5)), Decision::Blocked);
    }

    #[test]
    fn reset_clears_waiting() {
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        ecf.select(&input(&paths, 1));
        assert!(ecf.is_waiting());
        ecf.reset();
        assert!(!ecf.is_waiting());
    }

    #[test]
    fn three_paths_waits_on_best_candidate() {
        // Fast full; two slower candidates — the decision must be made
        // against the *best available* (50 ms), and with k=1 ECF waits since
        // ceil(1/10)·50 = 50 ≥ 2·10.
        let paths = [path(0, 10, 10, 10), path(1, 50, 10, 0), path(2, 200, 10, 0)];
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&paths, 1)), Decision::Wait);
    }

    #[test]
    fn no_starvation_backlog_growth_exits_waiting() {
        // From the waiting state, growing the backlog k past the
        // first-inequality threshold must flip back to Send on the slow path:
        // waiting may never starve the connection once there is enough data
        // to fill both pipes. With RTTs 10/100 ms, cwnd 10, and the β = 0.25
        // bonus active, the threshold is (1 + k/10)·10 ≥ 1.25·100 → k ≥ 115.
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        assert_eq!(ecf.select(&input(&paths, 1)), Decision::Wait);
        assert!(ecf.is_waiting());

        // Below the hysteresis threshold the decision must stay Wait...
        assert_eq!(ecf.select(&input(&paths, 114)), Decision::Wait);
        assert!(ecf.is_waiting());
        // ...and the first k at/above it exits waiting onto the slow path.
        assert_eq!(ecf.select(&input(&paths, 115)), Decision::Send(PathId(1)));
        assert!(!ecf.is_waiting());

        // The exit is monotone: every larger backlog also sends.
        for k in [116, 200, 1_000, 100_000] {
            let mut e = Ecf::new();
            e.select(&input(&paths, 1)); // enter waiting
            assert_eq!(e.select(&input(&paths, k)), Decision::Send(PathId(1)), "k={k}");
        }
    }

    /// Executable version of the `is_waiting` contract: how the hysteresis
    /// bit behaves across every kind of transition, including wait→send.
    #[test]
    fn waiting_bit_across_transitions() {
        let full_fast = path(0, 10, 10, 10);
        let free_fast = path(0, 10, 10, 3);
        let slow = path(1, 100, 10, 0);
        let mut ecf = Ecf::new();

        // Enter waiting: tail case, both inequalities hold.
        assert_eq!(ecf.select(&input(&[full_fast, slow], 1)), Decision::Wait);
        assert!(ecf.is_waiting());

        // A fast-path send does NOT clear the bit: the episode survives the
        // window momentarily opening.
        assert_eq!(ecf.select(&input(&[free_fast, slow], 1)), Decision::Send(PathId(0)));
        assert!(ecf.is_waiting());

        // Blocked leaves it untouched.
        let full_slow = path(1, 100, 10, 10);
        assert_eq!(ecf.select(&input(&[full_fast, full_slow], 1)), Decision::Blocked);
        assert!(ecf.is_waiting());

        // The wait→send transition that DOES clear it: backlog grows past
        // the β-boosted threshold and ECF commits to the slow path.
        assert_eq!(ecf.select(&input(&[full_fast, slow], 200)), Decision::Send(PathId(1)));
        assert!(!ecf.is_waiting());

        // A second-inequality send leaves the bit as-is (never entered
        // waiting here): slow barely slower than fast.
        let near_fast = path(0, 20, 10, 10);
        let near_slow = path(1, 30, 10, 0);
        let mut e2 = Ecf::new();
        assert_eq!(e2.select(&input(&[near_fast, near_slow], 1)), Decision::Send(PathId(1)));
        assert!(!e2.is_waiting());
    }

    /// select_explained reports the rule that fired and must agree with
    /// select for identical state and input.
    #[test]
    fn provenance_matches_decision() {
        use crate::explain::Why;
        let paths = [path(0, 10, 10, 10), path(1, 100, 10, 0)];

        let mut ecf = Ecf::new();
        let (d, why) = ecf.select_explained(&input(&paths, 1));
        assert_eq!(d, Decision::Wait);
        assert!(matches!(why, Why::EcfWait(_)), "{why:?}");

        let (d, why) = ecf.select_explained(&input(&paths, 200));
        assert_eq!(d, Decision::Send(PathId(1)));
        assert!(matches!(why, Why::EcfBacklogSend(_)), "{why:?}");

        let free = [path(0, 10, 10, 3), path(1, 100, 10, 0)];
        let (d, why) = ecf.select_explained(&input(&free, 5));
        assert_eq!(d, Decision::Send(PathId(0)));
        assert_eq!(why, Why::FastestFree);

        let near = [path(0, 20, 10, 10), path(1, 30, 10, 0)];
        let (d, why) = Ecf::new().select_explained(&input(&near, 1));
        assert_eq!(d, Decision::Send(PathId(1)));
        assert!(matches!(why, Why::EcfSecondInequalitySend(_)), "{why:?}");

        let blocked = [path(0, 10, 10, 10), path(1, 100, 10, 10)];
        let (d, why) = Ecf::new().select_explained(&input(&blocked, 1));
        assert_eq!(d, Decision::Blocked);
        assert_eq!(why, Why::NoCapacity);
    }

    /// The decision event carries the δ the scheduler *used*, not a value
    /// callers must recompute: with `use_delta` off it reads zero even
    /// though the snapshots have non-zero deviations.
    #[test]
    fn provenance_exposes_computed_delta() {
        let mut fast = path(0, 40, 10, 10);
        let mut slow = path(1, 100, 10, 0);
        fast.rtt_dev = Duration::from_millis(30);
        slow.rtt_dev = Duration::from_millis(10);
        let paths = [fast, slow];

        let (_, why) = Ecf::new().select_explained(&input(&paths, 16));
        let terms = why.ecf_terms().expect("ecf rule fired");
        assert!((terms.delta_s - 0.030).abs() < 1e-12);
        assert!(!terms.beta_applied);

        let mut no_delta =
            Ecf::with_config(EcfConfig { use_delta: false, ..EcfConfig::default() });
        let (_, why) = no_delta.select_explained(&input(&paths, 16));
        assert_eq!(why.ecf_terms().expect("ecf rule fired").delta_s, 0.0);

        // Once waiting, the β bonus is reported as applied.
        let tail = [path(0, 10, 10, 10), path(1, 100, 10, 0)];
        let mut ecf = Ecf::new();
        ecf.select(&input(&tail, 1));
        let (_, why) = ecf.select_explained(&input(&tail, 1));
        assert!(why.ecf_terms().unwrap().beta_applied);
    }

    #[test]
    fn delta_margin_helper() {
        assert_eq!(
            delta_margin(Duration::from_millis(3), Duration::from_millis(7)),
            Duration::from_millis(7)
        );
    }
}
