//! Scheduler factory used by the experiment sweeps.

use crate::blest::Blest;
use crate::daps::Daps;
use crate::ecf::{Ecf, EcfConfig};
use crate::extras::{RoundRobin, SinglePath};
use crate::minrtt::MinRtt;
use crate::types::{PathId, Scheduler};

/// A nameable scheduler choice, convertible into a boxed instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// The default minRTT scheduler.
    Default,
    /// ECF with the paper's parameters.
    Ecf,
    /// ECF with an explicit configuration (β sweeps, ablations).
    EcfWith(EcfConfig),
    /// DAPS.
    Daps,
    /// BLEST.
    Blest,
    /// STTF (extension, Hurtig et al.).
    Sttf,
    /// Round-robin.
    RoundRobin,
    /// Pin to a single path.
    SinglePath(usize),
}

impl SchedulerKind {
    /// Instantiate the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Default => Box::new(MinRtt::new()),
            SchedulerKind::Ecf => Box::new(Ecf::new()),
            SchedulerKind::EcfWith(cfg) => Box::new(Ecf::with_config(cfg)),
            SchedulerKind::Daps => Box::new(Daps::new()),
            SchedulerKind::Blest => Box::new(Blest::new()),
            SchedulerKind::Sttf => Box::new(crate::sttf::Sttf::new()),
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::SinglePath(i) => Box::new(SinglePath::new(PathId(i))),
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Default => "default",
            SchedulerKind::Ecf => "ecf",
            SchedulerKind::EcfWith(_) => "ecf*",
            SchedulerKind::Daps => "daps",
            SchedulerKind::Blest => "blest",
            SchedulerKind::Sttf => "sttf",
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::SinglePath(_) => "single",
        }
    }

    /// The four schedulers of the paper's main comparison (Fig 9 order).
    pub fn paper_set() -> [SchedulerKind; 4] {
        [SchedulerKind::Default, SchedulerKind::Ecf, SchedulerKind::Daps, SchedulerKind::Blest]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_label() {
        for kind in SchedulerKind::paper_set() {
            let s = kind.build();
            assert_eq!(s.name(), kind.label());
        }
    }

    #[test]
    fn paper_set_has_four_distinct() {
        let set = SchedulerKind::paper_set();
        assert_eq!(set.len(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(set[i], set[j]);
            }
        }
    }
}
