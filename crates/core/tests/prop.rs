//! Property-based tests over the scheduler implementations: invariants that
//! must hold for *any* path state, not just the hand-picked unit cases.

use std::time::Duration;

use ecf_core::{
    Blest, Daps, Decision, Ecf, MinRtt, PathId, PathSnapshot, RoundRobin, SchedInput, Scheduler,
    SchedulerKind,
};
use proptest::prelude::*;

/// Arbitrary-ish path snapshot generator.
fn arb_path(id: usize) -> impl Strategy<Value = PathSnapshot> {
    (1u64..2_000, 0u64..200, 1u32..500, 0u32..600, any::<bool>(), any::<bool>()).prop_map(
        move |(srtt_ms, dev_ms, cwnd, inflight, ss, usable)| PathSnapshot {
            id: PathId(id),
            srtt: Duration::from_millis(srtt_ms),
            rtt_dev: Duration::from_millis(dev_ms),
            cwnd,
            inflight,
            in_slow_start: ss,
            usable,
        },
    )
}

fn arb_paths() -> impl Strategy<Value = Vec<PathSnapshot>> {
    prop::collection::vec(Just(()), 1..5).prop_flat_map(|v| {
        let n = v.len();
        (0..n).map(arb_path).collect::<Vec<_>>()
    })
}

/// Every scheduler must respect the two structural invariants:
/// a `Send` targets a usable path with window space, and `Blocked` is
/// returned only when no path has space.
fn check_structural(sched: &mut dyn Scheduler, paths: &[PathSnapshot], k: u64, window: u64) {
    let input = SchedInput { paths, queued_pkts: k, send_window_free_pkts: window };
    match sched.select(&input) {
        Decision::Send(id) => {
            let p = paths.iter().find(|p| p.id == id).expect("known path");
            assert!(p.has_space(), "{}: sent on full/unusable path {id:?}", sched.name());
        }
        Decision::Blocked => {
            assert!(
                !paths.iter().any(|p| p.has_space()),
                "{}: blocked despite available space",
                sched.name()
            );
        }
        Decision::Wait => {
            // Waiting is only meaningful if some path could have sent.
            assert!(
                paths.iter().any(|p| p.has_space()),
                "{}: waited with nothing available (should be Blocked)",
                sched.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn structural_invariants_all_schedulers(
        paths in arb_paths(),
        k in 0u64..100_000,
        window in 0u64..1_000_000,
        rounds in 1usize..20,
    ) {
        for kind in [
            SchedulerKind::Default,
            SchedulerKind::Ecf,
            SchedulerKind::Daps,
            SchedulerKind::Blest,
            SchedulerKind::Sttf,
            SchedulerKind::RoundRobin,
        ] {
            let mut s = kind.build();
            // Repeat with internal state carried over: invariants must hold
            // on every call, not just the first.
            for _ in 0..rounds {
                check_structural(s.as_mut(), &paths, k, window);
            }
        }
    }

    #[test]
    fn minrtt_picks_global_min_available(paths in arb_paths()) {
        let input = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 1 << 20 };
        match MinRtt::new().select(&input) {
            Decision::Send(id) => {
                let chosen = paths.iter().find(|p| p.id == id).unwrap();
                for p in paths.iter().filter(|p| p.has_space()) {
                    prop_assert!(chosen.srtt <= p.srtt);
                }
            }
            Decision::Blocked => {
                prop_assert!(!paths.iter().any(|p| p.has_space()));
            }
            Decision::Wait => prop_assert!(false, "minRTT never waits"),
        }
    }

    #[test]
    fn ecf_uses_fast_path_whenever_it_has_space(paths in arb_paths(), k in 1u64..10_000) {
        let input = SchedInput { paths: &paths, queued_pkts: k, send_window_free_pkts: 1 << 20 };
        let fastest_free = paths
            .iter()
            .filter(|p| p.usable)
            .min_by_key(|p| p.srtt)
            .filter(|p| p.has_space())
            .map(|p| p.id);
        if let Some(fid) = fastest_free {
            prop_assert_eq!(Ecf::new().select(&input), Decision::Send(fid));
        }
    }

    #[test]
    fn ecf_never_waits_with_huge_backlog(paths in arb_paths()) {
        // With effectively infinite queued data the first inequality cannot
        // hold, so ECF must use the extra bandwidth (or be Blocked).
        let input = SchedInput {
            paths: &paths,
            queued_pkts: u64::MAX / 2,
            send_window_free_pkts: 1 << 20,
        };
        prop_assert_ne!(Ecf::new().select(&input), Decision::Wait);
    }

    #[test]
    fn blest_reduces_to_minrtt_with_huge_window(paths in arb_paths(), k in 1u64..10_000) {
        // With an unbounded send window BLEST's blocking prediction never
        // fires, so its decision coincides with the default scheduler's
        // *choice of path class*: fastest overall if free, else spill.
        let input = SchedInput { paths: &paths, queued_pkts: k, send_window_free_pkts: u64::MAX };
        let blest = Blest::new().select(&input);
        prop_assert_ne!(blest, Decision::Wait);
    }

    #[test]
    fn daps_split_tracks_inverse_rtt(rtt_a in 5u64..50, ratio in 2u64..10) {
        // Two always-available paths with RTT ratio r: the long-run share of
        // the slower path must approach 1/(1+r).
        let rtt_b = rtt_a * ratio;
        let mk = |id: usize, rtt: u64| PathSnapshot {
            id: PathId(id),
            srtt: Duration::from_millis(rtt),
            rtt_dev: Duration::ZERO,
            cwnd: u32::MAX,
            inflight: 0,
            in_slow_start: false,
            usable: true,
        };
        let paths = [mk(0, rtt_a), mk(1, rtt_b)];
        let input = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 1 << 30 };
        let mut daps = Daps::new();
        let n = 5_000;
        let mut slow = 0u64;
        for _ in 0..n {
            if let Decision::Send(PathId(1)) = daps.select(&input) {
                slow += 1;
            }
        }
        let expected = 1.0 / (1.0 + ratio as f64);
        let got = slow as f64 / n as f64;
        prop_assert!((got - expected).abs() < 0.02, "got {got}, expected {expected}");
    }

    #[test]
    fn round_robin_fair_on_homogeneous_paths(n_paths in 2usize..5) {
        let paths: Vec<PathSnapshot> = (0..n_paths)
            .map(|i| PathSnapshot {
                id: PathId(i),
                srtt: Duration::from_millis(20),
                rtt_dev: Duration::ZERO,
                cwnd: u32::MAX,
                inflight: 0,
                in_slow_start: false,
                usable: true,
            })
            .collect();
        let input = SchedInput { paths: &paths, queued_pkts: 10, send_window_free_pkts: 1 << 30 };
        let mut rr = RoundRobin::new();
        let mut counts = vec![0u32; n_paths];
        for _ in 0..(n_paths * 100) {
            if let Decision::Send(PathId(i)) = rr.select(&input) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            prop_assert_eq!(c, 100);
        }
    }

    #[test]
    fn decisions_are_deterministic(paths in arb_paths(), k in 0u64..10_000) {
        // Same state + same input → same decision for every scheduler.
        for kind in SchedulerKind::paper_set() {
            let input = SchedInput { paths: &paths, queued_pkts: k, send_window_free_pkts: 4096 };
            let a = kind.build().select(&input);
            let b = kind.build().select(&input);
            prop_assert_eq!(a, b, "{} not deterministic", kind.label());
        }
    }
}
