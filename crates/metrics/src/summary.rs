//! Streaming summary statistics.

/// Welford-style online mean/variance accumulator.
///
/// Used both for run-level reporting and inside the TCP model's RTT σ
/// estimate that ECF's δ margin consumes.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Mean of a slice (0 if empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice (0 if < 2 elements).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn matches_batch_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_xs = [1.0, 2.0, 3.5, 9.0];
        let b_xs = [0.5, 4.0, 4.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &x in &a_xs {
            a.push(x);
            all.push(x);
        }
        for &x in &b_xs {
            b.push(x);
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        a.push(5.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(7.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 7.0);
    }
}
