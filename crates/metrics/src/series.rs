//! Time series collection.
//!
//! Used by the trace experiments: CWND over time (Figs 11, 12), send-buffer
//! occupancy (Fig 3), cumulative download amount (Fig 1), per-chunk
//! throughput (Fig 17).

/// A `(t, value)` series in seconds.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Samples in insertion order; time should be non-decreasing.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append one sample.
    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value at or before `t` (step interpolation), or `None` before the
    /// first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Downsample to at most `max_points` by keeping every k-th point
    /// (always keeping the last). For readable text reports of long traces.
    pub fn thin(&self, max_points: usize) -> TimeSeries {
        assert!(max_points >= 2);
        if self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut points: Vec<(f64, f64)> =
            self.points.iter().step_by(stride).copied().collect();
        if points.last() != self.points.last() {
            points.push(*self.points.last().expect("non-empty"));
        }
        TimeSeries { points }
    }

    /// Mean of the values (0 if empty).
    pub fn mean_value(&self) -> f64 {
        crate::summary::mean(&self.points.iter().map(|&(_, v)| v).collect::<Vec<_>>())
    }

    /// Render as `t<TAB>value` lines with the given float precision.
    pub fn to_tsv(&self, precision: usize) -> String {
        let mut out = String::new();
        for &(t, v) in &self.points {
            out.push_str(&format!("{t:.precision$}\t{v:.precision$}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        let mut s = TimeSeries::new();
        for i in 0..n {
            s.push(i as f64, (i * 2) as f64);
        }
        s
    }

    #[test]
    fn value_at_steps() {
        let s = ramp(10);
        assert_eq!(s.value_at(-1.0), None);
        assert_eq!(s.value_at(0.0), Some(0.0));
        assert_eq!(s.value_at(3.5), Some(6.0));
        assert_eq!(s.value_at(100.0), Some(18.0));
    }

    #[test]
    fn thin_keeps_endpoints() {
        let s = ramp(1000);
        let t = s.thin(50);
        assert!(t.len() <= 51);
        assert_eq!(t.points[0], s.points[0]);
        assert_eq!(t.points.last(), s.points.last());
    }

    #[test]
    fn thin_noop_when_small() {
        let s = ramp(5);
        assert_eq!(s.thin(10).len(), 5);
    }

    #[test]
    fn tsv_format() {
        let mut s = TimeSeries::new();
        s.push(1.25, 3.5);
        assert_eq!(s.to_tsv(2), "1.25\t3.50\n");
    }

    #[test]
    fn mean_value() {
        assert_eq!(ramp(3).mean_value(), 2.0);
        assert_eq!(TimeSeries::new().mean_value(), 0.0);
    }
}
