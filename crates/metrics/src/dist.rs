//! Empirical distributions: CDF / CCDF over collected samples.
//!
//! The paper reports most per-packet results as CDFs (Fig 5) or log-scale
//! CCDFs (Figs 13, 14, 20, 21, 23). [`Cdf`] owns a sorted sample vector and
//! answers the quantile / tail-probability queries those plots are built from.

/// An empirical distribution over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs are discarded).
    pub fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.retain(|x| !x.is_nan());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Cdf { sorted: xs }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// P(X > x) — the CCDF the paper plots on log axes.
    pub fn ccdf_at(&self, x: f64) -> f64 {
        1.0 - self.cdf_at(x)
    }

    /// The q-quantile (q in [0,1]) by nearest-rank; 0 for an empty set.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        crate::summary::mean(&self.sorted)
    }

    /// Largest sample (0 for an empty set).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Evaluate the CCDF at `n` evenly spaced points across `[0, hi]`,
    /// returning `(x, ccdf(x))` rows ready for printing/plotting.
    pub fn ccdf_series(&self, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two points");
        (0..n)
            .map(|i| {
                let x = hi * i as f64 / (n - 1) as f64;
                (x, self.ccdf_at(x))
            })
            .collect()
    }

    /// Evaluate the CDF at `n` evenly spaced points across `[0, hi]`.
    pub fn cdf_series(&self, hi: f64, n: usize) -> Vec<(f64, f64)> {
        self.ccdf_series(hi, n).into_iter().map(|(x, c)| (x, 1.0 - c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Cdf {
        Cdf::from_samples((1..=100).map(f64::from).collect())
    }

    #[test]
    fn cdf_endpoints() {
        let c = unit();
        assert_eq!(c.cdf_at(0.0), 0.0);
        assert_eq!(c.cdf_at(100.0), 1.0);
        assert_eq!(c.ccdf_at(100.0), 0.0);
        assert!((c.cdf_at(50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let c = unit();
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.quantile(0.99), 99.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_safe() {
        let c = Cdf::from_samples(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.median(), 0.0);
        assert_eq!(c.cdf_at(1.0), 0.0);
        assert_eq!(c.max(), 0.0);
    }

    #[test]
    fn nan_discarded() {
        let c = Cdf::from_samples(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.max(), 3.0);
    }

    #[test]
    fn series_shapes() {
        let c = unit();
        let s = c.ccdf_series(100.0, 11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10].0, 100.0);
        // Monotone non-increasing.
        for w in s.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        let cs = c.cdf_series(100.0, 11);
        for (a, b) in s.iter().zip(&cs) {
            assert!((a.1 + b.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unsorted_input_ok() {
        let c = Cdf::from_samples(vec![5.0, 1.0, 3.0]);
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.max(), 5.0);
    }
}
