//! # metrics — measurement and reporting utilities
//!
//! Everything the experiment harness needs to turn raw simulation events into
//! the rows, CDFs and heatmaps the paper reports:
//!
//! * [`OnlineStats`] — streaming mean/σ (also used for RTT deviation inside
//!   the transport model),
//! * [`Cdf`] — empirical CDF/CCDF queries for the per-packet delay figures,
//! * [`TimeSeries`] — CWND / buffer / throughput traces,
//! * [`render_table`] / [`Heatmap`] — plain-text report rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod series;
mod summary;
mod table;

pub use dist::Cdf;
pub use series::TimeSeries;
pub use summary::{mean, stddev, OnlineStats};
pub use table::{render_table, Heatmap};
