//! Text rendering for experiment reports: aligned tables and the grey-scale
//! heatmaps the paper uses for Figs 2, 9, 15 and 19.

/// Render rows as an aligned plain-text table with a header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// A labelled 2-D grid of values, rendered both numerically and as a
/// grey-scale glyph map (darker = higher), mirroring the paper's heatmaps.
pub struct Heatmap {
    /// Label of the x axis (columns).
    pub x_label: String,
    /// Label of the y axis (rows).
    pub y_label: String,
    /// Column tick labels.
    pub x_ticks: Vec<String>,
    /// Row tick labels.
    pub y_ticks: Vec<String>,
    /// `values[row][col]`.
    pub values: Vec<Vec<f64>>,
    /// Value mapped to the lightest glyph.
    pub lo: f64,
    /// Value mapped to the darkest glyph.
    pub hi: f64,
}

const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

impl Heatmap {
    /// Glyph for a value in `[lo, hi]`.
    fn shade(&self, v: f64) -> char {
        if !v.is_finite() {
            return '?';
        }
        let t = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = (t * (SHADES.len() - 1) as f64).round() as usize;
        SHADES[idx]
    }

    /// Render the numeric grid followed by the glyph map.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("rows: {}   cols: {}\n", self.y_label, self.x_label));

        let mut header = vec![""];
        let ticks: Vec<&str> = self.x_ticks.iter().map(String::as_str).collect();
        header.extend(ticks);
        let rows: Vec<Vec<String>> = self
            .y_ticks
            .iter()
            .zip(&self.values)
            .map(|(ytick, row)| {
                let mut cells = vec![ytick.clone()];
                cells.extend(row.iter().map(|v| format!("{v:.2}")));
                cells
            })
            .collect();
        out.push_str(&render_table(&header, &rows));

        out.push('\n');
        for (ytick, row) in self.y_ticks.iter().zip(&self.values) {
            let glyphs: String =
                row.iter().flat_map(|&v| [self.shade(v), ' ']).collect();
            out.push_str(&format!("{ytick:>6} |{glyphs}|\n"));
        }
        out.push_str(&format!(
            "        (glyph scale: ' '={} .. '@'={}, darker is higher)\n",
            self.lo, self.hi
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let s = render_table(
            &["a", "bbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbb"));
        assert!(lines[2].ends_with("  2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_jagged_rows() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    fn map() -> Heatmap {
        Heatmap {
            x_label: "x".into(),
            y_label: "y".into(),
            x_ticks: vec!["0.3".into(), "8.6".into()],
            y_ticks: vec!["0.3".into(), "8.6".into()],
            values: vec![vec![0.0, 0.5], vec![1.0, f64::NAN]],
            lo: 0.0,
            hi: 1.0,
        }
    }

    #[test]
    fn heatmap_shades_extremes() {
        let h = map();
        assert_eq!(h.shade(0.0), ' ');
        assert_eq!(h.shade(1.0), '@');
        assert_eq!(h.shade(2.0), '@'); // clamped
        assert_eq!(h.shade(f64::NAN), '?');
    }

    #[test]
    fn heatmap_renders_all_rows() {
        let r = map().render();
        assert!(r.contains("0.3"));
        assert!(r.contains('@'));
        assert!(r.contains('?'));
        assert!(r.contains("darker is higher"));
    }
}
