//! Edge-case coverage for the measurement utilities: empty and single-sample
//! distributions must not panic and must return their documented values
//! (0 for every statistic of an empty set; the sample itself for every
//! order statistic of a singleton).

use metrics::{mean, stddev, Cdf, OnlineStats};
use testkit::prop::{check, vec_of};

#[test]
fn empty_cdf_returns_documented_zeroes() {
    let c = Cdf::from_samples(Vec::new());
    assert!(c.is_empty());
    assert_eq!(c.len(), 0);
    // Every quantile of an empty distribution is the documented 0.
    for q in [0.0, 0.25, 0.5, 0.75, 0.999, 1.0] {
        assert_eq!(c.quantile(q), 0.0, "quantile({q})");
    }
    assert_eq!(c.median(), 0.0);
    assert_eq!(c.mean(), 0.0);
    assert_eq!(c.max(), 0.0);
    assert_eq!(c.cdf_at(0.0), 0.0);
    assert_eq!(c.ccdf_at(0.0), 1.0);
    // Series evaluation stays well-formed on no data.
    let s = c.ccdf_series(10.0, 5);
    assert_eq!(s.len(), 5);
    assert!(s.iter().all(|&(_, p)| p == 1.0));
}

#[test]
fn all_nan_input_collapses_to_empty() {
    let c = Cdf::from_samples(vec![f64::NAN, f64::NAN]);
    assert!(c.is_empty());
    assert_eq!(c.quantile(0.5), 0.0);
}

#[test]
fn single_sample_cdf_is_a_step_function() {
    let c = Cdf::from_samples(vec![3.5]);
    assert_eq!(c.len(), 1);
    // Every quantile of a singleton is the sample itself.
    for q in [0.0, 0.001, 0.5, 0.95, 1.0] {
        assert_eq!(c.quantile(q), 3.5, "quantile({q})");
    }
    assert_eq!(c.median(), 3.5);
    assert_eq!(c.mean(), 3.5);
    assert_eq!(c.max(), 3.5);
    // Step at the sample: P(X ≤ x) jumps 0 → 1 exactly at 3.5.
    assert_eq!(c.cdf_at(3.4), 0.0);
    assert_eq!(c.cdf_at(3.5), 1.0);
    assert_eq!(c.ccdf_at(3.5), 0.0);
    assert_eq!(c.ccdf_at(3.6), 0.0);
}

#[test]
fn empty_summary_stats_are_zero() {
    let s = OnlineStats::new();
    assert_eq!(s.count(), 0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!(s.variance(), 0.0);
    assert_eq!(s.stddev(), 0.0);
    assert_eq!(s.min(), 0.0);
    assert_eq!(s.max(), 0.0);
    assert_eq!(mean(&[]), 0.0);
    assert_eq!(stddev(&[]), 0.0);
}

#[test]
fn single_sample_summary_is_degenerate() {
    let mut s = OnlineStats::new();
    s.push(-2.5);
    assert_eq!(s.count(), 1);
    assert_eq!(s.mean(), -2.5);
    // Variance of a single observation is documented as 0, not NaN.
    assert_eq!(s.variance(), 0.0);
    assert_eq!(s.stddev(), 0.0);
    assert_eq!(s.min(), -2.5);
    assert_eq!(s.max(), -2.5);
    assert_eq!(mean(&[-2.5]), -2.5);
    assert_eq!(stddev(&[-2.5]), 0.0);
}

#[test]
fn quantiles_are_monotone_and_within_sample_range() {
    // Property sweep: for any non-empty sample set, quantiles are monotone
    // in q and bounded by the sample extremes — including the singleton case.
    check(128, vec_of(-1_000.0f64..1_000.0, 1..40), |xs| {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let c = Cdf::from_samples(xs);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = c.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            assert!((lo..=hi).contains(&v), "quantile({q})={v} outside [{lo}, {hi}]");
            prev = v;
        }
    });
}
