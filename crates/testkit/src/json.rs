//! Minimal JSON reader plus a canonical writer.
//!
//! Just enough of RFC 8259 to validate and inspect the machine-readable
//! benchmark results (`BENCH.json`) and experiment-matrix artifacts
//! without a registry dependency: the full value grammar is parsed
//! (objects, arrays, strings with escapes, numbers, booleans, null),
//! numbers are read as `f64`, and trailing garbage after the document is
//! an error. [`canonical`] is the inverse direction: a deterministic
//! serialization (sorted keys, no whitespace, shortest round-tripping
//! number form) such that any two documents that parse to the same value
//! serialize to the same bytes — the property the experiment matrix's
//! content-addressed cache keys rely on. The human-facing writer side for
//! benches lives in [`crate::bench::write_json_results`].

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object; keys ordered for deterministic iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Serialize a value canonically: object keys sorted (the [`BTreeMap`]
/// order), no whitespace, strings minimally escaped, numbers in Rust's
/// shortest round-tripping `Display` form. Two documents with the same
/// parsed value always canonicalize to identical bytes, so a digest of
/// this string is invariant under key reordering and reformatting.
///
/// Non-finite numbers have no JSON form; they serialize as `null` (and
/// are rejected upstream by writers that care).
pub fn canonical(v: &Value) -> String {
    let mut out = String::new();
    write_canonical(v, &mut out);
    out
}

fn write_canonical(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                // `{}` on f64 is the shortest string that parses back to
                // the same bits — canonical and lossless.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_canonical(val, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xc0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError { message: format!("bad number '{text}'"), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"schema": 1, "ok": true, "results": [{"name": "a/b", "rate": 1.5e6}], "x": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results[0].get("name").and_then(Value::as_str), Some("a/b"));
        assert_eq!(results[0].get("rate").and_then(Value::as_f64), Some(1.5e6));
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c
d""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("[1 2]").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse("-12.5").unwrap().as_f64(), Some(-12.5));
        assert_eq!(parse("3e2").unwrap().as_f64(), Some(300.0));
    }

    #[test]
    fn canonical_is_layout_invariant() {
        let messy = "{\n  \"b\": [1, 2.5, true],\t\"a\": {\"z\": null, \"y\": \"s\"}\n}";
        let tidy = r#"{"a":{"y":"s","z":null},"b":[1,2.5,true]}"#;
        assert_eq!(canonical(&parse(messy).unwrap()), tidy);
        // Canonicalization is idempotent: parse(canonical(v)) == v.
        assert_eq!(canonical(&parse(tidy).unwrap()), tidy);
    }

    #[test]
    fn canonical_numbers_round_trip() {
        for n in [0.0, -0.0, 5.0, 0.3, 1.0 / 3.0, 1e-12, 123456789.125] {
            let c = canonical(&Value::Number(n));
            let back = parse(&c).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "lossy canonical form {c}");
        }
        assert_eq!(canonical(&Value::Number(f64::NAN)), "null");
    }

    #[test]
    fn canonical_escapes_reparse() {
        let v = Value::String("a\"b\\c\nd\u{1}e".to_string());
        let c = canonical(&v);
        assert_eq!(parse(&c).unwrap(), v);
    }

    #[test]
    fn accessors_cover_new_variants() {
        let v = parse(r#"{"flag": true, "obj": {"k": 1}}"#).unwrap();
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert!(v.as_object().unwrap().contains_key("obj"));
        assert_eq!(v.get("obj").and_then(Value::as_bool), None);
    }
}
