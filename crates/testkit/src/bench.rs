//! Criterion-lite benchmark runner.
//!
//! Mirrors the slice of the Criterion API the workspace's bench harnesses
//! use — `Criterion::default()`, `benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — so a bench file ports by swapping its `use`
//! line. Each benchmark is calibrated so one sample runs long enough to be
//! measurable, then reports the median and p95 per-iteration time.
//!
//! Setting `TESTKIT_BENCH_SMOKE=1` collapses every benchmark to a single
//! iteration: `scripts/verify.sh` uses this to prove the harnesses still
//! *run* without paying measurement-grade runtime.

use std::time::{Duration, Instant};

/// Re-export so bench files can use one import path for everything.
pub use std::hint::black_box;

/// Environment variable that turns benches into 1-iteration smoke runs.
pub const ENV_SMOKE: &str = "TESTKIT_BENCH_SMOKE";

/// Target wall-clock time for one measured sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn smoke_mode() -> bool {
    std::env::var(ENV_SMOKE).map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Top-level bench context (Criterion-shaped).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` measures the workload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Measured per-iteration times in nanoseconds, one per sample.
    sample_ns: Vec<f64>,
    calibrating: bool,
}

impl Bencher {
    /// Measure `f`, running it enough times per sample to be timeable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // One timed iteration decides the batch size for real samples.
            let t0 = Instant::now();
            black_box(f());
            let elapsed = t0.elapsed().max(Duration::from_nanos(1));
            let per_iter = elapsed.as_secs_f64();
            let target = TARGET_SAMPLE.as_secs_f64();
            self.iters_per_sample = ((target / per_iter).ceil() as u64).clamp(1, 1_000_000);
            return;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.sample_ns.push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    if smoke_mode() {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: 1,
            sample_ns: Vec::new(),
            calibrating: false,
        };
        f(&mut b);
        println!("bench {name}: ok (smoke, 1 iteration)");
        return;
    }

    // Calibration pass: size the batch so a sample is ~TARGET_SAMPLE long.
    let mut cal = Bencher {
        iters_per_sample: 1,
        samples: 0,
        sample_ns: Vec::new(),
        calibrating: true,
    };
    f(&mut cal);

    let mut b = Bencher {
        iters_per_sample: cal.iters_per_sample,
        samples: sample_size.max(1),
        sample_ns: Vec::new(),
        calibrating: false,
    };
    f(&mut b);

    if b.sample_ns.is_empty() {
        println!("bench {name}: no measurement (closure never called iter)");
        return;
    }
    b.sample_ns.sort_by(|a, x| a.partial_cmp(x).expect("finite timings"));
    let median = percentile(&b.sample_ns, 0.50);
    let p95 = percentile(&b.sample_ns, 0.95);
    println!(
        "bench {name}: median {}, p95 {} ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(p95),
        b.sample_ns.len(),
        b.iters_per_sample,
    );
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a bench group function, Criterion-style. Both invocation forms are
/// supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default();
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::bench::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a `harness = false` bench target. Ignores the CLI
/// arguments Cargo forwards (`--bench`, filters): every group always runs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Make the macros importable from the module path bench files already use:
// `use testkit::bench::{criterion_group, criterion_main, Criterion};`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        // Calibration + 3 samples all invoked the closure.
        assert!(calls > 3);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.95), 4.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 us");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
