//! Criterion-lite benchmark runner.
//!
//! Mirrors the slice of the Criterion API the workspace's bench harnesses
//! use — `Criterion::default()`, `benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — so a bench file ports by swapping its `use`
//! line. Each benchmark is calibrated so one sample runs long enough to be
//! measurable, then reports the median and p95 per-iteration time.
//!
//! Setting `TESTKIT_BENCH_SMOKE=1` collapses every benchmark to a single
//! iteration: `scripts/verify.sh` uses this to prove the harnesses still
//! *run* without paying measurement-grade runtime.
//!
//! Setting `TESTKIT_BENCH_FILTER=<regex>` runs only the benchmarks whose
//! full name (`group/id`) matches the pattern — `scripts/bench_update.sh
//! --filter` uses this for partial BENCH.json regeneration. The pattern
//! language is the in-tree [`regex_lite`] subset (literals, `.`, `*`, `+`,
//! `?`, `|`, `(...)`, `[...]` classes, `^`/`$` anchors; unanchored search
//! otherwise). Bench files with expensive shared setup can consult
//! [`name_enabled`] before building workloads for benchmarks the filter
//! would skip anyway.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export so bench files can use one import path for everything.
pub use std::hint::black_box;

/// Environment variable that turns benches into 1-iteration smoke runs.
pub const ENV_SMOKE: &str = "TESTKIT_BENCH_SMOKE";

/// Environment variable holding a [`regex_lite`] pattern; when set, only
/// benchmarks whose full name matches it are run.
pub const ENV_FILTER: &str = "TESTKIT_BENCH_FILTER";

/// Environment variable naming a file to write machine-readable results to.
/// When set, `criterion_main!` writes every benchmark's measurements as a
/// JSON document (see [`write_json_results`]) after all groups have run.
pub const ENV_JSON: &str = "TESTKIT_BENCH_JSON";

/// Workload size of one benchmark iteration, used to derive rates
/// (Criterion-shaped; only the variants the workspace needs).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// One iteration processes this many elements (e.g. simulator events);
    /// results then also report elements per second.
    Elements(u64),
}

/// One benchmark's measurements, as recorded for JSON emission.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name ("group/id").
    pub name: String,
    /// Median per-iteration wall time, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration wall time, nanoseconds.
    pub p95_ns: f64,
    /// Number of measured samples.
    pub samples: usize,
    /// Iterations batched per sample.
    pub iters_per_sample: u64,
    /// Elements processed per iteration, when declared via [`Throughput`].
    pub elements_per_iter: Option<u64>,
    /// Derived rate: `elements_per_iter / median`, per second.
    pub elements_per_sec: Option<f64>,
    /// Worker threads the workload ran on, when declared via
    /// [`BenchmarkGroup::workers`] (sharded sweeps record this so a tracked
    /// number is comparable across machines and `TESTKIT_WORKERS` settings).
    pub workers: Option<usize>,
    /// True when the run was a 1-iteration smoke pass (timings are noise).
    pub smoke: bool,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_result(r: BenchResult) {
    results().lock().expect("bench results lock").push(r);
}

/// Snapshot of every result recorded so far in this process.
pub fn recorded_results() -> Vec<BenchResult> {
    results().lock().expect("bench results lock").clone()
}

/// If [`ENV_JSON`] is set, write all recorded results there as JSON.
/// Called by `criterion_main!` once every group has run.
pub fn write_json_if_requested() {
    if let Ok(path) = std::env::var(ENV_JSON) {
        if !path.is_empty() {
            write_json_results(&path).unwrap_or_else(|e| {
                eprintln!("bench: failed to write {path}: {e}");
                std::process::exit(1);
            });
        }
    }
}

/// Serialize the recorded results to `path`.
///
/// Schema (stable; consumed by `BENCH.json` tooling and `scripts/verify.sh`):
///
/// ```json
/// {
///   "schema": 1,
///   "smoke": false,
///   "results": [
///     {"name": "sim_throughput/streaming_0.3_8.6", "median_ns": 1.0,
///      "p95_ns": 1.2, "samples": 30, "iters_per_sample": 1,
///      "elements_per_iter": 100, "elements_per_sec": 1.0e8}
///   ]
/// }
/// ```
pub fn write_json_results(path: &str) -> std::io::Result<()> {
    let all = recorded_results();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"results\": [");
    for (i, r) in all.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"name\": {}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}",
            json_string(&r.name),
            r.median_ns,
            r.p95_ns,
            r.samples,
            r.iters_per_sample,
        ));
        if let (Some(n), Some(rate)) = (r.elements_per_iter, r.elements_per_sec) {
            out.push_str(&format!(
                ", \"elements_per_iter\": {n}, \"elements_per_sec\": {rate:.1}"
            ));
        }
        if let Some(w) = r.workers {
            out.push_str(&format!(", \"workers\": {w}"));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Target wall-clock time for one measured sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn smoke_mode() -> bool {
    std::env::var(ENV_SMOKE).map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// The compiled [`ENV_FILTER`] pattern (`None` when unset/empty). A bad
/// pattern aborts the bench process with a message — silently running
/// everything would defeat a partial `bench_update.sh` run, and silently
/// running nothing would corrupt the merge.
fn bench_filter() -> Option<&'static crate::regex_lite::Regex> {
    static FILTER: OnceLock<Option<crate::regex_lite::Regex>> = OnceLock::new();
    FILTER
        .get_or_init(|| {
            let pat = std::env::var(ENV_FILTER).unwrap_or_default();
            if pat.is_empty() {
                return None;
            }
            match crate::regex_lite::Regex::new(&pat) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("bench: bad {ENV_FILTER} pattern {pat:?}: {e}");
                    std::process::exit(2);
                }
            }
        })
        .as_ref()
}

/// True when benchmark `name` would run under the current [`ENV_FILTER`].
/// Bench files use this to skip expensive shared setup (workload
/// construction, warm-up runs) for benchmarks the filter excludes.
pub fn name_enabled(name: &str) -> bool {
    bench_filter().is_none_or(|f| f.is_match(name))
}

/// Top-level bench context (Criterion-shaped).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            workers: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, None, None, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    workers: Option<usize>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration workload of subsequent benchmarks in this
    /// group, so results also report a rate (e.g. events per second).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Record the worker-thread count of subsequent benchmarks in this
    /// group (emitted alongside the timings in the JSON results).
    pub fn workers(&mut self, w: usize) -> &mut Self {
        self.workers = Some(w);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            self.workers,
            f,
        );
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` measures the workload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Measured per-iteration times in nanoseconds, one per sample.
    sample_ns: Vec<f64>,
    calibrating: bool,
}

impl Bencher {
    /// Measure `f`, running it enough times per sample to be timeable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // One timed iteration decides the batch size for real samples.
            let t0 = Instant::now();
            black_box(f());
            let elapsed = t0.elapsed().max(Duration::from_nanos(1));
            let per_iter = elapsed.as_secs_f64();
            let target = TARGET_SAMPLE.as_secs_f64();
            self.iters_per_sample = ((target / per_iter).ceil() as u64).clamp(1, 1_000_000);
            return;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.sample_ns.push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    workers: Option<usize>,
    mut f: F,
) {
    if !name_enabled(name) {
        println!("bench {name}: skipped (filter)");
        return;
    }
    if smoke_mode() {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: 1,
            sample_ns: Vec::new(),
            calibrating: false,
        };
        f(&mut b);
        let median = b.sample_ns.first().copied().unwrap_or(0.0);
        record_result(make_result(name, median, median, 1, 1, throughput, workers, true));
        println!("bench {name}: ok (smoke, 1 iteration)");
        return;
    }

    // Calibration pass: size the batch so a sample is ~TARGET_SAMPLE long.
    let mut cal = Bencher {
        iters_per_sample: 1,
        samples: 0,
        sample_ns: Vec::new(),
        calibrating: true,
    };
    f(&mut cal);

    let mut b = Bencher {
        iters_per_sample: cal.iters_per_sample,
        samples: sample_size.max(1),
        sample_ns: Vec::new(),
        calibrating: false,
    };
    f(&mut b);

    if b.sample_ns.is_empty() {
        println!("bench {name}: no measurement (closure never called iter)");
        return;
    }
    b.sample_ns.sort_by(|a, x| a.partial_cmp(x).expect("finite timings"));
    let median = percentile(&b.sample_ns, 0.50);
    let p95 = percentile(&b.sample_ns, 0.95);
    let result = make_result(
        name,
        median,
        p95,
        b.sample_ns.len(),
        b.iters_per_sample,
        throughput,
        workers,
        false,
    );
    let rate = match result.elements_per_sec {
        Some(r) => format!(", {r:.3e} elem/s"),
        None => String::new(),
    };
    record_result(result);
    println!(
        "bench {name}: median {}, p95 {} ({} samples x {} iters{rate})",
        fmt_ns(median),
        fmt_ns(p95),
        b.sample_ns.len(),
        b.iters_per_sample,
    );
}

#[allow(clippy::too_many_arguments)]
fn make_result(
    name: &str,
    median_ns: f64,
    p95_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
    workers: Option<usize>,
    smoke: bool,
) -> BenchResult {
    let elements_per_iter = throughput.map(|Throughput::Elements(n)| n);
    let elements_per_sec =
        elements_per_iter.map(|n| n as f64 / (median_ns.max(1.0) / 1e9));
    BenchResult {
        name: name.to_string(),
        median_ns,
        p95_ns,
        samples,
        iters_per_sample,
        elements_per_iter,
        elements_per_sec,
        workers,
        smoke,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a bench group function, Criterion-style. Both invocation forms are
/// supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default();
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::bench::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a `harness = false` bench target. Ignores the CLI
/// arguments Cargo forwards (`--bench`, filters): every group always runs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::bench::write_json_if_requested();
        }
    };
}

// Make the macros importable from the module path bench files already use:
// `use testkit::bench::{criterion_group, criterion_main, Criterion};`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        if smoke_mode() {
            // `TESTKIT_BENCH_SMOKE=1 scripts/verify.sh` exports the smoke
            // flag into the test phase too: exactly one iteration runs.
            assert_eq!(calls, 1);
        } else {
            // Calibration + 3 samples all invoked the closure.
            assert!(calls > 3);
        }
    }

    #[test]
    fn name_enabled_defaults_to_true() {
        // Only meaningful when the outer harness didn't set the filter env
        // var (the OnceLock makes a set-and-unset dance racy across tests).
        if std::env::var(ENV_FILTER).unwrap_or_default().is_empty() {
            assert!(name_enabled("anything/at_all"));
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.95), 4.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
    }

    #[test]
    fn results_are_recorded_with_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("jsontest");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("spin", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        let rec = recorded_results();
        let r = rec
            .iter()
            .find(|r| r.name == "jsontest/spin")
            .expect("result recorded");
        assert_eq!(r.elements_per_iter, Some(1000));
        let rate = r.elements_per_sec.expect("rate derived");
        assert!(rate > 0.0 && rate.is_finite());
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut c = Criterion::default();
        c.benchmark_group("jsonfile").sample_size(2).bench_function("noop", |b| {
            b.iter(|| black_box(1))
        });
        let path = std::env::temp_dir().join("testkit-bench-selftest.json");
        let path = path.to_str().expect("utf8 temp path");
        write_json_results(path).expect("write json");
        let text = std::fs::read_to_string(path).expect("read back");
        let value = crate::json::parse(&text).expect("parses as JSON");
        let results = value
            .get("results")
            .and_then(|r| r.as_array())
            .expect("results array");
        assert!(!results.is_empty());
        assert_eq!(
            value.get("schema").and_then(crate::json::Value::as_f64),
            Some(1.0)
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 us");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
