//! # testkit — hermetic test substrate for the workspace
//!
//! Everything the workspace previously pulled from crates.io for testing —
//! `rand`, `proptest`, `criterion` — reimplemented in-tree so the whole
//! repository builds and tests with **no network access**. The hermetic
//! policy (DESIGN.md) is a correctness feature, not a convenience: the
//! reproduction's claims rest on runs being pure functions of
//! (config, seed), which requires owning the PRNG stream, and on a test
//! substrate that cannot drift because a registry dependency changed.
//!
//! Three modules:
//!
//! * [`rng`] — seedable xoshiro256** PRNG (SplitMix64 seeding) with
//!   `gen_range`, `gen_bool`, `f64`, and `shuffle`. Used by the simulator's
//!   stochastic components (link jitter/loss, rate schedules, wild paths,
//!   page models) and by tests.
//! * [`prop`] — property-testing harness: generator combinators, greedy
//!   shrinking, and `TESTKIT_SEED=<n>` replay of a failing case.
//! * [`bench`] — Criterion-lite runner (calibrated batches, median/p95
//!   report, `TESTKIT_BENCH_SMOKE=1` smoke mode) behind the same
//!   `criterion_group!`/`criterion_main!` macro surface. With
//!   `TESTKIT_BENCH_JSON=<path>` set, results are also written as JSON
//!   (the `BENCH.json` perf-trajectory format).
//! * [`json`] — a minimal JSON reader plus a canonical (sorted-key,
//!   whitespace-free, round-tripping) writer used to validate bench
//!   results and to content-address experiment-matrix cache entries.
//! * [`digest`] — streaming FNV-1a 64-bit digests, shared by the golden
//!   regression tests and the experiment matrix's cache keys.
//! * [`regex_lite`] — a small regex matcher (literals, classes, `*`/`+`/`?`,
//!   alternation, anchors) backing the benchmark-name filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod digest;
pub mod json;
pub mod prop;
pub mod regex_lite;
pub mod rng;

pub use rng::Rng;
