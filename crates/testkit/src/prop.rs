//! Minimal property-testing harness (proptest replacement).
//!
//! A property is a plain function over a generated input; the harness runs it
//! for a configurable number of cases, each derived from a per-case seed, and
//! on failure greedily shrinks the input before reporting. The panic message
//! always contains `TESTKIT_SEED=<n>`; exporting that variable re-runs *only*
//! the failing case, regenerating the identical input:
//!
//! ```text
//! TESTKIT_SEED=12345 cargo test -p ecf-core --test prop failing_case_name
//! ```
//!
//! Design notes:
//!
//! * Case seeds are drawn from a fixed master seed, so runs are fully
//!   deterministic: CI and a laptop see the same inputs. There is no
//!   persistence file; a regression caught once should be promoted to a
//!   named unit test.
//! * Generators are value-level combinators implementing [`Gen`]: integer
//!   and float ranges, booleans, choices from a slice, fixed values,
//!   vectors, and tuples (up to arity 6). Shrinking walks candidates from
//!   each combinator greedily — smaller vectors first, then element-wise,
//!   numbers toward the range start.
//! * Build composite inputs from tuples/vectors of primitives and assemble
//!   structs *inside* the property body; that keeps shrinking effective.
//!   [`map`] exists for convenience but cannot shrink through the mapping.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// Environment variable that replays a single failing case.
pub const ENV_SEED: &str = "TESTKIT_SEED";

/// Fixed master seed: runs are deterministic unless `TESTKIT_SEED` is set.
const MASTER_SEED: u64 = 0xECF_C0DE_2017;

/// Harness configuration. [`check`] uses the defaults with an explicit case
/// count; [`check_with`] takes the full struct.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Master seed the per-case seeds are drawn from.
    pub seed: u64,
    /// Upper bound on accepted shrink steps (each step may probe several
    /// candidates).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, seed: MASTER_SEED, max_shrink_steps: 200 }
    }
}

/// A value generator with optional shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Produce one value from the generator's distribution.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `v`, "smallest" first. An empty vector
    /// means the value cannot shrink further.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Run `prop` against `cases` generated inputs (default config otherwise).
pub fn check<G: Gen>(cases: u32, gen: G, prop: impl Fn(G::Value)) {
    check_with(Config { cases, ..Config::default() }, gen, prop);
}

/// Run a property with explicit configuration.
pub fn check_with<G: Gen>(cfg: Config, gen: G, prop: impl Fn(G::Value)) {
    if let Ok(var) = std::env::var(ENV_SEED) {
        let seed: u64 = var
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{ENV_SEED} must be a u64, got {var:?}"));
        let value = gen.generate(&mut Rng::seed_from_u64(seed));
        eprintln!("{ENV_SEED}={seed}: replaying single case with input {value:?}");
        if let Err(msg) = run_case(&prop, value.clone()) {
            report_failure(&cfg, &gen, &prop, value, msg, seed, 0);
        }
        return;
    }

    let mut master = Rng::seed_from_u64(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = master.next_u64();
        let value = gen.generate(&mut Rng::seed_from_u64(case_seed));
        if let Err(msg) = run_case(&prop, value.clone()) {
            report_failure(&cfg, &gen, &prop, value, msg, case_seed, case);
        }
    }
}

/// Shrink greedily, then panic with the replay seed and minimal input.
fn report_failure<G: Gen>(
    cfg: &Config,
    gen: &G,
    prop: &impl Fn(G::Value),
    value: G::Value,
    msg: String,
    case_seed: u64,
    case: u32,
) -> ! {
    let mut cur = value;
    let mut cur_msg = msg;
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrink(&cur) {
            if let Err(m) = run_case(prop, cand.clone()) {
                cur = cand;
                cur_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    panic!(
        "property failed on case {case} (replay: {ENV_SEED}={case_seed})\n\
         minimal input after {steps} shrink steps: {cur:?}\n\
         failure: {cur_msg}"
    );
}

/// Run one case, converting a panic into its message.
fn run_case<V>(prop: &impl Fn(V), value: V) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Primitive generators
// ---------------------------------------------------------------------------

/// Shrink candidates for an integer `v` toward the range start: the start
/// itself, then binary jumps back toward `v` (`v - gap/2`, `v - gap/4`, …,
/// `v - 1`). Greedy shrinking over this ladder converges to a failure
/// boundary in O(log gap) accepted steps, never linearly.
fn int_shrink_candidates(lo: u64, v: u64) -> Vec<u64> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut d = (v - lo) / 2;
    while d > 0 {
        out.push(v - d);
        d /= 2;
    }
    out.dedup();
    out.retain(|&c| c != v);
    out
}

macro_rules! impl_int_gen {
    ($($t:ty),*) => {$(
        impl Gen for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink_candidates(self.start as u64, *v as u64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Gen for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink_candidates(*self.start() as u64, *v as u64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_gen!(u8, u16, u32, u64, usize);

impl Gen for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        let lo = self.start;
        // NaN (incomparable) must not shrink, same as v <= lo.
        if v.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mut d = (*v - lo) / 2.0;
        for _ in 0..40 {
            if d <= f64::EPSILON * v.abs().max(1.0) {
                break;
            }
            out.push(*v - d);
            d /= 2.0;
        }
        out.retain(|c| c != v);
        out
    }
}

/// Uniform over the whole `u64` domain (the `any::<u64>()` replacement).
pub fn any_u64() -> AnyU64 {
    AnyU64
}

/// See [`any_u64`].
#[derive(Debug, Clone, Copy)]
pub struct AnyU64;

impl Gen for AnyU64 {
    type Value = u64;
    fn generate(&self, rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        (0u64..u64::MAX).shrink(v)
    }
}

/// Fair coin (the `any::<bool>()` replacement); shrinks `true` → `false`.
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
#[derive(Debug, Clone, Copy)]
pub struct Bools;

impl Gen for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform pick from a fixed option set; shrinks toward earlier options.
pub fn choice<T: Clone + Debug + PartialEq>(options: &[T]) -> Choice<T> {
    assert!(!options.is_empty(), "choice() needs at least one option");
    Choice { options: options.to_vec() }
}

/// See [`choice`].
#[derive(Debug, Clone)]
pub struct Choice<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Gen for Choice<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        match self.options.iter().position(|o| o == v) {
            Some(idx) => self.options[..idx].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Always the same value.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    value: T,
}

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.value.clone()
    }
}

// ---------------------------------------------------------------------------
// Composite generators
// ---------------------------------------------------------------------------

/// Vector of `elem` values with a length drawn from `len` (half-open).
pub fn vec_of<G: Gen>(elem: G, len: std::ops::Range<usize>) -> VecOf<G> {
    assert!(len.start < len.end, "empty length range");
    VecOf { elem, len }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    len: std::ops::Range<usize>,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let min = self.len.start;
        let mut out: Vec<Vec<G::Value>> = Vec::new();
        // Structural shrinks first: shorter vectors fail faster.
        if v.len() > min {
            out.push(v[..min.max(v.len() / 2)].to_vec());
            out.push(v[..v.len() - 1].to_vec());
            out.push(v[1..].to_vec());
        }
        // Element-wise shrinks, bounded so candidate lists stay small; the
        // greedy outer loop revisits remaining elements on later steps.
        for (i, x) in v.iter().enumerate() {
            for cand in self.elem.shrink(x).into_iter().take(2) {
                let mut c = v.clone();
                c[i] = cand;
                out.push(c);
            }
            if out.len() >= 64 {
                break;
            }
        }
        out
    }
}

/// Apply `f` to generated values. Convenience only: shrinking cannot see
/// through the mapping, so prefer assembling structs inside the property.
pub fn map<G: Gen, T: Clone + Debug, F: Fn(G::Value) -> T>(gen: G, f: F) -> MapGen<G, F> {
    MapGen { gen, f }
}

/// See [`map`].
pub struct MapGen<G, F> {
    gen: G,
    f: F,
}

impl<G: Gen, T: Clone + Debug, F: Fn(G::Value) -> T> Gen for MapGen<G, F> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.gen.generate(rng))
    }
}

macro_rules! impl_tuple_gen {
    ($(($G:ident, $idx:tt)),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut c = v.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_gen!((A, 0));
impl_tuple_gen!((A, 0), (B, 1));
impl_tuple_gen!((A, 0), (B, 1), (C, 2));
impl_tuple_gen!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_gen!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_gen!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = AtomicU32::new(0);
        check(100, 0u64..50, |x| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(x < 50);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn failure_reports_seed_and_shrinks() {
        let err = catch_unwind(|| {
            check(200, (0u64..10_000, vec_of(0u32..100, 1..20)), |(x, v)| {
                assert!(x < 9_000 || v.len() < 3, "trip");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("TESTKIT_SEED="), "no replay seed in: {msg}");
        assert!(msg.contains("minimal input"), "no minimal input in: {msg}");
        // Greedy shrinking must reach the boundary: x == 9000, len == 3.
        assert!(msg.contains("(9000, [0, 0, 0])"), "not minimal: {msg}");
    }

    #[test]
    fn replay_seed_regenerates_the_same_input() {
        // The same (gen, case seed) pair always yields the same value — this
        // is what makes TESTKIT_SEED replay sound.
        let gen = (0u64..10_000, vec_of(0u32..100, 1..20));
        let a = gen.generate(&mut Rng::seed_from_u64(777));
        let b = gen.generate(&mut Rng::seed_from_u64(777));
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_deterministic_across_invocations() {
        let collect = || {
            let mut seen = Vec::new();
            // Interior mutability not needed: capture by reference.
            let seen_ref = std::cell::RefCell::new(&mut seen);
            check(50, 0u64..1_000_000, |x| {
                seen_ref.borrow_mut().push(x);
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn int_shrink_moves_toward_range_start() {
        let g = 5u64..100;
        let cands = g.shrink(&80);
        assert!(cands.contains(&5));
        assert!(cands.iter().all(|&c| (5..80).contains(&c)));
        assert!(g.shrink(&5).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let g = vec_of(0u32..10, 2..6);
        for cand in g.shrink(&vec![1, 2, 3, 4]) {
            assert!(cand.len() >= 2, "shrunk below min len: {cand:?}");
        }
    }

    #[test]
    fn choice_shrinks_to_earlier_options() {
        let g = choice(&[10, 20, 30]);
        assert_eq!(g.shrink(&30), vec![10, 20]);
        assert!(g.shrink(&10).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let g = (0u64..10, bools());
        let cands = g.shrink(&(4, true));
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(4, false)));
    }

    #[test]
    fn map_and_just_generate() {
        let g = map((1u64..5, 1u64..5), |(a, b)| a + b);
        let v = g.generate(&mut Rng::seed_from_u64(1));
        assert!((2..=8).contains(&v));
        assert_eq!(just(7u32).generate(&mut Rng::seed_from_u64(1)), 7);
    }
}
