//! Seedable, dependency-free PRNG: xoshiro256** seeded through SplitMix64.
//!
//! This replaces `rand::rngs::SmallRng` everywhere in the workspace. The
//! generator is *part of the reproduction's contract*: a simulation run is a
//! pure function of (config, seed), so the random stream must be identical
//! on every platform and toolchain. xoshiro256** is the same family SmallRng
//! wraps on 64-bit targets, has a 2^256−1 period, and passes BigCrush; the
//! SplitMix64 seeding matches the reference implementation by Blackman and
//! Vigna, so seeds with few set bits still produce well-mixed states.

/// SplitMix64 step: the recommended seed expander for xoshiro generators.
/// Exposed because a few tests use it directly as a tiny stateless mixer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator whose full 256-bit state is expanded from `seed`
    /// with SplitMix64 (the construction the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform draw from `range`. Implemented for the integer and float
    /// range types the workspace uses; integer sampling is unbiased
    /// (Lemire's method with rejection).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform u64 in `[0, n)`; `n == 0` returns 0.
    fn bounded(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derive an independent child generator. Consumes one draw from the
    /// parent, so sibling forks get unrelated streams.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                // span == 0 means the full u64 domain.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let x = self.start + (rng.f64() as $t) * (self.end - self.start);
                // Floating rounding may land exactly on `end`; fold it back.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}

impl_float_range!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // First outputs for seed 0, checked against the public C reference
        // (splitmix64 seeding + xoshiro256starstar.c).
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(43);
            (0..100).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!((10..20).contains(&r.gen_range(10u64..20)));
            assert!((5..=5).contains(&r.gen_range(5u32..=5)));
            let f = r.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut r = Rng::seed_from_u64(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(r.gen_range(0u64..=u64::MAX));
        }
        assert!(distinct.len() > 60);
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // And with 50! arrangements, not the identity.
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn forks_diverge() {
        let mut parent = Rng::seed_from_u64(1);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
