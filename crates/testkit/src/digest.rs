//! Streaming FNV-1a digests.
//!
//! One 64-bit digest implementation shared by every consumer that needs a
//! stable, dependency-free content hash: the golden-digest regression tests
//! fold simulation observables through it, and the experiment matrix
//! (`experiments::expmatrix`) keys its on-disk result cache on the digest
//! of a canonicalized cell config. Keeping the primitive here means "what
//! the cache keys on" and "what the golden tests pin" are the same bytes
//! semantics, maintained in one place.
//!
//! FNV-1a is not cryptographic; it is used for content addressing among
//! trusted local artifacts where a 64-bit collision over a few thousand
//! entries is negligible (birthday bound ≈ n²/2⁶⁵).

use crate::json::{canonical, Value};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Start a digest from the standard offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Fold raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one `u64` (little-endian bytes, matching the golden tests'
    /// historical `fold`).
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Fold one `f64` by bit pattern (`-0.0 != 0.0`, NaNs distinct).
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Fold a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest a byte slice in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Digest a JSON value via its canonical serialization: key order and
/// whitespace of the original document cannot affect the result, while any
/// value-level change does.
pub fn canonical_digest(v: &Value) -> u64 {
    fnv1a(canonical(v).as_bytes())
}

/// Fixed-width lower-hex rendering of a digest (16 chars), the cache's
/// on-disk entry-name format.
pub fn hex16(d: u64) -> String {
    format!("{d:016x}")
}

/// Parse the [`hex16`] rendering back to a digest.
pub fn from_hex16(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn u64_folds_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn canonical_digest_ignores_layout_not_values() {
        let a = json::parse(r#"{"b": 1, "a": {"y": true, "x": [1, 2]}}"#).unwrap();
        let b = json::parse("{\n  \"a\": {\"x\": [1,\t2], \"y\": true},\n  \"b\": 1\n}").unwrap();
        assert_eq!(canonical_digest(&a), canonical_digest(&b));
        let c = json::parse(r#"{"b": 1, "a": {"y": true, "x": [1, 3]}}"#).unwrap();
        assert_ne!(canonical_digest(&a), canonical_digest(&c));
    }

    #[test]
    fn hex16_round_trips() {
        let d = fnv1a(b"cell");
        assert_eq!(from_hex16(&hex16(d)), Some(d));
        assert_eq!(from_hex16("nope"), None);
        assert_eq!(from_hex16("zz00000000000000"), None);
    }
}
