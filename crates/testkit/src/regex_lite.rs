//! A small, hermetic regular-expression matcher.
//!
//! Supports the subset of classic regex syntax the workspace's tooling
//! needs for benchmark-name filters (`TESTKIT_BENCH_FILTER`,
//! `scripts/bench_update.sh --filter`):
//!
//! * literals and `\`-escapes (an escaped character matches itself)
//! * `.` (any one character)
//! * `[...]` / `[^...]` character classes with `a-z` ranges
//! * postfix `*`, `+`, `?`
//! * alternation `|` and grouping `(...)`
//! * `^` / `$` anchors; without them a pattern matches anywhere in the
//!   text (search semantics, like `grep` or Rust's `regex::is_match`)
//!
//! The implementation is a set-of-positions simulation: each piece maps a
//! set of input positions to the set of positions reachable after matching
//! it, with dedup at every step, so matching is polynomial and loops on
//! zero-width repetitions terminate. Benchmark names are tens of
//! characters; this is nowhere near a hot path.

/// A parsed pattern, ready for repeated matching.
#[derive(Debug, Clone)]
pub struct Regex {
    /// Top-level alternation: the pattern matches if any branch does.
    alts: Vec<Vec<Piece>>,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    rep: Rep,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rep {
    One,
    Star,
    Plus,
    Opt,
}

#[derive(Debug, Clone)]
enum Atom {
    Char(char),
    Any,
    Class { neg: bool, ranges: Vec<(char, char)> },
    Group(Vec<Vec<Piece>>),
    Start,
    End,
}

impl Regex {
    /// Parse `pattern`; `Err` carries a human-readable syntax message.
    pub fn new(pattern: &str) -> Result<Regex, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let alts = parse_alts(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected ')' at offset {pos}"));
        }
        Ok(Regex { alts })
    }

    /// True when the pattern matches anywhere in `text` (or exactly where
    /// its `^`/`$` anchors demand).
    pub fn is_match(&self, text: &str) -> bool {
        let t: Vec<char> = text.chars().collect();
        (0..=t.len()).any(|start| {
            self.alts.iter().any(|seq| !seq_ends(seq, &t, &[start]).is_empty())
        })
    }
}

/// Parse an alternation (`a|b|c`) up to an unbalanced `)` or end of input.
fn parse_alts(p: &[char], pos: &mut usize) -> Result<Vec<Vec<Piece>>, String> {
    let mut alts = vec![parse_seq(p, pos)?];
    while p.get(*pos) == Some(&'|') {
        *pos += 1;
        alts.push(parse_seq(p, pos)?);
    }
    Ok(alts)
}

/// Parse a concatenation of repeatable atoms.
fn parse_seq(p: &[char], pos: &mut usize) -> Result<Vec<Piece>, String> {
    let mut seq = Vec::new();
    while let Some(&c) = p.get(*pos) {
        if c == '|' || c == ')' {
            break;
        }
        let atom = parse_atom(p, pos)?;
        let rep = match p.get(*pos) {
            Some('*') => Rep::Star,
            Some('+') => Rep::Plus,
            Some('?') => Rep::Opt,
            _ => Rep::One,
        };
        if rep != Rep::One {
            *pos += 1;
        }
        seq.push(Piece { atom, rep });
    }
    Ok(seq)
}

fn parse_atom(p: &[char], pos: &mut usize) -> Result<Atom, String> {
    let c = p[*pos];
    *pos += 1;
    match c {
        '.' => Ok(Atom::Any),
        '^' => Ok(Atom::Start),
        '$' => Ok(Atom::End),
        '(' => {
            let alts = parse_alts(p, pos)?;
            if p.get(*pos) != Some(&')') {
                return Err("unclosed '('".into());
            }
            *pos += 1;
            Ok(Atom::Group(alts))
        }
        '[' => parse_class(p, pos),
        '\\' => {
            let &e = p.get(*pos).ok_or("dangling '\\'")?;
            *pos += 1;
            Ok(Atom::Char(e))
        }
        '*' | '+' | '?' => Err(format!("'{c}' with nothing to repeat")),
        c => Ok(Atom::Char(c)),
    }
}

fn parse_class(p: &[char], pos: &mut usize) -> Result<Atom, String> {
    let neg = p.get(*pos) == Some(&'^');
    if neg {
        *pos += 1;
    }
    let mut ranges = Vec::new();
    let mut first = true;
    loop {
        let &c = p.get(*pos).ok_or("unclosed '['")?;
        if c == ']' && !first {
            *pos += 1;
            return Ok(Atom::Class { neg, ranges });
        }
        first = false;
        *pos += 1;
        let lo = if c == '\\' {
            let &e = p.get(*pos).ok_or("dangling '\\' in class")?;
            *pos += 1;
            e
        } else {
            c
        };
        // `a-z` range, unless the '-' is the closing ']'s neighbor.
        if p.get(*pos) == Some(&'-') && p.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1;
            let &hi = p.get(*pos).ok_or("unclosed '['")?;
            *pos += 1;
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
}

/// All positions reachable after matching `seq` from any position in
/// `starts` (ascending, deduped).
fn seq_ends(seq: &[Piece], t: &[char], starts: &[usize]) -> Vec<usize> {
    let mut cur = starts.to_vec();
    for piece in seq {
        cur = piece_ends(piece, t, &cur);
        if cur.is_empty() {
            break;
        }
    }
    cur
}

fn piece_ends(piece: &Piece, t: &[char], starts: &[usize]) -> Vec<usize> {
    match piece.rep {
        Rep::One => atom_ends(&piece.atom, t, starts),
        Rep::Opt => merge(starts.to_vec(), atom_ends(&piece.atom, t, starts)),
        Rep::Star | Rep::Plus => {
            let mut all = if piece.rep == Rep::Star { starts.to_vec() } else { Vec::new() };
            let mut frontier = starts.to_vec();
            // Fixpoint over reachable positions; positions only come from
            // the finite 0..=len range, so this terminates even for
            // zero-width repetition bodies.
            while !frontier.is_empty() {
                let next = atom_ends(&piece.atom, t, &frontier);
                frontier = next.into_iter().filter(|p| !all.contains(p)).collect();
                all = merge(all, frontier.clone());
            }
            all.sort_unstable();
            all
        }
    }
}

fn atom_ends(atom: &Atom, t: &[char], starts: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    for &i in starts {
        match atom {
            Atom::Char(c) => {
                if t.get(i) == Some(c) {
                    out.push(i + 1);
                }
            }
            Atom::Any => {
                if i < t.len() {
                    out.push(i + 1);
                }
            }
            Atom::Class { neg, ranges } => {
                if let Some(&c) = t.get(i) {
                    let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                    if inside != *neg {
                        out.push(i + 1);
                    }
                }
            }
            Atom::Group(alts) => {
                for seq in alts {
                    out.extend(seq_ends(seq, t, &[i]));
                }
            }
            Atom::Start => {
                if i == 0 {
                    out.push(i);
                }
            }
            Atom::End => {
                if i == t.len() {
                    out.push(i);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn merge(mut a: Vec<usize>, b: Vec<usize>) -> Vec<usize> {
    a.extend(b);
    a.sort_unstable();
    a.dedup();
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).expect("pattern parses").is_match(text)
    }

    #[test]
    fn literal_is_substring_search() {
        assert!(m("streaming", "sim_throughput/streaming_0.3_8.6"));
        assert!(m("0.3", "sim_throughput/streaming_0.3_8.6"));
        assert!(!m("browse", "sim_throughput/streaming_0.3_8.6"));
    }

    #[test]
    fn anchors_pin_ends() {
        assert!(m("^sim_", "sim_throughput/browse_1k"));
        assert!(!m("^throughput", "sim_throughput/browse_1k"));
        assert!(m("_1k$", "sim_throughput/browse_1k"));
        assert!(!m("browse$", "sim_throughput/browse_1k"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = Regex::new("sim_throughput/(streaming|browse_1k)").unwrap();
        assert!(r.is_match("sim_throughput/streaming_0.3_8.6"));
        assert!(r.is_match("sim_throughput/browse_1k"));
        assert!(!r.is_match("sim_throughput/quic_web_107stream"));
        assert!(m("a|b", "xby"));
        assert!(!m("a|b", "xyz"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
        assert!(m("a.*z", "a___z"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(!m("^(ab)+$", "ababa"));
    }

    #[test]
    fn zero_width_star_terminates() {
        assert!(m("(a*)*b", "b"));
        assert!(m("(a*)*b", "aaab"));
        assert!(!m("^(a*)*$", "c"));
    }

    #[test]
    fn classes_and_escapes() {
        assert!(m("[a-c]+", "xbz"));
        assert!(!m("^[a-c]+$", "xbz"));
        assert!(m("[^0-9]", "a1"));
        assert!(!m("^[^0-9]+$", "123"));
        assert!(m("0\\.3", "streaming_0.3_8.6"));
        assert!(!m("0\\.3", "streaming_0x3"));
        assert!(m("[.]", "a.b"));
        assert!(m("a[-c]", "a-"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
    }
}
