//! Sender-side multipath-QUIC connection: per-path packet-number spaces
//! with their own TCP-style congestion controllers, per-stream send queues,
//! and stream-aware retransmission — all placed packet-by-packet by a
//! pluggable [`ecf_core::Scheduler`] through the shared
//! [`mptcp::SchedDriver`] seam.
//!
//! Differences to the MPTCP sender (`mptcp::Connection`) that matter for
//! the scheduling story:
//!
//! * There is no connection-level data sequence. Each path numbers its own
//!   packets (monotonic `pn`, never reused), and each stream tracks which
//!   of its chunks are unsent or need retransmission. A retransmitted chunk
//!   goes back through the scheduler and may ride a *different* path —
//!   QUIC's stream-aware retransmission, vs MPTCP's same-subflow fast
//!   retransmit + reinjection machinery.
//! * Loss detection is by packet-number gap: paths are FIFO links, so an
//!   ACK for `pn` proves every unacked packet with a smaller number on that
//!   path was dropped. One congestion response covers a whole loss episode
//!   (NewReno-style: losses with `pn` below the episode's recovery point
//!   don't trigger another window cut).
//! * Congestion control is uncoupled per path (plain Reno per packet-number
//!   space): QUIC paths do not share a window the way LIA/OLIA couple
//!   MPTCP subflows.

use std::collections::VecDeque;

use ecf_core::{Decision, PathId, PathSnapshot, Scheduler};
use mptcp::SchedDriver;
use simnet::Time;
use tcp_model::{TcpCc, TcpConfig};
use telemetry::TelemetryHandle;

/// Connection parameters.
#[derive(Debug, Clone, Copy)]
pub struct QuicConfig {
    /// Per-path congestion-controller parameters.
    pub tcp: TcpConfig,
    /// Receive window advertised by the peer at handshake, in chunks.
    pub rwnd_chunks: u64,
}

impl Default for QuicConfig {
    fn default() -> Self {
        QuicConfig { tcp: TcpConfig::default(), rwnd_chunks: 1024 }
    }
}

/// One packet placed on the wire by [`QuicConn::try_send_into`].
#[derive(Debug, Clone, Copy)]
pub struct QuicTx {
    /// Path the packet rides.
    pub path: usize,
    /// Stream the carried chunk belongs to.
    pub stream: u32,
    /// Chunk offset within the stream.
    pub chunk: u64,
    /// Per-path packet number.
    pub pn: u64,
}

/// An unacknowledged packet in a path's packet-number space.
#[derive(Debug, Clone, Copy)]
struct SentPacket {
    pn: u64,
    stream: u32,
    chunk: u64,
    sent_at: Time,
}

/// One path's packet-number space: congestion controller, inflight queue,
/// and the lazy PTO deadline the testbed arms timers from.
pub struct PathSpace {
    /// The path's own (uncoupled) congestion controller + RTT estimator.
    pub cc: TcpCc,
    /// Next packet number to assign (monotonic, never reused).
    next_pn: u64,
    /// Unacked packets, in send (= packet-number) order.
    inflight: VecDeque<SentPacket>,
    /// When the probe-timeout should fire; `Time::MAX` while nothing is
    /// inflight. The testbed checks this lazily, like the MPTCP RTO.
    pub rto_deadline: Time,
    /// Whether a PTO event for this path is already in the event heap.
    pub rto_scheduled: bool,
    /// Path liveness (a down path is a dead radio).
    pub up: bool,
    /// Droptail backlog of the path's forward link, sampled by the testbed
    /// before each send opportunity (crosses into [`PathSnapshot`]).
    pub link_queue_bytes: u64,
    /// NewReno-style recovery point: losses of packets numbered below this
    /// belong to an already-answered loss episode.
    recovery_until: u64,
}

impl PathSpace {
    fn new(cfg: TcpConfig, handshake_rtt: std::time::Duration) -> Self {
        let mut cc = TcpCc::new(cfg);
        // Like `mptcp::Subflow::new`: the handshake provides the first RTT
        // sample, so the scheduler never sees a zero srtt.
        cc.rtt.on_sample(handshake_rtt);
        PathSpace {
            cc,
            next_pn: 0,
            inflight: VecDeque::with_capacity(64),
            rto_deadline: Time::MAX,
            rto_scheduled: false,
            up: true,
            link_queue_bytes: 0,
            recovery_until: 0,
        }
    }

    /// Packets currently unacknowledged on this path.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    fn rearm_deadline(&mut self) {
        self.rto_deadline = match self.inflight.front() {
            Some(s) => s.sent_at + self.cc.rto(),
            None => Time::MAX,
        };
    }
}

/// Send state of one stream: the fresh frontier plus chunks queued for
/// retransmission (retransmissions have priority within the stream).
#[derive(Debug, Default)]
struct StreamTx {
    total: u64,
    next_fresh: u64,
    retx: VecDeque<u64>,
}

/// What one ACK did to the connection, for the testbed's telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct AckOutcome {
    /// The acked packet was still inflight (fresh RTT sample taken).
    pub newly_acked: bool,
    /// Packets declared lost by the packet-number gap.
    pub lost: u64,
    /// This ACK opened a new loss episode (one window cut).
    pub fast_retx: bool,
}

/// Aggregate sender counters (beyond the per-path [`TcpCc`] stats).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuicStats {
    /// Scheduler returned `Wait` with queued data.
    pub wait_decisions: u64,
    /// Send opportunities cut short by the connection receive window.
    pub rwnd_blocked: u64,
    /// Packets declared lost (pn gap), summed over all paths.
    pub lost_packets: u64,
    /// Loss episodes answered with a window cut.
    pub fast_retx_episodes: u64,
    /// Probe timeouts fired.
    pub ptos: u64,
}

/// The multipath-QUIC sender: one connection, many streams, one packet
/// scheduler deciding path placement for every packet.
pub struct QuicConn {
    /// Connection parameters.
    pub cfg: QuicConfig,
    /// Per-path packet-number spaces, indexed like the testbed's paths.
    pub paths: Vec<PathSpace>,
    streams: Vec<StreamTx>,
    /// Scheduler invocation + decision provenance (shared with MPTCP).
    pub driver: SchedDriver,
    /// Latest connection-level receive window advertised by the peer.
    rwnd_adv: u64,
    /// Round-robin cursor over streams for chunk selection.
    rr_cursor: usize,
    /// Chunks not yet on the wire (fresh + retransmit), across all streams.
    pending_total: u64,
    /// Packets inflight across all paths.
    inflight_total: u64,
    /// Aggregate counters.
    pub stats: QuicStats,
}

impl QuicConn {
    /// A connection over paths with the given handshake RTTs, placing
    /// packets with `scheduler`.
    pub fn new(
        cfg: QuicConfig,
        scheduler: Box<dyn Scheduler>,
        handshake_rtts: &[std::time::Duration],
    ) -> Self {
        assert!(!handshake_rtts.is_empty(), "a connection needs at least one path");
        let paths: Vec<PathSpace> =
            handshake_rtts.iter().map(|&rtt| PathSpace::new(cfg.tcp, rtt)).collect();
        let n = paths.len();
        QuicConn {
            cfg,
            paths,
            streams: Vec::new(),
            driver: SchedDriver::new(scheduler, n),
            rwnd_adv: cfg.rwnd_chunks,
            rr_cursor: 0,
            pending_total: 0,
            inflight_total: 0,
            stats: QuicStats::default(),
        }
    }

    /// Attach a telemetry sink (decision events are stamped `conn`).
    pub fn set_telemetry(&mut self, tel: TelemetryHandle, conn: u32) {
        self.driver.set_telemetry(tel, conn);
    }

    /// Open stream `stream` carrying `total_chunks` chunks of response.
    pub fn open_stream(&mut self, stream: u32, total_chunks: u64) {
        let i = stream as usize;
        if self.streams.len() <= i {
            self.streams.resize_with(i + 1, StreamTx::default);
        }
        let s = &mut self.streams[i];
        assert_eq!(s.total, 0, "stream {stream} opened twice");
        s.total = total_chunks;
        self.pending_total += total_chunks;
    }

    /// Chunks not yet (re)transmitted, across all streams.
    pub fn pending_chunks(&self) -> u64 {
        self.pending_total
    }

    /// Packets unacknowledged across all paths.
    pub fn inflight_packets(&self) -> u64 {
        self.inflight_total
    }

    /// Everything opened has been sent and acknowledged.
    pub fn all_acked(&self) -> bool {
        self.pending_total == 0 && self.inflight_total == 0
    }

    /// Mark `path` dead: its inflight packets are requeued on their streams
    /// (they may retransmit on any surviving path) and its timer disarmed.
    pub fn on_path_down(&mut self, path: usize) {
        self.paths[path].up = false;
        while let Some(s) = self.paths[path].inflight.pop_front() {
            self.inflight_total -= 1;
            self.streams[s.stream as usize].retx.push_back(s.chunk);
            self.pending_total += 1;
        }
        self.paths[path].rto_deadline = Time::MAX;
    }

    /// Mark `path` live again.
    pub fn on_path_up(&mut self, path: usize) {
        self.paths[path].up = true;
    }

    /// Pick the next chunk to place: round-robin over streams, stream-local
    /// retransmissions first. Caller guarantees `pending_total > 0`.
    fn take_next_chunk(&mut self) -> (u32, u64) {
        let n = self.streams.len();
        for k in 0..n {
            let i = (self.rr_cursor + k) % n;
            let s = &mut self.streams[i];
            if let Some(chunk) = s.retx.pop_front() {
                self.rr_cursor = (i + 1) % n;
                self.pending_total -= 1;
                return (i as u32, chunk);
            }
            if s.next_fresh < s.total {
                let chunk = s.next_fresh;
                s.next_fresh += 1;
                self.rr_cursor = (i + 1) % n;
                self.pending_total -= 1;
                return (i as u32, chunk);
            }
        }
        unreachable!("take_next_chunk with pending_total == 0")
    }

    fn rebuild_snapshots(&mut self) {
        self.driver.snap_buf.clear();
        for (i, p) in self.paths.iter().enumerate() {
            self.driver.snap_buf.push(PathSnapshot {
                id: PathId(i),
                srtt: p.cc.rtt.srtt(),
                rtt_dev: p.cc.rtt.rttvar(),
                cwnd: p.cc.cwnd_pkts(),
                inflight: p.inflight.len() as u32,
                in_slow_start: p.cc.in_slow_start(),
                usable: p.up,
                queue_bytes: p.link_queue_bytes,
            });
        }
    }

    /// Run one send opportunity: ask the scheduler per packet until it
    /// says wait, the window closes, or the queue drains. Packets to put on
    /// the wire are appended to `out`.
    pub fn try_send_into(&mut self, now: Time, out: &mut Vec<QuicTx>) {
        for p in self.paths.iter_mut() {
            if p.up {
                p.cc.maybe_idle_reset(now);
            }
        }
        if self.pending_total > 0 {
            self.rebuild_snapshots();
            let mut swnd_free = self.rwnd_adv.saturating_sub(self.inflight_total);
            while self.pending_total > 0 {
                if swnd_free == 0 {
                    self.driver.on_window_blocked();
                    self.stats.rwnd_blocked += 1;
                    break;
                }
                match self.driver.decide(now, self.pending_total, swnd_free) {
                    Decision::Send(PathId(pi)) => {
                        let (stream, chunk) = self.take_next_chunk();
                        let p = &mut self.paths[pi];
                        if p.inflight.is_empty() {
                            p.rto_deadline = now + p.cc.rto();
                        }
                        let pn = p.next_pn;
                        p.next_pn += 1;
                        p.cc.note_send(now);
                        p.inflight.push_back(SentPacket { pn, stream, chunk, sent_at: now });
                        self.inflight_total += 1;
                        self.driver.snap_buf[pi].inflight += 1;
                        out.push(QuicTx { path: pi, stream, chunk, pn });
                        swnd_free -= 1;
                    }
                    Decision::Wait => {
                        self.stats.wait_decisions += 1;
                        break;
                    }
                    Decision::Blocked => break,
                }
            }
        }
        for p in self.paths.iter_mut() {
            if p.up {
                p.cc.validate_app_limited(now, p.inflight.len() as u32);
            }
        }
    }

    /// Process an ACK for packet `pn` on `path`, carrying the peer's
    /// current free receive window. Unacked packets with smaller numbers on
    /// the same path are declared lost (FIFO links cannot reorder) and
    /// their chunks requeued for stream-aware retransmission.
    pub fn on_ack(&mut self, now: Time, path: usize, pn: u64, rwnd_free: u64) -> AckOutcome {
        self.rwnd_adv = rwnd_free;
        let mut out = AckOutcome::default();
        let mut first_lost_pn = None;
        while self.paths[path].inflight.front().is_some_and(|f| f.pn < pn) {
            let s = self.paths[path].inflight.pop_front().expect("front checked");
            self.inflight_total -= 1;
            if first_lost_pn.is_none() {
                first_lost_pn = Some(s.pn);
            }
            self.streams[s.stream as usize].retx.push_back(s.chunk);
            self.pending_total += 1;
            out.lost += 1;
        }
        self.stats.lost_packets += out.lost;
        if self.paths[path].inflight.front().is_some_and(|f| f.pn == pn) {
            let s = self.paths[path].inflight.pop_front().expect("front checked");
            self.inflight_total -= 1;
            let p = &mut self.paths[path];
            // Packet numbers are never reused, so the sample is unambiguous
            // (no Karn problem even for retransmitted chunks).
            p.cc.rtt.on_sample(now.since(s.sent_at));
            p.cc.clear_rto_backoff();
            if p.cc.in_slow_start() {
                p.cc.on_ack_slow_start(1);
                p.cc.maybe_hystart_exit();
            } else {
                // Uncoupled per-path Reno: +1/cwnd per acked packet.
                let w = f64::from(p.cc.cwnd_pkts()).max(1.0);
                p.cc.apply_ca_increase(1.0 / w);
            }
            out.newly_acked = true;
        }
        // Else: stale ACK for a packet already resolved (e.g. by a PTO);
        // per-path pns are monotonic so there is nothing to do.
        if let Some(first) = first_lost_pn {
            let p = &mut self.paths[path];
            if first >= p.recovery_until {
                p.cc.on_fast_retransmit();
                p.recovery_until = p.next_pn;
                self.stats.fast_retx_episodes += 1;
                out.fast_retx = true;
            }
        }
        self.paths[path].rearm_deadline();
        out
    }

    /// Probe timeout on `path`: declare the oldest inflight packet lost,
    /// requeue its chunk, and back the controller off. Returns false when
    /// nothing was inflight (stale timer).
    pub fn on_pto(&mut self, path: usize) -> bool {
        let Some(s) = self.paths[path].inflight.pop_front() else {
            self.paths[path].rearm_deadline();
            return false;
        };
        self.inflight_total -= 1;
        self.streams[s.stream as usize].retx.push_back(s.chunk);
        self.pending_total += 1;
        let p = &mut self.paths[path];
        p.cc.on_rto();
        p.recovery_until = p.next_pn;
        p.rearm_deadline();
        self.stats.ptos += 1;
        true
    }

    /// The scheduler's stable short name ("ecf", "default", ...).
    pub fn scheduler_name(&self) -> &'static str {
        self.driver.scheduler_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecf_core::SchedulerKind;
    use std::time::Duration;

    fn conn(n_paths: usize) -> QuicConn {
        let rtts: Vec<Duration> = (0..n_paths)
            .map(|i| Duration::from_millis(20 + 60 * i as u64))
            .collect();
        QuicConn::new(QuicConfig::default(), SchedulerKind::Default.build(), &rtts)
    }

    #[test]
    fn sends_respect_cwnd_and_count_pending() {
        let mut c = conn(2);
        c.open_stream(0, 100);
        assert_eq!(c.pending_chunks(), 100);
        let mut out = Vec::new();
        c.try_send_into(Time::ZERO, &mut out);
        // Two IW=10 paths can carry at most 20 packets before acks.
        assert!(!out.is_empty() && out.len() <= 20, "sent {}", out.len());
        assert_eq!(c.inflight_packets(), out.len() as u64);
        assert_eq!(c.pending_chunks(), 100 - out.len() as u64);
    }

    #[test]
    fn pn_gap_declares_loss_and_requeues_chunks_once() {
        let mut c = conn(1);
        c.open_stream(0, 10);
        let mut out = Vec::new();
        c.try_send_into(Time::ZERO, &mut out);
        let sent = out.len() as u64;
        assert!(sent >= 3);
        // ACK pn=2: packets 0 and 1 were dropped by the FIFO link.
        let ack = c.on_ack(Time::from_millis(30), 0, 2, 1024);
        assert_eq!(ack.lost, 2);
        assert!(ack.newly_acked);
        assert!(ack.fast_retx, "first loss episode cuts the window");
        assert_eq!(c.pending_chunks(), (10 - sent) + 2);
        // A later ACK revealing more loss from the same episode must not
        // cut the window again.
        let ack2 = c.on_ack(Time::from_millis(31), 0, 4, 1024);
        assert_eq!(ack2.lost, 1);
        assert!(!ack2.fast_retx);
    }

    #[test]
    fn retransmissions_may_switch_paths() {
        let mut c = conn(2);
        c.open_stream(0, 4);
        let mut out = Vec::new();
        c.try_send_into(Time::ZERO, &mut out);
        assert_eq!(c.pending_chunks(), 0);
        // Kill path 0: its inflight chunks requeue...
        let on_p0 = out.iter().filter(|t| t.path == 0).count();
        assert!(on_p0 > 0, "default scheduler should use the fast path");
        c.on_path_down(0);
        assert_eq!(c.pending_chunks(), on_p0 as u64);
        // ...and the next opportunity places them on the surviving path.
        let mut out2 = Vec::new();
        c.try_send_into(Time::from_millis(1), &mut out2);
        assert!(out2.iter().all(|t| t.path == 1));
        assert_eq!(out2.len(), on_p0);
    }

    #[test]
    fn pto_requeues_the_oldest_packet_and_backs_off() {
        let mut c = conn(1);
        c.open_stream(0, 5);
        let mut out = Vec::new();
        c.try_send_into(Time::ZERO, &mut out);
        let rto_events_before = c.paths[0].cc.stats().rto_events;
        assert!(c.on_pto(0));
        assert_eq!(c.paths[0].cc.stats().rto_events, rto_events_before + 1);
        assert_eq!(c.pending_chunks(), 1);
        assert!(c.paths[0].rto_deadline != Time::MAX, "still inflight, rearmed");
    }

    #[test]
    fn rwnd_limits_inflight() {
        let mut c = QuicConn::new(
            QuicConfig { rwnd_chunks: 5, ..QuicConfig::default() },
            SchedulerKind::Default.build(),
            &[Duration::from_millis(20)],
        );
        c.open_stream(0, 100);
        let mut out = Vec::new();
        c.try_send_into(Time::ZERO, &mut out);
        assert_eq!(out.len(), 5, "window of 5 chunks caps the burst");
        assert_eq!(c.stats.rwnd_blocked, 1);
    }
}
