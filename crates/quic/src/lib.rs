//! # quic — a multipath-QUIC transport model behind the shared seam
//!
//! A second consumer of the `ecf-core` schedulers beside the MPTCP model:
//! one connection multiplexing many streams, per-path packet-number spaces
//! with uncoupled congestion control, per-stream in-order delivery with
//! **no cross-stream head-of-line blocking**, and stream-aware
//! retransmission (a lost chunk may retransmit on a different path).
//!
//! The crate shares the transport seam from `mptcp::transport`: packets are
//! placed by [`mptcp::SchedDriver`] (so scheduler decision telemetry is
//! byte-identical across transports), workloads implement
//! [`mptcp::TransportApp`] and run unchanged on either testbed, and results
//! land in the same [`mptcp::Recorder`]. See DESIGN.md §12 for how this
//! model simplifies RFC 9000 and why those simplifications don't touch the
//! scheduling story.
//!
//! ```
//! use ecf_core::SchedulerKind;
//! use mptcp::{ReqId, TransportApi, TransportApp};
//! use quic::{QuicTestbed, QuicTestbedConfig};
//! use simnet::Time;
//!
//! /// Fetch two objects as two streams on one connection.
//! struct TwoStreams { done: usize }
//! impl TransportApp for TwoStreams {
//!     fn on_start(&mut self, _now: Time, api: &mut dyn TransportApi) {
//!         api.request(0, 64 * 1024);
//!         api.request(0, 256 * 1024);
//!     }
//!     fn on_response_complete(
//!         &mut self, _n: Time, _c: usize, _r: ReqId, _a: &mut dyn TransportApi,
//!     ) {
//!         self.done += 1;
//!     }
//! }
//!
//! let cfg = QuicTestbedConfig::wifi_lte(2.0, 8.0, SchedulerKind::Ecf, 1);
//! let mut tb = QuicTestbed::new(cfg, TwoStreams { done: 0 });
//! tb.run_until(Time::from_secs(30));
//! assert_eq!(tb.app().done, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connection;
mod receiver;
mod sim;

pub use connection::{AckOutcome, PathSpace, QuicConfig, QuicConn, QuicStats, QuicTx};
pub use receiver::{DeliveredChunk, QuicReceiver};
pub use sim::{Event, QuicApi, QuicSim, QuicTestbed, QuicTestbedConfig, QuicWorld};
